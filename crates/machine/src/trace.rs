//! Message/event tracing — used by the Figure-1/2/3 experiments to verify
//! structural claims ("communication occurs only within rows", code
//! processor counts, recovery message flows).

use serde::{Deserialize, Serialize};

/// One traced machine event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A point-to-point message.
    Send {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Application tag.
        tag: u64,
        /// Payload size in words.
        words: u64,
    },
    /// A rank died at a fault point (hard fault) and was replaced.
    Death {
        /// The rank slot that failed.
        rank: usize,
        /// Label of the fault point where it died.
        label: String,
        /// New incarnation number of the replacement.
        incarnation: u32,
    },
}

impl TraceEvent {
    /// Source/destination pair for send events.
    #[must_use]
    pub fn endpoints(&self) -> Option<(usize, usize)> {
        match self {
            TraceEvent::Send { src, dst, .. } => Some((*src, *dst)),
            TraceEvent::Death { .. } => None,
        }
    }
}
