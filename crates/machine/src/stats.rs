//! Trace analytics: turn a run's message trace into per-edge and per-rank
//! communication statistics — the tooling behind the Figure-1/2/3
//! structural verifications and general debugging of communication
//! patterns.

use crate::trace::TraceEvent;
use std::collections::HashMap;

/// Aggregated communication statistics for one run trace.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Messages per `(src, dst)` pair.
    pub edges: HashMap<(usize, usize), EdgeStats>,
    /// Total messages.
    pub messages: u64,
    /// Total words.
    pub words: u64,
    /// Deaths per rank.
    pub deaths: HashMap<usize, u32>,
}

/// Per-edge aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Messages sent along this edge.
    pub messages: u64,
    /// Words sent along this edge.
    pub words: u64,
}

impl TraceStats {
    /// Aggregate a trace.
    #[must_use]
    pub fn from_trace(trace: &[TraceEvent]) -> TraceStats {
        let mut out = TraceStats::default();
        for ev in trace {
            match ev {
                TraceEvent::Send {
                    src, dst, words, ..
                } => {
                    let e = out.edges.entry((*src, *dst)).or_default();
                    e.messages += 1;
                    e.words += words;
                    out.messages += 1;
                    out.words += words;
                }
                TraceEvent::Death { rank, .. } => {
                    *out.deaths.entry(*rank).or_default() += 1;
                }
            }
        }
        out
    }

    /// Words sent by each rank (sparse; absent = 0).
    #[must_use]
    pub fn words_by_sender(&self) -> HashMap<usize, u64> {
        let mut m: HashMap<usize, u64> = HashMap::new();
        for (&(src, _), e) in &self.edges {
            *m.entry(src).or_default() += e.words;
        }
        m
    }

    /// The fraction of messages whose endpoints satisfy `pred` — e.g. the
    /// Figure-1 row-locality check.
    #[must_use]
    pub fn fraction_matching(&self, pred: impl Fn(usize, usize) -> bool) -> f64 {
        if self.messages == 0 {
            return 1.0;
        }
        let matching: u64 = self
            .edges
            .iter()
            .filter(|(&(s, d), _)| pred(s, d))
            .map(|(_, e)| e.messages)
            .sum();
        matching as f64 / self.messages as f64
    }

    /// Edges sorted by descending word volume (for reports).
    #[must_use]
    pub fn heaviest_edges(&self, top: usize) -> Vec<((usize, usize), EdgeStats)> {
        let mut v: Vec<((usize, usize), EdgeStats)> =
            self.edges.iter().map(|(&k, &e)| (k, e)).collect();
        v.sort_by(|a, b| b.1.words.cmp(&a.1.words).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(src: usize, dst: usize, words: u64) -> TraceEvent {
        TraceEvent::Send {
            src,
            dst,
            tag: 0,
            words,
        }
    }

    #[test]
    fn aggregates_edges_and_totals() {
        let trace = vec![
            send(0, 1, 10),
            send(0, 1, 5),
            send(1, 0, 2),
            TraceEvent::Death {
                rank: 1,
                label: "x".into(),
                incarnation: 1,
            },
        ];
        let s = TraceStats::from_trace(&trace);
        assert_eq!(s.messages, 3);
        assert_eq!(s.words, 17);
        assert_eq!(
            s.edges[&(0, 1)],
            EdgeStats {
                messages: 2,
                words: 15
            }
        );
        assert_eq!(s.deaths[&1], 1);
        assert_eq!(s.words_by_sender()[&0], 15);
    }

    #[test]
    fn fraction_matching_predicate() {
        let trace = vec![send(0, 1, 1), send(2, 3, 1), send(0, 3, 1)];
        let s = TraceStats::from_trace(&trace);
        let frac = s.fraction_matching(|a, b| (a < 2) == (b < 2));
        assert!((frac - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(TraceStats::default().fraction_matching(|_, _| false), 1.0);
    }

    #[test]
    fn heaviest_edges_sorted() {
        let trace = vec![send(0, 1, 1), send(1, 2, 100), send(2, 0, 10)];
        let s = TraceStats::from_trace(&trace);
        let top = s.heaviest_edges(2);
        assert_eq!(top[0].0, (1, 2));
        assert_eq!(top[1].0, (2, 0));
        assert_eq!(top.len(), 2);
    }
}
