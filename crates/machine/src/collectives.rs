//! Collective communication operations (§2.4).
//!
//! Reductions use bandwidth-optimal ring algorithms (reduce-scatter +
//! gather), following Sanders–Sibeyn: a reduce of `W` words over a group of
//! `g` processors costs `F = Θ(W)`, `BW = Θ(W)` per critical path and
//! `L = Θ(g)` messages. (Lemma 2.5 additionally pipelines `t` simultaneous
//! reduces to reach `L = O(log P + t)`; we run them sequentially — the
//! bandwidth and arithmetic terms, which dominate the paper's overhead
//! claims, are identical. See DESIGN.md §4.)
//!
//! Broadcast uses a binomial tree (`BW = Θ(W·log g)` worst case, used for
//! small payloads) — matching Corollary 2.6's `F = 0` property.
//!
//! All groups are explicit rank lists that must contain the calling rank;
//! every member must call the same collective with the same arguments.

use crate::env::Env;
use ft_bigint::BigInt;

/// Position of the calling rank within `group`.
///
/// # Panics
/// Panics if the caller is not a member.
fn my_pos(env: &Env, group: &[usize]) -> usize {
    group
        .iter()
        .position(|&r| r == env.rank())
        .expect("calling rank not in collective group")
}

/// Split `len` items into `parts` contiguous ranges (first ranges get the
/// remainder).
fn chunk_range(len: usize, parts: usize, idx: usize) -> std::ops::Range<usize> {
    let base = len / parts;
    let rem = len % parts;
    let start = idx * base + idx.min(rem);
    let size = base + usize::from(idx < rem);
    start..start + size
}

/// Elementwise sum of two equal-length blocks.
fn add_blocks(acc: &mut [BigInt], inc: &[BigInt]) {
    assert_eq!(acc.len(), inc.len(), "reduce blocks of different lengths");
    for (a, b) in acc.iter_mut().zip(inc) {
        *a += b;
    }
}

/// Ring reduce-scatter over `group`: every member contributes `data`
/// (same length everywhere); afterwards member at position `i` owns the
/// fully reduced chunk `(i + 1) mod g`. Returns `(owned chunk index,
/// owned chunk values)`.
pub fn ring_reduce_scatter(
    env: &Env,
    group: &[usize],
    data: &[BigInt],
    tag: u64,
) -> (usize, Vec<BigInt>) {
    let g = group.len();
    let i = my_pos(env, group);
    if g == 1 {
        return (0, data.to_vec());
    }
    let mut buf: Vec<BigInt> = data.to_vec();
    let next = group[(i + 1) % g];
    let prev = group[(i + g - 1) % g];
    for step in 0..g - 1 {
        let send_chunk = (i + g - step) % g;
        let recv_chunk = (i + g - step - 1) % g;
        let sr = chunk_range(buf.len(), g, send_chunk);
        env.send(next, tag + step as u64, &buf[sr]);
        let incoming = env.recv(prev, tag + step as u64);
        let rr = chunk_range(buf.len(), g, recv_chunk);
        add_blocks(&mut buf[rr], &incoming);
    }
    let own = (i + 1) % g;
    let r = chunk_range(buf.len(), g, own);
    (own, buf[r].to_vec())
}

/// Ring all-gather of reduced chunks (the second half of a ring
/// all-reduce): member at position `i` starts owning chunk `(i+1) mod g`
/// and ends with the full vector of length `len`.
pub fn ring_all_gather_chunks(
    env: &Env,
    group: &[usize],
    len: usize,
    my_chunk: Vec<BigInt>,
    tag: u64,
) -> Vec<BigInt> {
    let g = group.len();
    let i = my_pos(env, group);
    if g == 1 {
        return my_chunk;
    }
    let mut out: Vec<BigInt> = vec![BigInt::zero(); len];
    let own = (i + 1) % g;
    out[chunk_range(len, g, own)].clone_from_slice(&my_chunk);
    let next = group[(i + 1) % g];
    let prev = group[(i + g - 1) % g];
    for step in 0..g - 1 {
        let send_chunk = (i + 1 + g - step) % g;
        let recv_chunk = (i + g - step) % g;
        let sr = chunk_range(len, g, send_chunk);
        env.send(next, tag + step as u64, &out[sr]);
        let incoming = env.recv(prev, tag + step as u64);
        let rr = chunk_range(len, g, recv_chunk);
        out[rr].clone_from_slice(&incoming);
    }
    out
}

/// All-reduce (elementwise sum) over `group`: `BW = Θ(W)`, `L = Θ(g)`,
/// `F = Θ(W)` — the cost shape of Lemma 2.5's all-reduce.
pub fn all_reduce(env: &Env, group: &[usize], data: &[BigInt], tag: u64) -> Vec<BigInt> {
    let g = group.len() as u64;
    let (_, chunk) = ring_reduce_scatter(env, group, data, tag);
    ring_all_gather_chunks(env, group, data.len(), chunk, tag + g)
}

/// Reduce (elementwise sum) to `root` (a member of `group`): ring
/// reduce-scatter followed by a chunk gather at the root. Non-roots return
/// `None`.
pub fn reduce(
    env: &Env,
    group: &[usize],
    root: usize,
    data: &[BigInt],
    tag: u64,
) -> Option<Vec<BigInt>> {
    let g = group.len();
    let i = my_pos(env, group);
    let root_pos = group
        .iter()
        .position(|&r| r == root)
        .expect("root not in group");
    if g == 1 {
        return Some(data.to_vec());
    }
    let (own, chunk) = ring_reduce_scatter(env, group, data, tag);
    let gather_tag = tag + g as u64;
    if i == root_pos {
        let mut out = vec![BigInt::zero(); data.len()];
        out[chunk_range(data.len(), g, own)].clone_from_slice(&chunk);
        for (pos, &r) in group.iter().enumerate() {
            if pos == root_pos {
                continue;
            }
            let their_chunk = (pos + 1) % g;
            let incoming = env.recv(r, gather_tag);
            out[chunk_range(data.len(), g, their_chunk)].clone_from_slice(&incoming);
        }
        Some(out)
    } else {
        env.send(root, gather_tag, &chunk);
        None
    }
}

/// Weighted reduce onto an *external* root (not a member of `sources`):
/// each source scales its block by `weight(position)` and the scaled blocks
/// are summed at `root`. This is the code-creation primitive of §4.1 —
/// the code processor (root) ends holding `Σ_l η^l · A_l`.
///
/// Sources return `None`; the root (which contributes no data and calls
/// with `data = None`) returns the weighted sum.
pub fn weighted_reduce_external(
    env: &Env,
    sources: &[usize],
    root: usize,
    data: Option<&[BigInt]>,
    len: usize,
    weight: &dyn Fn(usize) -> BigInt,
    tag: u64,
) -> Option<Vec<BigInt>> {
    let g = sources.len();
    assert!(
        !sources.contains(&root),
        "external root must not be a source"
    );
    if env.rank() == root {
        // Receive the g reduced chunks.
        let gather_tag = tag + g as u64;
        let mut out = vec![BigInt::zero(); len];
        for (pos, &r) in sources.iter().enumerate() {
            let their_chunk = (pos + 1) % g;
            let incoming = env.recv(r, gather_tag);
            out[chunk_range(len, g, their_chunk)].clone_from_slice(&incoming);
        }
        return Some(out);
    }
    let data = data.expect("source rank must supply data");
    assert_eq!(data.len(), len);
    let pos = my_pos(env, sources);
    let w = weight(pos);
    let scaled: Vec<BigInt> = data.iter().map(|x| x * &w).collect();
    let (_, chunk) = ring_reduce_scatter(env, sources, &scaled, tag);
    env.send(root, tag + g as u64, &chunk);
    None
}

/// Binomial-tree broadcast from `root` over `group`. Every member returns
/// the broadcast data (`F = 0`, Corollary 2.6).
pub fn bcast(
    env: &Env,
    group: &[usize],
    root: usize,
    data: Option<&[BigInt]>,
    tag: u64,
) -> Vec<BigInt> {
    let g = group.len();
    let i = my_pos(env, group);
    let root_pos = group
        .iter()
        .position(|&r| r == root)
        .expect("root not in group");
    let rel = (i + g - root_pos) % g;
    let mut have: Vec<BigInt> = if rel == 0 {
        data.expect("root must supply broadcast data").to_vec()
    } else {
        let lsb = rel & rel.wrapping_neg();
        let src_rel = rel - lsb;
        let src = group[(src_rel + root_pos) % g];
        env.recv(src, tag)
    };
    // Forward to children: rel + 2^i for i below our lsb (root: below g).
    let top_bit = if rel == 0 {
        usize::BITS - g.leading_zeros() // first power of two >= g
    } else {
        rel.trailing_zeros()
    };
    for b in (0..top_bit).rev() {
        let child = rel + (1 << b);
        if child < g {
            let dst = group[(child + root_pos) % g];
            env.send(dst, tag, &have);
        }
    }
    if rel == 0 {
        have = data.unwrap().to_vec();
    }
    have
}

/// All-gather of variable-length blocks over a ring: every member ends
/// with every member's block, in group order. `BW = Θ(Σ blocks)`,
/// `L = Θ(g)` per member.
pub fn ring_all_gather_blocks(
    env: &Env,
    group: &[usize],
    mine: &[BigInt],
    tag: u64,
) -> Vec<Vec<BigInt>> {
    let g = group.len();
    let i = my_pos(env, group);
    let mut out: Vec<Vec<BigInt>> = vec![Vec::new(); g];
    out[i] = mine.to_vec();
    if g == 1 {
        return out;
    }
    let next = group[(i + 1) % g];
    let prev = group[(i + g - 1) % g];
    for step in 0..g - 1 {
        // Forward the block received in the previous round (ours first).
        let fwd = (i + g - step) % g;
        env.send(next, tag + step as u64, &out[fwd]);
        let incoming = env.recv(prev, tag + step as u64);
        let slot = (i + g - step - 1) % g;
        out[slot] = incoming;
    }
    out
}

/// Scatter: the root sends block `i` of `blocks` to group member `i`;
/// every member returns its own block. Non-roots pass `None`.
///
/// # Panics
/// Panics if the root supplies a wrong number of blocks.
pub fn scatter(
    env: &Env,
    group: &[usize],
    root: usize,
    blocks: Option<&[Vec<BigInt>]>,
    tag: u64,
) -> Vec<BigInt> {
    let i = my_pos(env, group);
    let root_pos = group
        .iter()
        .position(|&r| r == root)
        .expect("root not in group");
    if i == root_pos {
        let blocks = blocks.expect("root must supply scatter blocks");
        assert_eq!(blocks.len(), group.len(), "one block per member");
        for (pos, &r) in group.iter().enumerate() {
            if pos != root_pos {
                env.send(r, tag, &blocks[pos]);
            }
        }
        blocks[i].clone()
    } else {
        env.recv(root, tag)
    }
}

/// Personalized all-to-all: member `i` sends `blocks[j]` to member `j` and
/// returns the blocks received, indexed by sender position (its own block
/// passes through untouched). This is the communication pattern of the
/// BFS up-step.
///
/// # Panics
/// Panics on a wrong block count.
pub fn all_to_all(
    env: &Env,
    group: &[usize],
    blocks: &[Vec<BigInt>],
    tag: u64,
) -> Vec<Vec<BigInt>> {
    let g = group.len();
    assert_eq!(blocks.len(), g, "one block per member");
    let i = my_pos(env, group);
    for (pos, &r) in group.iter().enumerate() {
        if pos != i {
            env.send(r, tag, &blocks[pos]);
        }
    }
    (0..g)
        .map(|pos| {
            if pos == i {
                blocks[i].clone()
            } else {
                env.recv(group[pos], tag)
            }
        })
        .collect()
}

/// Gather every member's block at `root` (direct sends). The root returns
/// the blocks in group order; others return `None`.
pub fn gather(
    env: &Env,
    group: &[usize],
    root: usize,
    data: &[BigInt],
    tag: u64,
) -> Option<Vec<Vec<BigInt>>> {
    let root_pos = group
        .iter()
        .position(|&r| r == root)
        .expect("root not in group");
    let i = my_pos(env, group);
    if i == root_pos {
        let mut out: Vec<Vec<BigInt>> = vec![Vec::new(); group.len()];
        out[i] = data.to_vec();
        for (pos, &r) in group.iter().enumerate() {
            if pos != root_pos {
                out[pos] = env.recv(r, tag);
            }
        }
        Some(out)
    } else {
        env.send(root, tag, data);
        None
    }
}

/// Barrier over `group`: binomial gather of empty messages to the first
/// member, then a broadcast back.
pub fn barrier(env: &Env, group: &[usize], tag: u64) {
    let _ = gather(env, group, group[0], &[], tag);
    let _ = bcast(env, group, group[0], Some(&[]), tag + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Machine, MachineConfig};

    fn ints(vs: &[i64]) -> Vec<BigInt> {
        vs.iter().map(|&v| BigInt::from(v)).collect()
    }

    #[test]
    fn chunk_ranges_partition() {
        for (len, parts) in [(10, 3), (3, 5), (0, 2), (8, 8), (7, 1)] {
            let mut covered = 0;
            for i in 0..parts {
                let r = chunk_range(len, parts, i);
                assert_eq!(r.start, covered, "len={len} parts={parts} i={i}");
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn all_reduce_sums_across_group() {
        let machine = Machine::new(MachineConfig::new(5));
        let report = machine.run(|env| {
            let group: Vec<usize> = (0..5).collect();
            let mine = ints(&[env.rank() as i64, 10 * env.rank() as i64, 7]);
            all_reduce(env, &group, &mine, 100)
        });
        let expected = ints(&[10, 100, 35]);
        for r in &report.results {
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn all_reduce_bandwidth_is_linear_not_logarithmic() {
        // BW per rank ~ 2W regardless of group size (ring optimality).
        let w = 64usize;
        let machine = Machine::new(MachineConfig::new(8));
        let report = machine.run(|env| {
            let group: Vec<usize> = (0..8).collect();
            let mine: Vec<BigInt> = (0..w).map(|i| BigInt::from(i as u64 + 1)).collect();
            all_reduce(env, &group, &mine, 0);
        });
        let cp = report.critical_path();
        assert!(
            cp.bw <= 3 * w as u64,
            "critical-path BW {} should be Θ(W)≈{}, not W·log g",
            cp.bw,
            2 * w
        );
    }

    #[test]
    fn reduce_to_each_root() {
        for root in 0..4 {
            let machine = Machine::new(MachineConfig::new(4));
            let report = machine.run(move |env| {
                let group: Vec<usize> = (0..4).collect();
                reduce(env, &group, root, &ints(&[1, 2, 3, 4, 5]), 0)
            });
            for (rank, res) in report.results.iter().enumerate() {
                if rank == root {
                    assert_eq!(res.as_ref().unwrap(), &ints(&[4, 8, 12, 16, 20]));
                } else {
                    assert!(res.is_none());
                }
            }
        }
    }

    #[test]
    fn subgroup_collectives() {
        // Only even ranks participate; odds do unrelated sends.
        let machine = Machine::new(MachineConfig::new(6));
        let report = machine.run(|env| {
            let group = vec![0, 2, 4];
            if env.rank() % 2 == 0 {
                Some(all_reduce(env, &group, &ints(&[env.rank() as i64]), 50))
            } else {
                None
            }
        });
        for rank in [0usize, 2, 4] {
            assert_eq!(report.results[rank].as_ref().unwrap(), &ints(&[6]));
        }
    }

    #[test]
    fn bcast_from_all_roots() {
        for root in 0..5 {
            let machine = Machine::new(MachineConfig::new(5));
            let report = machine.run(move |env| {
                let group: Vec<usize> = (0..5).collect();
                let data = ints(&[99, -5]);
                bcast(
                    env,
                    &group,
                    root,
                    (env.rank() == root).then_some(&data[..]),
                    7,
                )
            });
            for r in &report.results {
                assert_eq!(r, &ints(&[99, -5]), "root={root}");
            }
        }
    }

    #[test]
    fn weighted_reduce_external_root() {
        // Sources 0..3 hold blocks; rank 3 is the code processor with
        // weights η^pos for η = 2.
        let machine = Machine::new(MachineConfig::new(4));
        let report = machine.run(|env| {
            let sources = vec![0, 1, 2];
            let mine = ints(&[(env.rank() + 1) as i64, 10]);
            weighted_reduce_external(
                env,
                &sources,
                3,
                (env.rank() < 3).then_some(&mine[..]),
                2,
                &|pos| BigInt::from(2u64).pow(pos as u32),
                0,
            )
        });
        // Σ 2^pos · block_pos = 1·[1,10] + 2·[2,10] + 4·[3,10] = [17, 70]
        assert_eq!(report.results[3].as_ref().unwrap(), &ints(&[17, 70]));
        assert!(report.results[0].is_none());
    }

    #[test]
    fn gather_collects_in_order() {
        let machine = Machine::new(MachineConfig::new(3));
        let report = machine.run(|env| {
            let group = vec![0, 1, 2];
            gather(env, &group, 1, &ints(&[env.rank() as i64 * 11]), 3)
        });
        assert_eq!(
            report.results[1].as_ref().unwrap(),
            &vec![ints(&[0]), ints(&[11]), ints(&[22])]
        );
    }

    #[test]
    fn barrier_completes() {
        let machine = Machine::new(MachineConfig::new(7));
        let report = machine.run(|env| {
            let group: Vec<usize> = (0..7).collect();
            barrier(env, &group, 1000);
            true
        });
        assert!(report.results.iter().all(|&x| x));
    }

    #[test]
    fn ring_all_gather_blocks_orders_by_member() {
        let machine = Machine::new(MachineConfig::new(4));
        let report = machine.run(|env| {
            let group: Vec<usize> = (0..4).collect();
            // Variable-length blocks.
            let mine: Vec<BigInt> = (0..=env.rank()).map(|v| BigInt::from(v as u64)).collect();
            ring_all_gather_blocks(env, &group, &mine, 0)
        });
        for r in &report.results {
            assert_eq!(r.len(), 4);
            for (pos, block) in r.iter().enumerate() {
                assert_eq!(block.len(), pos + 1, "block sizes preserved");
                assert_eq!(block[pos], BigInt::from(pos as u64));
            }
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let machine = Machine::new(MachineConfig::new(3));
        let report = machine.run(|env| {
            let group = vec![0, 1, 2];
            let blocks: Vec<Vec<BigInt>> = (0..3).map(|i| ints(&[i * 100, i * 100 + 1])).collect();
            scatter(env, &group, 0, (env.rank() == 0).then_some(&blocks[..]), 9)
        });
        for (rank, r) in report.results.iter().enumerate() {
            assert_eq!(r, &ints(&[rank as i64 * 100, rank as i64 * 100 + 1]));
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let machine = Machine::new(MachineConfig::new(3));
        let report = machine.run(|env| {
            let group = vec![0, 1, 2];
            // blocks[j] = [my_rank, j]
            let blocks: Vec<Vec<BigInt>> = (0..3)
                .map(|j| ints(&[env.rank() as i64, j as i64]))
                .collect();
            all_to_all(env, &group, &blocks, 40)
        });
        for (me, r) in report.results.iter().enumerate() {
            for (sender, block) in r.iter().enumerate() {
                assert_eq!(block, &ints(&[sender as i64, me as i64]));
            }
        }
    }

    #[test]
    fn reduce_arithmetic_is_metered() {
        let machine = Machine::new(MachineConfig::new(4));
        let report = machine.run(|env| {
            let group: Vec<usize> = (0..4).collect();
            let mine: Vec<BigInt> = (0..32).map(|_| BigInt::from(u64::MAX)).collect();
            all_reduce(env, &group, &mine, 0);
        });
        assert!(
            report.critical_path().f > 0,
            "reduction additions must be charged"
        );
    }
}
