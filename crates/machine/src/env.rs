//! The machine runtime: configuration, per-rank environment, fault plans,
//! and run reports.

use crate::cost::{CostParams, CostVector};
use crate::message::{MatchKey, Message};
use crate::trace::TraceEvent;
use crossbeam::channel::{unbounded, Receiver, Sender};
use ft_bigint::{metrics, BigInt};
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};

/// Configuration of a simulated machine run.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processor slots (including any code/replica processors the
    /// algorithm layer assigns meaning to).
    pub processors: usize,
    /// Cost model parameters (only used when converting costs to time).
    pub cost: CostParams,
    /// Optional local-memory limit in words; ranks report their footprint
    /// via [`Env::note_memory`] and violations are recorded in the report.
    pub memory_limit: Option<u64>,
    /// Record every message and death into the run trace.
    pub trace: bool,
    /// Hard faults to inject.
    pub faults: FaultPlan,
    /// Delay faults (the paper's third category): `(rank, factor)` pairs —
    /// the rank's arithmetic is charged `factor`-fold on its critical-path
    /// clock, modeling a processor whose average time per operation has
    /// increased. Raw work counters are unaffected.
    pub slowdowns: Vec<(usize, u64)>,
    /// Unplanned seeded-random hard faults, drawn at fault points the
    /// allowlist names. `None` disables random faults.
    pub random: Option<RandomFaults>,
}

impl MachineConfig {
    /// A machine with `processors` ranks, default costs, no memory limit,
    /// no tracing, no faults.
    #[must_use]
    pub fn new(processors: usize) -> MachineConfig {
        MachineConfig {
            processors,
            cost: CostParams::default(),
            memory_limit: None,
            trace: false,
            faults: FaultPlan::none(),
            slowdowns: Vec::new(),
            random: None,
        }
    }

    /// Add a delay fault: `rank` computes `factor`× slower.
    #[must_use]
    pub fn with_slowdown(mut self, rank: usize, factor: u64) -> MachineConfig {
        self.slowdowns.push((rank, factor));
        self
    }

    /// Enable message tracing.
    #[must_use]
    pub fn with_trace(mut self) -> MachineConfig {
        self.trace = true;
        self
    }

    /// Set the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> MachineConfig {
        self.faults = faults;
        self
    }

    /// Set the per-rank memory limit (words).
    #[must_use]
    pub fn with_memory_limit(mut self, words: u64) -> MachineConfig {
        self.memory_limit = Some(words);
        self
    }

    /// Enable unplanned seeded-random hard faults.
    #[must_use]
    pub fn with_random_faults(mut self, random: RandomFaults) -> MachineConfig {
        self.random = Some(random);
        self
    }
}

/// Unplanned hard faults: every passage through an allowlisted fault point
/// draws from a deterministic hash of `(seed, rank, label, occurrence)` and
/// kills the rank with probability `per_10k / 10_000`, subject to a global
/// per-run budget of `max_faults` deaths.
///
/// The label allowlist restricts random deaths to fault points the running
/// algorithm can actually recover from (e.g. the polynomial-code layer
/// survives deaths at `poly-halt` but a death inside a nested recursion
/// boundary would need the linear code's recovery); callers list exactly
/// the labels their recovery protocol covers.
///
/// Draws are pure in `(seed, rank, label, occurrence)`, so a run is fully
/// deterministic whenever the number of firing draws is within budget;
/// beyond the budget, which candidates win depends on thread scheduling
/// (first-come-first-killed), mirroring a real machine where "at most `f`
/// concurrent faults" is an assumption, not a guarantee.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RandomFaults {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Per-passage death probability in units of 1/10_000.
    pub per_10k: u32,
    /// Global cap on random deaths per machine run.
    pub max_faults: u32,
    /// Fault-point labels eligible for random death (exact match).
    pub labels: Vec<String>,
}

impl RandomFaults {
    /// `true` iff `label` is eligible for random faults.
    #[must_use]
    pub fn allows(&self, label: &str) -> bool {
        self.labels.iter().any(|l| l == label)
    }

    /// Deterministic draw: would this passage die (ignoring the budget)?
    #[must_use]
    pub fn fires(&self, rank: usize, label: &str, occurrence: u32) -> bool {
        if self.per_10k == 0 || self.max_faults == 0 {
            return false;
        }
        let mut h = splitmix64(self.seed ^ fnv1a(label));
        h = splitmix64(h ^ (u64::from(occurrence) << 32) ^ rank as u64);
        h % 10_000 < u64::from(self.per_10k)
    }
}

/// SplitMix64 finalizer: a strong deterministic 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the label bytes (stable, no external hasher dependency).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One planned hard fault: rank `rank` dies the `occurrence`-th time it
/// passes the fault point labelled `label`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Victim rank slot.
    pub rank: usize,
    /// Fault-point label at which to die.
    pub label: String,
    /// Which passage through the label triggers death (0-based).
    pub occurrence: u32,
}

/// A deterministic hard-fault plan.
///
/// The plan is **injection-only**: it decides which ranks die where, and
/// nothing inside the machine run may read it. Survivors learn about
/// failures through the heartbeat/detection layer ([`crate::detect`]) —
/// the paper assumes *detected* fail-stop faults, and detection here is
/// earned, not oracled. The query methods ([`FaultPlan::victims_at`],
/// [`FaultPlan::is_victim`]) exist for hosts and tests that assert on what
/// was injected after the fact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// No faults.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill `rank` at its first passage through `label`.
    #[must_use]
    pub fn kill(mut self, rank: usize, label: &str) -> FaultPlan {
        self.specs.push(FaultSpec {
            rank,
            label: label.to_string(),
            occurrence: 0,
        });
        self
    }

    /// Kill `rank` at its `occurrence`-th passage through `label`.
    #[must_use]
    pub fn kill_at(mut self, rank: usize, label: &str, occurrence: u32) -> FaultPlan {
        self.specs.push(FaultSpec {
            rank,
            label: label.to_string(),
            occurrence,
        });
        self
    }

    /// All planned faults.
    #[must_use]
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of planned faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` iff no faults are planned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Ranks that die at the given label (any occurrence).
    #[must_use]
    pub fn victims_at(&self, label: &str) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .specs
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.rank)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// `true` iff the given rank dies anywhere in the plan.
    #[must_use]
    pub fn is_victim(&self, rank: usize) -> bool {
        self.specs.iter().any(|s| s.rank == rank)
    }

    fn matches(&self, rank: usize, label: &str, occurrence: u32) -> bool {
        self.specs
            .iter()
            .any(|s| s.rank == rank && s.label == label && s.occurrence == occurrence)
    }
}

/// What a rank learns at a fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Keep going; local state intact.
    Alive,
    /// This processor slot just died and was re-provisioned: all prior
    /// local state is gone (the program must discard it) and the slot now
    /// runs as a fresh replacement processor.
    Reborn,
}

#[derive(Debug, Clone, Copy, Default)]
struct RawTotals {
    flops: u64,
    words_sent: u64,
    msgs_sent: u64,
}

/// Failure-detection counters accumulated by a rank. Verdict-level
/// counters (deaths declared, stragglers, false positives, worst miss)
/// are recorded by the round's monitor only, so summing over ranks gives
/// run-level totals without double counting; `rounds` counts every
/// round this rank participated in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Detection rounds this rank took part in.
    pub rounds: u64,
    /// Ranks this rank (as monitor) declared dead, summed over rounds.
    pub dead_declared: u64,
    /// Ranks this rank (as monitor) flagged as stragglers.
    pub stragglers_flagged: u64,
    /// Declared-dead ranks that had in fact never died (incarnation 0).
    pub false_positives: u64,
    /// Worst heartbeat lag seen on any declared-dead rank (simulated
    /// ticks between the last surviving heartbeat and detection).
    pub max_missed: u64,
}

impl DetectStats {
    /// Fold another stats record into this one (sums, max for lag).
    pub fn merge(&mut self, other: &DetectStats) {
        self.rounds += other.rounds;
        self.dead_declared += other.dead_declared;
        self.stragglers_flagged += other.stragglers_flagged;
        self.false_positives += other.false_positives;
        self.max_missed = self.max_missed.max(other.max_missed);
    }
}

/// Per-rank outcome of a run.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Rank slot.
    pub rank: usize,
    /// Critical-path cost vector carried by this rank at program end.
    pub cost: CostVector,
    /// Total arithmetic performed by this rank (not critical-path).
    pub total_flops: u64,
    /// Total words sent by this rank.
    pub total_words_sent: u64,
    /// Total messages sent by this rank.
    pub total_msgs_sent: u64,
    /// Peak memory footprint reported via [`Env::note_memory`] (words).
    pub peak_memory: u64,
    /// Number of times this slot died and was replaced.
    pub deaths: u32,
    /// Failure-detection counters (see [`DetectStats`]).
    pub detect: DetectStats,
    /// Memory-limit violations (empty when within limit / no limit set).
    pub memory_violations: Vec<String>,
}

/// Outcome of a whole machine run.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank program return values, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank cost reports, indexed by rank.
    pub ranks: Vec<RankReport>,
    /// Message/death trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

impl<T> RunReport<T> {
    /// Critical-path cost of the run: join over all ranks.
    #[must_use]
    pub fn critical_path(&self) -> CostVector {
        self.ranks
            .iter()
            .fold(CostVector::zero(), |acc, r| acc.join(&r.cost))
    }

    /// Sum of all arithmetic performed by all ranks (total work).
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.total_flops).sum()
    }

    /// Sum of all words sent by all ranks (total traffic).
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.ranks.iter().map(|r| r.total_words_sent).sum()
    }

    /// Total number of deaths across ranks.
    #[must_use]
    pub fn total_deaths(&self) -> u32 {
        self.ranks.iter().map(|r| r.deaths).sum()
    }

    /// All memory violations across ranks.
    #[must_use]
    pub fn memory_violations(&self) -> Vec<&str> {
        self.ranks
            .iter()
            .flat_map(|r| r.memory_violations.iter().map(String::as_str))
            .collect()
    }

    /// Maximum peak memory over ranks (words).
    #[must_use]
    pub fn peak_memory(&self) -> u64 {
        self.ranks.iter().map(|r| r.peak_memory).max().unwrap_or(0)
    }

    /// Run-level failure-detection totals (verdict counters are recorded
    /// once per round by the monitor, so the fold does not double count).
    #[must_use]
    pub fn detect_totals(&self) -> DetectStats {
        let mut total = DetectStats::default();
        for r in &self.ranks {
            total.merge(&r.detect);
        }
        total
    }
}

/// The per-rank execution environment handed to the SPMD program.
pub struct Env<'a> {
    rank: usize,
    size: usize,
    config: &'a MachineConfig,
    senders: &'a [Sender<Message>],
    receiver: Receiver<Message>,
    pending: RefCell<HashMap<MatchKey, VecDeque<Message>>>,
    cost: Cell<CostVector>,
    raw: Cell<RawTotals>,
    ops_base: Cell<u64>,
    incarnation: Cell<u32>,
    slow_factor: Cell<u64>,
    fault_counts: RefCell<HashMap<String, u32>>,
    /// Heartbeats this slot *should* have posted by now: one per fault
    /// point passed, monotone across deaths. In the SPMD model the
    /// replacement processor resumes the same program, so it knows its
    /// phase stamp even though it lost all data.
    hb_total: Cell<u64>,
    /// Heartbeats actually surviving since this incarnation's birth —
    /// reset to zero on death (the posted watermark dies with the state).
    /// `hb_total - hb_live` is the rank's heartbeat lag.
    hb_live: Cell<u64>,
    detect: Cell<DetectStats>,
    /// Remaining-budget counter for random faults, shared by all ranks.
    random_used: &'a AtomicU32,
    trace: Option<&'a Mutex<Vec<TraceEvent>>>,
    peak_memory: Cell<u64>,
    memory_violations: RefCell<Vec<String>>,
}

impl<'a> Env<'a> {
    /// This processor's rank in `0..size`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of processor slots.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The configured memory limit, if any.
    #[must_use]
    pub fn memory_limit(&self) -> Option<u64> {
        self.config.memory_limit
    }

    /// Fold freshly performed `ft-bigint` word operations into the cost
    /// vector. Called automatically at every communication and fault point.
    fn sync_flops(&self) {
        let now = metrics::ops_performed();
        let delta = now.wrapping_sub(self.ops_base.get());
        self.ops_base.set(now);
        if delta > 0 {
            let mut c = self.cost.get();
            c.f += delta * self.slow_factor.get();
            self.cost.set(c);
            let mut r = self.raw.get();
            r.flops += delta;
            self.raw.set(r);
        }
    }

    /// This rank's delay factor (1 = healthy).
    #[must_use]
    pub fn slow_factor(&self) -> u64 {
        self.slow_factor.get()
    }

    /// Charge extra arithmetic not performed through `ft-bigint` (e.g.
    /// index arithmetic an implementation chooses to count).
    pub fn charge_flops(&self, n: u64) {
        let mut c = self.cost.get();
        c.f += n;
        self.cost.set(c);
        let mut r = self.raw.get();
        r.flops += n;
        self.raw.set(r);
    }

    /// Current critical-path cost vector of this rank.
    #[must_use]
    pub fn cost(&self) -> CostVector {
        self.sync_flops();
        self.cost.get()
    }

    /// Send `payload` to rank `to` with the given tag. Charges one message
    /// and the payload's word count to this rank's cost vector.
    pub fn send(&self, to: usize, tag: u64, payload: &[BigInt]) {
        assert!(to < self.size, "send to rank {to} out of range");
        self.sync_flops();
        let words = Message::word_count(payload);
        let mut c = self.cost.get();
        c.bw += words;
        c.l += 1;
        self.cost.set(c);
        let mut r = self.raw.get();
        r.words_sent += words;
        r.msgs_sent += 1;
        self.raw.set(r);
        if let Some(tr) = self.trace {
            tr.lock().push(TraceEvent::Send {
                src: self.rank,
                dst: to,
                tag,
                words,
            });
        }
        self.senders[to]
            .send(Message {
                src: self.rank,
                tag,
                payload: payload.to_vec(),
                cost: c,
                incarnation: self.incarnation.get(),
            })
            .expect("machine channel closed");
    }

    /// Blocking receive of the next message from `from` with tag `tag`.
    /// Max-joins the sender's cost vector into this rank's.
    #[must_use]
    pub fn recv(&self, from: usize, tag: u64) -> Vec<BigInt> {
        self.sync_flops();
        let key: MatchKey = (from, tag);
        let msg = loop {
            if let Some(m) = self
                .pending
                .borrow_mut()
                .get_mut(&key)
                .and_then(VecDeque::pop_front)
            {
                break m;
            }
            let m = self.receiver.recv().expect("machine channel closed");
            if (m.src, m.tag) == key {
                break m;
            }
            self.pending
                .borrow_mut()
                .entry((m.src, m.tag))
                .or_default()
                .push_back(m);
        };
        self.cost.set(self.cost.get().join(&msg.cost));
        msg.payload
    }

    /// A named fault point. If the plan kills this rank here, the slot
    /// "dies": pending messages are purged (data loss) and the call returns
    /// [`Fate::Reborn`] — the program must discard local state and run its
    /// recovery path as the replacement processor.
    pub fn fault_point(&self, label: &str) -> Fate {
        self.sync_flops();
        let occurrence = {
            let mut counts = self.fault_counts.borrow_mut();
            let c = counts.entry(label.to_string()).or_insert(0);
            let cur = *c;
            *c += 1;
            cur
        };
        // Every fault point posts one heartbeat: the phase stamp advances
        // unconditionally, the surviving watermark only while alive.
        self.hb_total.set(self.hb_total.get() + 1);
        self.hb_live.set(self.hb_live.get() + 1);
        let planned = self.config.faults.matches(self.rank, label, occurrence);
        let dies = planned
            || self.config.random.as_ref().is_some_and(|rf| {
                rf.allows(label)
                    && rf.fires(self.rank, label, occurrence)
                    && take_budget(self.random_used, rf.max_faults)
            });
        if dies {
            // Hard fault: all local *state* is lost (the program must
            // discard its variables). The channel is slot-addressed
            // middleware: messages sent to this slot — including ones sent
            // by ranks that raced ahead of the failure — are delivered to
            // the replacement processor, which the recovery protocol
            // brings to the state where it consumes them correctly.
            self.incarnation.set(self.incarnation.get() + 1);
            // The posted watermark dies with the state: the replacement
            // starts at zero, so its heartbeat lag is visible to the
            // detector until the recovery protocol re-integrates it.
            self.hb_live.set(0);
            if let Some(tr) = self.trace {
                tr.lock().push(TraceEvent::Death {
                    rank: self.rank,
                    label: label.to_string(),
                    incarnation: self.incarnation.get(),
                });
            }
            Fate::Reborn
        } else {
            Fate::Alive
        }
    }

    /// Post `n` extra heartbeats while alive: both the phase stamp and
    /// the surviving watermark advance. Models a denser heartbeat
    /// schedule (`DetectorConfig::heartbeat_period`): a program that
    /// posts `h − 1` extra heartbeats just before each fault point makes
    /// a death there cost `h` missed heartbeats of lag, so deadline
    /// budgets up to `h` still detect it at the next round. Heartbeats
    /// are local state — posting them moves no messages; only the
    /// detection round's gather/scatter is charged traffic.
    pub fn post_heartbeats(&self, n: u64) {
        self.hb_total.set(self.hb_total.get() + n);
        self.hb_live.set(self.hb_live.get() + n);
    }

    /// This rank's heartbeat counters: `(phase stamp, surviving
    /// watermark)`. A healthy or fully re-integrated rank has equal
    /// counters; the difference is its heartbeat lag.
    #[must_use]
    pub fn heartbeat(&self) -> (u64, u64) {
        (self.hb_total.get(), self.hb_live.get())
    }

    /// Mark this rank's state consistent again: the recovery protocol has
    /// re-filled the replacement processor (or the rank was never behind),
    /// so its watermark catches up to the phase stamp.
    pub fn ack_recovery(&self) {
        self.hb_live.set(self.hb_total.get());
    }

    /// How many times this slot has died so far.
    #[must_use]
    pub fn deaths_so_far(&self) -> u32 {
        self.incarnation.get()
    }

    /// Fold detection counters into this rank's report.
    pub(crate) fn note_detect(&self, delta: &DetectStats) {
        let mut d = self.detect.get();
        d.merge(delta);
        self.detect.set(d);
    }

    /// Report this rank's current live data footprint in words. Tracks the
    /// peak and records a violation if the configured limit is exceeded.
    pub fn note_memory(&self, words: u64) {
        if words > self.peak_memory.get() {
            self.peak_memory.set(words);
        }
        if let Some(limit) = self.config.memory_limit {
            if words > limit {
                self.memory_violations.borrow_mut().push(format!(
                    "rank {} used {} words (limit {})",
                    self.rank, words, limit
                ));
            }
        }
    }

    fn into_report(self) -> RankReport {
        self.sync_flops();
        let raw = self.raw.get();
        RankReport {
            rank: self.rank,
            cost: self.cost.get(),
            total_flops: raw.flops,
            total_words_sent: raw.words_sent,
            total_msgs_sent: raw.msgs_sent,
            peak_memory: self.peak_memory.get(),
            deaths: self.incarnation.get(),
            detect: self.detect.get(),
            memory_violations: self.memory_violations.into_inner(),
        }
    }
}

/// Claim one unit of the shared random-fault budget; `false` when spent.
fn take_budget(used: &AtomicU32, max_faults: u32) -> bool {
    used.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |u| {
        (u < max_faults).then_some(u + 1)
    })
    .is_ok()
}

/// A simulated machine, ready to run SPMD programs.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Build a machine from a configuration.
    #[must_use]
    pub fn new(config: MachineConfig) -> Machine {
        assert!(
            config.processors > 0,
            "machine needs at least one processor"
        );
        Machine { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Run `program` SPMD on all ranks; one OS thread per rank. Returns
    /// per-rank results and cost reports.
    ///
    /// # Panics
    /// Propagates any rank's panic.
    pub fn run<T: Send>(&self, program: impl Fn(&Env) -> T + Sync) -> RunReport<T> {
        let p = self.config.processors;
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (s, r) = unbounded::<Message>();
            senders.push(s);
            receivers.push(r);
        }
        let trace_store: Option<Mutex<Vec<TraceEvent>>> =
            self.config.trace.then(|| Mutex::new(Vec::new()));
        // Shared budget for random faults, reset per run.
        let random_used = AtomicU32::new(0);

        let mut outcome: Vec<Option<(T, RankReport)>> = (0..p).map(|_| None).collect();
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (receiver, slot)) in receivers.drain(..).zip(outcome.iter_mut()).enumerate()
            {
                let senders = &senders;
                let config = &self.config;
                let trace = trace_store.as_ref();
                let program = &program;
                let random_used = &random_used;
                handles.push(scope.spawn(move |_| {
                    let env = Env {
                        rank,
                        size: p,
                        config,
                        senders,
                        receiver,
                        pending: RefCell::new(HashMap::new()),
                        cost: Cell::new(CostVector::zero()),
                        raw: Cell::new(RawTotals::default()),
                        ops_base: Cell::new(metrics::ops_performed()),
                        incarnation: Cell::new(0),
                        slow_factor: Cell::new(
                            config
                                .slowdowns
                                .iter()
                                .find(|(r, _)| *r == rank)
                                .map_or(1, |(_, f)| (*f).max(1)),
                        ),
                        fault_counts: RefCell::new(HashMap::new()),
                        hb_total: Cell::new(0),
                        hb_live: Cell::new(0),
                        detect: Cell::new(DetectStats::default()),
                        random_used,
                        trace,
                        peak_memory: Cell::new(0),
                        memory_violations: RefCell::new(Vec::new()),
                    };
                    let result = program(&env);
                    *slot = Some((result, env.into_report()));
                }));
            }
            // Preserve the first panic payload so a host (or a supervising
            // service layer) sees the original message, not a join error.
            for h in handles {
                if let Err(payload) = h.join() {
                    panic_payload.get_or_insert(payload);
                }
            }
        })
        .expect("machine scope failed");
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }

        let mut results = Vec::with_capacity(p);
        let mut ranks = Vec::with_capacity(p);
        for slot in outcome {
            let (r, rep) = slot.expect("rank produced no result");
            results.push(r);
            ranks.push(rep);
        }
        RunReport {
            results,
            ranks,
            trace: trace_store.map(Mutex::into_inner).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_costs() {
        let machine = Machine::new(MachineConfig::new(2));
        let report = machine.run(|env| {
            if env.rank() == 0 {
                env.send(1, 7, &[BigInt::from(u128::MAX)]); // 2 words
                u64::try_from(&env.recv(1, 8)[0]).unwrap()
            } else {
                let v = env.recv(0, 7);
                env.send(0, 8, &[BigInt::from(42u64)]);
                u64::try_from(&v[0]).is_ok() as u64
            }
        });
        assert_eq!(report.results[0], 42);
        let cp = report.critical_path();
        assert_eq!(cp.l, 2, "two messages on the critical path");
        assert_eq!(cp.bw, 3, "2 + 1 words");
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let machine = Machine::new(MachineConfig::new(2));
        let report = machine.run(|env| {
            if env.rank() == 0 {
                env.send(1, 1, &[BigInt::from(10u64)]);
                env.send(1, 2, &[BigInt::from(20u64)]);
                0
            } else {
                // Receive in reverse tag order.
                let b = u64::try_from(&env.recv(0, 2)[0]).unwrap();
                let a = u64::try_from(&env.recv(0, 1)[0]).unwrap();
                a * 100 + b
            }
        });
        assert_eq!(report.results[1], 1020);
    }

    #[test]
    fn flops_are_metered_per_rank() {
        let machine = Machine::new(MachineConfig::new(3));
        let report = machine.run(|env| {
            if env.rank() == 1 {
                // ~rank-1-only work: a big schoolbook multiply.
                let a = BigInt::from(u64::MAX).pow(20);
                let _ = a.mul_schoolbook(&a);
            }
        });
        assert!(report.ranks[1].total_flops > 100);
        assert_eq!(report.ranks[0].total_flops, 0);
        assert_eq!(report.ranks[2].total_flops, 0);
        assert_eq!(report.critical_path().f, report.ranks[1].total_flops);
    }

    #[test]
    fn critical_path_joins_across_ranks() {
        // Rank 0 computes then sends to 1; rank 1's cost must include 0's.
        let machine = Machine::new(MachineConfig::new(2));
        let report = machine.run(|env| {
            if env.rank() == 0 {
                let a = BigInt::from(u64::MAX).pow(10);
                let _ = a.mul_schoolbook(&a);
                env.send(1, 0, &[BigInt::one()]);
            } else {
                let _ = env.recv(0, 0);
            }
        });
        assert!(report.ranks[1].cost.f >= report.ranks[0].cost.f);
        assert_eq!(report.ranks[1].total_flops, 0, "rank 1 did no local work");
    }

    #[test]
    fn fault_point_kills_and_reborn() {
        let plan = FaultPlan::none().kill(1, "phase-a");
        let machine = Machine::new(MachineConfig::new(3).with_faults(plan).with_trace());
        let report = machine.run(|env| match env.fault_point("phase-a") {
            Fate::Alive => "alive",
            Fate::Reborn => "reborn",
        });
        assert_eq!(report.results, vec!["alive", "reborn", "alive"]);
        assert_eq!(report.ranks[1].deaths, 1);
        assert_eq!(report.total_deaths(), 1);
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Death { rank: 1, .. })));
    }

    #[test]
    fn fault_occurrence_selects_passage() {
        let plan = FaultPlan::none().kill_at(0, "loop", 2);
        let machine = Machine::new(MachineConfig::new(1).with_faults(plan));
        let report = machine.run(|env| {
            let mut deaths = Vec::new();
            for i in 0..4 {
                if env.fault_point("loop") == Fate::Reborn {
                    deaths.push(i);
                }
            }
            deaths
        });
        assert_eq!(report.results[0], vec![2]);
    }

    #[test]
    fn kill_at_fires_on_the_nth_visit_only() {
        // Pins FaultPlan::kill_at occurrence semantics: the fault fires on
        // exactly the N-th passage through its label — never before, never
        // again after — and passage counts are kept per label, so visits
        // to other labels do not advance them.
        let plan = FaultPlan::none().kill_at(0, "target", 1);
        let machine = Machine::new(MachineConfig::new(1).with_faults(plan));
        let report = machine.run(|env| {
            let mut fates = Vec::new();
            for _ in 0..3 {
                // Interleaved visits to another label must not count as
                // "target" passages.
                assert_eq!(env.fault_point("other"), Fate::Alive);
                fates.push(env.fault_point("target"));
            }
            fates
        });
        assert_eq!(
            report.results[0],
            vec![Fate::Alive, Fate::Reborn, Fate::Alive],
            "occurrence 1 means the second visit, once"
        );
        assert_eq!(report.ranks[0].deaths, 1);
    }

    #[test]
    fn messages_survive_slot_replacement() {
        // Channel delivery is slot-addressed: a message sent by a rank
        // that raced ahead of the victim's failure is delivered to the
        // replacement processor, which the recovery protocol brings to the
        // point where it consumes it correctly.
        let plan = FaultPlan::none().kill(1, "mid");
        let machine = Machine::new(MachineConfig::new(2).with_faults(plan));
        let report = machine.run(|env| {
            if env.rank() == 0 {
                env.send(1, 5, &[BigInt::from(99u64)]); // possibly pre-death
                env.fault_point("mid");
                env.send(1, 6, &[BigInt::from(7u64)]); // recovery data
                0
            } else {
                let fate = env.fault_point("mid");
                assert_eq!(fate, Fate::Reborn);
                let recovered = u64::try_from(&env.recv(0, 6)[0]).unwrap();
                let raced = u64::try_from(&env.recv(0, 5)[0]).unwrap();
                recovered * 1000 + raced
            }
        });
        assert_eq!(report.results[1], 7099);
    }

    #[test]
    fn memory_tracking_and_violations() {
        let machine = Machine::new(MachineConfig::new(1).with_memory_limit(10));
        let report = machine.run(|env| {
            env.note_memory(8);
            env.note_memory(12);
            env.note_memory(4);
        });
        assert_eq!(report.peak_memory(), 12);
        assert_eq!(report.memory_violations().len(), 1);
    }

    #[test]
    fn trace_records_sends() {
        let machine = Machine::new(MachineConfig::new(2).with_trace());
        let report = machine.run(|env| {
            if env.rank() == 0 {
                env.send(1, 3, &[BigInt::from(1u64)]);
            } else {
                let _ = env.recv(0, 3);
            }
        });
        assert_eq!(
            report.trace,
            vec![TraceEvent::Send {
                src: 0,
                dst: 1,
                tag: 3,
                words: 1
            }]
        );
    }

    #[test]
    fn plan_injection_queries() {
        // Host-side / test-side introspection of what was injected. The
        // plan is not readable from inside a run (there is no Env
        // accessor): detection must come from the heartbeat layer.
        let plan = FaultPlan::none().kill(3, "x").kill(5, "x").kill(3, "y");
        assert_eq!(plan.victims_at("x"), vec![3, 5]);
        assert_eq!(plan.victims_at("y"), vec![3]);
        assert!(plan.is_victim(5));
        assert!(!plan.is_victim(4));
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn heartbeat_lag_tracks_death_and_recovery() {
        let plan = FaultPlan::none().kill_at(0, "hb", 1);
        let machine = Machine::new(MachineConfig::new(1).with_faults(plan));
        let report = machine.run(|env| {
            assert_eq!(env.fault_point("hb"), Fate::Alive);
            assert_eq!(env.heartbeat(), (1, 1), "healthy: no lag");
            assert_eq!(env.fault_point("hb"), Fate::Reborn);
            assert_eq!(env.heartbeat(), (2, 0), "death wipes the watermark");
            assert_eq!(env.fault_point("hb"), Fate::Alive);
            assert_eq!(env.heartbeat(), (3, 1), "lag persists until recovery");
            env.ack_recovery();
            assert_eq!(env.heartbeat(), (3, 3), "recovery re-integrates");
            env.deaths_so_far()
        });
        assert_eq!(report.results[0], 1);
    }

    #[test]
    fn random_faults_are_deterministic_and_label_gated() {
        let random = RandomFaults {
            seed: 42,
            per_10k: 3_000,
            max_faults: 100,
            labels: vec!["eligible".to_string()],
        };
        let run = || {
            let machine = Machine::new(MachineConfig::new(8).with_random_faults(random.clone()));
            machine.run(|env| {
                let mut deaths = 0u32;
                for _ in 0..16 {
                    if env.fault_point("eligible") == Fate::Reborn {
                        deaths += 1;
                    }
                    // Never on the allowlist: must never kill.
                    assert_eq!(env.fault_point("ineligible"), Fate::Alive);
                }
                deaths
            })
        };
        let first = run();
        let second = run();
        assert_eq!(first.results, second.results, "same seed, same deaths");
        let total = first.total_deaths();
        assert!(total > 0, "3000/10k over 128 draws should fire");
        assert!(total < 128, "and not fire every time");
    }

    #[test]
    fn random_fault_budget_caps_total_deaths() {
        let random = RandomFaults {
            seed: 7,
            per_10k: 10_000, // every eligible passage wants to kill
            max_faults: 3,
            labels: vec!["hot".to_string()],
        };
        let machine = Machine::new(MachineConfig::new(4).with_random_faults(random));
        let report = machine.run(|env| {
            let mut deaths = 0u32;
            for _ in 0..10 {
                if env.fault_point("hot") == Fate::Reborn {
                    deaths += 1;
                }
            }
            deaths
        });
        assert_eq!(report.total_deaths(), 3, "budget is global across ranks");
    }
}
