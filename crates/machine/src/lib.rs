//! # ft-machine — a simulated distributed-memory parallel machine
//!
//! The paper's model (§2.1): `P` identical processors, each with local
//! memory of `M` words, connected by a peer-to-peer network; costs are
//! `F` (word-level arithmetic operations), `BW` (words moved), and `L`
//! (messages), all **counted along the critical path**, with total run time
//! modeled as `C = α·L + β·BW + γ·F`.
//!
//! This crate realizes that model as an executable machine:
//!
//! - **SPMD execution** — every simulated processor runs the same program
//!   closure on its own OS thread (like an MPI rank) with blocking
//!   point-to-point sends/receives ([`Env::send`] / [`Env::recv`]).
//! - **Cost accounting** — each rank carries a [`CostVector`]; arithmetic
//!   is metered automatically through `ft-bigint`'s thread-local counter,
//!   sends add words/messages, and receives max-join the sender's vector,
//!   so per-metric critical-path totals fall out of the run (Yang–Miller
//!   critical-path counting, the paper's ref. 81).
//! - **Hard faults** — a [`FaultPlan`] kills a chosen rank at a chosen
//!   [`Env::fault_point`]; the dead rank loses all state (its pending
//!   messages are purged) and its thread continues as the *replacement*
//!   processor, which must be re-filled by the algorithm's recovery
//!   protocol. This matches §2.1: "the affected processor ceases operation,
//!   loses its data, and is subsequently replaced by an alternative
//!   processor". The plan is injection-only; [`RandomFaults`] adds
//!   *unplanned* seeded-random deaths at allowlisted fault points.
//! - **Failure detection** — every fault point posts a phase-stamped
//!   heartbeat; [`detect::detection_round`] gathers per-rank watermarks
//!   through ordinary messages (charged to `BW`/`L` like everything else)
//!   and declares ranks dead after a missed-deadline budget, flagging
//!   delay-faulted ranks as stragglers. Survivors never read the plan —
//!   the paper's "detected fail-stop" assumption is implemented, not
//!   assumed.
//! - **Collectives** — broadcast / reduce / all-reduce / all-gather built
//!   from point-to-point messages with bandwidth-optimal algorithms
//!   (ring reduce-scatter/all-gather), plus the `t`-reduce of Lemma 2.5
//!   (implemented as sequential reduces; see DESIGN.md for the latency
//!   caveat).
//! - **Grid topology** — the `(P/(2k−1)) × (2k−1)` processor grid of §3
//!   with per-BFS-step row/column groups derived from base-(2k−1) digit
//!   strings.

pub mod collectives;
pub mod cost;
pub mod detect;
pub mod env;
pub mod grid;
pub mod message;
pub mod stats;
pub mod trace;

pub use cost::{CostParams, CostVector};
pub use detect::{detection_round, DetectorConfig, RankStatus, Verdict};
pub use env::{
    DetectStats, Env, Fate, FaultPlan, FaultSpec, Machine, MachineConfig, RandomFaults, RankReport,
    RunReport,
};
pub use grid::ToomGrid;
pub use stats::TraceStats;
pub use trace::TraceEvent;
