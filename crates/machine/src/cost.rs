//! Cost vectors and the `C = α·L + β·BW + γ·F` run-time model (§2.1).

use serde::{Deserialize, Serialize};

/// Per-metric critical-path counters.
///
/// Each rank carries one of these; local arithmetic adds to `f`, each sent
/// word adds to `bw`, each message adds to `l`, and a receive max-joins the
/// sender's vector into the receiver's. At the end of a run, the maximum
/// over ranks is the critical-path cost of the whole computation, per
/// metric — exactly how the paper counts `F`, `BW`, and `L`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostVector {
    /// Word-level arithmetic operations.
    pub f: u64,
    /// Words communicated.
    pub bw: u64,
    /// Messages (latency units).
    pub l: u64,
}

impl CostVector {
    /// The zero cost.
    #[must_use]
    pub fn zero() -> CostVector {
        CostVector::default()
    }

    /// Componentwise sum.
    #[must_use]
    pub fn plus(&self, other: &CostVector) -> CostVector {
        CostVector {
            f: self.f + other.f,
            bw: self.bw + other.bw,
            l: self.l + other.l,
        }
    }

    /// Componentwise max — the join rule at message receipt. Per-metric
    /// critical paths are tracked independently, matching the paper's
    /// separate `F`/`BW`/`L` accounting.
    #[must_use]
    pub fn join(&self, other: &CostVector) -> CostVector {
        CostVector {
            f: self.f.max(other.f),
            bw: self.bw.max(other.bw),
            l: self.l.max(other.l),
        }
    }

    /// Model run time `α·L + β·BW + γ·F`.
    #[must_use]
    pub fn time(&self, p: &CostParams) -> f64 {
        p.alpha * self.l as f64 + p.beta * self.bw as f64 + p.gamma * self.f as f64
    }
}

/// Machine cost parameters: `α` latency per message, `β` time per word,
/// `γ` time per arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Latency per message.
    pub alpha: f64,
    /// Transfer time per word.
    pub beta: f64,
    /// Time per word-level arithmetic operation.
    pub gamma: f64,
}

impl Default for CostParams {
    /// A supercomputer-flavoured default: messages are expensive, words
    /// cheaper, flops cheapest (`α ≫ β ≫ γ`).
    fn default() -> CostParams {
        CostParams {
            alpha: 1000.0,
            beta: 1.0,
            gamma: 0.01,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_and_join() {
        let a = CostVector { f: 10, bw: 5, l: 1 };
        let b = CostVector { f: 3, bw: 9, l: 1 };
        assert_eq!(
            a.plus(&b),
            CostVector {
                f: 13,
                bw: 14,
                l: 2
            }
        );
        assert_eq!(a.join(&b), CostVector { f: 10, bw: 9, l: 1 });
    }

    #[test]
    fn time_model() {
        let c = CostVector {
            f: 100,
            bw: 10,
            l: 1,
        };
        let p = CostParams {
            alpha: 5.0,
            beta: 2.0,
            gamma: 0.5,
        };
        assert_eq!(c.time(&p), 5.0 + 20.0 + 50.0);
    }
}
