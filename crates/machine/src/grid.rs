//! The §3 processor grid: `P = (2k−1)^m` processors labelled by
//! `m`-digit strings in base `q = 2k−1`, arranged per BFS step `s` as a
//! `(P/q) × q` grid where the `s`-th digit selects the column and the
//! remaining digits the row.

/// Grid topology helper for BFS-DFS Toom-Cook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToomGrid {
    p: usize,
    q: usize,
    steps: usize,
}

impl ToomGrid {
    /// Create a grid of `p` processors in base `q` (requires `p = q^m`).
    ///
    /// # Panics
    /// Panics if `p` is not a positive power of `q` (or `p != 1` when
    /// allowing the trivial grid) or `q < 2`.
    #[must_use]
    pub fn new(p: usize, q: usize) -> ToomGrid {
        assert!(q >= 2, "grid base must be at least 2");
        assert!(p >= 1);
        let mut steps = 0;
        let mut acc = 1usize;
        while acc < p {
            acc *= q;
            steps += 1;
        }
        assert_eq!(acc, p, "processor count {p} is not a power of {q}");
        ToomGrid { p, q, steps }
    }

    /// Total processors `P`.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.p
    }

    /// Grid base `q = 2k−1`.
    #[must_use]
    pub fn base(&self) -> usize {
        self.q
    }

    /// Number of BFS steps `m = log_q P`.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Digit `i` (0 = most significant, consumed by the first BFS step) of
    /// `rank`'s base-`q` label.
    ///
    /// # Panics
    /// Panics if `i >= steps` or rank out of range.
    #[must_use]
    pub fn digit(&self, rank: usize, i: usize) -> usize {
        assert!(rank < self.p && i < self.steps);
        (rank / self.q.pow((self.steps - 1 - i) as u32)) % self.q
    }

    /// Column index of `rank` at BFS step `s` — the `s`-th digit; this is
    /// the sub-problem index the processor works on in that step.
    #[must_use]
    pub fn column(&self, rank: usize, s: usize) -> usize {
        self.digit(rank, s)
    }

    /// The *row group* of `rank` at step `s`: the `q` processors agreeing
    /// with `rank` on every digit except the `s`-th, ordered by that digit
    /// (so index `j` in the group is the processor assigned sub-problem
    /// `j`). BFS-step communication happens only inside this group.
    #[must_use]
    pub fn row_group(&self, rank: usize, s: usize) -> Vec<usize> {
        assert!(rank < self.p && s < self.steps);
        let stride = self.q.pow((self.steps - 1 - s) as u32);
        let base = rank - self.digit(rank, s) * stride;
        (0..self.q).map(|j| base + j * stride).collect()
    }

    /// The *column group* of `rank` at step `s`: the `P/q` processors with
    /// the same `s`-th digit, in ascending rank order. Linear coding (§4.1)
    /// protects each column with a per-column erasure code.
    #[must_use]
    pub fn col_group(&self, rank: usize, s: usize) -> Vec<usize> {
        let d = self.digit(rank, s);
        (0..self.p).filter(|&r| self.digit(r, s) == d).collect()
    }

    /// Row index of `rank` at step `s` (its position within its column
    /// group), in `0..P/q`.
    #[must_use]
    pub fn row(&self, rank: usize, s: usize) -> usize {
        self.col_group(rank, s)
            .iter()
            .position(|&r| r == rank)
            .expect("rank in own column group")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_steps() {
        let g = ToomGrid::new(27, 3);
        assert_eq!(g.steps(), 3);
        assert_eq!(g.processors(), 27);
        let g = ToomGrid::new(1, 5);
        assert_eq!(g.steps(), 0);
        let g = ToomGrid::new(25, 5);
        assert_eq!(g.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "not a power")]
    fn non_power_rejected() {
        let _ = ToomGrid::new(10, 3);
    }

    #[test]
    fn digits_decompose_rank() {
        let g = ToomGrid::new(27, 3);
        // rank 14 = 112 base 3
        assert_eq!(g.digit(14, 0), 1);
        assert_eq!(g.digit(14, 1), 1);
        assert_eq!(g.digit(14, 2), 2);
    }

    #[test]
    fn row_groups_partition_and_order() {
        let g = ToomGrid::new(9, 3);
        // Step 0: digit 0 varies with stride 3.
        assert_eq!(g.row_group(4, 0), vec![1, 4, 7]);
        // Step 1: digit 1 varies with stride 1.
        assert_eq!(g.row_group(4, 1), vec![3, 4, 5]);
        // Member j of the group has column j.
        for s in 0..2 {
            for rank in 0..9 {
                let grp = g.row_group(rank, s);
                assert!(grp.contains(&rank));
                for (j, &r) in grp.iter().enumerate() {
                    assert_eq!(g.column(r, s), j);
                }
            }
        }
    }

    #[test]
    fn row_groups_are_consistent_across_members() {
        let g = ToomGrid::new(25, 5);
        for s in 0..2 {
            for rank in 0..25 {
                let grp = g.row_group(rank, s);
                for &other in &grp {
                    assert_eq!(g.row_group(other, s), grp, "rank={rank} s={s}");
                }
            }
        }
    }

    #[test]
    fn col_groups_have_p_over_q_members() {
        let g = ToomGrid::new(27, 3);
        for s in 0..3 {
            for rank in 0..27 {
                let col = g.col_group(rank, s);
                assert_eq!(col.len(), 9);
                assert!(col.contains(&rank));
                for &r in &col {
                    assert_eq!(g.digit(r, s), g.digit(rank, s));
                }
            }
        }
    }

    #[test]
    fn rows_and_columns_coordinate() {
        let g = ToomGrid::new(9, 3);
        // At each step every rank is uniquely (row, column)-addressed.
        for s in 0..2 {
            let mut seen = std::collections::HashSet::new();
            for rank in 0..9 {
                assert!(seen.insert((g.row(rank, s), g.column(rank, s))));
            }
        }
    }
}
