//! Message envelopes exchanged between simulated processors.

use crate::cost::CostVector;
use ft_bigint::BigInt;

/// Matching key for receives: `(source rank, tag)`.
pub type MatchKey = (usize, u64);

/// A point-to-point message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Application tag (namespaced by the algorithm layer).
    pub tag: u64,
    /// Payload: a block of big integers. The bandwidth charge is the total
    /// word (limb) count of the payload.
    pub payload: Vec<BigInt>,
    /// Sender's critical-path cost snapshot *after* charging the send.
    pub cost: CostVector,
    /// Sender incarnation (bumped after each death) — lets receivers drop
    /// stale messages from a pre-fault incarnation if protocols ever race.
    pub incarnation: u32,
}

impl Message {
    /// Total words (limbs) in the payload — the `BW` charge for this
    /// message. Zero-limb integers still occupy a word slot (a header word)
    /// so that vectors of zeros are not free to ship.
    #[must_use]
    pub fn word_count(payload: &[BigInt]) -> u64 {
        payload.iter().map(|b| b.word_len().max(1) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_counts_limbs() {
        let payload = vec![
            BigInt::zero(),                   // 1 (header)
            BigInt::from(5u64),               // 1
            BigInt::from(u128::MAX),          // 2
            BigInt::from(1u64).shl_bits(200), // 4
        ];
        assert_eq!(Message::word_count(&payload), 8);
        assert_eq!(Message::word_count(&[]), 0);
    }
}
