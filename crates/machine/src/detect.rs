//! Heartbeat-based failure detection.
//!
//! The paper assumes *detected* fail-stop faults (§2.1): when a processor
//! dies it loses its data and is replaced, and the survivors know. This
//! module earns that assumption instead of oracling it. Every
//! [`Env::fault_point`] posts one heartbeat: the *phase stamp*
//! (`hb_total`) advances with the program — the replacement processor
//! resumes the same SPMD program, so it always knows how many heartbeats
//! it *should* have posted — while the *surviving watermark* (`hb_live`)
//! is state and dies with the state. A rank whose watermark lags its
//! phase stamp by at least the configured deadline budget has missed that
//! many heartbeats since its last re-integration and is declared dead.
//!
//! Detection runs as an explicit round on a participant set: the
//! lowest-ranked participant acts as *monitor*, gathers one status word
//! per peer, rebroadcasts the full table, and every participant derives
//! the same [`Verdict`] from identical data (so the round needs no
//! consensus beyond the gather/scatter itself). All status traffic moves
//! through [`Env::send`]/[`Env::recv`] and is charged to the same `BW`/`L`
//! accounting as the algorithm's own messages — the cost of detection is
//! part of the `(1+o(1))` overhead story, not outside it. If the monitor
//! itself is dead, its replacement processor runs the same round (it lost
//! data, not its program), so the round always completes.
//!
//! Delay faults surface in the same table: each status carries the rank's
//! critical-path clock, and ranks whose clock exceeds
//! `straggler_factor ×` the median are flagged as stragglers. The caller
//! decides what to do with them (the polynomial-code layer drops
//! straggler columns while redundancy allows).

use crate::cost::CostVector;
use crate::env::{DetectStats, Env};
use ft_bigint::BigInt;

/// Tuning knobs for a detection round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Heartbeats a rank may miss before it is declared dead. The
    /// minimum (and default) of 1 detects every hard fault at the next
    /// round; larger budgets model lazier deadlines that can miss a
    /// fresh death entirely.
    pub deadline_budget: u64,
    /// A rank whose critical-path clock exceeds `straggler_factor ×` the
    /// participant median is flagged as a straggler. `0` disables
    /// straggler detection.
    pub straggler_factor: u64,
    /// Heartbeats posted per fault point (density of the heartbeat
    /// schedule). The default of 1 posts exactly one heartbeat at each
    /// fault point, which caps the usable `deadline_budget` at the fault
    /// points between detection rounds (the EXPERIMENTS.md S7 cadence
    /// cliff). A period of `h` posts `h − 1` extra heartbeats while the
    /// rank is still alive just before each fault point, so a victim
    /// dies with lag `h` and every budget `≤ h` still detects it —
    /// denser schedules widen the usable budget band without changing
    /// the protocol's message pattern (heartbeats are local state; only
    /// the detection round moves them).
    pub heartbeat_period: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            deadline_budget: 1,
            straggler_factor: 0,
            heartbeat_period: 1,
        }
    }
}

/// One participant's status word as gathered by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankStatus {
    /// The reporting rank.
    pub rank: usize,
    /// How many times the slot has died (0 = original processor).
    pub incarnation: u32,
    /// Phase stamp: heartbeats the rank should have posted by now.
    pub hb_total: u64,
    /// Surviving watermark: heartbeats posted since this incarnation's
    /// birth (or last recovery acknowledgement).
    pub hb_live: u64,
    /// The rank's critical-path clock in simulated ticks (`C = α·L +
    /// β·BW + γ·F` under the machine's cost parameters).
    pub clock: u64,
}

impl RankStatus {
    /// Missed heartbeats: how far the watermark lags the phase stamp.
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.hb_total - self.hb_live.min(self.hb_total)
    }
}

/// The outcome of one detection round, identical on every participant.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Status table in participant order.
    pub statuses: Vec<RankStatus>,
    /// Ranks declared dead (lag ≥ deadline budget), ascending.
    pub dead: Vec<usize>,
    /// Ranks flagged as delay-faulted stragglers, ascending (never
    /// overlaps `dead`).
    pub stragglers: Vec<usize>,
    /// Worst lag among the dead (the detection latency of the slowest
    /// declaration, in heartbeats).
    pub max_missed: u64,
}

impl Verdict {
    /// `true` iff the round declared `rank` dead.
    #[must_use]
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.contains(&rank)
    }

    /// `true` iff the round flagged `rank` as a straggler.
    #[must_use]
    pub fn is_straggler(&self, rank: usize) -> bool {
        self.stragglers.contains(&rank)
    }
}

/// Derive the round's verdict from a gathered status table. Pure: every
/// participant calls this on the same table and reaches the same verdict.
#[must_use]
pub fn verdict_from(statuses: Vec<RankStatus>, cfg: &DetectorConfig) -> Verdict {
    let budget = cfg.deadline_budget.max(1);
    let mut dead: Vec<usize> = statuses
        .iter()
        .filter(|s| s.lag() >= budget)
        .map(|s| s.rank)
        .collect();
    dead.sort_unstable();
    let max_missed = statuses
        .iter()
        .filter(|s| dead.contains(&s.rank))
        .map(RankStatus::lag)
        .max()
        .unwrap_or(0);
    let mut stragglers = Vec::new();
    if cfg.straggler_factor >= 1 && statuses.len() >= 2 {
        let mut clocks: Vec<u64> = statuses.iter().map(|s| s.clock).collect();
        clocks.sort_unstable();
        let median = clocks[clocks.len() / 2].max(1);
        stragglers = statuses
            .iter()
            .filter(|s| !dead.contains(&s.rank))
            .filter(|s| s.clock / median >= cfg.straggler_factor.max(2))
            .map(|s| s.rank)
            .collect();
        stragglers.sort_unstable();
    }
    Verdict {
        statuses,
        dead,
        stragglers,
        max_missed,
    }
}

const STATUS_WORDS: usize = 5;

fn encode_status(s: &RankStatus, out: &mut Vec<BigInt>) {
    out.push(BigInt::from(s.rank as u64));
    out.push(BigInt::from(u64::from(s.incarnation)));
    out.push(BigInt::from(s.hb_total));
    out.push(BigInt::from(s.hb_live));
    out.push(BigInt::from(s.clock));
}

fn decode_u64(v: &BigInt) -> u64 {
    u64::try_from(v).expect("detection status word out of range")
}

fn decode_statuses(payload: &[BigInt]) -> Vec<RankStatus> {
    assert_eq!(payload.len() % STATUS_WORDS, 0, "ragged status table");
    payload
        .chunks_exact(STATUS_WORDS)
        .map(|c| RankStatus {
            rank: usize::try_from(decode_u64(&c[0])).expect("rank fits usize"),
            incarnation: u32::try_from(decode_u64(&c[1])).expect("incarnation fits u32"),
            hb_total: decode_u64(&c[2]),
            hb_live: decode_u64(&c[3]),
            clock: decode_u64(&c[4]),
        })
        .collect()
}

fn own_status(env: &Env) -> RankStatus {
    let (hb_total, hb_live) = env.heartbeat();
    let cost = env.cost();
    RankStatus {
        rank: env.rank(),
        incarnation: env.deaths_so_far(),
        hb_total,
        hb_live,
        clock: clock_ticks(&cost),
    }
}

/// The scalar critical-path clock used for straggler comparison.
fn clock_ticks(cost: &CostVector) -> u64 {
    // Straggler detection compares *relative* progress, so the unweighted
    // flop clock suffices: delay faults multiply exactly this component.
    cost.f
}

/// Run one detection round among `participants` (must be sorted,
/// duplicate-free, and contain the calling rank). `tag` and `tag + 1`
/// carry the gather and the table broadcast; the caller must keep them
/// unique per round within its protocol. Returns the verdict, identical
/// on every participant.
///
/// The round does **not** acknowledge recovery: after the caller's
/// recovery protocol has re-filled a declared-dead rank, that rank (and
/// only then) should call [`Env::ack_recovery`] so later rounds see it as
/// healthy. A rank left unrecovered keeps its lag and stays dead in every
/// subsequent verdict — which is exactly what, e.g., a stale code row
/// needs.
///
/// # Panics
/// Panics if the calling rank is not in `participants`.
#[must_use]
pub fn detection_round(
    env: &Env,
    participants: &[usize],
    tag: u64,
    cfg: &DetectorConfig,
) -> Verdict {
    debug_assert!(participants.windows(2).all(|w| w[0] < w[1]));
    let me = env.rank();
    assert!(
        participants.contains(&me),
        "rank {me} ran a detection round it is not part of"
    );
    let monitor = participants[0];
    let statuses = if me == monitor {
        let mut statuses = Vec::with_capacity(participants.len());
        for &peer in participants {
            if peer == me {
                statuses.push(own_status(env));
            } else {
                statuses.push(
                    decode_statuses(&env.recv(peer, tag))
                        .pop()
                        .expect("one status per gather message"),
                );
            }
        }
        let mut table = Vec::with_capacity(statuses.len() * STATUS_WORDS);
        for s in &statuses {
            encode_status(s, &mut table);
        }
        for &peer in participants {
            if peer != me {
                env.send(peer, tag + 1, &table);
            }
        }
        statuses
    } else {
        let mut payload = Vec::with_capacity(STATUS_WORDS);
        encode_status(&own_status(env), &mut payload);
        env.send(monitor, tag, &payload);
        decode_statuses(&env.recv(monitor, tag + 1))
    };
    let verdict = verdict_from(statuses, cfg);
    let mut delta = DetectStats {
        rounds: 1,
        ..DetectStats::default()
    };
    if me == monitor {
        // Verdict-level counters are recorded once per round (by the
        // monitor) so run-level sums do not multiply by the group size.
        delta.dead_declared = verdict.dead.len() as u64;
        delta.stragglers_flagged = verdict.stragglers.len() as u64;
        delta.false_positives = verdict
            .statuses
            .iter()
            .filter(|s| verdict.is_dead(s.rank) && s.incarnation == 0)
            .count() as u64;
        delta.max_missed = verdict.max_missed;
    }
    env.note_detect(&delta);
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{FaultPlan, Machine, MachineConfig};
    use ft_bigint::BigInt;

    fn round_on(plan: FaultPlan, p: usize, cfg: DetectorConfig) -> crate::env::RunReport<Verdict> {
        let machine = Machine::new(MachineConfig::new(p).with_faults(plan));
        let participants: Vec<usize> = (0..p).collect();
        machine.run(move |env| {
            let _ = env.fault_point("work");
            detection_round(env, &participants, 900_000, &cfg)
        })
    }

    #[test]
    fn clean_round_declares_nobody() {
        let report = round_on(FaultPlan::none(), 4, DetectorConfig::default());
        for verdict in &report.results {
            assert!(verdict.dead.is_empty());
            assert!(verdict.stragglers.is_empty());
            assert_eq!(verdict.max_missed, 0);
        }
        let totals = report.detect_totals();
        assert_eq!(totals.rounds, 4, "each participant counts its round");
        assert_eq!(totals.dead_declared, 0);
        assert_eq!(totals.false_positives, 0);
    }

    #[test]
    fn dead_rank_is_declared_by_every_participant() {
        let report = round_on(
            FaultPlan::none().kill(2, "work"),
            4,
            DetectorConfig::default(),
        );
        for (rank, verdict) in report.results.iter().enumerate() {
            assert_eq!(verdict.dead, vec![2], "rank {rank} agrees");
            assert_eq!(verdict.max_missed, 1);
        }
        let totals = report.detect_totals();
        assert_eq!(totals.dead_declared, 1, "counted once, by the monitor");
        assert_eq!(totals.false_positives, 0, "rank 2 really died");
        assert_eq!(totals.max_missed, 1);
    }

    #[test]
    fn dead_monitor_round_still_completes() {
        // The monitor slot dies right before the round; its replacement
        // runs the gather and the whole group still converges.
        let report = round_on(
            FaultPlan::none().kill(0, "work"),
            3,
            DetectorConfig::default(),
        );
        for verdict in &report.results {
            assert_eq!(verdict.dead, vec![0]);
        }
    }

    #[test]
    fn lax_deadline_budget_misses_a_fresh_death() {
        // With budget 3, a rank that just died (lag 1) is NOT declared:
        // the deadline semantics are real, not decorative.
        let report = round_on(
            FaultPlan::none().kill(1, "work"),
            3,
            DetectorConfig {
                deadline_budget: 3,
                ..DetectorConfig::default()
            },
        );
        for verdict in &report.results {
            assert!(verdict.dead.is_empty(), "lag 1 < budget 3");
        }
    }

    #[test]
    fn denser_heartbeat_schedule_outruns_a_lax_budget() {
        // Same lax budget as above, but the program posts 3 heartbeats
        // per fault point (period 3): the victim dies with lag 3, so
        // budget 3 now detects the death the single-beat schedule missed.
        let cfg = DetectorConfig {
            deadline_budget: 3,
            straggler_factor: 0,
            heartbeat_period: 3,
        };
        let machine =
            Machine::new(MachineConfig::new(3).with_faults(FaultPlan::none().kill(1, "work")));
        let participants: Vec<usize> = (0..3).collect();
        let report = machine.run(move |env| {
            env.post_heartbeats(cfg.heartbeat_period - 1);
            let _ = env.fault_point("work");
            detection_round(env, &participants, 900_000, &cfg)
        });
        for verdict in &report.results {
            assert_eq!(verdict.dead, vec![1], "lag 3 >= budget 3");
            assert_eq!(verdict.max_missed, 3);
        }
    }

    #[test]
    fn unrecovered_rank_stays_dead_in_later_rounds() {
        let machine =
            Machine::new(MachineConfig::new(3).with_faults(FaultPlan::none().kill(1, "w")));
        let participants = [0usize, 1, 2];
        let report = machine.run(|env| {
            let _ = env.fault_point("w");
            let v1 = detection_round(env, &participants, 900_000, &DetectorConfig::default());
            let _ = env.fault_point("w"); // nobody dies here
            let v2 = detection_round(env, &participants, 900_100, &DetectorConfig::default());
            // Now recovery acknowledges; the third round is clean.
            if v2.is_dead(env.rank()) {
                env.ack_recovery();
            }
            let v3 = detection_round(env, &participants, 900_200, &DetectorConfig::default());
            (v1.dead, v2.dead, v3.dead)
        });
        for (d1, d2, d3) in &report.results {
            assert_eq!(*d1, vec![1]);
            assert_eq!(*d2, vec![1], "no ack, still dead");
            assert!(d3.is_empty(), "acked, healthy again");
        }
    }

    #[test]
    fn straggler_clock_is_flagged_not_killed() {
        let machine = Machine::new(MachineConfig::new(4).with_slowdown(3, 64));
        let participants = [0usize, 1, 2, 3];
        let report = machine.run(|env| {
            // Equal real work on every rank; rank 3's clock runs 64×.
            let a = BigInt::from(u64::MAX).pow(8);
            let _ = a.mul_schoolbook(&a);
            let _ = env.fault_point("w");
            detection_round(
                env,
                &participants,
                900_000,
                &DetectorConfig {
                    deadline_budget: 1,
                    straggler_factor: 8,
                    heartbeat_period: 1,
                },
            )
        });
        for verdict in &report.results {
            assert!(verdict.dead.is_empty(), "a slow rank is not a dead rank");
            assert_eq!(verdict.stragglers, vec![3]);
        }
        assert_eq!(report.detect_totals().stragglers_flagged, 1);
    }

    #[test]
    fn detection_traffic_is_charged_to_the_cost_model() {
        let before = Machine::new(MachineConfig::new(4)).run(|env| {
            let _ = env.fault_point("w");
        });
        let after = round_on(FaultPlan::none(), 4, DetectorConfig::default());
        let cp_before = before.critical_path();
        let cp_after = after.critical_path();
        assert!(
            cp_after.l >= cp_before.l + 2,
            "gather + broadcast are real messages"
        );
        assert!(cp_after.bw > cp_before.bw, "status words are real traffic");
    }
}
