//! Worker supervision: catch panics, verify products, retry with
//! exponential backoff + jitter, and degrade kernels through per-kernel
//! circuit breakers.
//!
//! Failure handling mirrors the paper's two fault classes: a panicking or
//! straggling kernel is a *hard/delay* fault (caught by `catch_unwind` or
//! absorbed by retry), a corrupted product is a *soft* fault (caught by
//! the verification ladder `residue → dual-algorithm → recompute`; see
//! [`crate::verify`]). Either way the request is retried — first on the
//! same kernel with backoff, then down the degradation ladder parallel
//! Toom → sequential Toom → schoolbook. A kernel that keeps failing trips
//! its circuit breaker, so later requests skip it up front instead of
//! paying the failure again; recompute-confirmed corruptions charge the
//! same breaker, so a kernel that keeps miscalculating trips it too.

use crate::chaos::{ChaosConfig, FaultKind, INJECTED_PANIC_MSG};
use crate::config::ConfigError;
use crate::distributed::DistributedBackend;
use crate::error::MulError;
use crate::json::{obj, Json};
use crate::kernel::Kernel;
use crate::metrics::Metrics;
use crate::plan_cache::PlanCache;
use crate::verify::VerifyPolicy;
use ft_bigint::BigInt;
use ft_toom_core::{rayon_engine, residue, seq, ToomPlan};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-request retry policy: attempts and exponential backoff bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Same-kernel retries after the first attempt fails (the degradation
    /// ladder can add up to two more attempts after these are exhausted).
    pub max_retries: u32,
    /// Backoff before retry `i` is `base · 2^i` ms, capped below.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff, ms.
    pub backoff_max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_max_ms: 64,
        }
    }
}

/// Per-kernel circuit-breaker policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker diverts traffic before allowing a
    /// half-open probe, ms.
    pub open_ms: u64,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 5,
            open_ms: 250,
        }
    }
}

fn policy_u64(json: &Json, prefix: &str, key: &str, default: u64) -> Result<u64, ConfigError> {
    match json.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            ConfigError::Invalid(format!("{prefix}.{key} must be a non-negative integer"))
        }),
    }
}

fn policy_u32(json: &Json, prefix: &str, key: &str, default: u32) -> Result<u32, ConfigError> {
    policy_u64(json, prefix, key, u64::from(default)).and_then(|v| {
        u32::try_from(v).map_err(|_| ConfigError::Invalid(format!("{prefix}.{key} out of range")))
    })
}

impl RetryPolicy {
    /// Read a retry policy from a parsed JSON object; absent fields keep
    /// their defaults.
    pub fn from_json(json: &Json) -> Result<RetryPolicy, ConfigError> {
        let d = RetryPolicy::default();
        Ok(RetryPolicy {
            max_retries: policy_u32(json, "retry", "max_retries", d.max_retries)?,
            backoff_base_ms: policy_u64(json, "retry", "backoff_base_ms", d.backoff_base_ms)?,
            backoff_max_ms: policy_u64(json, "retry", "backoff_max_ms", d.backoff_max_ms)?,
        })
    }

    pub(crate) fn to_json_value(&self) -> Json {
        obj([
            ("max_retries", Json::Num(i128::from(self.max_retries))),
            (
                "backoff_base_ms",
                Json::Num(i128::from(self.backoff_base_ms)),
            ),
            ("backoff_max_ms", Json::Num(i128::from(self.backoff_max_ms))),
        ])
    }

    /// Backoff before retry `attempt` of `request`: exponential in the
    /// attempt with deterministic half-to-full jitter drawn from the
    /// request index (decorrelates retry storms, keeps tests exact).
    #[must_use]
    pub fn backoff(&self, request: u64, attempt: u32) -> Duration {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.backoff_max_ms);
        if exp <= 1 {
            return Duration::from_millis(exp);
        }
        let mut rng = StdRng::seed_from_u64(
            0xb0ff ^ request.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt),
        );
        Duration::from_millis(exp / 2 + rng.random_range(0..exp / 2 + 1))
    }
}

impl BreakerPolicy {
    /// Read a breaker policy from a parsed JSON object; absent fields
    /// keep their defaults.
    pub fn from_json(json: &Json) -> Result<BreakerPolicy, ConfigError> {
        let d = BreakerPolicy::default();
        let policy = BreakerPolicy {
            failure_threshold: policy_u32(
                json,
                "breaker",
                "failure_threshold",
                d.failure_threshold,
            )?,
            open_ms: policy_u64(json, "breaker", "open_ms", d.open_ms)?,
        };
        if policy.failure_threshold == 0 {
            return Err(ConfigError::Invalid(
                "breaker.failure_threshold must be >= 1".to_string(),
            ));
        }
        Ok(policy)
    }

    pub(crate) fn to_json_value(&self) -> Json {
        obj([
            (
                "failure_threshold",
                Json::Num(i128::from(self.failure_threshold)),
            ),
            ("open_ms", Json::Num(i128::from(self.open_ms))),
        ])
    }
}

/// Closed / open / half-open, tracked per kernel.
#[derive(Default)]
struct BreakerState {
    consecutive_failures: u32,
    /// `Some(t)`: open until `t`; past `t` the breaker is half-open and
    /// admits one probe. `None`: closed.
    open_until: Option<Instant>,
}

impl BreakerState {
    /// Would this breaker currently divert traffic away from its kernel?
    fn diverting(&self, now: Instant) -> bool {
        self.open_until.is_some_and(|t| now < t)
    }

    /// Record a failure; `true` when the breaker (re)opens.
    fn on_failure(&mut self, now: Instant, policy: &BreakerPolicy) -> bool {
        self.consecutive_failures += 1;
        let failed_probe = self.open_until.is_some();
        if failed_probe || self.consecutive_failures >= policy.failure_threshold {
            self.open_until = Some(now + Duration::from_millis(policy.open_ms));
            self.consecutive_failures = 0;
            return true;
        }
        false
    }

    /// Record a success; `true` when an open breaker closes.
    fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.open_until.take().is_some()
    }
}

/// The per-service supervisor: owns the breakers and drives the retry /
/// verify / degrade loop around kernel execution.
pub(crate) struct Supervisor {
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    verify_residues: bool,
    verify: VerifyPolicy,
    chaos: Option<ChaosConfig>,
    /// When present, [`Kernel::DistributedToom`] attempts run on the
    /// simulated coded machine instead of the local delegate kernel.
    distributed: Option<DistributedBackend>,
    breakers: [Mutex<BreakerState>; 5],
}

enum AttemptFailure {
    Panicked,
    BadProduct,
}

/// A product that survived the verification ladder.
enum Verified {
    /// Passed every rung that ran — serve it as-is.
    Clean(BigInt),
    /// The dual-algorithm rung caught a corruption and the recompute rung
    /// confirmed it (2-of-3 vote against the served-path product); this is
    /// the recomputed, correct value.
    Recovered(BigInt),
}

/// Elapsed µs since `start`, saturating.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl Supervisor {
    pub(crate) fn new(
        retry: RetryPolicy,
        breaker: BreakerPolicy,
        verify_residues: bool,
        verify: VerifyPolicy,
        chaos: Option<ChaosConfig>,
        distributed: Option<DistributedBackend>,
    ) -> Supervisor {
        Supervisor {
            retry,
            breaker,
            verify_residues,
            verify,
            chaos: chaos.filter(ChaosConfig::is_active),
            distributed,
            breakers: std::array::from_fn(|_| Mutex::new(BreakerState::default())),
        }
    }

    /// The distributed backend serving [`Kernel::DistributedToom`]
    /// attempts, if `kernel` is the distributed rung and one is wired.
    fn backend_for(&self, kernel: Kernel) -> Option<&DistributedBackend> {
        match kernel {
            Kernel::DistributedToom => self.distributed.as_ref(),
            _ => None,
        }
    }

    fn breaker_state(&self, kernel: Kernel) -> std::sync::MutexGuard<'_, BreakerState> {
        self.breakers[kernel as usize]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Walk `selected` down the degradation ladder past any breaker that
    /// is currently diverting traffic.
    fn effective_kernel(&self, selected: Kernel, now: Instant) -> Kernel {
        let mut kernel = selected;
        while self.breaker_state(kernel).diverting(now) {
            match kernel.degrade() {
                Some(lower) => kernel = lower,
                None => break, // no rung below schoolbook; probe it anyway
            }
        }
        kernel
    }

    fn record_failure(&self, kernel: Kernel, metrics: &Metrics) {
        if self
            .breaker_state(kernel)
            .on_failure(Instant::now(), &self.breaker)
        {
            metrics.record_breaker_open();
        }
    }

    /// The structurally distinct second algorithm of the dual rung: plain
    /// limb multiplication (schoolbook/Karatsuba) below the small floor,
    /// Toom-Cook on the disjoint alternate evaluation-point set above it.
    /// Neither shares evaluation rows, interpolation matrices, or a
    /// Toom-Graph schedule with the serving kernels' classic plans, so a
    /// soft error in either pipeline makes the two products disagree.
    /// NTT-served products in particular cross-check against an algorithm
    /// with no modular transforms, twiddle tables, or CRT recombination at
    /// all — the two pipelines share nothing past limb addition.
    fn dual_multiply(&self, a: &BigInt, b: &BigInt) -> BigInt {
        let vp = &self.verify;
        if a.bit_length().min(b.bit_length()) <= vp.dual_small_max_bits {
            a.mul_auto(b)
        } else {
            let plan = ToomPlan::shared_alternate(vp.dual_toom_k);
            seq::toom_with_plan(a, b, &plan, vp.dual_small_max_bits.max(8))
        }
    }

    /// Run a freshly computed product up the verification ladder:
    ///
    /// 1. **residue** — the `O(n)` spot-check on every product (when
    ///    `verify_residues`); a mismatch fails the attempt and the element
    ///    retries as a soft fault.
    /// 2. **dual-algorithm** — for sampled requests within the size guard,
    ///    recompute with [`Self::dual_multiply`] and compare.
    /// 3. **recompute** — a dual disagreement escalates to a full clean
    ///    re-execution with the serving kernel, which localizes the
    ///    corrupt result by 2-of-3 majority. A confirmed corruption is
    ///    served from the recompute ([`Verified::Recovered`]) and charges
    ///    the kernel's circuit breaker (when `breaker_on_mismatch`), so
    ///    repeated offenders trip it; if no two results agree the attempt
    ///    fails and the element retries.
    ///
    /// Chaos only corrupts the served-path product (upstream of this
    /// call), so rungs 2–3 compute on clean ground truth.
    #[allow(clippy::too_many_arguments)]
    fn verify_ladder(
        &self,
        a: &BigInt,
        b: &BigInt,
        product: BigInt,
        request: u64,
        kernel: Kernel,
        policy: &crate::config::KernelPolicy,
        plans: &PlanCache,
        metrics: &Metrics,
    ) -> Result<Verified, ()> {
        if self.verify_residues {
            let start = Instant::now();
            let ok = residue::verify_product(a, b, &product);
            metrics.record_residue_verify(elapsed_us(start), ok);
            if !ok {
                return Err(());
            }
        }
        let vp = &self.verify;
        if !vp.is_active()
            || a.bit_length().min(b.bit_length()) > vp.dual_max_bits
            || !vp.samples(request)
        {
            return Ok(Verified::Clean(product));
        }
        let start = Instant::now();
        let dual = self.dual_multiply(a, b);
        let mismatch = dual != product;
        metrics.record_dual_check(elapsed_us(start), mismatch);
        if !mismatch {
            return Ok(Verified::Clean(product));
        }
        let start = Instant::now();
        // Full clean re-execution — always on the local kernel ladder
        // (even for distributed attempts), with no chaos draw: the
        // recompute must be ground truth to arbitrate the disagreement.
        let recompute = kernel.execute(a, b, policy, plans);
        let original_corrupt = recompute != product;
        metrics.record_recompute(elapsed_us(start), original_corrupt);
        if !original_corrupt {
            // The dual computation itself was the corrupt one (2-of-3
            // majority for the served product) — serve the original.
            return Ok(Verified::Clean(product));
        }
        if recompute == dual {
            // Confirmed: the served-path product was corrupt. Serve the
            // agreed value and charge the kernel like any other failure.
            if vp.breaker_on_mismatch {
                self.record_failure(kernel, metrics);
            }
            return Ok(Verified::Recovered(recompute));
        }
        // All three disagree — no majority; fail the attempt and retry.
        Err(())
    }

    /// Supervised multiplication: returns the verified product and the
    /// kernel that produced it, or [`MulError::WorkerFault`] once the
    /// retry budget *and* the degradation ladder are both exhausted.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute(
        &self,
        a: &BigInt,
        b: &BigInt,
        request: u64,
        selected: Kernel,
        policy: &crate::config::KernelPolicy,
        plans: &PlanCache,
        metrics: &Metrics,
    ) -> Result<(BigInt, Kernel), MulError> {
        self.execute_from(a, b, request, selected, policy, plans, metrics, 0)
    }

    /// [`Self::execute`] with the attempt counter starting at
    /// `start_attempt`: the batch path hands its elements here with
    /// `start_attempt == 1` so the failed batch attempt both consumes
    /// retry budget and keeps the chaos attempt sequence monotone (a
    /// fault injected at attempt 0 in the batch is not re-drawn).
    #[allow(clippy::too_many_arguments)]
    fn execute_from(
        &self,
        a: &BigInt,
        b: &BigInt,
        request: u64,
        selected: Kernel,
        policy: &crate::config::KernelPolicy,
        plans: &PlanCache,
        metrics: &Metrics,
        start_attempt: u32,
    ) -> Result<(BigInt, Kernel), MulError> {
        let max_attempts = self.retry.max_retries + 1;
        let mut forced: Option<Kernel> = None;
        let mut attempt: u32 = start_attempt;
        loop {
            let kernel = forced.unwrap_or_else(|| self.effective_kernel(selected, Instant::now()));
            if kernel != selected {
                metrics.record_fallback();
            }
            match self.attempt(a, b, request, attempt, kernel, policy, plans, metrics) {
                Ok(Verified::Clean(product)) => {
                    if self.breaker_state(kernel).on_success() {
                        metrics.record_breaker_close();
                    }
                    return Ok((product, kernel));
                }
                Ok(Verified::Recovered(product)) => {
                    // The ladder already charged the kernel's breaker for
                    // the confirmed corruption; deliberately skip the
                    // success reset so repeated offenders accumulate
                    // failures and trip it.
                    return Ok((product, kernel));
                }
                // Hard (panic) and soft (bad product) faults take the
                // same retry path; they are metered separately.
                Err(AttemptFailure::Panicked | AttemptFailure::BadProduct) => {}
            }
            self.record_failure(kernel, metrics);
            attempt += 1;
            if attempt >= max_attempts {
                // Retry budget spent: force one step down the ladder per
                // further failure; below schoolbook there is nothing left.
                match kernel.degrade() {
                    Some(lower) => forced = Some(lower),
                    None => {
                        metrics.record_worker_fault();
                        return Err(MulError::WorkerFault { attempts: attempt });
                    }
                }
            }
            metrics.record_retry();
            let pause = self.retry.backoff(request, attempt.saturating_sub(1));
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }

    /// Supervised execution of one coalesced batch. The whole batch is a
    /// single attempt (one chaos draw per element at attempt 0, one
    /// `catch_unwind`, one breaker update): if the batch attempt panics,
    /// or individual products fail their residue spot-check, only the
    /// affected elements are re-executed on the individual retry path —
    /// one faulty element never fails its batch-mates.
    ///
    /// Returns per-element results in input order. `requests[i]` is the
    /// submission index of `pairs[i]` (seeds chaos and backoff).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute_batch(
        &self,
        pairs: &[(BigInt, BigInt)],
        requests: &[u64],
        selected: Kernel,
        policy: &crate::config::KernelPolicy,
        plans: &PlanCache,
        metrics: &Metrics,
        lanes: usize,
    ) -> Vec<Result<(BigInt, Kernel), MulError>> {
        debug_assert_eq!(pairs.len(), requests.len());
        let kernel = self.effective_kernel(selected, Instant::now());
        if kernel != selected {
            metrics.record_fallback();
        }
        let retry_element = |i: usize| {
            metrics.record_batch_element_retry();
            metrics.record_retry();
            self.execute_from(
                &pairs[i].0,
                &pairs[i].1,
                requests[i],
                selected,
                policy,
                plans,
                metrics,
                1,
            )
        };
        match self.attempt_batch(pairs, requests, kernel, policy, plans, metrics, lanes) {
            Ok((products, recovered)) => {
                // Sound elements resolve from the batch; elements whose
                // residue check failed inside the attempt retry alone. A
                // batch that needed a ladder recovery keeps its breaker
                // charge (no success reset), like the individual path.
                if products.iter().any(Option::is_none) {
                    self.record_failure(kernel, metrics);
                } else if !recovered && self.breaker_state(kernel).on_success() {
                    metrics.record_breaker_close();
                }
                products
                    .into_iter()
                    .enumerate()
                    .map(|(i, product)| match product {
                        Some(product) => Ok((product, kernel)),
                        None => retry_element(i),
                    })
                    .collect()
            }
            Err(()) => {
                // Hard batch fault: one breaker failure, then every
                // element falls back to the individual supervised path.
                self.record_failure(kernel, metrics);
                metrics.record_batch_fault();
                (0..pairs.len()).map(retry_element).collect()
            }
        }
    }

    /// One supervised batch attempt: draw chaos per element (attempt 0),
    /// run the whole batch under a single `catch_unwind`, and run every
    /// product up the verification ladder. Returns one entry per element —
    /// `Some` for a verified (or unverified-by-config) product, `None` for
    /// one the ladder rejected — plus a flag for whether any element was
    /// served from a ladder recovery; or `Err(())` when the attempt
    /// panicked.
    /// Injected panics are never escalated here — the dispatcher thread
    /// must survive; the escalation path stays on the per-worker
    /// individual attempts.
    ///
    /// On a single lane the verification is *fused*: each product is
    /// checked right after its multiplication, while operands and product
    /// are still cache-hot. A batch big enough to overflow L1 would
    /// otherwise pay a second cold pass over every element — measured as
    /// the difference between the batch path losing to and beating the
    /// per-request baseline. Multi-lane batches verify after the lanes
    /// join, where each lane's chunk re-walk is the price of parallelism.
    #[allow(clippy::too_many_arguments)]
    fn attempt_batch(
        &self,
        pairs: &[(BigInt, BigInt)],
        requests: &[u64],
        kernel: Kernel,
        policy: &crate::config::KernelPolicy,
        plans: &PlanCache,
        metrics: &Metrics,
        lanes: usize,
    ) -> Result<(Vec<Option<BigInt>>, bool), ()> {
        let faults: Vec<Option<FaultKind>> = requests
            .iter()
            .map(|&request| {
                self.chaos
                    .as_ref()
                    .and_then(|chaos| chaos.decide(request, 0))
            })
            .collect();
        for kind in faults.iter().flatten() {
            metrics.record_injected(*kind);
        }
        let recovered = std::sync::atomic::AtomicBool::new(false);
        panic::catch_unwind(AssertUnwindSafe(|| {
            let chaos = self.chaos.as_ref();
            if faults.iter().flatten().any(|&k| k == FaultKind::Straggle) {
                // One straggler delays the whole batch — the batch shares
                // its fate, like a slow processor in the paper's model.
                std::thread::sleep(chaos.map_or(Duration::ZERO, ChaosConfig::straggle_duration));
            }
            if let Some(i) = faults.iter().position(|&k| k == Some(FaultKind::Panic)) {
                panic!(
                    "{INJECTED_PANIC_MSG} (batch element {i}, request {})",
                    requests[i]
                );
            }
            // Corrupt (per the chaos draw) and run one product up the
            // verification ladder.
            let check = |i: usize, mut product: BigInt| -> Option<BigInt> {
                if let Some(chaos) = chaos {
                    if faults[i] == Some(FaultKind::Corrupt) {
                        product = chaos.corrupt(&product, requests[i], 0);
                    }
                }
                match self.verify_ladder(
                    &pairs[i].0,
                    &pairs[i].1,
                    product,
                    requests[i],
                    kernel,
                    policy,
                    plans,
                    metrics,
                ) {
                    Ok(Verified::Clean(product)) => Some(product),
                    Ok(Verified::Recovered(product)) => {
                        recovered.store(true, std::sync::atomic::Ordering::Relaxed);
                        Some(product)
                    }
                    Err(()) => None,
                }
            };
            if let Some(backend) = self.backend_for(kernel) {
                // Every element of a promoted batch runs on the coded
                // machine; verification stays fused per element. An
                // unrecoverable element panics the whole batch attempt —
                // its batch-mates re-run on the individual path, exactly
                // like a local hard batch fault.
                let mut out = Vec::with_capacity(pairs.len());
                for (i, (a, b)) in pairs.iter().enumerate() {
                    out.push(check(i, backend.multiply(a, b, requests[i], 0, metrics)));
                }
                out
            } else if rayon_engine::effective_lanes(lanes, pairs.len()) <= 1 {
                let mut out = Vec::with_capacity(pairs.len());
                kernel.execute_each(pairs, policy, plans, |i, product| {
                    out.push(check(i, product));
                });
                out
            } else {
                kernel
                    .execute_batch(pairs, policy, plans, lanes)
                    .into_iter()
                    .enumerate()
                    .map(|(i, product)| check(i, product))
                    .collect()
            }
        }))
        .map(|products| (products, recovered.into_inner()))
        .map_err(|_| ())
    }

    /// One supervised attempt: inject chaos, run the kernel under
    /// `catch_unwind`, then run the product up the verification ladder.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        a: &BigInt,
        b: &BigInt,
        request: u64,
        attempt: u32,
        kernel: Kernel,
        policy: &crate::config::KernelPolicy,
        plans: &PlanCache,
        metrics: &Metrics,
    ) -> Result<Verified, AttemptFailure> {
        let fault = self
            .chaos
            .as_ref()
            .and_then(|chaos| chaos.decide(request, attempt));
        if let Some(kind) = fault {
            metrics.record_injected(kind);
        }
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let chaos = self.chaos.as_ref();
            match fault {
                Some(FaultKind::Panic) => {
                    panic!("{INJECTED_PANIC_MSG} (request {request}, attempt {attempt})")
                }
                Some(FaultKind::Straggle) => {
                    std::thread::sleep(
                        chaos.map_or(Duration::ZERO, ChaosConfig::straggle_duration),
                    );
                }
                _ => {}
            }
            let product = match self.backend_for(kernel) {
                // The coded machine runs its own (in-machine) fault
                // injection and heartbeat detection; an unrecoverable run
                // panics and lands in the `Err` arm below like any other
                // hard fault.
                Some(backend) => backend.multiply(a, b, request, attempt, metrics),
                None => kernel.execute(a, b, policy, plans),
            };
            match (fault, chaos) {
                (Some(FaultKind::Corrupt), Some(chaos)) => {
                    chaos.corrupt(&product, request, attempt)
                }
                _ => product,
            }
        }));
        match outcome {
            Ok(product) => self
                .verify_ladder(a, b, product, request, kernel, policy, plans, metrics)
                .map_err(|()| AttemptFailure::BadProduct),
            Err(payload) => {
                let escalate = self.chaos.as_ref().is_some_and(|c| c.escalate_panics)
                    && payload_is_injected(payload.as_ref());
                if escalate {
                    // Re-raise outside the supervisor: the worker thread
                    // dies, exercising the dead-worker recovery paths.
                    panic::resume_unwind(payload);
                }
                Err(AttemptFailure::Panicked)
            }
        }
    }
}

fn payload_is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .is_some_and(|s| s.contains(INJECTED_PANIC_MSG))
        || payload
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains(INJECTED_PANIC_MSG))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::install_quiet_panic_hook;
    use crate::config::KernelPolicy;

    fn supervisor_with(chaos: Option<ChaosConfig>, verify: bool) -> Supervisor {
        Supervisor::new(
            RetryPolicy::default(),
            BreakerPolicy::default(),
            verify,
            VerifyPolicy::default(),
            chaos,
            None,
        )
    }

    /// A supervisor whose dual rung checks every request.
    fn supervisor_with_dual(chaos: Option<ChaosConfig>, verify_residues: bool) -> Supervisor {
        Supervisor::new(
            RetryPolicy::default(),
            BreakerPolicy::default(),
            verify_residues,
            VerifyPolicy {
                dual_per_10k: 10_000,
                ..VerifyPolicy::default()
            },
            chaos,
            None,
        )
    }

    fn small_operands() -> (BigInt, BigInt) {
        let a: BigInt = "123456789123456789123456789".parse().unwrap();
        let b: BigInt = "-98765432198765432198".parse().unwrap();
        (a, b)
    }

    #[test]
    fn clean_path_returns_verified_product() {
        let sup = supervisor_with(None, true);
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        let (product, kernel) = sup
            .execute(
                &a,
                &b,
                0,
                Kernel::Schoolbook,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_eq!(product, a.mul_schoolbook(&b));
        assert_eq!(kernel, Kernel::Schoolbook);
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.residue_checks, 1);
        assert_eq!(snap.verification_failures, 0);
    }

    #[test]
    fn injected_corruption_is_caught_and_retried() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            force: vec![(5, FaultKind::Corrupt)],
            ..ChaosConfig::default()
        };
        let sup = supervisor_with(Some(chaos), true);
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        let (product, _) = sup
            .execute(
                &a,
                &b,
                5,
                Kernel::Schoolbook,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_eq!(product, a.mul_schoolbook(&b));
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.verification_failures, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.injected_faults[FaultKind::Corrupt as usize].1, 1);
    }

    #[test]
    fn injected_panic_is_caught_and_retried() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            force: vec![(9, FaultKind::Panic)],
            ..ChaosConfig::default()
        };
        let sup = supervisor_with(Some(chaos), false);
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        let (product, _) = sup
            .execute(
                &a,
                &b,
                9,
                Kernel::Schoolbook,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_eq!(product, a.mul_schoolbook(&b));
        assert_eq!(metrics.snapshot(0, (0, 0)).retries, 1);
    }

    #[test]
    fn repeated_failures_trip_the_breaker_and_degrade() {
        install_quiet_panic_hook();
        // Every first attempt of every request panics; retries are clean.
        let chaos = ChaosConfig {
            seed: 7,
            panic_per_10k: 10_000,
            max_faulty_attempts: 1,
            ..ChaosConfig::default()
        };
        let sup = Supervisor::new(
            RetryPolicy {
                max_retries: 0, // exhaust instantly → forced degradation
                backoff_base_ms: 0,
                backoff_max_ms: 0,
            },
            BreakerPolicy {
                failure_threshold: 1,
                open_ms: 10_000,
            },
            true,
            VerifyPolicy::default(),
            Some(chaos),
            None,
        );
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        let (product, kernel) = sup
            .execute(
                &a,
                &b,
                0,
                Kernel::ParToom,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_eq!(product, a.mul_schoolbook(&b));
        // First attempt on par toom panicked, retries were exhausted, so
        // the ladder forced seq toom; its injected fault only fires on
        // attempt 0 per request... but attempt numbers continue, so the
        // second attempt is clean and succeeds on the degraded kernel.
        assert_eq!(kernel, Kernel::SeqToom);
        let snap = metrics.snapshot(0, (0, 0));
        assert!(snap.fallbacks >= 1, "fallbacks {}", snap.fallbacks);
        assert_eq!(snap.breaker_opens, 1);
        // A later request sees the open par-toom breaker and degrades
        // immediately without a failure.
        let (_, kernel2) = sup
            .execute(
                &a,
                &b,
                1,
                Kernel::ParToom,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_ne!(kernel2, Kernel::ParToom);
    }

    #[test]
    fn unrecoverable_faults_surface_as_worker_fault() {
        install_quiet_panic_hook();
        // Panic on every attempt of every kernel, forever.
        let chaos = ChaosConfig {
            panic_per_10k: 10_000,
            max_faulty_attempts: u32::MAX,
            ..ChaosConfig::default()
        };
        let sup = Supervisor::new(
            RetryPolicy {
                max_retries: 1,
                backoff_base_ms: 0,
                backoff_max_ms: 0,
            },
            BreakerPolicy::default(),
            true,
            VerifyPolicy::default(),
            Some(chaos),
            None,
        );
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        let err = sup
            .execute(
                &a,
                &b,
                3,
                Kernel::ParToom,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap_err();
        // 2 budgeted attempts + forced seq toom + forced schoolbook.
        assert_eq!(err, MulError::WorkerFault { attempts: 4 });
        assert_eq!(metrics.snapshot(0, (0, 0)).worker_faults, 1);
    }

    #[test]
    fn residue_evading_corruption_slips_past_residue_only_supervision() {
        // The blind spot, end to end: with the dual rung off, a crafted
        // residue-preserving corruption is served as if it were correct.
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            corruption: crate::chaos::CorruptionKind::ResidueEvading,
            force: vec![(4, FaultKind::Corrupt)],
            ..ChaosConfig::default()
        };
        let sup = Supervisor::new(
            RetryPolicy::default(),
            BreakerPolicy::default(),
            true,
            VerifyPolicy {
                dual_per_10k: 0,
                ..VerifyPolicy::default()
            },
            Some(chaos),
            None,
        );
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        let (product, _) = sup
            .execute(
                &a,
                &b,
                4,
                Kernel::Schoolbook,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_ne!(product, a.mul_schoolbook(&b), "the corruption was served");
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.verification_failures, 0, "residue check saw nothing");
        assert_eq!(snap.verify.residue_checks, 1);
        assert_eq!(snap.verify.dual_checks, 0);
    }

    #[test]
    fn dual_rung_catches_and_recovers_residue_evading_corruption() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            corruption: crate::chaos::CorruptionKind::ResidueEvading,
            force: vec![(4, FaultKind::Corrupt)],
            ..ChaosConfig::default()
        };
        let sup = supervisor_with_dual(Some(chaos), true);
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        let (product, _) = sup
            .execute(
                &a,
                &b,
                4,
                Kernel::Schoolbook,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_eq!(product, a.mul_schoolbook(&b), "recovered the true product");
        let snap = metrics.snapshot(0, (0, 0));
        // The corruption passed the residue rung, the dual rung disagreed,
        // and the recompute confirmed the served path was corrupt — all
        // without consuming a retry (the element was served in-place).
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.verify.residue_failures, 0);
        assert_eq!(snap.verify.dual_checks, 1);
        assert_eq!(snap.verify.dual_failures, 1);
        assert_eq!(snap.verify.escalations, 1);
        assert_eq!(snap.verify.recompute_checks, 1);
        assert_eq!(snap.verify.recompute_failures, 1);
        assert_eq!(snap.verification_failures, 1, "counted as a caught fault");
    }

    #[test]
    fn dual_rung_uses_the_alternate_toom_plan_above_the_small_floor() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            corruption: crate::chaos::CorruptionKind::ResidueEvading,
            force: vec![(2, FaultKind::Corrupt)],
            ..ChaosConfig::default()
        };
        let sup = Supervisor::new(
            RetryPolicy::default(),
            BreakerPolicy::default(),
            true,
            VerifyPolicy {
                dual_per_10k: 10_000,
                dual_small_max_bits: 256, // force the alternate-plan branch
                ..VerifyPolicy::default()
            },
            Some(chaos),
            None,
        );
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = BigInt::random_signed_bits(&mut rng, 20_000);
        let b = BigInt::random_signed_bits(&mut rng, 20_000);
        let metrics = Metrics::default();
        let (product, _) = sup
            .execute(
                &a,
                &b,
                2,
                Kernel::SeqToom,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_eq!(product, a.mul_schoolbook(&b));
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.verify.dual_failures, 1);
        assert_eq!(snap.verify.recompute_failures, 1);
    }

    #[test]
    fn dual_size_guard_skips_oversized_operands() {
        let sup = Supervisor::new(
            RetryPolicy::default(),
            BreakerPolicy::default(),
            true,
            VerifyPolicy {
                dual_per_10k: 10_000,
                dual_small_max_bits: 16,
                dual_max_bits: 16, // both operands exceed this → rung skipped
                ..VerifyPolicy::default()
            },
            None,
            None,
        );
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        sup.execute(
            &a,
            &b,
            0,
            Kernel::Schoolbook,
            &KernelPolicy::default(),
            &PlanCache::new(2),
            &metrics,
        )
        .unwrap();
        assert_eq!(metrics.snapshot(0, (0, 0)).verify.dual_checks, 0);
    }

    #[test]
    fn repeated_confirmed_corruptions_trip_the_breaker() {
        install_quiet_panic_hook();
        // Every request is corrupted residue-evadingly; dual checks every
        // one; each confirmed corruption charges the breaker.
        let chaos = ChaosConfig {
            seed: 3,
            corrupt_per_10k: 10_000,
            corruption: crate::chaos::CorruptionKind::ResidueEvading,
            ..ChaosConfig::default()
        };
        let sup = Supervisor::new(
            RetryPolicy::default(),
            BreakerPolicy {
                failure_threshold: 3,
                open_ms: 60_000,
            },
            true,
            VerifyPolicy {
                dual_per_10k: 10_000,
                ..VerifyPolicy::default()
            },
            Some(chaos),
            None,
        );
        let (a, b) = small_operands();
        let metrics = Metrics::default();
        for request in 0..3 {
            let (product, kernel) = sup
                .execute(
                    &a,
                    &b,
                    request,
                    Kernel::SeqToom,
                    &KernelPolicy::default(),
                    &PlanCache::new(2),
                    &metrics,
                )
                .unwrap();
            assert_eq!(product, a.mul_schoolbook(&b), "request {request}");
            assert_eq!(kernel, Kernel::SeqToom);
        }
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.verify.recompute_failures, 3);
        assert_eq!(snap.breaker_opens, 1, "third confirmed corruption trips");
        // The next request diverts below the open seq-toom breaker.
        let (_, kernel) = sup
            .execute(
                &a,
                &b,
                100,
                Kernel::SeqToom,
                &KernelPolicy::default(),
                &PlanCache::new(2),
                &metrics,
            )
            .unwrap();
        assert_eq!(
            kernel,
            Kernel::Schoolbook,
            "diverted by the tripped breaker"
        );
    }

    #[test]
    fn batch_dual_rung_recovers_residue_evading_elements() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            corruption: crate::chaos::CorruptionKind::ResidueEvading,
            force: vec![(1, FaultKind::Corrupt), (3, FaultKind::Corrupt)],
            ..ChaosConfig::default()
        };
        let sup = supervisor_with_dual(Some(chaos), true);
        let (pairs, requests) = batch_pairs(4);
        let metrics = Metrics::default();
        let results = sup.execute_batch(
            &pairs,
            &requests,
            Kernel::SeqToom,
            &KernelPolicy::default(),
            &PlanCache::new(2),
            &metrics,
            1,
        );
        for ((a, b), result) in pairs.iter().zip(results) {
            assert_eq!(result.unwrap().0, a.mul_schoolbook(b));
        }
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.verify.dual_checks, 4, "every element dual-checked");
        assert_eq!(snap.verify.dual_failures, 2);
        assert_eq!(snap.verify.recompute_failures, 2);
        assert_eq!(snap.batch_element_retries, 0, "recovered in place");
        assert_eq!(snap.worker_faults, 0);
    }

    fn batch_pairs(n: u64) -> (Vec<(BigInt, BigInt)>, Vec<u64>) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                (
                    BigInt::random_signed_bits(&mut rng, 500 + 300 * i),
                    BigInt::random_signed_bits(&mut rng, 500 + 300 * i),
                )
            })
            .collect();
        (pairs, (0..n).collect())
    }

    #[test]
    fn clean_batch_resolves_every_element() {
        let sup = supervisor_with(None, true);
        let (pairs, requests) = batch_pairs(5);
        let metrics = Metrics::default();
        let results = sup.execute_batch(
            &pairs,
            &requests,
            Kernel::SeqToom,
            &KernelPolicy::default(),
            &PlanCache::new(2),
            &metrics,
            1,
        );
        for ((a, b), result) in pairs.iter().zip(results) {
            let (product, kernel) = result.unwrap();
            assert_eq!(product, a.mul_schoolbook(b));
            assert_eq!(kernel, Kernel::SeqToom);
        }
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.residue_checks, 5);
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.batch_element_retries, 0);
        assert_eq!(snap.batch_faults, 0);
    }

    #[test]
    fn corrupt_batch_element_retries_alone() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            force: vec![(2, FaultKind::Corrupt)],
            ..ChaosConfig::default()
        };
        let sup = supervisor_with(Some(chaos), true);
        let (pairs, requests) = batch_pairs(4);
        let metrics = Metrics::default();
        let results = sup.execute_batch(
            &pairs,
            &requests,
            Kernel::SeqToom,
            &KernelPolicy::default(),
            &PlanCache::new(2),
            &metrics,
            1,
        );
        for ((a, b), result) in pairs.iter().zip(results) {
            assert_eq!(result.unwrap().0, a.mul_schoolbook(b));
        }
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.verification_failures, 1);
        assert_eq!(snap.batch_element_retries, 1, "only the corrupt element");
        assert_eq!(snap.batch_faults, 0);
        // 4 batch checks + 1 on the individual retry.
        assert_eq!(snap.residue_checks, 5);
    }

    #[test]
    fn panicking_batch_falls_back_per_element() {
        install_quiet_panic_hook();
        let chaos = ChaosConfig {
            force: vec![(1, FaultKind::Panic)],
            // Escalation must be ignored on the batch path: the
            // dispatcher thread has to survive the injected panic.
            escalate_panics: true,
            ..ChaosConfig::default()
        };
        let sup = supervisor_with(Some(chaos), true);
        let (pairs, requests) = batch_pairs(3);
        let metrics = Metrics::default();
        let results = sup.execute_batch(
            &pairs,
            &requests,
            Kernel::SeqToom,
            &KernelPolicy::default(),
            &PlanCache::new(2),
            &metrics,
            1,
        );
        for ((a, b), result) in pairs.iter().zip(results) {
            assert_eq!(
                result.unwrap().0,
                a.mul_schoolbook(b),
                "uninjured batch-mates"
            );
        }
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.batch_faults, 1);
        assert_eq!(snap.batch_element_retries, 3, "whole batch re-executed");
        assert_eq!(snap.worker_faults, 0);
    }

    #[test]
    fn batch_respects_open_breakers() {
        let sup = Supervisor::new(
            RetryPolicy::default(),
            BreakerPolicy {
                failure_threshold: 1,
                open_ms: 60_000,
            },
            true,
            VerifyPolicy::default(),
            None,
            None,
        );
        // Trip the seq-toom breaker open by hand.
        sup.record_failure(Kernel::SeqToom, &Metrics::default());
        let (pairs, requests) = batch_pairs(2);
        let metrics = Metrics::default();
        let results = sup.execute_batch(
            &pairs,
            &requests,
            Kernel::SeqToom,
            &KernelPolicy::default(),
            &PlanCache::new(2),
            &metrics,
            1,
        );
        for result in results {
            let (_, kernel) = result.unwrap();
            assert_eq!(
                kernel,
                Kernel::Schoolbook,
                "diverted below the open breaker"
            );
        }
        assert_eq!(metrics.snapshot(0, (0, 0)).fallbacks, 1, "once per batch");
    }

    #[test]
    fn breaker_state_machine_half_opens_and_closes() {
        let policy = BreakerPolicy {
            failure_threshold: 2,
            open_ms: 10,
        };
        let mut state = BreakerState::default();
        let t0 = Instant::now();
        assert!(!state.on_failure(t0, &policy));
        assert!(state.on_failure(t0, &policy), "second failure opens");
        assert!(state.diverting(t0 + Duration::from_millis(5)));
        // Past open_ms the breaker is half-open: not diverting, but a
        // failed probe reopens immediately.
        let probe_time = t0 + Duration::from_millis(15);
        assert!(!state.diverting(probe_time));
        assert!(
            state.on_failure(probe_time, &policy),
            "failed probe reopens"
        );
        assert!(state.diverting(probe_time + Duration::from_millis(5)));
        assert!(state.on_success(), "successful probe closes");
        assert!(!state.diverting(probe_time + Duration::from_millis(5)));
        assert!(!state.on_success(), "closing is edge-triggered");
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let retry = RetryPolicy {
            max_retries: 5,
            backoff_base_ms: 2,
            backoff_max_ms: 10,
        };
        let mut last = Duration::ZERO;
        for attempt in 0..6 {
            let pause = retry.backoff(1, attempt);
            assert!(pause >= last / 2, "jitter floor is half the bound");
            assert!(pause <= Duration::from_millis(10));
            assert_eq!(pause, retry.backoff(1, attempt), "deterministic");
            last = pause;
        }
    }

    #[test]
    fn policies_round_trip_through_json() {
        let retry = RetryPolicy {
            max_retries: 7,
            backoff_base_ms: 3,
            backoff_max_ms: 99,
        };
        let parsed = RetryPolicy::from_json(&Json::parse(&retry.to_json_value().dump()).unwrap());
        assert_eq!(parsed.unwrap(), retry);
        let breaker = BreakerPolicy {
            failure_threshold: 2,
            open_ms: 77,
        };
        let parsed =
            BreakerPolicy::from_json(&Json::parse(&breaker.to_json_value().dump()).unwrap());
        assert_eq!(parsed.unwrap(), breaker);
        assert!(
            BreakerPolicy::from_json(&Json::parse(r#"{"failure_threshold": 0}"#).unwrap()).is_err()
        );
    }
}
