//! Deterministic fault injection for chaos-testing the service.
//!
//! The simulator can only fault processors deep inside `ft-machine`
//! (`FaultPlan`); this module injects the same fault taxonomy at the
//! serving layer, where the supervisor (see [`crate::supervisor`]) must
//! detect and survive it end to end:
//!
//! | [`FaultKind`] | Paper fault model | Injection |
//! |---|---|---|
//! | `Panic` | hard fault (fail-stop processor) | the kernel panics mid-request |
//! | `Straggle` | delay fault (slow processor) | the kernel sleeps before computing |
//! | `Corrupt` | soft fault (silent miscalculation) | the product is corrupted ([`CorruptionKind`]) |
//!
//! Faults are drawn from `(seed, request index, attempt)` only, so a chaos
//! run is exactly reproducible for a given seed regardless of worker
//! scheduling. Config is JSON-loadable like `KernelPolicy`.

use crate::config::ConfigError;
use crate::json::{obj, Json};
use ft_bigint::{BigInt, Sign};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Panic message carried by injected hard faults; the supervisor and the
/// quiet panic hook recognise injected panics by this marker.
pub const INJECTED_PANIC_MSG: &str = "chaos-injected worker panic";

/// The injectable fault kinds (see the module docs for the mapping to
/// the paper's hard/delay/soft fault model). The first three target one
/// request attempt inside a worker; the shard kinds target a whole
/// [`crate::shard::Shard`] and are drawn by the router's monitor via
/// [`ChaosConfig::decide_shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Hard fault: the kernel panics mid-request.
    Panic,
    /// Delay fault: the kernel sleeps before computing (straggler).
    Straggle,
    /// Soft fault: one limb of the product is silently bit-flipped.
    Corrupt,
    /// Shard-level fail-stop: the whole shard dies — heartbeats stop and
    /// queued work resolves as `ServiceStopped` for the router to fail
    /// over. Maps to the paper's detected fail-stop processor, one level
    /// up the topology.
    ShardKill,
    /// Shard-level stall: heartbeats pause for `stall_rounds` monitor
    /// rounds while the shard keeps serving — the detector declares it
    /// dead, then re-admits it when beats resume (rejoin path).
    ShardStall,
}

impl FaultKind {
    /// All kinds, in metrics order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Panic,
        FaultKind::Straggle,
        FaultKind::Corrupt,
        FaultKind::ShardKill,
        FaultKind::ShardStall,
    ];

    /// Stable name used as the metrics / JSON key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Straggle => "straggle",
            FaultKind::Corrupt => "corrupt",
            FaultKind::ShardKill => "shard_kill",
            FaultKind::ShardStall => "shard_stall",
        }
    }

    /// `true` for the kinds that target a whole shard rather than one
    /// request attempt.
    #[must_use]
    pub fn is_shard_fault(self) -> bool {
        matches!(self, FaultKind::ShardKill | FaultKind::ShardStall)
    }

    fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// How an injected soft fault corrupts a product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Flip one pseudo-random bit of one limb. Deterministically caught by
    /// the residue spot-check (the delta `c · 2^{64i}` with `0 < |c| < 2^64`
    /// is never `≡ 0 (mod 2^64 + 1)`).
    #[default]
    SingleLimb,
    /// Add `c · 2^{64i} · (2^128 − 1)` to the product — a crafted
    /// multi-limb corruption that preserves BOTH residues mod `2^64 ± 1`
    /// exactly, so the residue rung provably cannot see it. Only the
    /// dual-algorithm rung of the verification ladder catches these.
    ResidueEvading,
}

impl CorruptionKind {
    /// Both kinds, in JSON/metrics order.
    pub const ALL: [CorruptionKind; 2] =
        [CorruptionKind::SingleLimb, CorruptionKind::ResidueEvading];

    /// Stable name used as the JSON value (`chaos.corruption`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::SingleLimb => "single_limb",
            CorruptionKind::ResidueEvading => "residue_evading",
        }
    }

    /// Inverse of [`CorruptionKind::name`], for config loading.
    #[must_use]
    pub fn from_name(name: &str) -> Option<CorruptionKind> {
        CorruptionKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A JSON-loadable chaos plan. Rates are per 10 000 requests; a request
/// draws at most one fault per attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Hard-fault (panic) rate per 10 000 requests.
    pub panic_per_10k: u32,
    /// Delay-fault (straggler) rate per 10 000 requests.
    pub straggle_per_10k: u32,
    /// Soft-fault (corruption) rate per 10 000 requests.
    pub corrupt_per_10k: u32,
    /// Shape of injected corruptions: naive single-limb bit flips (always
    /// caught by the residue check) or crafted residue-evading multi-limb
    /// deltas (caught only by the dual-algorithm verification rung).
    pub corruption: CorruptionKind,
    /// How long an injected straggler sleeps, in milliseconds.
    pub straggle_ms: u64,
    /// Probabilistic faults fire only on attempts below this bound, so a
    /// supervised retry deterministically clears an injected fault.
    pub max_faulty_attempts: u32,
    /// Rethrow injected panics outside the supervisor: the worker thread
    /// dies, as it would without `catch_unwind` supervision.
    pub escalate_panics: bool,
    /// Forced faults `(request index, kind)`, fired on the first attempt
    /// regardless of the probabilistic rates.
    pub force: Vec<(u64, FaultKind)>,
    /// Shard-kill rate per 10 000 (shard, monitor round) draws.
    pub shard_kill_per_10k: u32,
    /// Shard-stall rate per 10 000 (shard, monitor round) draws.
    pub shard_stall_per_10k: u32,
    /// How many monitor rounds a stalled shard withholds heartbeats
    /// before beats resume and the shard rejoins.
    pub stall_rounds: u64,
    /// Forced shard faults `(shard index, monitor round, kind)`, fired at
    /// exactly that round regardless of the probabilistic rates. Kinds
    /// must be shard-level (`shard_kill` / `shard_stall`).
    pub force_shard: Vec<(usize, u64, FaultKind)>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            panic_per_10k: 0,
            straggle_per_10k: 0,
            corrupt_per_10k: 0,
            corruption: CorruptionKind::SingleLimb,
            straggle_ms: 2,
            max_faulty_attempts: 1,
            escalate_panics: false,
            force: Vec::new(),
            shard_kill_per_10k: 0,
            shard_stall_per_10k: 0,
            stall_rounds: 4,
            force_shard: Vec::new(),
        }
    }
}

impl ChaosConfig {
    /// `true` when this plan can inject at least one fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.panic_per_10k + self.straggle_per_10k + self.corrupt_per_10k > 0
            || !self.force.is_empty()
    }

    /// The deterministic per-(request, attempt) random stream.
    fn rng_for(&self, request: u64, attempt: u32) -> StdRng {
        StdRng::seed_from_u64(
            self.seed ^ request.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(attempt) << 56),
        )
    }

    /// The fault (if any) to inject on the given attempt of a request.
    #[must_use]
    pub fn decide(&self, request: u64, attempt: u32) -> Option<FaultKind> {
        if attempt == 0 {
            if let Some(&(_, kind)) = self.force.iter().find(|&&(i, _)| i == request) {
                return Some(kind);
            }
        }
        if attempt >= self.max_faulty_attempts {
            return None;
        }
        let (p, s, c) = (
            self.panic_per_10k,
            self.straggle_per_10k,
            self.corrupt_per_10k,
        );
        if p + s + c == 0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation)] // draw < 10_000
        let draw = self.rng_for(request, attempt).random_range(0..10_000) as u32;
        if draw < p {
            Some(FaultKind::Panic)
        } else if draw < p + s {
            Some(FaultKind::Straggle)
        } else if draw < p + s + c {
            Some(FaultKind::Corrupt)
        } else {
            None
        }
    }

    /// `true` when this plan can fault whole shards (router-level chaos).
    #[must_use]
    pub fn shard_chaos_active(&self) -> bool {
        self.shard_kill_per_10k + self.shard_stall_per_10k > 0 || !self.force_shard.is_empty()
    }

    /// The shard fault (if any) the router's monitor should apply to
    /// `shard` at monitor round `round`. Deterministic over
    /// `(seed, shard, round)` only, so a chaos run kills the same shards
    /// at the same rounds regardless of request traffic.
    #[must_use]
    pub fn decide_shard(&self, shard: usize, round: u64) -> Option<FaultKind> {
        if let Some(&(_, _, kind)) = self
            .force_shard
            .iter()
            .find(|&&(s, r, _)| s == shard && r == round)
        {
            return Some(kind);
        }
        let (k, s) = (self.shard_kill_per_10k, self.shard_stall_per_10k);
        if k + s == 0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (shard as u64).wrapping_mul(0xd605_bbb5_8c8a_bc03)
                ^ round.wrapping_mul(0x2545_f491_4f6c_dd1d),
        );
        #[allow(clippy::cast_possible_truncation)] // draw < 10_000
        let draw = rng.random_range(0..10_000) as u32;
        if draw < k {
            Some(FaultKind::ShardKill)
        } else if draw < k + s {
            Some(FaultKind::ShardStall)
        } else {
            None
        }
    }

    /// How long an injected straggler sleeps.
    #[must_use]
    pub fn straggle_duration(&self) -> Duration {
        Duration::from_millis(self.straggle_ms)
    }

    /// Soft fault: return a corrupted `product`. The corruption is drawn
    /// from the same deterministic stream as [`Self::decide`]; its shape is
    /// set by [`ChaosConfig::corruption`].
    #[must_use]
    pub fn corrupt(&self, product: &BigInt, request: u64, attempt: u32) -> BigInt {
        let mut rng = self.rng_for(request, attempt.wrapping_add(0x5bd1));
        match self.corruption {
            CorruptionKind::SingleLimb => {
                // One pseudo-random bit of one limb (a corrupted zero
                // becomes one).
                let mut limbs = product.limbs().to_vec();
                if limbs.is_empty() {
                    return BigInt::one();
                }
                let limb = rng.random_range(0..limbs.len() as u64) as usize;
                let bit = rng.random_range(0..64);
                limbs[limb] ^= 1u64 << bit;
                BigInt::from_sign_limbs(product.sign(), limbs)
            }
            CorruptionKind::ResidueEvading => {
                // Add c · 2^{64i} · (2^128 − 1) = (c << 64(i+2)) − (c << 64i)
                // with c ≠ 0: nonzero, multi-limb, and ≡ 0 under both word
                // moduli, so residue_pair(corrupt) == residue_pair(product).
                let i = if product.word_len() == 0 {
                    0
                } else {
                    rng.random_range(0..product.word_len() as u64) as usize
                };
                let c = 1 + rng.random_range(0..u64::MAX);
                let mut hi = vec![0u64; i + 2];
                hi.push(c);
                let mut lo = vec![0u64; i];
                lo.push(c);
                let delta = &BigInt::from_sign_limbs(Sign::Positive, hi)
                    - &BigInt::from_sign_limbs(Sign::Positive, lo);
                product + &delta
            }
        }
    }

    /// Read a chaos plan from a parsed JSON object; absent fields keep
    /// their defaults. `force` entries are `{"index": N, "kind": "panic"}`.
    pub fn from_json(json: &Json) -> Result<ChaosConfig, ConfigError> {
        let d = ChaosConfig::default();
        let get_u64 = |key: &str, default: u64| -> Result<u64, ConfigError> {
            match json.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or_else(|| {
                    ConfigError::Invalid(format!("chaos.{key} must be a non-negative integer"))
                }),
            }
        };
        let get_u32 = |key: &str, default: u32| -> Result<u32, ConfigError> {
            get_u64(key, u64::from(default)).and_then(|v| {
                u32::try_from(v)
                    .map_err(|_| ConfigError::Invalid(format!("chaos.{key} out of range")))
            })
        };
        let corruption = match json.get("corruption") {
            None => d.corruption,
            Some(Json::Str(name)) => CorruptionKind::from_name(name).ok_or_else(|| {
                ConfigError::Invalid(
                    "chaos.corruption must be \"single_limb\" or \"residue_evading\"".to_string(),
                )
            })?,
            Some(_) => {
                return Err(ConfigError::Invalid(
                    "chaos.corruption must be a string".to_string(),
                ))
            }
        };
        let escalate_panics = match json.get("escalate_panics") {
            None => d.escalate_panics,
            Some(v) => v.as_bool().ok_or_else(|| {
                ConfigError::Invalid("chaos.escalate_panics must be a boolean".to_string())
            })?,
        };
        let force = match json.get("force") {
            None => d.force.clone(),
            Some(Json::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let index = item
                        .get("index")
                        .and_then(Json::as_u64)
                        .ok_or_else(invalid_force)?;
                    let kind = match item.get("kind") {
                        Some(Json::Str(name)) => {
                            FaultKind::from_name(name).ok_or_else(invalid_force)?
                        }
                        _ => return Err(invalid_force()),
                    };
                    if kind.is_shard_fault() {
                        return Err(invalid_force());
                    }
                    out.push((index, kind));
                }
                out
            }
            Some(_) => return Err(invalid_force()),
        };
        let force_shard = match json.get("force_shard") {
            None => d.force_shard.clone(),
            Some(Json::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let shard = item
                        .get("shard")
                        .and_then(Json::as_u64)
                        .and_then(|v| usize::try_from(v).ok())
                        .ok_or_else(invalid_force_shard)?;
                    let round = item
                        .get("round")
                        .and_then(Json::as_u64)
                        .ok_or_else(invalid_force_shard)?;
                    let kind = match item.get("kind") {
                        Some(Json::Str(name)) => {
                            FaultKind::from_name(name).ok_or_else(invalid_force_shard)?
                        }
                        _ => return Err(invalid_force_shard()),
                    };
                    if !kind.is_shard_fault() {
                        return Err(invalid_force_shard());
                    }
                    out.push((shard, round, kind));
                }
                out
            }
            Some(_) => return Err(invalid_force_shard()),
        };
        let cfg = ChaosConfig {
            seed: get_u64("seed", d.seed)?,
            panic_per_10k: get_u32("panic_per_10k", d.panic_per_10k)?,
            straggle_per_10k: get_u32("straggle_per_10k", d.straggle_per_10k)?,
            corrupt_per_10k: get_u32("corrupt_per_10k", d.corrupt_per_10k)?,
            corruption,
            straggle_ms: get_u64("straggle_ms", d.straggle_ms)?,
            max_faulty_attempts: get_u32("max_faulty_attempts", d.max_faulty_attempts)?,
            escalate_panics,
            force,
            shard_kill_per_10k: get_u32("shard_kill_per_10k", d.shard_kill_per_10k)?,
            shard_stall_per_10k: get_u32("shard_stall_per_10k", d.shard_stall_per_10k)?,
            stall_rounds: get_u64("stall_rounds", d.stall_rounds)?,
            force_shard,
        };
        if cfg.panic_per_10k + cfg.straggle_per_10k + cfg.corrupt_per_10k > 10_000 {
            return Err(ConfigError::Invalid(
                "chaos fault rates must sum to at most 10000 per 10k".to_string(),
            ));
        }
        if cfg.shard_kill_per_10k + cfg.shard_stall_per_10k > 10_000 {
            return Err(ConfigError::Invalid(
                "chaos shard fault rates must sum to at most 10000 per 10k".to_string(),
            ));
        }
        Ok(cfg)
    }

    pub(crate) fn to_json_value(&self) -> Json {
        obj([
            ("seed", Json::Num(i128::from(self.seed))),
            ("panic_per_10k", Json::Num(i128::from(self.panic_per_10k))),
            (
                "straggle_per_10k",
                Json::Num(i128::from(self.straggle_per_10k)),
            ),
            (
                "corrupt_per_10k",
                Json::Num(i128::from(self.corrupt_per_10k)),
            ),
            ("corruption", Json::Str(self.corruption.name().to_string())),
            ("straggle_ms", Json::Num(i128::from(self.straggle_ms))),
            (
                "max_faulty_attempts",
                Json::Num(i128::from(self.max_faulty_attempts)),
            ),
            ("escalate_panics", Json::Bool(self.escalate_panics)),
            (
                "force",
                Json::Arr(
                    self.force
                        .iter()
                        .map(|&(index, kind)| {
                            obj([
                                ("index", Json::Num(i128::from(index))),
                                ("kind", Json::Str(kind.name().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shard_kill_per_10k",
                Json::Num(i128::from(self.shard_kill_per_10k)),
            ),
            (
                "shard_stall_per_10k",
                Json::Num(i128::from(self.shard_stall_per_10k)),
            ),
            ("stall_rounds", Json::Num(i128::from(self.stall_rounds))),
            (
                "force_shard",
                Json::Arr(
                    self.force_shard
                        .iter()
                        .map(|&(shard, round, kind)| {
                            obj([
                                ("shard", Json::Num(shard as i128)),
                                ("round", Json::Num(i128::from(round))),
                                ("kind", Json::Str(kind.name().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn invalid_force() -> ConfigError {
    ConfigError::Invalid(
        "chaos.force must be an array of {\"index\": N, \"kind\": \"panic|straggle|corrupt\"}"
            .to_string(),
    )
}

fn invalid_force_shard() -> ConfigError {
    ConfigError::Invalid(
        "chaos.force_shard must be an array of \
         {\"shard\": N, \"round\": R, \"kind\": \"shard_kill|shard_stall\"}"
            .to_string(),
    )
}

/// Install a process-wide panic hook that silences the backtrace spam from
/// *expected* panics — chaos-injected worker panics and the distributed
/// backend's unrecoverable-run marker (both caught by the supervisor, or
/// deliberately escalated) — while delegating every other panic to the
/// previously installed hook. Idempotent; intended for chaos tests and
/// demos.
pub fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = |s: &str| {
                s.contains(INJECTED_PANIC_MSG) || s.contains(crate::distributed::UNRECOVERABLE_MSG)
            };
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| expected(s))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| expected(s));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_config() -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            panic_per_10k: 300,
            straggle_per_10k: 300,
            corrupt_per_10k: 400,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn decisions_are_deterministic_and_hit_every_kind() {
        let chaos = active_config();
        let mut counts = [0u32; 3];
        for request in 0..5_000 {
            let first = chaos.decide(request, 0);
            assert_eq!(first, chaos.decide(request, 0), "request {request}");
            if let Some(kind) = first {
                assert!(!kind.is_shard_fault(), "decide() never yields shard kinds");
                counts[kind as usize] += 1;
            }
            // Attempts at or past max_faulty_attempts are always clean.
            assert_eq!(chaos.decide(request, 1), None);
        }
        let total: u32 = counts.iter().sum();
        // 10% nominal rate over 5000 requests: expect roughly 500 faults.
        assert!((300..700).contains(&total), "total {total}");
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
    }

    #[test]
    fn forced_faults_override_rates() {
        let chaos = ChaosConfig {
            force: vec![(7, FaultKind::Corrupt)],
            ..ChaosConfig::default()
        };
        assert!(!chaos.is_active() || chaos.is_active()); // force makes it active
        assert!(chaos.is_active());
        assert_eq!(chaos.decide(7, 0), Some(FaultKind::Corrupt));
        assert_eq!(chaos.decide(7, 1), None, "forced faults fire once");
        assert_eq!(chaos.decide(8, 0), None);
    }

    #[test]
    fn corruption_always_changes_the_value() {
        let chaos = active_config();
        let mut rng = StdRng::seed_from_u64(9);
        for request in 0..50 {
            let x = BigInt::random_signed_bits(&mut rng, 1 + request * 13);
            let bad = chaos.corrupt(&x, request, 0);
            assert_ne!(bad, x, "request {request}");
            assert_eq!(bad, chaos.corrupt(&x, request, 0), "deterministic");
        }
        assert_eq!(chaos.corrupt(&BigInt::zero(), 0, 0), BigInt::one());
    }

    #[test]
    fn residue_evading_corruption_changes_value_but_preserves_residues() {
        let chaos = ChaosConfig {
            corruption: CorruptionKind::ResidueEvading,
            ..active_config()
        };
        let mut rng = StdRng::seed_from_u64(11);
        for request in 0..50 {
            let x = BigInt::random_signed_bits(&mut rng, 1 + request * 29);
            let bad = chaos.corrupt(&x, request, 0);
            assert_ne!(bad, x, "request {request}");
            assert_eq!(bad, chaos.corrupt(&x, request, 0), "deterministic");
            assert_eq!(
                ft_toom_core::residue::residue_pair(&bad),
                ft_toom_core::residue::residue_pair(&x),
                "request {request}: residues must be preserved"
            );
        }
        // The zero product is corrupted too (delta is never zero), and the
        // corruption still evades both residues.
        let bad_zero = chaos.corrupt(&BigInt::zero(), 3, 0);
        assert!(!bad_zero.is_zero());
        assert_eq!(
            ft_toom_core::residue::residue_pair(&bad_zero),
            (0, 0),
            "zero's residues preserved"
        );
    }

    #[test]
    fn shard_decisions_are_deterministic_and_forced_rounds_fire() {
        let chaos = ChaosConfig {
            seed: 7,
            shard_kill_per_10k: 400,
            shard_stall_per_10k: 400,
            force_shard: vec![(1, 5, FaultKind::ShardKill)],
            ..ChaosConfig::default()
        };
        assert!(chaos.shard_chaos_active());
        assert_eq!(chaos.decide_shard(1, 5), Some(FaultKind::ShardKill));
        let mut kills = 0u32;
        let mut stalls = 0u32;
        for shard in 0..3usize {
            for round in 0..2_000u64 {
                let fault = chaos.decide_shard(shard, round);
                assert_eq!(fault, chaos.decide_shard(shard, round));
                match fault {
                    Some(FaultKind::ShardKill) => kills += 1,
                    Some(FaultKind::ShardStall) => stalls += 1,
                    Some(other) => panic!("non-shard fault {other:?}"),
                    None => {}
                }
            }
        }
        // 8% nominal rate over 6000 draws: expect roughly 240 per kind.
        assert!((100..500).contains(&kills), "kills {kills}");
        assert!((100..500).contains(&stalls), "stalls {stalls}");
        // The default plan never touches shards.
        assert!(!ChaosConfig::default().shard_chaos_active());
        assert_eq!(ChaosConfig::default().decide_shard(0, 0), None);
    }

    #[test]
    fn json_round_trip() {
        let cfg = ChaosConfig {
            seed: 42,
            panic_per_10k: 100,
            straggle_per_10k: 200,
            corrupt_per_10k: 300,
            corruption: CorruptionKind::ResidueEvading,
            straggle_ms: 5,
            max_faulty_attempts: 2,
            escalate_panics: true,
            force: vec![(3, FaultKind::Panic), (9, FaultKind::Straggle)],
            shard_kill_per_10k: 10,
            shard_stall_per_10k: 20,
            stall_rounds: 6,
            force_shard: vec![(2, 11, FaultKind::ShardStall), (0, 4, FaultKind::ShardKill)],
        };
        let text = cfg.to_json_value().dump();
        let parsed = ChaosConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn json_rejects_bad_documents() {
        let over = r#"{"panic_per_10k": 9000, "corrupt_per_10k": 2000}"#;
        assert!(ChaosConfig::from_json(&Json::parse(over).unwrap()).is_err());
        let bad_kind = r#"{"force": [{"index": 1, "kind": "meltdown"}]}"#;
        assert!(ChaosConfig::from_json(&Json::parse(bad_kind).unwrap()).is_err());
        let bad_bool = r#"{"escalate_panics": 3}"#;
        assert!(ChaosConfig::from_json(&Json::parse(bad_bool).unwrap()).is_err());
        let bad_corruption = r#"{"corruption": "cosmic_ray"}"#;
        assert!(ChaosConfig::from_json(&Json::parse(bad_corruption).unwrap()).is_err());
        let bad_corruption_type = r#"{"corruption": 7}"#;
        assert!(ChaosConfig::from_json(&Json::parse(bad_corruption_type).unwrap()).is_err());
        // Shard kinds are rejected in request-level force, and vice versa.
        let shard_in_force = r#"{"force": [{"index": 1, "kind": "shard_kill"}]}"#;
        assert!(ChaosConfig::from_json(&Json::parse(shard_in_force).unwrap()).is_err());
        let req_in_shard = r#"{"force_shard": [{"shard": 0, "round": 1, "kind": "panic"}]}"#;
        assert!(ChaosConfig::from_json(&Json::parse(req_in_shard).unwrap()).is_err());
        let over_shard = r#"{"shard_kill_per_10k": 9000, "shard_stall_per_10k": 2000}"#;
        assert!(ChaosConfig::from_json(&Json::parse(over_shard).unwrap()).is_err());
    }
}
