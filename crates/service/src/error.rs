//! Typed errors for the service's robustness controls.

use std::time::Duration;

/// Why a submission was refused at the queue boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Every candidate worker queue was at capacity (backpressure).
    QueueFull {
        /// Per-worker queue capacity in force when the request was refused.
        capacity: usize,
    },
    /// The service has begun shutdown and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "all worker queues full (capacity {capacity} per worker)")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted request did not produce a product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MulError {
    /// The request's deadline elapsed before a worker reached it.
    DeadlineExceeded {
        /// How long the request sat in the queue before being rejected.
        waited: Duration,
    },
    /// The service shed the request under load: it sat queued longer than
    /// the configured `shed_after` bound without carrying a deadline.
    Shed {
        /// How long the request sat in the queue before being shed.
        waited: Duration,
    },
    /// The service stopped before the request was processed.
    ServiceStopped,
    /// Every supervised attempt failed — panics, stuck kernels, or
    /// verification mismatches persisted through the retry budget and the
    /// whole kernel degradation ladder.
    WorkerFault {
        /// Total attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for MulError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MulError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after waiting {waited:?}")
            }
            MulError::Shed { waited } => {
                write!(f, "request shed under load after waiting {waited:?}")
            }
            MulError::ServiceStopped => write!(f, "service stopped before request ran"),
            MulError::WorkerFault { attempts } => {
                write!(f, "worker fault persisted through {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for MulError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SubmitError::QueueFull { capacity: 8 };
        assert!(e.to_string().contains("capacity 8"));
        let e = MulError::DeadlineExceeded {
            waited: Duration::from_millis(5),
        };
        assert!(e.to_string().contains("deadline"));
        assert!(MulError::Shed {
            waited: Duration::ZERO
        }
        .to_string()
        .contains("shed"));
        assert!(MulError::WorkerFault { attempts: 6 }
            .to_string()
            .contains("6 attempts"));
    }
}
