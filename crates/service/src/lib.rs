//! ft-service: a batching multiplication service layer.
//!
//! Accepts [`MulRequest`]s on bounded per-worker queues, batches them,
//! auto-selects a kernel per request size, and returns results through
//! completion handles. See `DESIGN.md` §2 for the subsystem inventory.

pub mod config;
pub mod error;
pub mod json;
pub mod kernel;
pub mod metrics;
pub mod plan_cache;
pub mod service;

pub use config::{KernelPolicy, ServiceConfig};
pub use error::{MulError, SubmitError};
pub use kernel::Kernel;
pub use metrics::MetricsSnapshot;
pub use service::{MulService, ResponseHandle};
