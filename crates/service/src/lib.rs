//! ft-service: a batching multiplication service layer.
//!
//! Accepts [`MulRequest`]s on bounded per-worker queues, batches them,
//! auto-selects a kernel per request size, and returns results through
//! completion handles. Kernel execution is supervised: panics are caught,
//! products are residue-verified, failures are retried with backoff and
//! degraded across kernels by per-kernel circuit breakers, and a
//! deterministic chaos injector can exercise all of it. See `DESIGN.md`
//! §2 for the subsystem inventory.

pub mod chaos;
pub mod config;
pub(crate) mod dispatcher;
pub mod distributed;
pub mod error;
pub mod json;
pub mod kernel;
pub mod metrics;
pub mod plan_cache;
pub mod router;
pub mod service;
pub mod shard;
pub mod supervisor;
pub mod transport;
pub(crate) mod tuner;
pub mod verify;

pub use chaos::{install_quiet_panic_hook, ChaosConfig, CorruptionKind, FaultKind};
pub use config::{
    BatchingConfig, DistributedConfig, KernelPolicy, ServiceConfig, ShardConfig, TunerConfig,
};
pub use distributed::DistributedBackend;
pub use error::{MulError, SubmitError};
pub use kernel::Kernel;
pub use metrics::{DistributedSnapshot, MetricsSnapshot, RouterSnapshot, VerifySnapshot};
pub use router::{Router, ShardState};
pub use service::{BatchHandle, BatchResults, MulService, ResponseHandle};
pub use shard::Shard;
pub use supervisor::{BreakerPolicy, RetryPolicy};
pub use transport::{ChannelTransport, Command, MachineTransport, Reply, ShardId, Transport};
pub use verify::VerifyPolicy;
