//! Minimal JSON reader/writer for config files and metrics snapshots.
//!
//! The vendored `serde` derive is a no-op (offline container, see
//! `vendor/README.md`), so the service hand-rolls the small JSON subset it
//! needs: objects, arrays, strings, integers, booleans, and null. Floats
//! are accepted on parse but truncated to integers — none of our schemas
//! use them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (numbers are kept as `i128` — wide enough for any
/// config field or counter we serialize).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(i128),
    Str(String),
    Arr(Vec<Json>),
    /// BTreeMap so serialization order is deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Integer value, if this is a number.
    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer narrowed to `u64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|n| u64::try_from(n).ok())
    }

    /// Non-negative integer narrowed to `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i128().and_then(|n| usize::try_from(n).ok())
    }

    /// Boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    #[must_use]
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience: build a `Json::Obj` from key/value pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy the maximal unescaped run in one append; the
                    // delimiters are ASCII, so the run ends on a UTF-8
                    // character boundary of the (already valid) input.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_end = self.pos;
        // Accept (and discard) a fraction/exponent so valid JSON floats
        // don't fail the whole parse.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..int_end]).unwrap();
        text.parse::<i128>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: "bad number".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": 1, "b": [true, null, -7], "c": {"d": "x\"y"}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![
                Json::Bool(true),
                Json::Null,
                Json::Num(-7)
            ]))
        );
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Num(1).as_bool(), None);
        let again = Json::parse(&v.dump()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn floats_truncate_to_integer_part() {
        assert_eq!(
            Json::parse("[1.75, 2e3]").unwrap(),
            Json::Arr(vec![Json::Num(1), Json::Num(2)])
        );
    }
}
