//! N shards behind one front door: consistent-hash placement, heartbeat
//! liveness, failover re-routing, and cross-shard work stealing.
//!
//! ## Placement
//!
//! Requests are placed by **rendezvous (highest-random-weight) hashing**
//! on the key `(kernel, size class)`: every shard gets a pseudo-random
//! weight per key ([`rendezvous_weight`]) and the live shard with the
//! highest weight owns the key. Rendezvous hashing is *stable*: when a
//! shard dies or rejoins, only the keys it owned (≈ `1/N` of them) move;
//! every other key keeps its owner, so shard-local caches (plan cache,
//! tuner state) stay warm through membership churn.
//!
//! ## Liveness
//!
//! A monitor thread runs one detection round per `heartbeat_ms`: it
//! samples every shard's beat counter and feeds lag rows into the *same*
//! pure verdict function the simulated machine's in-run detector uses
//! ([`ft_machine::detect::verdict_from`]) — the service level reuses the
//! paper's detected fail-stop model one layer up. Shard lifecycle:
//!
//! ```text
//! Live ──lag ≥ 1──▶ Suspect ──lag ≥ deadline_budget──▶ Dead
//!   ▲                  │                                 │
//!   └──────beats advance───────────◀──(rejoin)───────────┘
//! ```
//!
//! A death is *survived*, not just observed: queued work the dead shard
//! surrenders (`ServiceStopped`) is re-routed to survivors by the
//! completion callback (`router.failovers`), work already started rides
//! the existing supervisor retry/verify ladder, and new work routes
//! around the corpse immediately. When one shard runs hot
//! (`queue depth > hot_watermark`) while a sibling idles
//! (`≤ idle_watermark`), placement redirects to the idle sibling
//! (`router.steals`). Only when *every* live shard refuses does the
//! router shed — callers map that to HTTP 429 with a live-depth
//! `Retry-After`.

use crate::config::{ServiceConfig, ShardConfig};
use crate::error::{MulError, SubmitError};
use crate::metrics::{size_class, MetricsSnapshot, RouterSnapshot};
use crate::service::{batch_pair, completion_pair, BatchHandle, Done, ResponseHandle};
use crate::shard::Shard;
use crate::transport::{ChannelTransport, Command, Reply, ShardId, Transport};
use ft_bigint::BigInt;
use ft_machine::detect::verdict_from;
use ft_machine::{DetectorConfig, RankStatus};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64: the same cheap mixer the fault-injection streams use.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The placement key of a request: its selected kernel and operand size
/// class, mixed into one word. Same-shape requests share a key, so they
/// land on the same shard and coalesce into the same batches.
#[must_use]
pub fn placement_key(kernel: usize, class: usize) -> u64 {
    splitmix64(((kernel as u64) << 32) | class as u64)
}

/// Rendezvous weight of `shard` for `key`. Pure and stateless: every
/// router (and every test) computes identical placements.
#[must_use]
pub fn rendezvous_weight(key: u64, shard: ShardId) -> u64 {
    splitmix64(key ^ splitmix64(shard as u64 + 1))
}

/// The rendezvous owner of `key` among `shards` (highest weight wins;
/// ties break toward the higher id, though 64-bit ties are fanciful).
#[must_use]
pub fn rendezvous_owner(key: u64, shards: &[ShardId]) -> Option<ShardId> {
    shards
        .iter()
        .copied()
        .max_by_key(|&s| (rendezvous_weight(key, s), s))
}

/// Routing state of one shard, as seen by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Heartbeats current; owns its share of the key space.
    Live,
    /// Heartbeats lagging but under the deadline budget; still routable.
    Suspect,
    /// Declared dead by the heartbeat verdict; excluded from routing
    /// until its beats advance again (rejoin).
    Dead,
}

struct MonitorClock {
    stopped: parking_lot::Mutex<bool>,
    tick: std::sync::Condvar,
    // std Condvar needs a std Mutex; pair the flag with one.
    gate: std::sync::Mutex<()>,
}

struct RouterInner {
    transport: Arc<dyn Transport>,
    cfg: ShardConfig,
    states: parking_lot::RwLock<Vec<ShardState>>,
    shard_deaths: AtomicU64,
    failovers: AtomicU64,
    steals: AtomicU64,
    rejoins: AtomicU64,
    monitor_rounds: AtomicU64,
    shutting_down: AtomicBool,
    clock: MonitorClock,
}

impl RouterInner {
    fn shard_count(&self) -> usize {
        self.states.read().len()
    }

    fn live_shards(&self) -> Vec<ShardId> {
        let states = self.states.read();
        (0..states.len())
            .filter(|&s| states[s] != ShardState::Dead)
            .collect()
    }

    fn depth(&self, shard: ShardId) -> usize {
        match self.transport.send(shard, Command::QueueDepth) {
            Reply::Depth(depth) => depth,
            _ => usize::MAX,
        }
    }

    /// Routable shards for `key`, best owner first, optionally excluding
    /// the shard a failover just fled.
    fn candidates(&self, key: u64, exclude: Option<ShardId>) -> Vec<ShardId> {
        let mut live: Vec<ShardId> = self
            .live_shards()
            .into_iter()
            .filter(|&s| Some(s) != exclude)
            .collect();
        if live.is_empty() {
            // Nowhere else to go: a lone (possibly suspect) excluded
            // shard beats giving up outright.
            live = self.live_shards();
        }
        live.sort_by_key(|&s| std::cmp::Reverse((rendezvous_weight(key, s), s)));
        live
    }

    fn placement_key_for(&self, a: &BigInt, b: &BigInt) -> u64 {
        let kernel = crate::Kernel::select(a, b, &self.cfg.service.kernel_policy);
        let bits = a.bit_length().min(b.bit_length());
        placement_key(kernel as usize, size_class(bits))
    }
}

/// Place (or re-place) one request. The initial placement is
/// synchronous: a terminal refusal is returned to the submitter with
/// nothing enqueued (`done` drops, resolving its never-shared handle).
/// Re-placements happen inside the completion callback of the previous
/// shard: a surrendered request (`ServiceStopped` from a killed shard)
/// re-routes to a survivor up to `max_failovers` times.
fn route(
    inner: &Arc<RouterInner>,
    a: BigInt,
    b: BigInt,
    deadline: Option<Duration>,
    done: Done,
    attempts: u32,
    exclude: Option<ShardId>,
) -> Result<(), SubmitError> {
    let key = inner.placement_key_for(&a, &b);
    let mut candidates = inner.candidates(key, exclude);
    // Cross-shard work stealing: when the owner runs hot and a sibling
    // idles, redirect this request to the idlest idle sibling.
    if candidates.len() >= 2 && inner.depth(candidates[0]) > inner.cfg.hot_watermark {
        let idle = candidates
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &s)| (inner.depth(s), i))
            .filter(|&(d, _)| d <= inner.cfg.idle_watermark)
            .min();
        if let Some((_, i)) = idle {
            candidates.swap(0, i);
            inner.steals.fetch_add(1, Ordering::Relaxed);
        }
    }
    let mut queue_full: Option<SubmitError> = None;
    for shard in candidates {
        let sent = inner.transport.send(
            shard,
            Command::Mul {
                a: a.clone(),
                b: b.clone(),
                deadline,
            },
        );
        match sent {
            Reply::Pending(handle) => {
                let inner = inner.clone();
                handle.on_ready(move |result| match result {
                    // The shard fail-stopped under this request before
                    // starting it: re-route to a survivor.
                    Err(MulError::ServiceStopped)
                        if !inner.shutting_down.load(Ordering::Acquire)
                            && attempts < inner.cfg.max_failovers =>
                    {
                        inner.failovers.fetch_add(1, Ordering::Relaxed);
                        // A terminal refusal drops `done`, which resolves
                        // the client's handle as ServiceStopped — correct:
                        // every survivor refused admission.
                        let _ = route(&inner, a, b, deadline, done, attempts + 1, Some(shard));
                    }
                    other => done.fulfill(other),
                });
                return Ok(());
            }
            Reply::Refused(error) => {
                // Keep probing the remaining candidates; remember the
                // strongest signal for the caller (QueueFull carries the
                // backpressure semantics a front door turns into 429).
                if matches!(error, SubmitError::QueueFull { .. }) || queue_full.is_none() {
                    queue_full = Some(error);
                }
            }
            _ => unreachable!("Mul replies are Pending or Refused"),
        }
    }
    Err(queue_full.unwrap_or(SubmitError::ShuttingDown))
}

/// N [`MulService`](crate::MulService) shards behind consistent-hash
/// placement, heartbeat liveness, failover, and work stealing. See the
/// module docs for the topology; see [`ShardConfig`] for the knobs.
///
/// ```
/// use ft_service::router::Router;
/// use ft_service::config::ShardConfig;
/// use ft_bigint::BigInt;
///
/// let router = Router::start(ShardConfig {
///     shards: 2,
///     ..ShardConfig::default()
/// });
/// let a: BigInt = "123456789123456789".parse().unwrap();
/// let b: BigInt = "-987654321987654321".parse().unwrap();
/// let handle = router.submit(a.clone(), b.clone()).unwrap();
/// assert_eq!(handle.wait().unwrap(), a.mul_schoolbook(&b));
/// let snap = router.shutdown();
/// assert_eq!(snap.served, 1);
/// assert_eq!(snap.router.shards, 2);
/// ```
pub struct Router {
    inner: Arc<RouterInner>,
    monitor: Option<JoinHandle<()>>,
}

impl Router {
    /// Start `cfg.shards` fresh shards behind a router (the in-process
    /// [`ChannelTransport`]).
    #[must_use]
    pub fn start(cfg: ShardConfig) -> Router {
        let shards = (0..cfg.shards.max(1))
            .map(|id| Shard::start(id, cfg.service.clone(), cfg.heartbeat_ms))
            .collect();
        Router::with_transport(Arc::new(ChannelTransport::new(shards)), cfg)
    }

    /// Wrap one already-running service as a single-shard topology — the
    /// compatibility path for unsharded callers (the HTTP front door's
    /// default). Routing degenerates to pass-through; the heartbeat
    /// monitor still runs.
    #[must_use]
    pub fn single(service: crate::MulService) -> Router {
        let cfg = ShardConfig {
            shards: 1,
            service: service.config().clone(),
            ..ShardConfig::default()
        };
        let shard = Shard::from_service(0, service, cfg.heartbeat_ms);
        Router::with_transport(Arc::new(ChannelTransport::new(vec![shard])), cfg)
    }

    /// Run the router over any [`Transport`] (the seam the simulated
    /// machine plugs into via [`crate::transport::MachineTransport`]).
    #[must_use]
    pub fn with_transport(transport: Arc<dyn Transport>, cfg: ShardConfig) -> Router {
        let n = transport.shards();
        let inner = Arc::new(RouterInner {
            transport,
            cfg,
            states: parking_lot::RwLock::new(vec![ShardState::Live; n]),
            shard_deaths: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            monitor_rounds: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            clock: MonitorClock {
                stopped: parking_lot::Mutex::new(false),
                tick: std::sync::Condvar::new(),
                gate: std::sync::Mutex::new(()),
            },
        });
        let monitor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("ftsvc-router".to_string())
                .spawn(move || monitor_loop(&inner))
                .expect("spawn router monitor")
        };
        Router {
            inner,
            monitor: Some(monitor),
        }
    }

    /// Submit `a × b` with no deadline.
    pub fn submit(&self, a: BigInt, b: BigInt) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(a, b, None)
    }

    /// Submit `a × b` under a deadline.
    pub fn submit_with_deadline(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Duration,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(a, b, Some(deadline))
    }

    fn submit_inner(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Option<Duration>,
    ) -> Result<ResponseHandle, SubmitError> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let (handle, guard) = completion_pair();
        route(&self.inner, a, b, deadline, Done::Single(guard), 0, None)?;
        Ok(handle)
    }

    /// Bulk submission: each pair routes (and fails over) independently,
    /// so one dead shard never poisons a whole batch; pairs that land on
    /// the same shard still coalesce in its dispatcher. A terminal
    /// refusal for any pair refuses the whole submission (matching
    /// [`crate::MulService::submit_many`]'s all-or-nothing admission).
    pub fn submit_many(&self, pairs: Vec<(BigInt, BigInt)>) -> Result<BatchHandle, SubmitError> {
        self.submit_many_inner(pairs, None)
    }

    /// [`Self::submit_many`] with one deadline covering every pair.
    pub fn submit_many_with_deadline(
        &self,
        pairs: Vec<(BigInt, BigInt)>,
        deadline: Duration,
    ) -> Result<BatchHandle, SubmitError> {
        self.submit_many_inner(pairs, Some(deadline))
    }

    fn submit_many_inner(
        &self,
        pairs: Vec<(BigInt, BigInt)>,
        deadline: Option<Duration>,
    ) -> Result<BatchHandle, SubmitError> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let (handle, slots) = batch_pair(pairs.len());
        let mut error = None;
        for ((a, b), slot) in pairs.into_iter().zip(slots) {
            if error.is_some() {
                // Already refusing the submission; surrender the slot
                // (drop resolves it) instead of enqueuing more work.
                continue;
            }
            if let Err(e) = route(&self.inner, a, b, deadline, Done::Slot(slot), 0, None) {
                error = Some(e);
            }
        }
        match error {
            None => Ok(handle),
            Some(e) => Err(e),
        }
    }

    /// Point-in-time merged metrics across every shard, with the
    /// `router` topology section stamped in.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        for shard in 0..self.inner.shard_count() {
            if let Reply::Metrics(snap) = self.inner.transport.send(shard, Command::Metrics) {
                merged.merge(&snap);
            }
        }
        merged.router = self.router_snapshot();
        merged
    }

    fn router_snapshot(&self) -> RouterSnapshot {
        RouterSnapshot {
            shards: self.inner.shard_count() as u64,
            live: self.inner.live_shards().len() as u64,
            shard_deaths: self.inner.shard_deaths.load(Ordering::Relaxed),
            failovers: self.inner.failovers.load(Ordering::Relaxed),
            steals: self.inner.steals.load(Ordering::Relaxed),
            rejoins: self.inner.rejoins.load(Ordering::Relaxed),
            monitor_rounds: self.inner.monitor_rounds.load(Ordering::Relaxed),
        }
    }

    /// The topology configuration.
    #[must_use]
    pub fn config(&self) -> &ShardConfig {
        &self.inner.cfg
    }

    /// The per-shard service configuration.
    #[must_use]
    pub fn service_config(&self) -> &ServiceConfig {
        &self.inner.cfg.service
    }

    /// The *minimum* queue depth across live shards — the backlog a new
    /// request would actually face, since placement prefers survivors
    /// and steals toward idle siblings. This is what a front door's
    /// `Retry-After` must be derived from: the deepest queue may belong
    /// to a dead shard no retry will ever land on.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner
            .live_shards()
            .into_iter()
            .map(|s| self.inner.depth(s))
            .min()
            .unwrap_or(0)
    }

    /// Per-shard queue depths, indexed by shard id (`usize::MAX` for a
    /// shard that no longer answers). Operational visibility: which
    /// shard is hot, which is idle, which is gone.
    #[must_use]
    pub fn shard_depths(&self) -> Vec<usize> {
        (0..self.inner.shard_count())
            .map(|s| self.inner.depth(s))
            .collect()
    }

    /// Current routing states, indexed by shard id.
    #[must_use]
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.inner.states.read().clone()
    }

    /// Ids of shards currently routable (not `Dead`).
    #[must_use]
    pub fn live_shards(&self) -> Vec<ShardId> {
        self.inner.live_shards()
    }

    /// Fail-stop one shard (testing / operational drain). Death is still
    /// *detected* by the heartbeat monitor, not assumed from this call.
    pub fn kill_shard(&self, shard: ShardId) {
        let _ = self.inner.transport.send(shard, Command::Kill);
    }

    /// Stall one shard's heartbeats for `rounds` monitor rounds.
    pub fn stall_shard(&self, shard: ShardId, rounds: u64) {
        let _ = self.inner.transport.send(shard, Command::Stall { rounds });
    }

    /// The rendezvous owner a fresh `(a, b)` request would be placed on,
    /// ignoring stealing (testing / introspection).
    #[must_use]
    pub fn owner_of(&self, a: &BigInt, b: &BigInt) -> Option<ShardId> {
        let key = self.inner.placement_key_for(a, b);
        rendezvous_owner(key, &self.inner.live_shards())
    }

    /// Stop routing, stop the monitor, drain and stop every shard, and
    /// return the merged final metrics.
    #[must_use]
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.stop_monitor();
        let mut merged = MetricsSnapshot::default();
        for shard in 0..self.inner.shard_count() {
            if let Reply::Metrics(snap) = self.inner.transport.send(shard, Command::Shutdown) {
                merged.merge(&snap);
            }
        }
        merged.router = self.router_snapshot();
        merged
    }

    fn stop_monitor(&mut self) {
        *self.inner.clock.stopped.lock() = true;
        self.inner.clock.tick.notify_all();
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.stop_monitor();
        for shard in 0..self.inner.shard_count() {
            let _ = self.inner.transport.send(shard, Command::Shutdown);
        }
    }
}

/// One heartbeat round per `heartbeat_ms`: apply shard-level chaos,
/// sample beats, run the pure detector verdict, and transition states.
fn monitor_loop(inner: &Arc<RouterInner>) {
    let n = inner.shard_count();
    let period = Duration::from_millis(inner.cfg.heartbeat_ms.max(1));
    let detector = DetectorConfig {
        deadline_budget: inner.cfg.deadline_budget.max(1),
        straggler_factor: 0,
        heartbeat_period: 1,
    };
    let mut round: u64 = 0;
    let mut last_beats = vec![0u64; n];
    let mut last_advance = vec![0u64; n];
    let mut incarnations = vec![0u32; n];
    loop {
        {
            let guard = inner
                .clock
                .gate
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if *inner.clock.stopped.lock() {
                return;
            }
            let (_guard, _timeout) = inner
                .clock
                .tick
                .wait_timeout(guard, period)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if *inner.clock.stopped.lock() {
            return;
        }
        round += 1;
        inner.monitor_rounds.fetch_add(1, Ordering::Relaxed);
        // Shard-level chaos, deterministic in (seed, shard, round).
        if let Some(chaos) = &inner.cfg.service.chaos {
            for shard in 0..n {
                match chaos.decide_shard(shard, round) {
                    Some(crate::FaultKind::ShardKill) => {
                        let _ = inner.transport.send(shard, Command::Kill);
                    }
                    Some(crate::FaultKind::ShardStall) => {
                        let _ = inner.transport.send(
                            shard,
                            Command::Stall {
                                rounds: chaos.stall_rounds,
                            },
                        );
                    }
                    _ => {}
                }
            }
        }
        // Sample heartbeats and build the detector's gather rows. `lag`
        // is rounds since this shard's beat counter last advanced — the
        // same hb_total − hb_live shape the machine-level detector sees.
        let mut rows = Vec::with_capacity(n);
        for shard in 0..n {
            if let Reply::Beats(beats) = inner.transport.send(shard, Command::Beats) {
                if beats > last_beats[shard] || round == 1 {
                    last_beats[shard] = beats;
                    last_advance[shard] = round;
                }
            }
            let lag = round - last_advance[shard];
            rows.push(RankStatus {
                rank: shard,
                incarnation: incarnations[shard],
                hb_total: round,
                hb_live: round - lag,
                clock: 0,
            });
        }
        let verdict = verdict_from(rows, &detector);
        let mut states = inner.states.write();
        for shard in 0..n {
            let lag = round - last_advance[shard];
            let next = if verdict.is_dead(shard) {
                ShardState::Dead
            } else if lag > 0 {
                ShardState::Suspect
            } else {
                ShardState::Live
            };
            match (states[shard], next) {
                (ShardState::Dead, ShardState::Dead) => {}
                (_, ShardState::Dead) => {
                    // Heartbeat verdict: the shard is gone. Meter the
                    // death; routing now excludes it.
                    inner.shard_deaths.fetch_add(1, Ordering::Relaxed);
                    incarnations[shard] += 1;
                    states[shard] = ShardState::Dead;
                }
                (ShardState::Dead, _) => {
                    // Beats advanced again: a stalled shard rejoins.
                    inner.rejoins.fetch_add(1, Ordering::Relaxed);
                    states[shard] = next;
                }
                _ => states[shard] = next,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_owner_is_argmax_of_weights() {
        let shards: Vec<ShardId> = (0..5).collect();
        for kernel in 0..5 {
            for class in 0..8 {
                let key = placement_key(kernel, class);
                let owner = rendezvous_owner(key, &shards).unwrap();
                for &s in &shards {
                    assert!(rendezvous_weight(key, owner) >= rendezvous_weight(key, s));
                }
            }
        }
        assert_eq!(rendezvous_owner(7, &[]), None);
    }

    #[test]
    fn placement_spreads_keys_across_shards() {
        // 5 kernels × 32 classes over 4 shards: every shard should own
        // a non-trivial slice of the key space.
        let shards: Vec<ShardId> = (0..4).collect();
        let mut owned = [0usize; 4];
        for kernel in 0..5 {
            for class in 0..32 {
                let key = placement_key(kernel, class);
                owned[rendezvous_owner(key, &shards).unwrap()] += 1;
            }
        }
        for (shard, &count) in owned.iter().enumerate() {
            assert!(count >= 160 / 16, "shard {shard} owns only {count} keys");
        }
    }
}
