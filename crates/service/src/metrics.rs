//! Service metrics: lock-free counters plus a JSON-serializable snapshot.
//!
//! ## Snapshot consistency
//!
//! Counters are independent relaxed atomics, so a snapshot taken while
//! workers are recording can observe *torn* combinations (a request
//! counted in one counter but not yet in another). The snapshot therefore
//! derives `served` from the latency histogram itself — the bucket sum
//! *is* the served count, so `served == Σ latency_buckets` holds by
//! construction in every snapshot. The remaining per-request counters
//! (`per_kernel`, `latency_total_us`, the size-class stats) may lag or
//! lead `served` by the handful of requests in flight at snapshot time;
//! they converge exactly once the service quiesces (e.g. the final
//! snapshot returned by `shutdown`).

use crate::chaos::FaultKind;
use crate::json::{obj, Json};
use crate::kernel::Kernel;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// unbounded. Spans schoolbook-on-tiny-operands through parallel
/// multi-megabit products.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 8] =
    [100, 500, 1_000, 5_000, 25_000, 100_000, 500_000, 2_000_000];

const BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// Number of operand size classes tracked per kernel. Class `c` covers
/// operands whose smaller bit length lies in `[2^c, 2^{c+1})` (class 0
/// additionally covers 0-bit operands), so 32 classes span past 2-Gbit
/// operands — far beyond anything the service multiplies.
pub const SIZE_CLASSES: usize = 32;

/// The size class of an operand pair by its smaller bit length.
#[must_use]
pub fn size_class(bits: u64) -> usize {
    if bits < 2 {
        return 0;
    }
    (bits.ilog2() as usize).min(SIZE_CLASSES - 1)
}

/// Per-(kernel, size-class) `(served count, total latency µs)` cells, in
/// [`crate::kernel::Kernel::ALL`] order; the tuner's raw material.
pub(crate) type ClassStats = [[(u64, u64); SIZE_CLASSES]; 5];

/// Saturating add for counters that accumulate unbounded sums (latency
/// totals): a long chaos run must pin at `u64::MAX` instead of wrapping.
fn saturating_fetch_add(counter: &AtomicU64, value: u64) {
    // fetch_update with a total closure never returns Err.
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
        Some(current.saturating_add(value))
    });
}

/// Shared mutable counters, updated by submitters and workers.
#[derive(Default)]
pub(crate) struct Metrics {
    rejected_queue_full: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    per_kernel: [AtomicU64; 5],
    queue_depth_high_water: AtomicUsize,
    latency_buckets: [AtomicU64; BUCKETS],
    latency_total_us: AtomicU64,
    /// Served-request counts per (kernel, operand size class).
    class_served: [[AtomicU64; SIZE_CLASSES]; 5],
    /// Summed completion latency (µs, saturating) per (kernel, class).
    class_total_us: [[AtomicU64; SIZE_CLASSES]; 5],
    batches: AtomicU64,
    batched_requests: AtomicU64,
    batch_size_high_water: AtomicUsize,
    batch_faults: AtomicU64,
    batch_element_retries: AtomicU64,
    tuner_retunes: AtomicU64,
    retries: AtomicU64,
    fallbacks: AtomicU64,
    worker_faults: AtomicU64,
    residue_checks: AtomicU64,
    verification_failures: AtomicU64,
    verify_residue_failures: AtomicU64,
    verify_residue_cost_us: AtomicU64,
    verify_dual_checks: AtomicU64,
    verify_dual_failures: AtomicU64,
    verify_dual_cost_us: AtomicU64,
    verify_recompute_checks: AtomicU64,
    verify_recompute_failures: AtomicU64,
    verify_recompute_cost_us: AtomicU64,
    verify_escalations: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_closes: AtomicU64,
    injected_faults: [AtomicU64; 5],
    distributed_runs: AtomicU64,
    distributed_recoveries: AtomicU64,
    distributed_unrecoverable: AtomicU64,
    distributed_false_positives: AtomicU64,
    distributed_detect_rounds: AtomicU64,
    distributed_stragglers_flagged: AtomicU64,
    distributed_max_detect_latency: AtomicU64,
}

impl Metrics {
    pub(crate) fn record_served(&self, kernel: Kernel, bits: u64, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.per_kernel[kernel as usize].fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.latency_total_us, us);
        let class = size_class(bits);
        self.class_served[kernel as usize][class].fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.class_total_us[kernel as usize][class], us);
    }

    pub(crate) fn record_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// A coalesced batch of `size` requests was dispatched as one unit.
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_size_high_water
            .fetch_max(size, Ordering::Relaxed);
    }

    /// A whole-batch attempt failed (hard fault); its elements were
    /// re-executed individually.
    pub(crate) fn record_batch_fault(&self) {
        self.batch_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// One batch element was retried on the individual supervised path.
    pub(crate) fn record_batch_element_retry(&self) {
        self.batch_element_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// The adaptive tuner published a new kernel policy.
    pub(crate) fn record_retune(&self) {
        self.tuner_retunes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_fault(&self) {
        self.worker_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Rung 1 of the verification ladder: one residue spot-check took
    /// `us` µs; `ok` is whether the product passed. A failure also counts
    /// toward the legacy `verification_failures` total.
    pub(crate) fn record_residue_verify(&self, us: u64, ok: bool) {
        self.residue_checks.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.verify_residue_cost_us, us);
        if !ok {
            self.verify_residue_failures.fetch_add(1, Ordering::Relaxed);
            self.verification_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rung 2: one sampled dual-algorithm recomputation took `us` µs;
    /// `mismatch` is whether the two algorithms disagreed. A disagreement
    /// escalates to rung 3 and is counted as an escalation here.
    pub(crate) fn record_dual_check(&self, us: u64, mismatch: bool) {
        self.verify_dual_checks.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.verify_dual_cost_us, us);
        if mismatch {
            self.verify_dual_failures.fetch_add(1, Ordering::Relaxed);
            self.verify_escalations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rung 3: one full clean recompute (mismatch localization) took `us`
    /// µs; `original_corrupt` is whether it confirmed the served-path
    /// product was the corrupt one (that also counts toward the legacy
    /// `verification_failures` total — a caught soft fault).
    pub(crate) fn record_recompute(&self, us: u64, original_corrupt: bool) {
        self.verify_recompute_checks.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.verify_recompute_cost_us, us);
        if original_corrupt {
            self.verify_recompute_failures
                .fetch_add(1, Ordering::Relaxed);
            self.verification_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_close(&self) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_injected(&self, kind: FaultKind) {
        self.injected_faults[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// One completed run on the simulated coded machine, with the totals
    /// of its run report: simulated deaths the heartbeat detector had to
    /// find, detection rounds, detector false positives, straggler flags,
    /// and the run's worst detection latency in simulated ticks.
    pub(crate) fn record_distributed_run(
        &self,
        deaths: u64,
        detect_rounds: u64,
        false_positives: u64,
        stragglers_flagged: u64,
        max_detect_latency_ticks: u64,
    ) {
        self.distributed_runs.fetch_add(1, Ordering::Relaxed);
        if deaths > 0 {
            self.distributed_recoveries.fetch_add(1, Ordering::Relaxed);
        }
        self.distributed_detect_rounds
            .fetch_add(detect_rounds, Ordering::Relaxed);
        self.distributed_false_positives
            .fetch_add(false_positives, Ordering::Relaxed);
        self.distributed_stragglers_flagged
            .fetch_add(stragglers_flagged, Ordering::Relaxed);
        self.distributed_max_detect_latency
            .fetch_max(max_detect_latency_ticks, Ordering::Relaxed);
    }

    /// A distributed attempt whose injected faults exceeded the code's
    /// redundancy; the request fell back down the local kernel ladder.
    pub(crate) fn record_distributed_unrecoverable(&self) {
        self.distributed_unrecoverable
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Per-(kernel, size-class) `(count, total_us)` cells for the tuner.
    pub(crate) fn kernel_class_stats(&self) -> ClassStats {
        std::array::from_fn(|k| {
            std::array::from_fn(|c| {
                (
                    self.class_served[k][c].load(Ordering::Relaxed),
                    self.class_total_us[k][c].load(Ordering::Relaxed),
                )
            })
        })
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, plan_stats: (u64, u64)) -> MetricsSnapshot {
        let latency_buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.latency_buckets[i].load(Ordering::Relaxed));
        // Self-consistency: served is *defined* as the bucket sum, so the
        // histogram always accounts for exactly the served requests even
        // when the snapshot races concurrent record_served calls.
        let served = latency_buckets.iter().sum();
        let kernel_classes = Kernel::ALL
            .iter()
            .flat_map(|&k| {
                (0..SIZE_CLASSES).filter_map(move |c| {
                    let count = self.class_served[k as usize][c].load(Ordering::Relaxed);
                    (count > 0).then(|| KernelClassRow {
                        kernel: k.name(),
                        class_bits: 1u64 << c,
                        served: count,
                        total_us: self.class_total_us[k as usize][c].load(Ordering::Relaxed),
                    })
                })
            })
            .collect();
        MetricsSnapshot {
            served,
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            per_kernel: Kernel::ALL.map(|k| {
                (
                    k.name(),
                    self.per_kernel[k as usize].load(Ordering::Relaxed),
                )
            }),
            queue_depth,
            queue_depth_high_water: self.queue_depth_high_water.load(Ordering::Relaxed),
            latency_buckets,
            latency_total_us: self.latency_total_us.load(Ordering::Relaxed),
            kernel_classes,
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            batch_size_high_water: self.batch_size_high_water.load(Ordering::Relaxed),
            batch_faults: self.batch_faults.load(Ordering::Relaxed),
            batch_element_retries: self.batch_element_retries.load(Ordering::Relaxed),
            tuner_retunes: self.tuner_retunes.load(Ordering::Relaxed),
            plan_cache_hits: plan_stats.0,
            plan_cache_misses: plan_stats.1,
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            worker_faults: self.worker_faults.load(Ordering::Relaxed),
            residue_checks: self.residue_checks.load(Ordering::Relaxed),
            verification_failures: self.verification_failures.load(Ordering::Relaxed),
            verify: VerifySnapshot {
                residue_checks: self.residue_checks.load(Ordering::Relaxed),
                residue_failures: self.verify_residue_failures.load(Ordering::Relaxed),
                residue_cost_us: self.verify_residue_cost_us.load(Ordering::Relaxed),
                dual_checks: self.verify_dual_checks.load(Ordering::Relaxed),
                dual_failures: self.verify_dual_failures.load(Ordering::Relaxed),
                dual_cost_us: self.verify_dual_cost_us.load(Ordering::Relaxed),
                recompute_checks: self.verify_recompute_checks.load(Ordering::Relaxed),
                recompute_failures: self.verify_recompute_failures.load(Ordering::Relaxed),
                recompute_cost_us: self.verify_recompute_cost_us.load(Ordering::Relaxed),
                escalations: self.verify_escalations.load(Ordering::Relaxed),
            },
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            injected_faults: FaultKind::ALL.map(|k| {
                (
                    k.name(),
                    self.injected_faults[k as usize].load(Ordering::Relaxed),
                )
            }),
            distributed: DistributedSnapshot {
                runs: self.distributed_runs.load(Ordering::Relaxed),
                recoveries: self.distributed_recoveries.load(Ordering::Relaxed),
                unrecoverable: self.distributed_unrecoverable.load(Ordering::Relaxed),
                false_positives: self.distributed_false_positives.load(Ordering::Relaxed),
                detect_rounds: self.distributed_detect_rounds.load(Ordering::Relaxed),
                stragglers_flagged: self.distributed_stragglers_flagged.load(Ordering::Relaxed),
                max_detect_latency_ticks: self
                    .distributed_max_detect_latency
                    .load(Ordering::Relaxed),
            },
            router: RouterSnapshot::default(),
        }
    }
}

/// One non-empty `(kernel, operand size class)` cell of the served-latency
/// breakdown; the adaptive tuner steers thresholds from these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct KernelClassRow {
    /// Kernel name ([`Kernel::name`]).
    pub kernel: &'static str,
    /// Lower bound of the class: operands with
    /// `class_bits <= min_bits < 2 * class_bits` land here.
    pub class_bits: u64,
    /// Requests served from this cell.
    pub served: u64,
    /// Summed completion latency of the cell, µs (saturating).
    pub total_us: u64,
}

impl KernelClassRow {
    /// Mean completion latency of the cell in µs.
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.served).unwrap_or(0)
    }
}

/// A point-in-time copy of the service's counters. `Default` is the
/// all-zero snapshot (kernel and fault-kind labels empty) — useful as a
/// fixture for exporters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests completed successfully. Always equals the sum of
    /// `latency_buckets` (derived from the histogram, see the module docs
    /// on snapshot consistency).
    pub served: u64,
    /// Submissions refused at the queue boundary (backpressure).
    pub rejected_queue_full: u64,
    /// Accepted requests rejected because their deadline passed in queue.
    pub timed_out: u64,
    /// Accepted requests shed under load (queue age exceeded the bound).
    pub shed: u64,
    /// Completions per kernel, keyed by [`Kernel::name`]. May differ from
    /// `served` by requests in flight at snapshot time.
    pub per_kernel: [(&'static str, u64); 5],
    /// Total queued requests at snapshot time.
    pub queue_depth: usize,
    /// Largest single-queue depth observed at submit time.
    pub queue_depth_high_water: usize,
    /// Completion-latency histogram; bucket `i` counts requests at or
    /// under [`LATENCY_BUCKET_BOUNDS_US`]`[i]` µs, with one overflow
    /// bucket at the end.
    pub latency_buckets: [u64; BUCKETS],
    /// Sum of all completion latencies, µs (saturating at `u64::MAX`).
    pub latency_total_us: u64,
    /// Non-empty per-(kernel, size-class) latency cells.
    pub kernel_classes: Vec<KernelClassRow>,
    /// Coalesced batches dispatched by the async path (groups of ≥ 2).
    pub batches: u64,
    /// Requests that rode in those coalesced batches.
    pub batched_requests: u64,
    /// Largest coalesced batch dispatched.
    pub batch_size_high_water: usize,
    /// Whole-batch attempts that failed and fell back to per-element
    /// supervised execution.
    pub batch_faults: u64,
    /// Batch elements re-executed individually (verification failure or
    /// whole-batch fault).
    pub batch_element_retries: u64,
    /// Kernel-policy updates published by the adaptive tuner.
    pub tuner_retunes: u64,
    /// Toom-plan cache hits.
    pub plan_cache_hits: u64,
    /// Toom-plan cache misses.
    pub plan_cache_misses: u64,
    /// Supervised re-attempts after a failed attempt (hard or soft fault).
    pub retries: u64,
    /// Attempts executed on a kernel below the selected one (breaker
    /// diversion or forced degradation).
    pub fallbacks: u64,
    /// Requests that exhausted the retry budget and the whole degradation
    /// ladder ([`crate::MulError::WorkerFault`]).
    pub worker_faults: u64,
    /// Products spot-checked by the residue verifier.
    pub residue_checks: u64,
    /// Caught soft faults across the whole verification ladder: residue
    /// mismatches plus recompute-confirmed dual-check disagreements.
    pub verification_failures: u64,
    /// Per-rung counters and costs of the verification ladder
    /// (`residue → dual-algorithm → recompute`).
    pub verify: VerifySnapshot,
    /// Circuit-breaker transitions into the open state.
    pub breaker_opens: u64,
    /// Circuit-breaker transitions back to closed (successful probe).
    pub breaker_closes: u64,
    /// Chaos-injected faults by kind, keyed by
    /// [`crate::chaos::FaultKind::name`].
    pub injected_faults: [(&'static str, u64); 5],
    /// Robustness counters of the distributed backend (the simulated
    /// coded machine with heartbeat failure detection).
    pub distributed: DistributedSnapshot,
    /// Topology counters of the sharded router (zero when the service
    /// runs unsharded). Filled in by [`crate::router::Router`] when it
    /// merges per-shard snapshots.
    pub router: RouterSnapshot,
}

/// Per-rung counters of the verification ladder (see `crate::verify`):
/// how often each rung ran, what it caught, and what it cost. Rung
/// semantics: `residue` is the `O(n)` spot-check on every product,
/// `dual` the sampled structurally-distinct recomputation, `recompute`
/// the full clean re-execution that localizes a dual-check disagreement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct VerifySnapshot {
    /// Residue spot-checks performed (mirrors the top-level counter).
    pub residue_checks: u64,
    /// Residue mismatches (caught soft faults; the element was retried).
    pub residue_failures: u64,
    /// Total µs spent in residue checks (saturating).
    pub residue_cost_us: u64,
    /// Sampled dual-algorithm checks performed.
    pub dual_checks: u64,
    /// Dual checks where the two algorithms disagreed.
    pub dual_failures: u64,
    /// Total µs spent in dual-algorithm recomputations (saturating).
    pub dual_cost_us: u64,
    /// Full recomputes triggered by dual-check disagreements.
    pub recompute_checks: u64,
    /// Recomputes that confirmed the served-path product was corrupt
    /// (2-of-3 vote against the original).
    pub recompute_failures: u64,
    /// Total µs spent in localization recomputes (saturating).
    pub recompute_cost_us: u64,
    /// Ladder escalations: dual-check disagreements promoted to a full
    /// recompute.
    pub escalations: u64,
}

/// Counters of the distributed backend: runs on the simulated coded
/// machine, detector-driven recoveries, and fallbacks past redundancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DistributedSnapshot {
    /// Multiplications completed on the simulated coded machine.
    pub runs: u64,
    /// Runs that survived at least one simulated processor death (the
    /// heartbeat detector found the faults; interpolation recovered the
    /// product from the surviving columns).
    pub recoveries: u64,
    /// Distributed attempts whose injected faults exceeded the code's
    /// redundancy `f` — each fell back down the local kernel ladder.
    pub unrecoverable: u64,
    /// Live ranks the in-machine detector wrongly declared dead.
    pub false_positives: u64,
    /// Heartbeat detection rounds executed across all runs.
    pub detect_rounds: u64,
    /// Ranks flagged (and dropped) as stragglers across all runs.
    pub stragglers_flagged: u64,
    /// Worst heartbeat detection latency observed in any run, in
    /// simulated ticks between a victim's last heartbeat and the
    /// detector's dead verdict.
    pub max_detect_latency_ticks: u64,
}

/// Topology counters of the sharded service router: shard liveness as
/// seen by the service-level heartbeat detector, plus the failover and
/// work-stealing traffic it generated. All-zero when unsharded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RouterSnapshot {
    /// Shards in the topology.
    pub shards: u64,
    /// Shards the heartbeat detector currently considers live.
    pub live: u64,
    /// Shard deaths declared by the heartbeat verdict (kills and stalls
    /// past the deadline budget both count).
    pub shard_deaths: u64,
    /// Requests re-routed from a dead shard to a survivor.
    pub failovers: u64,
    /// Requests redirected from a hot shard's queue to an idle sibling.
    pub steals: u64,
    /// Dead shards whose heartbeats resumed and were re-admitted.
    pub rejoins: u64,
    /// Heartbeat monitor rounds executed.
    pub monitor_rounds: u64,
}

impl MetricsSnapshot {
    /// Fold another shard's snapshot into this one: counters and
    /// histograms sum, high-water marks take the max, per-cell kernel
    /// stats merge by (kernel, class). `served` stays the bucket sum by
    /// construction. The `router` section is left untouched — the router
    /// owns it and stamps it after merging its shards.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.rejected_queue_full += other.rejected_queue_full;
        self.timed_out += other.timed_out;
        self.shed += other.shed;
        for (i, &(name, count)) in other.per_kernel.iter().enumerate() {
            if self.per_kernel[i].0.is_empty() {
                self.per_kernel[i].0 = name;
            }
            self.per_kernel[i].1 += count;
        }
        self.queue_depth += other.queue_depth;
        self.queue_depth_high_water = self
            .queue_depth_high_water
            .max(other.queue_depth_high_water);
        for (i, &count) in other.latency_buckets.iter().enumerate() {
            self.latency_buckets[i] += count;
        }
        self.served = self.latency_buckets.iter().sum();
        self.latency_total_us = self.latency_total_us.saturating_add(other.latency_total_us);
        for row in &other.kernel_classes {
            match self
                .kernel_classes
                .iter_mut()
                .find(|r| r.kernel == row.kernel && r.class_bits == row.class_bits)
            {
                Some(cell) => {
                    cell.served += row.served;
                    cell.total_us = cell.total_us.saturating_add(row.total_us);
                }
                None => self.kernel_classes.push(row.clone()),
            }
        }
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.batch_size_high_water = self.batch_size_high_water.max(other.batch_size_high_water);
        self.batch_faults += other.batch_faults;
        self.batch_element_retries += other.batch_element_retries;
        self.tuner_retunes += other.tuner_retunes;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.worker_faults += other.worker_faults;
        self.residue_checks += other.residue_checks;
        self.verification_failures += other.verification_failures;
        self.verify.residue_checks += other.verify.residue_checks;
        self.verify.residue_failures += other.verify.residue_failures;
        self.verify.residue_cost_us = self
            .verify
            .residue_cost_us
            .saturating_add(other.verify.residue_cost_us);
        self.verify.dual_checks += other.verify.dual_checks;
        self.verify.dual_failures += other.verify.dual_failures;
        self.verify.dual_cost_us = self
            .verify
            .dual_cost_us
            .saturating_add(other.verify.dual_cost_us);
        self.verify.recompute_checks += other.verify.recompute_checks;
        self.verify.recompute_failures += other.verify.recompute_failures;
        self.verify.recompute_cost_us = self
            .verify
            .recompute_cost_us
            .saturating_add(other.verify.recompute_cost_us);
        self.verify.escalations += other.verify.escalations;
        self.breaker_opens += other.breaker_opens;
        self.breaker_closes += other.breaker_closes;
        for (i, &(name, count)) in other.injected_faults.iter().enumerate() {
            if self.injected_faults[i].0.is_empty() {
                self.injected_faults[i].0 = name;
            }
            self.injected_faults[i].1 += count;
        }
        self.distributed.runs += other.distributed.runs;
        self.distributed.recoveries += other.distributed.recoveries;
        self.distributed.unrecoverable += other.distributed.unrecoverable;
        self.distributed.false_positives += other.distributed.false_positives;
        self.distributed.detect_rounds += other.distributed.detect_rounds;
        self.distributed.stragglers_flagged += other.distributed.stragglers_flagged;
        self.distributed.max_detect_latency_ticks = self
            .distributed
            .max_detect_latency_ticks
            .max(other.distributed.max_detect_latency_ticks);
    }

    /// Mean completion latency in µs (0 when nothing was served).
    #[must_use]
    pub fn mean_latency_us(&self) -> u64 {
        self.latency_total_us.checked_div(self.served).unwrap_or(0)
    }

    /// Estimated completion-latency quantile in µs, by linear
    /// interpolation inside the histogram bucket holding the target rank
    /// (the same estimator Prometheus's `histogram_quantile` applies to
    /// these buckets). Ranks landing in the unbounded overflow bucket
    /// report the last finite bound — the histogram cannot resolve
    /// beyond it. Returns 0 when nothing was served; `q` is clamped to
    /// `[0, 1]`.
    #[must_use]
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.served == 0 {
            return 0;
        }
        let last_bound = LATENCY_BUCKET_BOUNDS_US[LATENCY_BUCKET_BOUNDS_US.len() - 1];
        let target = q.clamp(0.0, 1.0) * self.served as f64;
        let mut cumulative = 0u64;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            let below = cumulative as f64;
            cumulative += count;
            if (cumulative as f64) < target || count == 0 {
                continue;
            }
            let Some(&upper) = LATENCY_BUCKET_BOUNDS_US.get(i) else {
                return last_bound; // overflow bucket: unresolvable
            };
            let lower = i.checked_sub(1).map_or(0, |p| LATENCY_BUCKET_BOUNDS_US[p]);
            let fraction = ((target - below) / count as f64).clamp(0.0, 1.0);
            return lower + ((upper - lower) as f64 * fraction).round() as u64;
        }
        last_bound
    }

    /// Median completion latency (µs), histogram-estimated.
    #[must_use]
    pub fn p50_latency_us(&self) -> u64 {
        self.latency_quantile_us(0.50)
    }

    /// 99th-percentile completion latency (µs), histogram-estimated.
    #[must_use]
    pub fn p99_latency_us(&self) -> u64 {
        self.latency_quantile_us(0.99)
    }

    /// 99.9th-percentile completion latency (µs), histogram-estimated.
    #[must_use]
    pub fn p999_latency_us(&self) -> u64 {
        self.latency_quantile_us(0.999)
    }

    /// Serialize to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let buckets = Json::Arr(
            self.latency_buckets
                .iter()
                .enumerate()
                .map(|(i, &count)| {
                    let le = LATENCY_BUCKET_BOUNDS_US
                        .get(i)
                        .map_or(Json::Null, |&b| Json::Num(i128::from(b)));
                    obj([("le_us", le), ("count", Json::Num(i128::from(count)))])
                })
                .collect(),
        );
        let classes = Json::Arr(
            self.kernel_classes
                .iter()
                .map(|row| {
                    obj([
                        ("kernel", Json::Str(row.kernel.to_string())),
                        ("class_bits", Json::Num(i128::from(row.class_bits))),
                        ("served", Json::Num(i128::from(row.served))),
                        ("mean_us", Json::Num(i128::from(row.mean_us()))),
                    ])
                })
                .collect(),
        );
        obj([
            ("served", Json::Num(i128::from(self.served))),
            (
                "rejected_queue_full",
                Json::Num(i128::from(self.rejected_queue_full)),
            ),
            ("timed_out", Json::Num(i128::from(self.timed_out))),
            ("shed", Json::Num(i128::from(self.shed))),
            (
                "per_kernel",
                Json::Obj(
                    self.per_kernel
                        .iter()
                        .map(|&(name, count)| (name.to_string(), Json::Num(i128::from(count))))
                        .collect(),
                ),
            ),
            ("queue_depth", Json::Num(self.queue_depth as i128)),
            (
                "queue_depth_high_water",
                Json::Num(self.queue_depth_high_water as i128),
            ),
            ("latency_buckets", buckets),
            (
                "mean_latency_us",
                Json::Num(i128::from(self.mean_latency_us())),
            ),
            (
                "latency_quantiles",
                obj([
                    ("p50_us", Json::Num(i128::from(self.p50_latency_us()))),
                    ("p99_us", Json::Num(i128::from(self.p99_latency_us()))),
                    ("p999_us", Json::Num(i128::from(self.p999_latency_us()))),
                ]),
            ),
            ("size_classes", classes),
            (
                "batching",
                obj([
                    ("batches", Json::Num(i128::from(self.batches))),
                    (
                        "batched_requests",
                        Json::Num(i128::from(self.batched_requests)),
                    ),
                    (
                        "batch_size_high_water",
                        Json::Num(self.batch_size_high_water as i128),
                    ),
                    ("batch_faults", Json::Num(i128::from(self.batch_faults))),
                    (
                        "batch_element_retries",
                        Json::Num(i128::from(self.batch_element_retries)),
                    ),
                ]),
            ),
            ("tuner_retunes", Json::Num(i128::from(self.tuner_retunes))),
            (
                "plan_cache_hits",
                Json::Num(i128::from(self.plan_cache_hits)),
            ),
            (
                "plan_cache_misses",
                Json::Num(i128::from(self.plan_cache_misses)),
            ),
            (
                "robustness",
                obj([
                    ("retries", Json::Num(i128::from(self.retries))),
                    ("fallbacks", Json::Num(i128::from(self.fallbacks))),
                    ("worker_faults", Json::Num(i128::from(self.worker_faults))),
                    ("residue_checks", Json::Num(i128::from(self.residue_checks))),
                    (
                        "verification_failures",
                        Json::Num(i128::from(self.verification_failures)),
                    ),
                    ("breaker_opens", Json::Num(i128::from(self.breaker_opens))),
                    ("breaker_closes", Json::Num(i128::from(self.breaker_closes))),
                    (
                        "injected_faults",
                        Json::Obj(
                            self.injected_faults
                                .iter()
                                .map(|&(name, count)| {
                                    (name.to_string(), Json::Num(i128::from(count)))
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "verify",
                obj([
                    (
                        "residue_checks",
                        Json::Num(i128::from(self.verify.residue_checks)),
                    ),
                    (
                        "residue_failures",
                        Json::Num(i128::from(self.verify.residue_failures)),
                    ),
                    (
                        "residue_cost_us",
                        Json::Num(i128::from(self.verify.residue_cost_us)),
                    ),
                    (
                        "dual_checks",
                        Json::Num(i128::from(self.verify.dual_checks)),
                    ),
                    (
                        "dual_failures",
                        Json::Num(i128::from(self.verify.dual_failures)),
                    ),
                    (
                        "dual_cost_us",
                        Json::Num(i128::from(self.verify.dual_cost_us)),
                    ),
                    (
                        "recompute_checks",
                        Json::Num(i128::from(self.verify.recompute_checks)),
                    ),
                    (
                        "recompute_failures",
                        Json::Num(i128::from(self.verify.recompute_failures)),
                    ),
                    (
                        "recompute_cost_us",
                        Json::Num(i128::from(self.verify.recompute_cost_us)),
                    ),
                    (
                        "escalations",
                        Json::Num(i128::from(self.verify.escalations)),
                    ),
                ]),
            ),
            (
                "distributed",
                obj([
                    ("runs", Json::Num(i128::from(self.distributed.runs))),
                    (
                        "recoveries",
                        Json::Num(i128::from(self.distributed.recoveries)),
                    ),
                    (
                        "unrecoverable",
                        Json::Num(i128::from(self.distributed.unrecoverable)),
                    ),
                    (
                        "false_positives",
                        Json::Num(i128::from(self.distributed.false_positives)),
                    ),
                    (
                        "detect_rounds",
                        Json::Num(i128::from(self.distributed.detect_rounds)),
                    ),
                    (
                        "stragglers_flagged",
                        Json::Num(i128::from(self.distributed.stragglers_flagged)),
                    ),
                    (
                        "max_detect_latency_ticks",
                        Json::Num(i128::from(self.distributed.max_detect_latency_ticks)),
                    ),
                ]),
            ),
            (
                "router",
                obj([
                    ("shards", Json::Num(i128::from(self.router.shards))),
                    ("live", Json::Num(i128::from(self.router.live))),
                    (
                        "shard_deaths",
                        Json::Num(i128::from(self.router.shard_deaths)),
                    ),
                    ("failovers", Json::Num(i128::from(self.router.failovers))),
                    ("steals", Json::Num(i128::from(self.router.steals))),
                    ("rejoins", Json::Num(i128::from(self.router.rejoins))),
                    (
                        "monitor_rounds",
                        Json::Num(i128::from(self.router.monitor_rounds)),
                    ),
                ]),
            ),
        ])
        .dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_land_in_the_snapshot() {
        let m = Metrics::default();
        m.record_served(Kernel::Schoolbook, 2_000, Duration::from_micros(80));
        m.record_served(Kernel::ParToom, 200_000, Duration::from_millis(300));
        m.record_queue_full();
        m.record_timed_out();
        m.record_shed();
        m.observe_queue_depth(5);
        m.observe_queue_depth(3);
        m.record_batch(7);
        m.record_batch(3);
        m.record_batch_fault();
        m.record_batch_element_retry();
        m.record_retune();
        m.record_retry();
        m.record_retry();
        m.record_fallback();
        m.record_worker_fault();
        m.record_residue_verify(3, true);
        m.record_residue_verify(2, false);
        m.record_dual_check(40, false);
        m.record_dual_check(55, true);
        m.record_recompute(200, true);
        m.record_recompute(100, false);
        m.record_breaker_open();
        m.record_breaker_close();
        m.record_injected(FaultKind::Corrupt);
        let s = m.snapshot(2, (10, 1));
        assert_eq!(s.served, 2);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_depth_high_water, 5);
        assert_eq!(s.per_kernel[0], ("schoolbook", 1));
        assert_eq!(s.per_kernel[2], ("par_toom", 1));
        assert_eq!(s.latency_buckets[0], 1); // 80 µs ≤ 100 µs
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 2);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_requests, 10);
        assert_eq!(s.batch_size_high_water, 7);
        assert_eq!(s.batch_faults, 1);
        assert_eq!(s.batch_element_retries, 1);
        assert_eq!(s.tuner_retunes, 1);
        assert_eq!(s.plan_cache_hits, 10);
        assert_eq!(s.retries, 2);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.worker_faults, 1);
        assert_eq!(s.residue_checks, 2);
        // Legacy total: 1 residue failure + 1 recompute-confirmed corruption.
        assert_eq!(s.verification_failures, 2);
        assert_eq!(
            s.verify,
            VerifySnapshot {
                residue_checks: 2,
                residue_failures: 1,
                residue_cost_us: 5,
                dual_checks: 2,
                dual_failures: 1,
                dual_cost_us: 95,
                recompute_checks: 2,
                recompute_failures: 1,
                recompute_cost_us: 300,
                escalations: 1,
            }
        );
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.breaker_closes, 1);
        assert_eq!(
            s.injected_faults[FaultKind::Corrupt as usize],
            ("corrupt", 1)
        );
        assert_eq!(s.injected_faults[FaultKind::Panic as usize], ("panic", 0));
        assert_eq!(s.distributed, DistributedSnapshot::default());
        // Size-class cells: schoolbook at 2 kbit → class 2^10, par toom at
        // 200 kbit → class 2^17.
        assert_eq!(
            s.kernel_classes,
            vec![
                KernelClassRow {
                    kernel: "schoolbook",
                    class_bits: 1 << 10,
                    served: 1,
                    total_us: 80,
                },
                KernelClassRow {
                    kernel: "par_toom",
                    class_bits: 1 << 17,
                    served: 1,
                    total_us: 300_000,
                },
            ]
        );
    }

    #[test]
    fn merged_snapshots_sum_counters_and_stay_self_consistent() {
        let a = Metrics::default();
        a.record_served(Kernel::Schoolbook, 2_000, Duration::from_micros(80));
        a.record_served(Kernel::ParToom, 200_000, Duration::from_millis(3));
        a.record_queue_full();
        a.record_retry();
        a.observe_queue_depth(5);
        a.record_injected(FaultKind::ShardKill);
        let b = Metrics::default();
        b.record_served(Kernel::Schoolbook, 2_000, Duration::from_micros(90));
        b.record_residue_verify(3, false);
        b.observe_queue_depth(9);
        b.record_distributed_run(1, 2, 0, 0, 7);
        let mut merged = a.snapshot(2, (4, 1));
        merged.merge(&b.snapshot(3, (0, 2)));
        assert_eq!(merged.served, 3);
        assert_eq!(
            merged.served,
            merged.latency_buckets.iter().sum::<u64>(),
            "merge must preserve the served == bucket-sum invariant"
        );
        assert_eq!(merged.rejected_queue_full, 1);
        assert_eq!(merged.retries, 1);
        assert_eq!(merged.queue_depth, 5, "queue depths sum");
        assert_eq!(merged.queue_depth_high_water, 9, "high waters take max");
        assert_eq!(merged.plan_cache_hits, 4);
        assert_eq!(merged.plan_cache_misses, 3);
        assert_eq!(merged.verify.residue_failures, 1);
        assert_eq!(merged.verification_failures, 1);
        assert_eq!(merged.distributed.recoveries, 1);
        assert_eq!(merged.distributed.max_detect_latency_ticks, 7);
        assert_eq!(
            merged.injected_faults[FaultKind::ShardKill as usize],
            ("shard_kill", 1)
        );
        // The shared (schoolbook, 2^10) cell merged; par_toom kept its own.
        let school = merged
            .kernel_classes
            .iter()
            .find(|r| r.kernel == "schoolbook")
            .unwrap();
        assert_eq!(school.served, 2);
        assert_eq!(school.total_us, 170);
        assert_eq!(merged.kernel_classes.len(), 2);
        assert_eq!(merged.per_kernel[0], ("schoolbook", 2));
        // Merging into a Default (all-zero, label-less) accumulator
        // inherits the labels.
        let mut acc = MetricsSnapshot::default();
        acc.merge(&merged);
        assert_eq!(acc.per_kernel[0], ("schoolbook", 2));
        assert_eq!(acc.injected_faults[3], ("shard_kill", 1));
        assert_eq!(acc.served, 3);
    }

    #[test]
    fn size_classes_bucket_by_log2() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 1);
        assert_eq!(size_class(4), 2);
        assert_eq!(size_class(1_023), 9);
        assert_eq!(size_class(1_024), 10);
        assert_eq!(size_class(u64::MAX), SIZE_CLASSES - 1);
    }

    #[test]
    fn latency_totals_saturate_instead_of_wrapping() {
        let m = Metrics::default();
        // Duration::MAX truncates to u64::MAX µs; a second huge latency
        // must pin the accumulators at the ceiling, not wrap past zero.
        m.record_served(Kernel::Schoolbook, 1_000, Duration::MAX);
        m.record_served(Kernel::Schoolbook, 1_000, Duration::MAX);
        m.record_served(Kernel::Schoolbook, 1_000, Duration::from_micros(7));
        let s = m.snapshot(0, (0, 0));
        assert_eq!(s.served, 3);
        assert_eq!(s.latency_total_us, u64::MAX);
        assert_eq!(s.kernel_classes[0].total_us, u64::MAX);
        // The mean stays a (meaningless but finite) in-range value.
        assert!(s.mean_latency_us() <= u64::MAX / 3 + 1);
    }

    /// Satellite regression: a snapshot taken while `record_served` runs
    /// concurrently must never report a histogram whose bucket sum
    /// disagrees with `served` (the torn-snapshot bug: independently
    /// loaded relaxed counters).
    #[test]
    fn concurrent_snapshots_are_self_consistent() {
        let m = Arc::new(Metrics::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let m = m.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Spread latencies across buckets and kernels.
                        let us = [40, 700, 3_000, 60_000][(i % 4) as usize];
                        let kernel = Kernel::ALL[((i + w) % 3) as usize];
                        m.record_served(kernel, 1_000 << (i % 5), Duration::from_micros(us));
                        i += 1;
                    }
                })
            })
            .collect();
        let mut last_served = 0;
        for _ in 0..500 {
            let s = m.snapshot(0, (0, 0));
            assert_eq!(
                s.served,
                s.latency_buckets.iter().sum::<u64>(),
                "torn snapshot: served disagrees with its own histogram"
            );
            assert!(s.served >= last_served, "served must be monotone");
            last_served = s.served;
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        // Quiesced: every per-request counter agrees exactly.
        let s = m.snapshot(0, (0, 0));
        assert_eq!(s.per_kernel.iter().map(|&(_, n)| n).sum::<u64>(), s.served);
        assert_eq!(
            s.kernel_classes.iter().map(|r| r.served).sum::<u64>(),
            s.served
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let empty = Metrics::default().snapshot(0, (0, 0));
        assert_eq!(empty.p50_latency_us(), 0, "no data, no quantile");

        let m = Metrics::default();
        // 90 requests at ≤100 µs, 10 in the (100, 500] µs bucket.
        for i in 0..90 {
            m.record_served(Kernel::Schoolbook, 1_000, Duration::from_micros(i % 100));
        }
        for _ in 0..10 {
            m.record_served(Kernel::Schoolbook, 1_000, Duration::from_micros(300));
        }
        let s = m.snapshot(0, (0, 0));
        // p50: rank 50 of 90 in the first bucket → 100 µs × 50/90 ≈ 56.
        assert_eq!(s.p50_latency_us(), 56);
        // p99: rank 99 → 9 of 10 into the second bucket → 100 + 400 × 0.9.
        assert_eq!(s.p99_latency_us(), 460);
        // p999: rank 99.9 → 100 + 400 × 0.99.
        assert_eq!(s.p999_latency_us(), 496);
        // Quantiles are monotone in q and clamp outside [0, 1].
        assert!(s.latency_quantile_us(0.0) <= s.p50_latency_us());
        assert_eq!(s.latency_quantile_us(1.0), s.latency_quantile_us(7.5));

        // Everything in the overflow bucket pins at the last finite bound.
        let m = Metrics::default();
        m.record_served(Kernel::Schoolbook, 1_000, Duration::from_secs(10));
        let s = m.snapshot(0, (0, 0));
        assert_eq!(s.p50_latency_us(), 2_000_000);
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let m = Metrics::default();
        m.record_served(Kernel::SeqToom, 50_000, Duration::from_micros(700));
        m.record_batch(4);
        // One clean distributed run, one that recovered a death after a
        // 9-tick detection, one unrecoverable fallback.
        m.record_distributed_run(0, 1, 0, 0, 0);
        m.record_distributed_run(2, 1, 0, 1, 9);
        m.record_distributed_unrecoverable();
        let s = m.snapshot(0, (0, 0));
        let doc = crate::json::Json::parse(&s.to_json()).unwrap();
        assert_eq!(doc.get("served").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("per_kernel")
                .unwrap()
                .get("seq_toom")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(
            matches!(doc.get("latency_buckets"), Some(crate::json::Json::Arr(v)) if v.len() == 9)
        );
        let quantiles = doc.get("latency_quantiles").unwrap();
        assert_eq!(
            quantiles.get("p50_us").unwrap().as_u64(),
            Some(s.p50_latency_us())
        );
        assert!(quantiles.get("p999_us").unwrap().as_u64().is_some());
        let batching = doc.get("batching").unwrap();
        assert_eq!(batching.get("batches").unwrap().as_u64(), Some(1));
        assert_eq!(batching.get("batched_requests").unwrap().as_u64(), Some(4));
        assert!(matches!(doc.get("size_classes"), Some(crate::json::Json::Arr(v)) if v.len() == 1));
        let robustness = doc.get("robustness").unwrap();
        assert_eq!(robustness.get("retries").unwrap().as_u64(), Some(0));
        let verify = doc.get("verify").unwrap();
        for key in [
            "residue_checks",
            "residue_failures",
            "residue_cost_us",
            "dual_checks",
            "dual_failures",
            "dual_cost_us",
            "recompute_checks",
            "recompute_failures",
            "recompute_cost_us",
            "escalations",
        ] {
            assert_eq!(verify.get(key).unwrap().as_u64(), Some(0), "{key}");
        }
        let distributed = doc.get("distributed").unwrap();
        assert_eq!(distributed.get("runs").unwrap().as_u64(), Some(2));
        assert_eq!(distributed.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(distributed.get("unrecoverable").unwrap().as_u64(), Some(1));
        assert_eq!(
            distributed
                .get("max_detect_latency_ticks")
                .unwrap()
                .as_u64(),
            Some(9)
        );
        assert_eq!(
            robustness
                .get("injected_faults")
                .unwrap()
                .get("panic")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }
}
