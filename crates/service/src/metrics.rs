//! Service metrics: lock-free counters plus a JSON-serializable snapshot.

use crate::chaos::FaultKind;
use crate::json::{obj, Json};
use crate::kernel::Kernel;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// unbounded. Spans schoolbook-on-tiny-operands through parallel
/// multi-megabit products.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 8] =
    [100, 500, 1_000, 5_000, 25_000, 100_000, 500_000, 2_000_000];

const BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// Shared mutable counters, updated by submitters and workers.
#[derive(Default)]
pub(crate) struct Metrics {
    served: AtomicU64,
    rejected_queue_full: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
    per_kernel: [AtomicU64; 3],
    queue_depth_high_water: AtomicUsize,
    latency_buckets: [AtomicU64; BUCKETS],
    latency_total_us: AtomicU64,
    retries: AtomicU64,
    fallbacks: AtomicU64,
    worker_faults: AtomicU64,
    residue_checks: AtomicU64,
    verification_failures: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_closes: AtomicU64,
    injected_faults: [AtomicU64; 3],
}

impl Metrics {
    pub(crate) fn record_served(&self, kernel: Kernel, latency: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.per_kernel[kernel as usize].fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_total_us.fetch_add(us, Ordering::Relaxed);
    }

    pub(crate) fn record_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.queue_depth_high_water
            .fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_fault(&self) {
        self.worker_faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_residue_check(&self) {
        self.residue_checks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_verification_failure(&self) {
        self.verification_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_close(&self) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_injected(&self, kind: FaultKind) {
        self.injected_faults[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, plan_stats: (u64, u64)) -> MetricsSnapshot {
        MetricsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            per_kernel: Kernel::ALL.map(|k| {
                (
                    k.name(),
                    self.per_kernel[k as usize].load(Ordering::Relaxed),
                )
            }),
            queue_depth,
            queue_depth_high_water: self.queue_depth_high_water.load(Ordering::Relaxed),
            latency_buckets: std::array::from_fn(|i| {
                self.latency_buckets[i].load(Ordering::Relaxed)
            }),
            latency_total_us: self.latency_total_us.load(Ordering::Relaxed),
            plan_cache_hits: plan_stats.0,
            plan_cache_misses: plan_stats.1,
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            worker_faults: self.worker_faults.load(Ordering::Relaxed),
            residue_checks: self.residue_checks.load(Ordering::Relaxed),
            verification_failures: self.verification_failures.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            injected_faults: FaultKind::ALL.map(|k| {
                (
                    k.name(),
                    self.injected_faults[k as usize].load(Ordering::Relaxed),
                )
            }),
        }
    }
}

/// A point-in-time copy of the service's counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests completed successfully.
    pub served: u64,
    /// Submissions refused at the queue boundary (backpressure).
    pub rejected_queue_full: u64,
    /// Accepted requests rejected because their deadline passed in queue.
    pub timed_out: u64,
    /// Accepted requests shed under load (queue age exceeded the bound).
    pub shed: u64,
    /// Completions per kernel, keyed by [`Kernel::name`].
    pub per_kernel: [(&'static str, u64); 3],
    /// Total queued requests at snapshot time.
    pub queue_depth: usize,
    /// Largest single-queue depth observed at submit time.
    pub queue_depth_high_water: usize,
    /// Completion-latency histogram; bucket `i` counts requests at or
    /// under [`LATENCY_BUCKET_BOUNDS_US`]`[i]` µs, with one overflow
    /// bucket at the end.
    pub latency_buckets: [u64; BUCKETS],
    /// Sum of all completion latencies, µs.
    pub latency_total_us: u64,
    /// Toom-plan cache hits.
    pub plan_cache_hits: u64,
    /// Toom-plan cache misses.
    pub plan_cache_misses: u64,
    /// Supervised re-attempts after a failed attempt (hard or soft fault).
    pub retries: u64,
    /// Attempts executed on a kernel below the selected one (breaker
    /// diversion or forced degradation).
    pub fallbacks: u64,
    /// Requests that exhausted the retry budget and the whole degradation
    /// ladder ([`crate::MulError::WorkerFault`]).
    pub worker_faults: u64,
    /// Products spot-checked by the residue verifier.
    pub residue_checks: u64,
    /// Spot-checks that caught an inconsistent product (soft fault).
    pub verification_failures: u64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_opens: u64,
    /// Circuit-breaker transitions back to closed (successful probe).
    pub breaker_closes: u64,
    /// Chaos-injected faults by kind, keyed by
    /// [`crate::chaos::FaultKind::name`].
    pub injected_faults: [(&'static str, u64); 3],
}

impl MetricsSnapshot {
    /// Mean completion latency in µs (0 when nothing was served).
    #[must_use]
    pub fn mean_latency_us(&self) -> u64 {
        self.latency_total_us.checked_div(self.served).unwrap_or(0)
    }

    /// Serialize to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let buckets = Json::Arr(
            self.latency_buckets
                .iter()
                .enumerate()
                .map(|(i, &count)| {
                    let le = LATENCY_BUCKET_BOUNDS_US
                        .get(i)
                        .map_or(Json::Null, |&b| Json::Num(i128::from(b)));
                    obj([("le_us", le), ("count", Json::Num(i128::from(count)))])
                })
                .collect(),
        );
        obj([
            ("served", Json::Num(i128::from(self.served))),
            (
                "rejected_queue_full",
                Json::Num(i128::from(self.rejected_queue_full)),
            ),
            ("timed_out", Json::Num(i128::from(self.timed_out))),
            ("shed", Json::Num(i128::from(self.shed))),
            (
                "per_kernel",
                Json::Obj(
                    self.per_kernel
                        .iter()
                        .map(|&(name, count)| (name.to_string(), Json::Num(i128::from(count))))
                        .collect(),
                ),
            ),
            ("queue_depth", Json::Num(self.queue_depth as i128)),
            (
                "queue_depth_high_water",
                Json::Num(self.queue_depth_high_water as i128),
            ),
            ("latency_buckets", buckets),
            (
                "mean_latency_us",
                Json::Num(i128::from(self.mean_latency_us())),
            ),
            (
                "plan_cache_hits",
                Json::Num(i128::from(self.plan_cache_hits)),
            ),
            (
                "plan_cache_misses",
                Json::Num(i128::from(self.plan_cache_misses)),
            ),
            (
                "robustness",
                obj([
                    ("retries", Json::Num(i128::from(self.retries))),
                    ("fallbacks", Json::Num(i128::from(self.fallbacks))),
                    ("worker_faults", Json::Num(i128::from(self.worker_faults))),
                    ("residue_checks", Json::Num(i128::from(self.residue_checks))),
                    (
                        "verification_failures",
                        Json::Num(i128::from(self.verification_failures)),
                    ),
                    ("breaker_opens", Json::Num(i128::from(self.breaker_opens))),
                    ("breaker_closes", Json::Num(i128::from(self.breaker_closes))),
                    (
                        "injected_faults",
                        Json::Obj(
                            self.injected_faults
                                .iter()
                                .map(|&(name, count)| {
                                    (name.to_string(), Json::Num(i128::from(count)))
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
        .dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_in_the_snapshot() {
        let m = Metrics::default();
        m.record_served(Kernel::Schoolbook, Duration::from_micros(80));
        m.record_served(Kernel::ParToom, Duration::from_millis(300));
        m.record_queue_full();
        m.record_timed_out();
        m.record_shed();
        m.observe_queue_depth(5);
        m.observe_queue_depth(3);
        m.record_retry();
        m.record_retry();
        m.record_fallback();
        m.record_worker_fault();
        m.record_residue_check();
        m.record_verification_failure();
        m.record_breaker_open();
        m.record_breaker_close();
        m.record_injected(FaultKind::Corrupt);
        let s = m.snapshot(2, (10, 1));
        assert_eq!(s.served, 2);
        assert_eq!(s.rejected_queue_full, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_depth_high_water, 5);
        assert_eq!(s.per_kernel[0], ("schoolbook", 1));
        assert_eq!(s.per_kernel[2], ("par_toom", 1));
        assert_eq!(s.latency_buckets[0], 1); // 80 µs ≤ 100 µs
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), 2);
        assert_eq!(s.plan_cache_hits, 10);
        assert_eq!(s.retries, 2);
        assert_eq!(s.fallbacks, 1);
        assert_eq!(s.worker_faults, 1);
        assert_eq!(s.residue_checks, 1);
        assert_eq!(s.verification_failures, 1);
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.breaker_closes, 1);
        assert_eq!(
            s.injected_faults[FaultKind::Corrupt as usize],
            ("corrupt", 1)
        );
        assert_eq!(s.injected_faults[FaultKind::Panic as usize], ("panic", 0));
    }

    #[test]
    fn snapshot_serializes_to_parseable_json() {
        let m = Metrics::default();
        m.record_served(Kernel::SeqToom, Duration::from_micros(700));
        let s = m.snapshot(0, (0, 0));
        let doc = crate::json::Json::parse(&s.to_json()).unwrap();
        assert_eq!(doc.get("served").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("per_kernel")
                .unwrap()
                .get("seq_toom")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(
            matches!(doc.get("latency_buckets"), Some(crate::json::Json::Arr(v)) if v.len() == 9)
        );
        let robustness = doc.get("robustness").unwrap();
        assert_eq!(robustness.get("retries").unwrap().as_u64(), Some(0));
        assert_eq!(
            robustness
                .get("injected_faults")
                .unwrap()
                .get("panic")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }
}
