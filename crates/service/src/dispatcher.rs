//! The coalescing dispatcher behind `submit_async`.
//!
//! One thread consumes the central async queue. After the first request
//! of a round arrives it keeps collecting for at most
//! `batching.window_us` (or until `batching.max_batch`), then partitions
//! the round by `(kernel, operand size class)` and executes each group of
//! two or more as ONE supervised batch through the kernel's multi-product
//! entry point — one plan resolution, one chaos/`catch_unwind` boundary,
//! one breaker update for the whole group (see
//! [`crate::supervisor::Supervisor::execute_batch`]). Singleton groups
//! take the ordinary per-request path.
//!
//! This is the serving-layer analogue of the paper's cost accounting:
//! bandwidth and latency are charged per *batch* of parallel
//! multiplications, so same-shape requests should share one submission
//! into the engine instead of paying per-request overhead `n` times.
//! In the same spirit, queued backlog is drained through
//! `try_recv_many` — one lock hand-off per sweep, not one per request —
//! so a loaded dispatcher stops contending with submitters on the
//! channel mutex.

use crate::kernel::Kernel;
use crate::metrics::size_class;
use crate::service::{execute_single, gate, MulRequest, Shared, Submission};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Run the dispatcher until the async channel disconnects and drains.
///
/// Each queue message is a [`Submission`]: a single request or a whole
/// bulk job, exploded here into per-request round entries. `max_batch`
/// bounds how many *messages* a round collects; a bulk job always joins
/// its round whole, so rounds may exceed `max_batch` elements rather
/// than split a client's batch.
pub(crate) fn dispatcher_loop(rx: &Receiver<Submission>, shared: &Shared) {
    let window = Duration::from_micros(shared.config.batching.window_us);
    let max_batch = shared.config.batching.max_batch;
    let mut round: Vec<MulRequest> = Vec::with_capacity(max_batch);
    let mut backlog: Vec<Submission> = Vec::with_capacity(max_batch);
    // recv keeps returning queued requests after disconnect until the
    // queue is empty, so shutdown drains everything already accepted.
    while let Ok(first) = rx.recv() {
        explode(first, &mut round);
        // Sweep the backlog in one lock acquisition…
        let slack = max_batch.saturating_sub(round.len());
        rx.try_recv_many(&mut backlog, slack);
        for submission in backlog.drain(..) {
            explode(submission, &mut round);
        }
        // …and only if that leaves slack, wait out the window for
        // same-round companions.
        if !window.is_zero() && round.len() < max_batch {
            let close_at = Instant::now() + window;
            while round.len() < max_batch {
                let now = Instant::now();
                let Some(remaining) = close_at
                    .checked_duration_since(now)
                    .filter(|r| !r.is_zero())
                else {
                    break;
                };
                match rx.recv_timeout(remaining) {
                    Ok(submission) => {
                        explode(submission, &mut round);
                        let slack = max_batch.saturating_sub(round.len());
                        rx.try_recv_many(&mut backlog, slack);
                        for submission in backlog.drain(..) {
                            explode(submission, &mut round);
                        }
                    }
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        dispatch_round(&mut round, shared);
    }
}

/// Turn one queue message into per-request round entries.
fn explode(submission: Submission, round: &mut Vec<MulRequest>) {
    match submission {
        Submission::One(request) => round.push(request),
        Submission::Many(job) => job.explode(round),
    }
}

/// One coalesced group: its kernel, its size class, and the member
/// requests tagged with their (already computed) operand bit length.
type Group = (Kernel, usize, Vec<(u64, MulRequest)>);

/// Gate, group, and execute one collected round.
fn dispatch_round(round: &mut Vec<MulRequest>, shared: &Shared) {
    let policy = shared.policy();
    // Grouping key: (kernel, size class). Insertion-ordered Vec — rounds
    // are tiny (≤ max_batch), a hash map would be overhead.
    let mut groups: Vec<Group> = Vec::new();
    let now = Instant::now();
    for request in round.drain(..) {
        let Some(request) = gate(request, now, shared) else {
            continue;
        };
        let kernel = Kernel::select(&request.a, &request.b, &policy);
        let bits = request.a.bit_length().min(request.b.bit_length());
        let class = size_class(bits);
        match groups
            .iter_mut()
            .find(|(k, c, _)| *k == kernel && *c == class)
        {
            Some((_, _, members)) => members.push((bits, request)),
            None => groups.push((kernel, class, vec![(bits, request)])),
        }
    }
    for (kernel, _class, mut members) in groups {
        if members.len() == 1 {
            shared.metrics.record_batch(1);
            let (_, member) = members.pop().expect("len == 1");
            execute_single(member, shared);
        } else {
            let kernel = promote(kernel, &members, shared);
            execute_group(kernel, members, &policy, shared);
        }
    }
}

/// Promote an eligible coalesced group to the distributed backend (the
/// simulated coded machine). [`Kernel::select`] never picks
/// [`Kernel::DistributedToom`]; promotion is the dispatcher's decision —
/// the backend must be enabled, the group big enough to amortise a
/// machine spin-up per element, and every member inside the configured
/// operand-size window. The supervisor still owns what happens next:
/// breakers can divert the promoted group, and unrecoverable runs walk
/// the ordinary degradation ladder back to the local kernels.
fn promote(kernel: Kernel, members: &[(u64, MulRequest)], shared: &Shared) -> Kernel {
    let dist = &shared.config.distributed;
    if !dist.enabled || kernel == Kernel::Schoolbook {
        return kernel;
    }
    if members.len() < dist.min_group {
        return kernel;
    }
    let eligible = members
        .iter()
        .all(|&(bits, _)| bits >= dist.min_bits && bits <= dist.max_bits);
    if eligible {
        Kernel::DistributedToom
    } else {
        kernel
    }
}

/// Execute one coalesced group as a single supervised batch and publish
/// per-element results.
fn execute_group(
    kernel: Kernel,
    members: Vec<(u64, MulRequest)>,
    policy: &crate::config::KernelPolicy,
    shared: &Shared,
) {
    shared.metrics.record_batch(members.len());
    let mut pairs = Vec::with_capacity(members.len());
    let mut meta = Vec::with_capacity(members.len());
    let mut requests = Vec::with_capacity(members.len());
    for (bits, member) in members {
        requests.push(member.index);
        meta.push((bits, member.enqueued_at, member.done));
        pairs.push((member.a, member.b));
    }
    let results = shared.supervisor.execute_batch(
        &pairs,
        &requests,
        kernel,
        policy,
        &shared.plans,
        &shared.metrics,
        shared.config.batching.lanes,
    );
    // Stage every result first, then wake: see [`CompletionGuard::stage`].
    let done_at = Instant::now();
    let mut wakers = Vec::with_capacity(meta.len());
    for (result, (bits, enqueued_at, done)) in results.into_iter().zip(meta) {
        let staged = match result {
            Ok((product, used_kernel)) => {
                let latency = done_at.saturating_duration_since(enqueued_at);
                shared.metrics.record_served(used_kernel, bits, latency);
                done.stage(Ok(product))
            }
            Err(error) => done.stage(Err(error)),
        };
        wakers.extend(staged);
    }
    drop(wakers);
}
