//! The dispatcher/backend seam, reified: a [`Transport`] carries typed
//! request/response commands addressed to *shard identities*, so the
//! [`crate::router::Router`] never touches a concrete backend.
//!
//! Two implementations ship:
//!
//! * [`ChannelTransport`] — the in-process backend: each shard is a full
//!   [`crate::MulService`] (bounded queues, batching workers, coalescing
//!   dispatcher) wrapped with a service-level heartbeat
//!   ([`crate::shard::Shard`]). Submissions resolve asynchronously
//!   through [`ResponseHandle`]s.
//! * [`MachineTransport`] — the simulated coded machine of
//!   [`crate::DistributedBackend`] exposed as just another transport:
//!   one shard identity whose `Mul` command runs synchronously on the
//!   polynomial-coded parallel Toom machine and returns an
//!   already-resolved handle. Its heartbeat always advances — rank-level
//!   deaths *inside* a run are detected and recovered by the machine's
//!   own detector, below this seam.

use crate::error::{MulError, SubmitError};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::service::{resolved_handle, ResponseHandle};
use crate::shard::Shard;
use ft_bigint::BigInt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Identity of one shard within a transport (dense, `0..shards()`).
pub type ShardId = usize;

/// A request addressed to one shard.
pub enum Command {
    /// Multiply `a × b`, optionally under a deadline.
    Mul {
        /// Left operand.
        a: BigInt,
        /// Right operand.
        b: BigInt,
        /// Deadline for the request, if any.
        deadline: Option<Duration>,
    },
    /// Report the shard's current queue depth.
    QueueDepth,
    /// Report the shard's heartbeat counter (monotone while live).
    Beats,
    /// Fail-stop the shard: heartbeats freeze, unstarted work is
    /// surrendered as `ServiceStopped`.
    Kill,
    /// Withhold heartbeats for `rounds` monitor rounds while the shard
    /// keeps serving (detected as dead, then rejoins).
    Stall {
        /// Monitor rounds to stay silent.
        rounds: u64,
    },
    /// Snapshot the shard's metrics.
    Metrics,
    /// Drain accepted work, stop the shard, and return final metrics.
    Shutdown,
}

/// A shard's reply to one [`Command`].
pub enum Reply {
    /// `Mul` was accepted; the handle resolves to the product.
    Pending(ResponseHandle),
    /// `Mul` was refused at the admission boundary.
    Refused(SubmitError),
    /// Queue depth.
    Depth(usize),
    /// Heartbeat counter.
    Beats(u64),
    /// Metrics snapshot (`Metrics` or `Shutdown`).
    Metrics(Box<MetricsSnapshot>),
    /// Command applied; nothing to report.
    Done,
}

/// Request/response messaging to a set of shards. Implementations must
/// tolerate commands addressed to dead shards (reply, don't panic):
/// death is a *detected* condition here, never an assumed-away one.
pub trait Transport: Send + Sync {
    /// Number of shard identities (`0..shards()` are addressable).
    fn shards(&self) -> usize;

    /// Deliver `command` to shard `to` and return its reply.
    fn send(&self, to: ShardId, command: Command) -> Reply;
}

/// The in-process channel backend: one [`Shard`] (a `MulService` plus a
/// heartbeat) per identity.
pub struct ChannelTransport {
    shards: Vec<Shard>,
}

impl ChannelTransport {
    /// Wrap pre-built shards.
    #[must_use]
    pub fn new(shards: Vec<Shard>) -> ChannelTransport {
        ChannelTransport { shards }
    }
}

impl Transport for ChannelTransport {
    fn shards(&self) -> usize {
        self.shards.len()
    }

    fn send(&self, to: ShardId, command: Command) -> Reply {
        let shard = &self.shards[to];
        match command {
            Command::Mul { a, b, deadline } => match shard.submit(a, b, deadline) {
                Ok(handle) => Reply::Pending(handle),
                Err(error) => Reply::Refused(error),
            },
            Command::QueueDepth => Reply::Depth(shard.queue_depth()),
            Command::Beats => Reply::Beats(shard.beats()),
            Command::Kill => {
                shard.kill();
                Reply::Done
            }
            Command::Stall { rounds } => {
                shard.stall(rounds);
                Reply::Done
            }
            Command::Metrics => Reply::Metrics(Box::new(shard.metrics())),
            Command::Shutdown => Reply::Metrics(Box::new(shard.shutdown())),
        }
    }
}

/// The simulated coded machine as a transport: a single shard identity
/// whose multiplications run synchronously on
/// [`crate::DistributedBackend`]'s polynomial-coded machine. Fault
/// tolerance below this seam belongs to the machine's own heartbeat
/// detector; the transport-level beat counter always advances, so a
/// router never declares this shard dead.
pub struct MachineTransport {
    backend: crate::DistributedBackend,
    metrics: Metrics,
    beats: AtomicU64,
    requests: AtomicU64,
}

impl MachineTransport {
    /// Expose `backend` as a one-shard transport.
    #[must_use]
    pub fn new(backend: crate::DistributedBackend) -> MachineTransport {
        MachineTransport {
            backend,
            metrics: Metrics::default(),
            beats: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }
}

impl Transport for MachineTransport {
    fn shards(&self) -> usize {
        1
    }

    fn send(&self, _to: ShardId, command: Command) -> Reply {
        match command {
            Command::Mul { a, b, .. } => {
                let request = self.requests.fetch_add(1, Ordering::Relaxed);
                let started = std::time::Instant::now();
                // The machine may declare a planned-fault overload
                // unrecoverable by panicking; surface that as a worker
                // fault, exactly like the supervisor does.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.backend.multiply(&a, &b, request, 0, &self.metrics)
                }));
                let result = match outcome {
                    Ok(product) => {
                        let bits = a.bit_length().min(b.bit_length());
                        self.metrics.record_served(
                            crate::Kernel::DistributedToom,
                            bits,
                            started.elapsed(),
                        );
                        Ok(product)
                    }
                    Err(_) => {
                        self.metrics.record_worker_fault();
                        Err(MulError::WorkerFault { attempts: 1 })
                    }
                };
                Reply::Pending(resolved_handle(result))
            }
            Command::QueueDepth => Reply::Depth(0),
            Command::Beats => Reply::Beats(self.beats.fetch_add(1, Ordering::Relaxed) + 1),
            Command::Kill | Command::Stall { .. } => Reply::Done,
            Command::Metrics | Command::Shutdown => {
                Reply::Metrics(Box::new(self.metrics.snapshot(0, (0, 0))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistributedConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn machine_transport_serves_and_recovers_on_the_coded_machine() {
        let transport = MachineTransport::new(crate::DistributedBackend::new(&DistributedConfig {
            enabled: true,
            hard_faults_per_run: 1,
            ..DistributedConfig::default()
        }));
        assert_eq!(transport.shards(), 1);
        let mut rng = StdRng::seed_from_u64(3);
        let a = BigInt::random_signed_bits(&mut rng, 3_000);
        let b = BigInt::random_signed_bits(&mut rng, 3_000);
        let Reply::Pending(handle) = transport.send(
            0,
            Command::Mul {
                a: a.clone(),
                b: b.clone(),
                deadline: None,
            },
        ) else {
            panic!("machine transport must accept")
        };
        assert_eq!(handle.wait().unwrap(), a.mul_schoolbook(&b));
        // Beats always advance: the router never declares this shard dead.
        let Reply::Beats(b1) = transport.send(0, Command::Beats) else {
            panic!("beats")
        };
        let Reply::Beats(b2) = transport.send(0, Command::Beats) else {
            panic!("beats")
        };
        assert!(b2 > b1);
        let Reply::Metrics(snap) = transport.send(0, Command::Metrics) else {
            panic!("metrics")
        };
        assert_eq!(snap.served, 1);
        assert_eq!(snap.distributed.runs, 1);
        assert_eq!(snap.distributed.recoveries, 1, "injected death recovered");
    }
}
