//! One shard of the sharded topology: a full [`MulService`] plus the
//! service-level heartbeat the router's monitor samples.
//!
//! The heartbeat is a lazily-computed monotone counter: while the shard
//! is live it advances once per `heartbeat_ms` of wall clock. A *kill*
//! freezes it forever (fail-stop); a *stall* freezes it for a bounded
//! window while the shard keeps serving — the monitor's detector
//! declares the shard dead either way (that is the point: the paper's
//! detected fail-stop model distinguishes nothing finer at the
//! observer), and a stalled shard whose beats resume is re-admitted as a
//! rejoin.

use crate::config::ServiceConfig;
use crate::error::SubmitError;
use crate::metrics::MetricsSnapshot;
use crate::service::{MulService, ResponseHandle};
use crate::transport::ShardId;
use ft_bigint::BigInt;
use std::time::{Duration, Instant};

struct BeatState {
    /// Beat value the counter froze at (`None` while advancing).
    frozen: Option<u64>,
    /// Frozen until this instant (`None` = forever, i.e. killed).
    until: Option<Instant>,
}

/// A [`MulService`] with a shard identity and a heartbeat.
pub struct Shard {
    id: ShardId,
    service: parking_lot::RwLock<Option<MulService>>,
    started_at: Instant,
    heartbeat: Duration,
    beat_state: parking_lot::Mutex<BeatState>,
}

impl Shard {
    /// Start a fresh shard: a new service plus a beating heart.
    #[must_use]
    pub fn start(id: ShardId, config: ServiceConfig, heartbeat_ms: u64) -> Shard {
        Shard::from_service(id, MulService::start(config), heartbeat_ms)
    }

    /// Wrap an already-running service (the single-shard compatibility
    /// path: an unsharded `MulService` becomes a one-shard topology).
    #[must_use]
    pub fn from_service(id: ShardId, service: MulService, heartbeat_ms: u64) -> Shard {
        Shard {
            id,
            service: parking_lot::RwLock::new(Some(service)),
            started_at: Instant::now(),
            heartbeat: Duration::from_millis(heartbeat_ms.max(1)),
            beat_state: parking_lot::Mutex::new(BeatState {
                frozen: None,
                until: None,
            }),
        }
    }

    /// This shard's identity.
    #[must_use]
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// Beats elapsed on the wall clock since the shard started.
    fn wall_beats(&self) -> u64 {
        let elapsed = self.started_at.elapsed();
        (elapsed.as_nanos() / self.heartbeat.as_nanos().max(1)) as u64
    }

    /// The heartbeat counter: monotone while live, frozen while stalled,
    /// frozen forever once killed.
    #[must_use]
    pub fn beats(&self) -> u64 {
        let mut state = self.beat_state.lock();
        match state.frozen {
            None => self.wall_beats(),
            Some(frozen) => match state.until {
                // Killed: silent forever.
                None => frozen,
                Some(until) if Instant::now() < until => frozen,
                // Stall window over: thaw and resume the wall clock.
                Some(_) => {
                    state.frozen = None;
                    state.until = None;
                    self.wall_beats().max(frozen)
                }
            },
        }
    }

    /// Fail-stop the shard: freeze the heartbeat forever and surrender
    /// unstarted work (see [`MulService::kill`]). Idempotent; a kill
    /// overrides any stall in progress.
    pub fn kill(&self) {
        {
            let mut state = self.beat_state.lock();
            let frozen = state.frozen.unwrap_or_else(|| self.wall_beats());
            state.frozen = Some(frozen);
            state.until = None;
        }
        if let Some(service) = self.service.read().as_ref() {
            service.kill();
        }
    }

    /// Withhold heartbeats for `rounds` beat periods while the shard
    /// keeps serving. A kill in progress is not downgraded.
    pub fn stall(&self, rounds: u64) {
        let mut state = self.beat_state.lock();
        if state.frozen.is_some() && state.until.is_none() {
            return; // killed: stays dead
        }
        let frozen = state.frozen.unwrap_or_else(|| self.wall_beats());
        state.frozen = Some(frozen);
        state.until =
            Some(Instant::now() + self.heartbeat * u32::try_from(rounds).unwrap_or(u32::MAX));
    }

    /// Whether the shard was fail-stopped.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        let state = self.beat_state.lock();
        state.frozen.is_some() && state.until.is_none()
    }

    /// Submit one multiplication on the shard's coalescing async path.
    pub fn submit(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Option<Duration>,
    ) -> Result<ResponseHandle, SubmitError> {
        match self.service.read().as_ref() {
            None => Err(SubmitError::ShuttingDown),
            Some(service) => match deadline {
                None => service.submit_async(a, b),
                Some(d) => service.submit_async_with_deadline(a, b, d),
            },
        }
    }

    /// Current queue depth (saturated = at or past the async queue
    /// capacity).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.service
            .read()
            .as_ref()
            .map_or(usize::MAX, MulService::queue_depth)
    }

    /// Point-in-time metrics of the underlying service.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.service
            .read()
            .as_ref()
            .map_or_else(MetricsSnapshot::default, MulService::metrics)
    }

    /// The service configuration this shard runs.
    #[must_use]
    pub fn config(&self) -> ServiceConfig {
        self.service
            .read()
            .as_ref()
            .map(|s| s.config().clone())
            .unwrap_or_default()
    }

    /// Drain accepted work, stop the service, and return final metrics.
    /// Idempotent: a second call returns an empty snapshot.
    #[must_use]
    pub fn shutdown(&self) -> MetricsSnapshot {
        let service = self.service.write().take();
        service.map_or_else(MetricsSnapshot::default, MulService::shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            verify_residues: false,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn beats_advance_then_freeze_on_kill() {
        let shard = Shard::start(0, tiny_config(), 5);
        assert_eq!(shard.id(), 0);
        let first = shard.beats();
        std::thread::sleep(Duration::from_millis(20));
        assert!(shard.beats() > first, "live shard beats advance");
        shard.kill();
        assert!(shard.is_killed());
        let frozen = shard.beats();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(shard.beats(), frozen, "killed shard is silent forever");
        assert!(matches!(
            shard.submit(BigInt::one(), BigInt::one(), None),
            Err(SubmitError::ShuttingDown)
        ));
        let _ = shard.shutdown();
    }

    #[test]
    fn stalled_beats_resume_and_jump_forward() {
        let shard = Shard::start(1, tiny_config(), 5);
        shard.stall(3); // ~15 ms of silence
        let frozen = shard.beats();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(shard.beats(), frozen, "stalled shard is silent");
        // The shard still serves while silent.
        let a: BigInt = "12345678901234567890".parse().unwrap();
        let b: BigInt = "98765432109876543210".parse().unwrap();
        let handle = shard.submit(a.clone(), b.clone(), None).unwrap();
        assert_eq!(handle.wait().unwrap(), a.mul_schoolbook(&b));
        std::thread::sleep(Duration::from_millis(25));
        assert!(shard.beats() > frozen, "beats resume after the window");
        assert!(!shard.is_killed());
        let snap = shard.shutdown();
        assert_eq!(snap.served, 1);
        // Idempotent shutdown.
        assert_eq!(shard.shutdown().served, 0);
        assert_eq!(shard.queue_depth(), usize::MAX, "stopped shard reads full");
    }
}
