//! Shared LRU cache of [`ToomPlan`]s.
//!
//! Plans are immutable and moderately expensive to build (one
//! `(2k−1)×(2k−1)` rational inverse each), so the service resolves each
//! kernel's plan here once per batch rather than once per multiplication.
//! `ft_toom_core::ToomPlan::shared` already memoizes the classic point
//! sets process-wide; this cache additionally bounds memory (LRU) and
//! counts hits/misses for the metrics snapshot.

use ft_toom_core::ToomPlan;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bounded LRU mapping split parameter `k` → shared plan.
pub struct PlanCache {
    /// Most-recently-used last. The k-space is tiny (single digits), so a
    /// scanned Vec beats a linked-map here.
    entries: Mutex<Vec<(usize, Arc<ToomPlan>)>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> PlanCache {
        assert!(capacity > 0, "plan cache capacity must be >= 1");
        PlanCache {
            entries: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The plan for Toom-Cook-`k`, building and inserting it on miss.
    #[must_use]
    pub fn get(&self, k: usize) -> Arc<ToomPlan> {
        let mut entries = self.entries.lock();
        if let Some(pos) = entries.iter().position(|(key, _)| *key == k) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let entry = entries.remove(pos);
            let plan = entry.1.clone();
            entries.push(entry);
            return plan;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = ToomPlan::shared(k);
        if entries.len() == self.capacity {
            entries.remove(0);
        }
        entries.push((k, plan.clone()));
        plan
    }

    /// Resolve (and cache) the plans for every `k` up front, so the first
    /// request or coalesced batch does not pay plan construction inside
    /// its latency. Prewarming counts as ordinary misses/hits.
    pub fn prewarm(&self, ks: impl IntoIterator<Item = usize>) {
        for k in ks {
            let _ = self.get(k);
        }
    }

    /// (hits, misses) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of currently cached plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let cache = PlanCache::new(4);
        let p1 = cache.get(3);
        let p2 = cache.get(3);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(p1.k(), 3);
    }

    #[test]
    fn prewarm_populates_the_cache() {
        let cache = PlanCache::new(4);
        cache.prewarm([3, 4, 3]);
        assert_eq!(cache.len(), 2);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 2));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let _ = cache.get(2);
        let _ = cache.get(3);
        let _ = cache.get(2); // refresh 2 → LRU order is now [3, 2]
        let _ = cache.get(4); // evicts 3
        assert_eq!(cache.len(), 2);
        let (_, misses_before) = cache.stats();
        let _ = cache.get(2); // still cached
        let _ = cache.get(3); // was evicted → miss
        let (_, misses_after) = cache.stats();
        assert_eq!(misses_after - misses_before, 1);
    }
}
