//! Service configuration, loadable from JSON.
//!
//! The derives come from the workspace `serde` (a no-op shim in the
//! offline container — see `vendor/README.md`), so the JSON round-trip is
//! implemented directly via [`crate::json`]; the derive keeps the structs
//! source-compatible with upstream serde for when the real crate returns.

use crate::chaos::ChaosConfig;
use crate::json::{obj, Json, JsonError};
use crate::supervisor::{BreakerPolicy, RetryPolicy};
use crate::verify::VerifyPolicy;
use serde::{Deserialize, Serialize};

/// Size thresholds steering kernel auto-selection, in operand bits
/// (`min(bit_length(a), bit_length(b))`).
///
/// Defaults follow the crossover points measured by the `tune_thresholds`
/// sweep against the scratch-arena limb kernels: schoolbook only wins
/// below ~2 kbit (the in-place Karatsuba base case takes over early), and
/// sequential Toom-Cook carries to multi-megabit sizes on the single-core
/// CI container — multicore deployments should lower `seq_toom_max_bits`
/// to wherever their fork-join overhead amortizes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelPolicy {
    /// Requests at or below this size run schoolbook.
    pub schoolbook_max_bits: u64,
    /// Requests at or below this size (and above schoolbook) run
    /// sequential Toom-Cook.
    pub seq_toom_max_bits: u64,
    /// Requests *above* this size run the two-prime CRT NTT kernel
    /// (`ft_bigint::ntt`); requests between `seq_toom_max_bits` and here
    /// run parallel Toom-Cook. The default is the 8 Mbit crossover the
    /// `tune_thresholds` big-operand sweep measured (≥1.5× over Toom-3
    /// there and above; see BENCH_kernels.json).
    pub ntt_min_bits: u64,
    /// Split parameter for the sequential Toom-Cook kernel.
    pub seq_toom_k: usize,
    /// Split parameter for the parallel Toom-Cook kernel.
    pub par_toom_k: usize,
    /// Base-case cutoff inside the Toom recursions.
    pub toom_threshold_bits: u64,
    /// Recursion levels the parallel kernel forks before going sequential.
    pub par_depth: usize,
}

impl Default for KernelPolicy {
    fn default() -> KernelPolicy {
        KernelPolicy {
            schoolbook_max_bits: 2_048,
            seq_toom_max_bits: 4_000_000,
            ntt_min_bits: 8_388_608,
            seq_toom_k: 3,
            par_toom_k: 3,
            toom_threshold_bits: 24_576,
            par_depth: 2,
        }
    }
}

/// Knobs for the async submission path: how long the dispatcher waits to
/// coalesce same-shape requests, and how it executes the merged batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// Coalescing window in µs: after the first queued request arrives,
    /// the dispatcher keeps collecting for at most this long before
    /// dispatching. `0` disables coalescing (every request dispatches
    /// alone, still through the async path).
    pub window_us: u64,
    /// Most requests merged into one executed batch.
    pub max_batch: usize,
    /// Capacity of the central async submission queue; `submit_async`
    /// beyond it returns [`crate::SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Threads used to execute one batch's elements (chunked, not
    /// per-element). `0` picks the machine's available parallelism;
    /// `1` runs the batch sequentially on the dispatcher thread, which
    /// is the right choice on a single-core host.
    pub lanes: usize,
}

impl Default for BatchingConfig {
    fn default() -> BatchingConfig {
        BatchingConfig {
            window_us: 150,
            max_batch: 32,
            queue_capacity: 1_024,
            lanes: 0,
        }
    }
}

/// Cadence and sensitivity of the adaptive threshold tuner, which
/// periodically re-derives [`KernelPolicy`] size thresholds from the live
/// per-(kernel, size-class) latency histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Master switch; `false` keeps the static policy forever.
    pub enabled: bool,
    /// How often the tuner re-examines the histogram, ms.
    pub interval_ms: u64,
    /// Minimum served samples a (kernel, size-class) cell needs on *both*
    /// sides of a threshold before the tuner will move it.
    pub min_samples: u64,
    /// Move a threshold only when the losing kernel's mean latency is at
    /// least this percentage of the winner's (e.g. `125` = 25% slower),
    /// so noise does not flap the policy.
    pub slowdown_pct: u64,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            enabled: true,
            interval_ms: 500,
            min_samples: 64,
            slowdown_pct: 125,
        }
    }
}

/// The distributed backend: coalesced groups promoted to the simulated
/// coded machine (`ft-core`'s polynomial-coded parallel Toom-Cook with
/// heartbeat failure detection). Each promoted request runs on a machine
/// of `(2k−1+f)·k^(bfs_steps−1)·…` simulated processors that survives up
/// to `f` column faults per run; unrecoverable runs fall back down the
/// ordinary kernel ladder. The injection knobs drive deterministic chaos
/// *inside* the machine (planned hard faults plus one delay fault), where
/// the heartbeat detector — not an oracle — must find them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedConfig {
    /// Master switch; `false` keeps every group on the local kernels.
    pub enabled: bool,
    /// Toom split parameter `k` of the coded machine.
    pub k: usize,
    /// BFS steps `m` of the coded machine (`P = (k²)^m` data processors).
    pub bfs_steps: usize,
    /// Redundant evaluation points `f` — column faults survivable per run.
    pub f: usize,
    /// Smallest coalesced group the dispatcher promotes.
    pub min_group: usize,
    /// Promotion window: only operands of at least this many bits…
    pub min_bits: u64,
    /// …and at most this many bits run on the simulated machine.
    pub max_bits: u64,
    /// Seed of the deterministic in-machine fault stream.
    pub fault_seed: u64,
    /// Planned hard faults injected per machine run (distinct victim
    /// ranks at the `poly-halt` fault point). More than `f` distinct
    /// *columns* makes the run unrecoverable, exercising the fallback.
    pub hard_faults_per_run: u32,
    /// Ranks per run additionally given a delay fault (slowdown).
    pub delay_ranks: u32,
    /// Slowdown factor applied to delayed ranks (1 = no delay).
    pub delay_factor: u64,
    /// Attempts (per request) that receive injection, so a supervised
    /// retry deterministically clears injected faults. `u32::MAX` makes
    /// every distributed attempt faulty (forces the fallback ladder).
    pub faulty_attempts: u32,
    /// Heartbeat deadline budget of the in-machine detector.
    pub deadline_budget: u64,
    /// Straggler factor of the in-machine detector (0 disables flagging).
    pub straggler_factor: u64,
    /// Heartbeats posted per fault point inside the machine (density of
    /// the heartbeat schedule). `1` is the classic one-beat-per-point
    /// cadence, which caps the usable `deadline_budget` at 1 between
    /// rounds (the EXPERIMENTS.md S7 cliff); a period of `h` makes every
    /// budget `≤ h` detect a fresh death.
    pub heartbeat_period: u64,
    /// Run a second in-machine detection round after the nested
    /// recursion: first-wave victims re-integrate via `ack_recovery` and
    /// keep serving the protocol, and injected hard faults alternate
    /// between the two fault points (`poly-halt` / `poly-rec-halt`).
    pub recursion_detect: bool,
}

impl Default for DistributedConfig {
    fn default() -> DistributedConfig {
        DistributedConfig {
            enabled: false,
            k: 2,
            bfs_steps: 1,
            f: 1,
            min_group: 2,
            min_bits: 2_048,
            max_bits: 4_000_000,
            fault_seed: 0,
            hard_faults_per_run: 0,
            delay_ranks: 0,
            delay_factor: 4,
            faulty_attempts: 1,
            deadline_budget: 1,
            straggler_factor: 0,
            heartbeat_period: 1,
            recursion_detect: false,
        }
    }
}

impl DistributedConfig {
    /// Read a distributed config from a parsed JSON object; absent fields
    /// keep their defaults.
    pub fn from_json(json: &Json) -> Result<DistributedConfig, ConfigError> {
        let d = DistributedConfig::default();
        let enabled = match json.get("enabled") {
            None => d.enabled,
            Some(v) => v.as_bool().ok_or_else(|| {
                ConfigError::Invalid("distributed.enabled must be a boolean".to_string())
            })?,
        };
        let cfg = DistributedConfig {
            enabled,
            k: field_usize(json, "k", d.k)?,
            bfs_steps: field_usize(json, "bfs_steps", d.bfs_steps)?,
            f: field_usize(json, "f", d.f)?,
            min_group: field_usize(json, "min_group", d.min_group)?,
            min_bits: field_u64(json, "min_bits", d.min_bits)?,
            max_bits: field_u64(json, "max_bits", d.max_bits)?,
            fault_seed: field_u64(json, "fault_seed", d.fault_seed)?,
            hard_faults_per_run: field_u32(json, "hard_faults_per_run", d.hard_faults_per_run)?,
            delay_ranks: field_u32(json, "delay_ranks", d.delay_ranks)?,
            delay_factor: field_u64(json, "delay_factor", d.delay_factor)?,
            faulty_attempts: field_u32(json, "faulty_attempts", d.faulty_attempts)?,
            deadline_budget: field_u64(json, "deadline_budget", d.deadline_budget)?,
            straggler_factor: field_u64(json, "straggler_factor", d.straggler_factor)?,
            heartbeat_period: field_u64(json, "heartbeat_period", d.heartbeat_period)?,
            recursion_detect: match json.get("recursion_detect") {
                None => d.recursion_detect,
                Some(v) => v.as_bool().ok_or_else(|| {
                    ConfigError::Invalid(
                        "distributed.recursion_detect must be a boolean".to_string(),
                    )
                })?,
            },
        };
        if cfg.k < 2 {
            return Err(ConfigError::Invalid(
                "distributed.k must be >= 2".to_string(),
            ));
        }
        if cfg.bfs_steps == 0 {
            return Err(ConfigError::Invalid(
                "distributed.bfs_steps must be >= 1".to_string(),
            ));
        }
        if cfg.min_group == 0 {
            return Err(ConfigError::Invalid(
                "distributed.min_group must be >= 1".to_string(),
            ));
        }
        if cfg.min_bits > cfg.max_bits {
            return Err(ConfigError::Invalid(
                "distributed.min_bits must not exceed distributed.max_bits".to_string(),
            ));
        }
        if cfg.delay_factor == 0 {
            return Err(ConfigError::Invalid(
                "distributed.delay_factor must be >= 1".to_string(),
            ));
        }
        if cfg.heartbeat_period == 0 {
            return Err(ConfigError::Invalid(
                "distributed.heartbeat_period must be >= 1".to_string(),
            ));
        }
        Ok(cfg)
    }

    fn to_json_value(&self) -> Json {
        obj([
            ("enabled", Json::Bool(self.enabled)),
            ("k", Json::Num(self.k as i128)),
            ("bfs_steps", Json::Num(self.bfs_steps as i128)),
            ("f", Json::Num(self.f as i128)),
            ("min_group", Json::Num(self.min_group as i128)),
            ("min_bits", Json::Num(i128::from(self.min_bits))),
            ("max_bits", Json::Num(i128::from(self.max_bits))),
            ("fault_seed", Json::Num(i128::from(self.fault_seed))),
            (
                "hard_faults_per_run",
                Json::Num(i128::from(self.hard_faults_per_run)),
            ),
            ("delay_ranks", Json::Num(i128::from(self.delay_ranks))),
            ("delay_factor", Json::Num(i128::from(self.delay_factor))),
            (
                "faulty_attempts",
                Json::Num(i128::from(self.faulty_attempts)),
            ),
            (
                "deadline_budget",
                Json::Num(i128::from(self.deadline_budget)),
            ),
            (
                "straggler_factor",
                Json::Num(i128::from(self.straggler_factor)),
            ),
            (
                "heartbeat_period",
                Json::Num(i128::from(self.heartbeat_period)),
            ),
            ("recursion_detect", Json::Bool(self.recursion_detect)),
        ])
    }
}

impl BatchingConfig {
    /// Read a batching config from a parsed JSON object; absent fields
    /// keep their defaults.
    pub fn from_json(json: &Json) -> Result<BatchingConfig, ConfigError> {
        let d = BatchingConfig::default();
        let cfg = BatchingConfig {
            window_us: field_u64(json, "window_us", d.window_us)?,
            max_batch: field_usize(json, "max_batch", d.max_batch)?,
            queue_capacity: field_usize(json, "queue_capacity", d.queue_capacity)?,
            lanes: field_usize(json, "lanes", d.lanes)?,
        };
        if cfg.max_batch == 0 {
            return Err(ConfigError::Invalid(
                "batching.max_batch must be >= 1".to_string(),
            ));
        }
        if cfg.queue_capacity == 0 {
            return Err(ConfigError::Invalid(
                "batching.queue_capacity must be >= 1".to_string(),
            ));
        }
        Ok(cfg)
    }

    fn to_json_value(&self) -> Json {
        obj([
            ("window_us", Json::Num(i128::from(self.window_us))),
            ("max_batch", Json::Num(self.max_batch as i128)),
            ("queue_capacity", Json::Num(self.queue_capacity as i128)),
            ("lanes", Json::Num(self.lanes as i128)),
        ])
    }
}

impl TunerConfig {
    /// Read a tuner config from a parsed JSON object; absent fields keep
    /// their defaults.
    pub fn from_json(json: &Json) -> Result<TunerConfig, ConfigError> {
        let d = TunerConfig::default();
        let enabled = match json.get("enabled") {
            None => d.enabled,
            Some(v) => v.as_bool().ok_or_else(|| {
                ConfigError::Invalid("tuner.enabled must be a boolean".to_string())
            })?,
        };
        let cfg = TunerConfig {
            enabled,
            interval_ms: field_u64(json, "interval_ms", d.interval_ms)?,
            min_samples: field_u64(json, "min_samples", d.min_samples)?,
            slowdown_pct: field_u64(json, "slowdown_pct", d.slowdown_pct)?,
        };
        if cfg.interval_ms == 0 {
            return Err(ConfigError::Invalid(
                "tuner.interval_ms must be >= 1".to_string(),
            ));
        }
        if cfg.slowdown_pct < 100 {
            return Err(ConfigError::Invalid(
                "tuner.slowdown_pct must be >= 100".to_string(),
            ));
        }
        Ok(cfg)
    }

    fn to_json_value(&self) -> Json {
        obj([
            ("enabled", Json::Bool(self.enabled)),
            ("interval_ms", Json::Num(i128::from(self.interval_ms))),
            ("min_samples", Json::Num(i128::from(self.min_samples))),
            ("slowdown_pct", Json::Num(i128::from(self.slowdown_pct))),
        ])
    }
}

/// Full service configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Worker threads, each with its own bounded queue.
    pub workers: usize,
    /// Per-worker queue capacity; submissions beyond it get
    /// [`crate::SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Max requests a worker drains per batch.
    pub batch_max: usize,
    /// Queue-age bound in milliseconds after which deadline-less requests
    /// are shed ([`crate::MulError::Shed`]); `None` disables shedding.
    pub shed_after_ms: Option<u64>,
    /// Capacity of the shared Toom-plan LRU cache.
    pub plan_cache_capacity: usize,
    /// Kernel selection thresholds.
    pub kernel_policy: KernelPolicy,
    /// Residue-spot-check every product (`ft_toom_core::residue`); a
    /// mismatch counts as a soft fault and the request is retried.
    pub verify_residues: bool,
    /// Dual-algorithm verification rung: sampled re-computation with a
    /// structurally distinct algorithm, escalating mismatches to a full
    /// recompute (see [`crate::verify`]).
    pub verify: VerifyPolicy,
    /// Per-request retry/backoff policy for supervised failures.
    pub retry: RetryPolicy,
    /// Per-kernel circuit-breaker policy.
    pub breaker: BreakerPolicy,
    /// Optional deterministic fault-injection plan (chaos testing);
    /// `None` injects nothing.
    pub chaos: Option<ChaosConfig>,
    /// Async submission path: coalescing window, batch bound, lanes.
    pub batching: BatchingConfig,
    /// Adaptive threshold tuner driven by the live latency histogram.
    pub tuner: TunerConfig,
    /// Distributed backend: promote coalesced groups to the simulated
    /// coded machine with heartbeat failure detection.
    pub distributed: DistributedConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            batch_max: 16,
            shed_after_ms: None,
            plan_cache_capacity: 8,
            kernel_policy: KernelPolicy::default(),
            verify_residues: true,
            verify: VerifyPolicy::default(),
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            chaos: None,
            batching: BatchingConfig::default(),
            tuner: TunerConfig::default(),
            distributed: DistributedConfig::default(),
        }
    }
}

/// The sharded topology: N [`crate::MulService`] shards behind a
/// [`crate::Router`] with rendezvous-hash placement on (kernel,
/// size-class), per-shard heartbeat liveness, failover re-routing, and
/// cross-shard work stealing. Every shard runs the same
/// [`ServiceConfig`] template; the chaos injector inside that template
/// also drives shard-level faults (`shard_kill` / `shard_stall`),
/// decided deterministically per (seed, shard, monitor round).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of service shards behind the router.
    pub shards: usize,
    /// Per-shard service configuration template.
    pub service: ServiceConfig,
    /// Monitor cadence: each shard posts one heartbeat per period of
    /// this many milliseconds, and the router's monitor samples all
    /// watermarks and derives one liveness verdict per period.
    pub heartbeat_ms: u64,
    /// Monitor rounds a shard's watermark may lag before the verdict
    /// declares it dead (service-level `deadline_budget`; the shard
    /// passes through *suspect* after one missed beat). The default of
    /// 3 tolerates scheduling jitter between the beat and monitor
    /// threads without flapping.
    pub deadline_budget: u64,
    /// Work stealing: when a request's owner shard has more than this
    /// many requests queued, the router looks for an idle sibling.
    pub hot_watermark: usize,
    /// …and steals to a live sibling whose queue depth is at or below
    /// this.
    pub idle_watermark: usize,
    /// Most times one request may be failed over to another shard after
    /// its current shard dies under it, before the error surfaces to
    /// the caller.
    pub max_failovers: u32,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 3,
            service: ServiceConfig::default(),
            heartbeat_ms: 20,
            deadline_budget: 3,
            hot_watermark: 32,
            idle_watermark: 2,
            max_failovers: 3,
        }
    }
}

impl ShardConfig {
    /// Parse a topology config from JSON text; absent fields keep their
    /// defaults.
    ///
    /// ```
    /// use ft_service::ShardConfig;
    /// let cfg = ShardConfig::from_json(
    ///     r#"{"shards": 4, "deadline_budget": 2, "service": {"workers": 1}}"#,
    /// ).unwrap();
    /// assert_eq!(cfg.shards, 4);
    /// assert_eq!(cfg.service.workers, 1);
    /// assert_eq!(cfg.heartbeat_ms, ShardConfig::default().heartbeat_ms);
    /// ```
    pub fn from_json(text: &str) -> Result<ShardConfig, ConfigError> {
        let json = Json::parse(text).map_err(ConfigError::Parse)?;
        let d = ShardConfig::default();
        let service = match json.get("service") {
            None => d.service.clone(),
            Some(v) => ServiceConfig::from_json(&v.dump())?,
        };
        let cfg = ShardConfig {
            shards: field_usize(&json, "shards", d.shards)?,
            service,
            heartbeat_ms: field_u64(&json, "heartbeat_ms", d.heartbeat_ms)?,
            deadline_budget: field_u64(&json, "deadline_budget", d.deadline_budget)?,
            hot_watermark: field_usize(&json, "hot_watermark", d.hot_watermark)?,
            idle_watermark: field_usize(&json, "idle_watermark", d.idle_watermark)?,
            max_failovers: field_u32(&json, "max_failovers", d.max_failovers)?,
        };
        if cfg.shards == 0 {
            return Err(ConfigError::Invalid("shards must be >= 1".to_string()));
        }
        if cfg.heartbeat_ms == 0 {
            return Err(ConfigError::Invalid(
                "heartbeat_ms must be >= 1".to_string(),
            ));
        }
        if cfg.deadline_budget == 0 {
            return Err(ConfigError::Invalid(
                "deadline_budget must be >= 1".to_string(),
            ));
        }
        if cfg.idle_watermark > cfg.hot_watermark {
            return Err(ConfigError::Invalid(
                "idle_watermark must not exceed hot_watermark".to_string(),
            ));
        }
        Ok(cfg)
    }

    /// Serialize to compact JSON (round-trips through [`Self::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let service = Json::parse(&self.service.to_json()).expect("service config JSON");
        obj([
            ("shards", Json::Num(self.shards as i128)),
            ("service", service),
            ("heartbeat_ms", Json::Num(i128::from(self.heartbeat_ms))),
            (
                "deadline_budget",
                Json::Num(i128::from(self.deadline_budget)),
            ),
            ("hot_watermark", Json::Num(self.hot_watermark as i128)),
            ("idle_watermark", Json::Num(self.idle_watermark as i128)),
            ("max_failovers", Json::Num(i128::from(self.max_failovers))),
        ])
        .dump()
    }
}

/// Config validation / parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The document was not valid JSON.
    Parse(JsonError),
    /// A field was missing, mistyped, or out of range.
    Invalid(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "config parse error: {e}"),
            ConfigError::Invalid(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

pub(crate) fn field_u64(json: &Json, key: &str, default: u64) -> Result<u64, ConfigError> {
    match json.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ConfigError::Invalid(format!("{key} must be a non-negative integer"))),
    }
}

pub(crate) fn field_u32(json: &Json, key: &str, default: u32) -> Result<u32, ConfigError> {
    let wide = field_u64(json, key, u64::from(default))?;
    u32::try_from(wide)
        .map_err(|_| ConfigError::Invalid(format!("{key} must fit in an unsigned 32-bit integer")))
}

pub(crate) fn field_usize(json: &Json, key: &str, default: usize) -> Result<usize, ConfigError> {
    match json.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| ConfigError::Invalid(format!("{key} must be a non-negative integer"))),
    }
}

impl KernelPolicy {
    /// Read a policy from a parsed JSON object; absent fields keep their
    /// defaults.
    pub fn from_json(json: &Json) -> Result<KernelPolicy, ConfigError> {
        let d = KernelPolicy::default();
        let policy = KernelPolicy {
            schoolbook_max_bits: field_u64(json, "schoolbook_max_bits", d.schoolbook_max_bits)?,
            seq_toom_max_bits: field_u64(json, "seq_toom_max_bits", d.seq_toom_max_bits)?,
            ntt_min_bits: field_u64(json, "ntt_min_bits", d.ntt_min_bits)?,
            seq_toom_k: field_usize(json, "seq_toom_k", d.seq_toom_k)?,
            par_toom_k: field_usize(json, "par_toom_k", d.par_toom_k)?,
            toom_threshold_bits: field_u64(json, "toom_threshold_bits", d.toom_threshold_bits)?,
            par_depth: field_usize(json, "par_depth", d.par_depth)?,
        };
        if policy.schoolbook_max_bits > policy.seq_toom_max_bits {
            return Err(ConfigError::Invalid(
                "schoolbook_max_bits must not exceed seq_toom_max_bits".to_string(),
            ));
        }
        if policy.seq_toom_max_bits > policy.ntt_min_bits {
            return Err(ConfigError::Invalid(
                "seq_toom_max_bits must not exceed ntt_min_bits".to_string(),
            ));
        }
        if policy.seq_toom_k < 2 || policy.par_toom_k < 2 {
            return Err(ConfigError::Invalid(
                "toom k parameters must be >= 2".to_string(),
            ));
        }
        Ok(policy)
    }

    fn to_json_value(&self) -> Json {
        obj([
            (
                "schoolbook_max_bits",
                Json::Num(i128::from(self.schoolbook_max_bits)),
            ),
            (
                "seq_toom_max_bits",
                Json::Num(i128::from(self.seq_toom_max_bits)),
            ),
            ("ntt_min_bits", Json::Num(i128::from(self.ntt_min_bits))),
            ("seq_toom_k", Json::Num(self.seq_toom_k as i128)),
            ("par_toom_k", Json::Num(self.par_toom_k as i128)),
            (
                "toom_threshold_bits",
                Json::Num(i128::from(self.toom_threshold_bits)),
            ),
            ("par_depth", Json::Num(self.par_depth as i128)),
        ])
    }
}

impl ServiceConfig {
    /// Parse a config from JSON text; absent fields keep their defaults.
    ///
    /// ```
    /// use ft_service::ServiceConfig;
    /// let cfg = ServiceConfig::from_json(
    ///     r#"{"workers": 2, "kernel_policy": {"schoolbook_max_bits": 4000}}"#,
    /// ).unwrap();
    /// assert_eq!(cfg.workers, 2);
    /// assert_eq!(cfg.kernel_policy.schoolbook_max_bits, 4000);
    /// assert_eq!(cfg.batch_max, ServiceConfig::default().batch_max);
    /// ```
    pub fn from_json(text: &str) -> Result<ServiceConfig, ConfigError> {
        let json = Json::parse(text).map_err(ConfigError::Parse)?;
        let d = ServiceConfig::default();
        let shed_after_ms = match json.get("shed_after_ms") {
            None => d.shed_after_ms,
            Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ConfigError::Invalid("shed_after_ms must be an integer or null".to_string())
            })?),
        };
        let kernel_policy = match json.get("kernel_policy") {
            None => d.kernel_policy.clone(),
            Some(v) => KernelPolicy::from_json(v)?,
        };
        let verify_residues = match json.get("verify_residues") {
            None => d.verify_residues,
            Some(v) => v.as_bool().ok_or_else(|| {
                ConfigError::Invalid("verify_residues must be a boolean".to_string())
            })?,
        };
        let verify = match json.get("verify") {
            None => d.verify.clone(),
            Some(v) => VerifyPolicy::from_json(v)?,
        };
        let retry = match json.get("retry") {
            None => d.retry.clone(),
            Some(v) => RetryPolicy::from_json(v)?,
        };
        let breaker = match json.get("breaker") {
            None => d.breaker.clone(),
            Some(v) => BreakerPolicy::from_json(v)?,
        };
        let chaos = match json.get("chaos") {
            None | Some(Json::Null) => None,
            Some(v) => Some(ChaosConfig::from_json(v)?),
        };
        let batching = match json.get("batching") {
            None => d.batching.clone(),
            Some(v) => BatchingConfig::from_json(v)?,
        };
        let tuner = match json.get("tuner") {
            None => d.tuner.clone(),
            Some(v) => TunerConfig::from_json(v)?,
        };
        let distributed = match json.get("distributed") {
            None => d.distributed.clone(),
            Some(v) => DistributedConfig::from_json(v)?,
        };
        let cfg = ServiceConfig {
            workers: field_usize(&json, "workers", d.workers)?,
            queue_capacity: field_usize(&json, "queue_capacity", d.queue_capacity)?,
            batch_max: field_usize(&json, "batch_max", d.batch_max)?,
            shed_after_ms,
            plan_cache_capacity: field_usize(&json, "plan_cache_capacity", d.plan_cache_capacity)?,
            kernel_policy,
            verify_residues,
            verify,
            retry,
            breaker,
            chaos,
            batching,
            tuner,
            distributed,
        };
        if cfg.workers == 0 {
            return Err(ConfigError::Invalid("workers must be >= 1".to_string()));
        }
        if cfg.queue_capacity == 0 {
            return Err(ConfigError::Invalid(
                "queue_capacity must be >= 1".to_string(),
            ));
        }
        if cfg.batch_max == 0 {
            return Err(ConfigError::Invalid("batch_max must be >= 1".to_string()));
        }
        if cfg.plan_cache_capacity == 0 {
            return Err(ConfigError::Invalid(
                "plan_cache_capacity must be >= 1".to_string(),
            ));
        }
        Ok(cfg)
    }

    /// Serialize to compact JSON (round-trips through [`Self::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        obj([
            ("workers", Json::Num(self.workers as i128)),
            ("queue_capacity", Json::Num(self.queue_capacity as i128)),
            ("batch_max", Json::Num(self.batch_max as i128)),
            (
                "shed_after_ms",
                self.shed_after_ms
                    .map_or(Json::Null, |ms| Json::Num(i128::from(ms))),
            ),
            (
                "plan_cache_capacity",
                Json::Num(self.plan_cache_capacity as i128),
            ),
            ("kernel_policy", self.kernel_policy.to_json_value()),
            ("verify_residues", Json::Bool(self.verify_residues)),
            ("verify", self.verify.to_json_value()),
            ("retry", self.retry.to_json_value()),
            ("breaker", self.breaker.to_json_value()),
            (
                "chaos",
                self.chaos
                    .as_ref()
                    .map_or(Json::Null, ChaosConfig::to_json_value),
            ),
            ("batching", self.batching.to_json_value()),
            ("tuner", self.tuner.to_json_value()),
            ("distributed", self.distributed.to_json_value()),
        ])
        .dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_through_json() {
        let cfg = ServiceConfig::default();
        let again = ServiceConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn partial_document_keeps_defaults() {
        let cfg = ServiceConfig::from_json(r#"{"workers": 7, "shed_after_ms": 12}"#).unwrap();
        assert_eq!(cfg.workers, 7);
        assert_eq!(cfg.shed_after_ms, Some(12));
        assert_eq!(cfg.batch_max, ServiceConfig::default().batch_max);
        assert!(cfg.verify_residues);
        assert_eq!(cfg.chaos, None);
    }

    #[test]
    fn robustness_fields_round_trip() {
        let cfg = ServiceConfig::from_json(
            r#"{
                "verify_residues": false,
                "retry": {"max_retries": 9, "backoff_base_ms": 2},
                "breaker": {"failure_threshold": 3, "open_ms": 40},
                "chaos": {"seed": 42, "corrupt_per_10k": 1000,
                          "force": [{"index": 4, "kind": "panic"}]}
            }"#,
        )
        .unwrap();
        assert!(!cfg.verify_residues);
        assert_eq!(cfg.retry.max_retries, 9);
        assert_eq!(cfg.breaker.failure_threshold, 3);
        let chaos = cfg.chaos.as_ref().unwrap();
        assert_eq!(chaos.seed, 42);
        assert_eq!(chaos.corrupt_per_10k, 1000);
        assert_eq!(chaos.force, vec![(4, crate::chaos::FaultKind::Panic)]);
        let again = ServiceConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, again);
        // Explicit null disables chaos, like omitting the key.
        let off = ServiceConfig::from_json(r#"{"chaos": null}"#).unwrap();
        assert_eq!(off.chaos, None);
    }

    #[test]
    fn batching_and_tuner_round_trip() {
        let cfg = ServiceConfig::from_json(
            r#"{
                "batching": {"window_us": 75, "max_batch": 8, "queue_capacity": 32, "lanes": 1},
                "tuner": {"enabled": false, "interval_ms": 250, "min_samples": 10,
                          "slowdown_pct": 150}
            }"#,
        )
        .unwrap();
        assert_eq!(cfg.batching.window_us, 75);
        assert_eq!(cfg.batching.max_batch, 8);
        assert_eq!(cfg.batching.queue_capacity, 32);
        assert_eq!(cfg.batching.lanes, 1);
        assert!(!cfg.tuner.enabled);
        assert_eq!(cfg.tuner.interval_ms, 250);
        assert_eq!(cfg.tuner.min_samples, 10);
        assert_eq!(cfg.tuner.slowdown_pct, 150);
        let again = ServiceConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, again);
        // Absent sections keep defaults.
        let plain = ServiceConfig::from_json("{}").unwrap();
        assert_eq!(plain.batching, BatchingConfig::default());
        assert_eq!(plain.tuner, TunerConfig::default());
    }

    #[test]
    fn rejects_invalid_batching_and_tuner_values() {
        assert!(matches!(
            ServiceConfig::from_json(r#"{"batching": {"max_batch": 0}}"#),
            Err(ConfigError::Invalid(_))
        ));
        assert!(matches!(
            ServiceConfig::from_json(r#"{"batching": {"queue_capacity": 0}}"#),
            Err(ConfigError::Invalid(_))
        ));
        assert!(matches!(
            ServiceConfig::from_json(r#"{"tuner": {"interval_ms": 0}}"#),
            Err(ConfigError::Invalid(_))
        ));
        assert!(matches!(
            ServiceConfig::from_json(r#"{"tuner": {"slowdown_pct": 99}}"#),
            Err(ConfigError::Invalid(_))
        ));
    }

    #[test]
    fn distributed_round_trips() {
        let cfg = ServiceConfig::from_json(
            r#"{
                "distributed": {"enabled": true, "k": 3, "bfs_steps": 1, "f": 2,
                                "min_group": 3, "min_bits": 4096, "max_bits": 65536,
                                "fault_seed": 7, "hard_faults_per_run": 2,
                                "delay_ranks": 1, "delay_factor": 8,
                                "faulty_attempts": 2, "deadline_budget": 3,
                                "straggler_factor": 4, "heartbeat_period": 4}
            }"#,
        )
        .unwrap();
        assert!(cfg.distributed.enabled);
        assert_eq!(cfg.distributed.k, 3);
        assert_eq!(cfg.distributed.f, 2);
        assert_eq!(cfg.distributed.min_group, 3);
        assert_eq!(cfg.distributed.hard_faults_per_run, 2);
        assert_eq!(cfg.distributed.deadline_budget, 3);
        assert_eq!(cfg.distributed.heartbeat_period, 4);
        let again = ServiceConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(again, cfg);
        // Absent section keeps the disabled default.
        let plain = ServiceConfig::from_json("{}").unwrap();
        assert_eq!(plain.distributed, DistributedConfig::default());
        assert!(!plain.distributed.enabled);
    }

    #[test]
    fn rejects_invalid_distributed_values() {
        for bad in [
            r#"{"distributed": {"k": 1}}"#,
            r#"{"distributed": {"bfs_steps": 0}}"#,
            r#"{"distributed": {"min_group": 0}}"#,
            r#"{"distributed": {"min_bits": 10, "max_bits": 5}}"#,
            r#"{"distributed": {"delay_factor": 0}}"#,
            r#"{"distributed": {"heartbeat_period": 0}}"#,
            r#"{"distributed": {"enabled": 1}}"#,
            r#"{"distributed": {"faulty_attempts": 4294967296}}"#,
        ] {
            assert!(
                matches!(ServiceConfig::from_json(bad), Err(ConfigError::Invalid(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn shard_config_round_trips() {
        let cfg = ShardConfig::from_json(
            r#"{
                "shards": 5, "heartbeat_ms": 10, "deadline_budget": 2,
                "hot_watermark": 16, "idle_watermark": 1, "max_failovers": 2,
                "service": {"workers": 2, "batching": {"queue_capacity": 8}}
            }"#,
        )
        .unwrap();
        assert_eq!(cfg.shards, 5);
        assert_eq!(cfg.heartbeat_ms, 10);
        assert_eq!(cfg.deadline_budget, 2);
        assert_eq!(cfg.hot_watermark, 16);
        assert_eq!(cfg.idle_watermark, 1);
        assert_eq!(cfg.max_failovers, 2);
        assert_eq!(cfg.service.workers, 2);
        assert_eq!(cfg.service.batching.queue_capacity, 8);
        let again = ShardConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(cfg, again);
        // Absent fields keep defaults, including the service template.
        let plain = ShardConfig::from_json("{}").unwrap();
        assert_eq!(plain, ShardConfig::default());
    }

    #[test]
    fn rejects_invalid_shard_values() {
        for bad in [
            r#"{"shards": 0}"#,
            r#"{"heartbeat_ms": 0}"#,
            r#"{"deadline_budget": 0}"#,
            r#"{"hot_watermark": 1, "idle_watermark": 2}"#,
            r#"{"service": {"workers": 0}}"#,
        ] {
            assert!(
                matches!(ShardConfig::from_json(bad), Err(ConfigError::Invalid(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn rejects_invalid_values() {
        assert!(matches!(
            ServiceConfig::from_json(r#"{"workers": 0}"#),
            Err(ConfigError::Invalid(_))
        ));
        assert!(matches!(
            ServiceConfig::from_json(r#"{"workers": -3}"#),
            Err(ConfigError::Invalid(_))
        ));
        assert!(matches!(
            ServiceConfig::from_json("{"),
            Err(ConfigError::Parse(_))
        ));
        assert!(matches!(
            ServiceConfig::from_json(
                r#"{"kernel_policy": {"schoolbook_max_bits": 10, "seq_toom_max_bits": 5}}"#
            ),
            Err(ConfigError::Invalid(_))
        ));
        // The NTT floor may not undercut the sequential-Toom ceiling.
        assert!(matches!(
            ServiceConfig::from_json(
                r#"{"kernel_policy": {"seq_toom_max_bits": 9000000, "ntt_min_bits": 8000000}}"#
            ),
            Err(ConfigError::Invalid(_))
        ));
        let cfg =
            ServiceConfig::from_json(r#"{"kernel_policy": {"ntt_min_bits": 16000000}}"#).unwrap();
        assert_eq!(cfg.kernel_policy.ntt_min_bits, 16_000_000);
    }
}
