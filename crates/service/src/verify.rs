//! The verification policy ladder: `residue → dual-algorithm → recompute`.
//!
//! The residue spot-check (rung 1, `ft_toom_core::residue`) is `O(n)` and
//! deterministic for single-limb corruptions, but provably blind to any
//! corruption whose delta is divisible by `2^128 − 1`. Rung 2 closes that
//! blind spot ABFT-style (cf. "Fault-Tolerant Strassen-Like Matrix
//! Multiplication", PAPERS.md): a sampled subset of results is recomputed
//! with a *structurally distinct* algorithm — limb multiplication below a
//! size floor, Toom-Cook on the disjoint alternate evaluation-point set
//! ([`ft_toom_core::ToomPlan::shared_alternate`]) above it — and any
//! disagreement escalates to rung 3, a full clean recompute with the
//! serving kernel that localizes which of the two results was corrupt
//! (2-of-3 majority). Confirmed corruptions charge the per-kernel circuit
//! breaker, so repeated offenders trip it exactly like crash faults.
//!
//! [`VerifyPolicy`] is the JSON-loadable knob set; the ladder itself lives
//! in [`crate::supervisor`], metered per rung in
//! [`crate::metrics::VerifySnapshot`].

use crate::config::{field_u32, field_u64, field_usize, ConfigError};
use crate::json::{obj, Json};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// JSON-loadable policy for the dual-algorithm verification rung.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyPolicy {
    /// Dual-check sampling rate per 10 000 requests (0 disables the rung,
    /// 10 000 checks every request). Sampling is deterministic in
    /// `(sample_seed, request index)`, like chaos injection.
    pub dual_per_10k: u32,
    /// At or below this operand size (min of the two operands' bit
    /// lengths), the dual check uses plain limb multiplication; above it,
    /// Toom-Cook on the alternate point set.
    pub dual_small_max_bits: u64,
    /// Operands larger than this (min bit length) are never dual-checked —
    /// the size guard that keeps worst-case sampled overhead bounded. The
    /// default (32 Mbit) deliberately covers the NTT regime past
    /// `KernelPolicy::ntt_min_bits`: NTT-served products there dual-check
    /// against alternate-point Toom, a structurally distinct algorithm
    /// with no shared transform/twiddle machinery, and the measured rung-1
    /// residue cost stays negligible at those sizes (see EXPERIMENTS.md
    /// §S9) so the ladder is affordable where the new kernel serves.
    pub dual_max_bits: u64,
    /// Split parameter for the alternate-point Toom dual check.
    pub dual_toom_k: usize,
    /// Charge a recompute-confirmed corruption to the serving kernel's
    /// circuit breaker, so repeated offenders trip it.
    pub breaker_on_mismatch: bool,
    /// Seed of the deterministic sampling stream.
    pub sample_seed: u64,
}

impl Default for VerifyPolicy {
    fn default() -> VerifyPolicy {
        VerifyPolicy {
            dual_per_10k: 250,
            dual_small_max_bits: 16_384,
            dual_max_bits: 1 << 25,
            dual_toom_k: 3,
            breaker_on_mismatch: true,
            sample_seed: 0,
        }
    }
}

impl VerifyPolicy {
    /// `true` when the dual rung can fire at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.dual_per_10k > 0
    }

    /// Deterministic sampling decision for a request index: does the dual
    /// rung check this result? Uses the same seeded-stream recipe as
    /// [`crate::chaos::ChaosConfig`], so a run is reproducible regardless
    /// of worker scheduling.
    #[must_use]
    pub fn samples(&self, request: u64) -> bool {
        if self.dual_per_10k == 0 {
            return false;
        }
        if self.dual_per_10k >= 10_000 {
            return true;
        }
        let mut rng =
            StdRng::seed_from_u64(self.sample_seed ^ request.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        #[allow(clippy::cast_possible_truncation)] // draw < 10_000
        let draw = rng.random_range(0..10_000) as u32;
        draw < self.dual_per_10k
    }

    /// Read a policy from a parsed JSON object; absent fields keep their
    /// defaults.
    pub fn from_json(json: &Json) -> Result<VerifyPolicy, ConfigError> {
        let d = VerifyPolicy::default();
        let breaker_on_mismatch = match json.get("breaker_on_mismatch") {
            None => d.breaker_on_mismatch,
            Some(v) => v.as_bool().ok_or_else(|| {
                ConfigError::Invalid("verify.breaker_on_mismatch must be a boolean".to_string())
            })?,
        };
        let policy = VerifyPolicy {
            dual_per_10k: field_u32(json, "dual_per_10k", d.dual_per_10k)?,
            dual_small_max_bits: field_u64(json, "dual_small_max_bits", d.dual_small_max_bits)?,
            dual_max_bits: field_u64(json, "dual_max_bits", d.dual_max_bits)?,
            dual_toom_k: field_usize(json, "dual_toom_k", d.dual_toom_k)?,
            breaker_on_mismatch,
            sample_seed: field_u64(json, "sample_seed", d.sample_seed)?,
        };
        if policy.dual_per_10k > 10_000 {
            return Err(ConfigError::Invalid(
                "verify.dual_per_10k must be at most 10000".to_string(),
            ));
        }
        if policy.dual_toom_k < 2 {
            return Err(ConfigError::Invalid(
                "verify.dual_toom_k must be >= 2".to_string(),
            ));
        }
        if policy.dual_small_max_bits > policy.dual_max_bits {
            return Err(ConfigError::Invalid(
                "verify.dual_small_max_bits must not exceed dual_max_bits".to_string(),
            ));
        }
        Ok(policy)
    }

    pub(crate) fn to_json_value(&self) -> Json {
        obj([
            ("dual_per_10k", Json::Num(i128::from(self.dual_per_10k))),
            (
                "dual_small_max_bits",
                Json::Num(i128::from(self.dual_small_max_bits)),
            ),
            ("dual_max_bits", Json::Num(i128::from(self.dual_max_bits))),
            (
                "dual_toom_k",
                Json::Num(i128::try_from(self.dual_toom_k).unwrap_or(i128::MAX)),
            ),
            ("breaker_on_mismatch", Json::Bool(self.breaker_on_mismatch)),
            ("sample_seed", Json::Num(i128::from(self.sample_seed))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_tracks_the_rate() {
        let policy = VerifyPolicy {
            dual_per_10k: 500,
            sample_seed: 42,
            ..VerifyPolicy::default()
        };
        let hits: usize = (0..10_000).filter(|&r| policy.samples(r)).count();
        // 5% nominal over 10k draws.
        assert!((300..700).contains(&hits), "hits {hits}");
        for r in 0..100 {
            assert_eq!(policy.samples(r), policy.samples(r));
        }
        // Different seeds give different sample sets.
        let other = VerifyPolicy {
            sample_seed: 43,
            ..policy.clone()
        };
        assert!((0..10_000).any(|r| policy.samples(r) != other.samples(r)));
    }

    #[test]
    fn rate_extremes() {
        let off = VerifyPolicy {
            dual_per_10k: 0,
            ..VerifyPolicy::default()
        };
        assert!(!off.is_active());
        assert!((0..1_000).all(|r| !off.samples(r)));
        let always = VerifyPolicy {
            dual_per_10k: 10_000,
            ..VerifyPolicy::default()
        };
        assert!(always.is_active());
        assert!((0..1_000).all(|r| always.samples(r)));
    }

    #[test]
    fn json_round_trip() {
        let policy = VerifyPolicy {
            dual_per_10k: 2_500,
            dual_small_max_bits: 1_000,
            dual_max_bits: 100_000,
            dual_toom_k: 4,
            breaker_on_mismatch: false,
            sample_seed: 7,
        };
        let text = policy.to_json_value().dump();
        let parsed = VerifyPolicy::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, policy);
        // Absent fields keep defaults.
        let empty = VerifyPolicy::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(empty, VerifyPolicy::default());
    }

    #[test]
    fn json_rejects_bad_documents() {
        for bad in [
            r#"{"dual_per_10k": 10001}"#,
            r#"{"dual_toom_k": 1}"#,
            r#"{"dual_small_max_bits": 10, "dual_max_bits": 5}"#,
            r#"{"breaker_on_mismatch": "yes"}"#,
            r#"{"dual_per_10k": -3}"#,
        ] {
            assert!(
                VerifyPolicy::from_json(&Json::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }
}
