//! The adaptive threshold tuner: periodically re-derives the live
//! [`KernelPolicy`] size thresholds from the per-(kernel, size-class)
//! latency cells in [`crate::metrics`], replacing the static
//! `tune_thresholds` numbers at runtime.
//!
//! Evidence model: kernel selection normally keeps each size class on one
//! kernel, but supervision leaks cross-kernel samples into the same class
//! — breaker diversions and forced degradations execute requests on a
//! *lower* kernel than selected. Whenever a class ends up with enough
//! served samples under two adjacent kernels, their mean latencies are a
//! live A/B measurement for that class, and the boundary between those
//! kernels moves to hand the class to the winner. Without such evidence
//! the thresholds stay put — the tuner never moves a boundary on
//! one-sided data.
//!
//! Means are cumulative since service start, which deliberately dampens
//! oscillation: one noisy interval cannot flap a threshold back.

use crate::config::{KernelPolicy, TunerConfig};
use crate::metrics::{size_class, ClassStats, SIZE_CLASSES};
use crate::service::Shared;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Lowest value the tuner will drive `schoolbook_max_bits` to: below this
/// the quadratic kernel is unbeatable and evidence is noise.
const MIN_SCHOOLBOOK_MAX_BITS: u64 = 512;

/// Highest value the tuner will drive `schoolbook_max_bits` to (2 Mbit):
/// a guard against pathological latency data promoting the quadratic
/// kernel into Toom territory wholesale.
const MAX_SCHOOLBOOK_MAX_BITS: u64 = 1 << 21;

/// Joinable handle to the tuner thread.
pub(crate) struct TunerHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl TunerHandle {
    /// Signal the tuner to exit and join it.
    pub(crate) fn stop(self) {
        self.stop.store(true, Ordering::Release);
        self.thread.thread().unpark();
        let _ = self.thread.join();
    }
}

/// Spawn the tuner thread for a started service.
pub(crate) fn spawn(shared: Arc<Shared>, service_id: usize) -> TunerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let thread = std::thread::Builder::new()
        .name(format!("ftsvc{service_id}-tune"))
        .spawn(move || tuner_loop(&shared, &flag))
        .expect("spawn service tuner");
    TunerHandle { stop, thread }
}

fn tuner_loop(shared: &Shared, stop: &AtomicBool) {
    let interval = Duration::from_millis(shared.config.tuner.interval_ms);
    loop {
        std::thread::park_timeout(interval);
        if stop.load(Ordering::Acquire) {
            return;
        }
        let stats = shared.metrics.kernel_class_stats();
        let current = shared.policy();
        if let Some(tuned) = retune(&current, &stats, &shared.config.tuner) {
            *shared.live_policy.write() = tuned;
            shared.metrics.record_retune();
        }
    }
}

/// Re-derive the policy's size thresholds from live latency cells.
/// Returns `None` when the evidence does not justify any move.
pub(crate) fn retune(
    policy: &KernelPolicy,
    stats: &ClassStats,
    cfg: &TunerConfig,
) -> Option<KernelPolicy> {
    let mut tuned = policy.clone();
    // Boundary 1: schoolbook ↔ sequential Toom.
    tuned.schoolbook_max_bits = tune_boundary(0, 1, policy.schoolbook_max_bits, stats, cfg)
        .clamp(MIN_SCHOOLBOOK_MAX_BITS, MAX_SCHOOLBOOK_MAX_BITS);
    // Boundary 2: sequential ↔ parallel Toom; keep the band ordering.
    tuned.seq_toom_max_bits =
        tune_boundary(1, 2, policy.seq_toom_max_bits, stats, cfg).max(tuned.schoolbook_max_bits);
    // Boundary 3: parallel Toom ↔ NTT; the NTT floor may not undercut the
    // sequential-Toom ceiling.
    tuned.ntt_min_bits =
        tune_boundary(2, 3, policy.ntt_min_bits, stats, cfg).max(tuned.seq_toom_max_bits);
    (tuned != *policy).then_some(tuned)
}

/// Adjust one boundary between the kernels at `lo`/`hi` (indices into
/// [`crate::kernel::Kernel::ALL`]). The decision comes from the class
/// nearest the boundary where *both* kernels have at least `min_samples`
/// served requests: if that class currently belongs to `lo` and `lo` is
/// at least `slowdown_pct` slower there, the boundary shrinks to hand the
/// class to `hi` — and symmetrically for growth. The class straddling the
/// boundary itself is ambiguous (both kernels legitimately own part of
/// it) and is skipped. Ties in distance resolve to the smaller class.
fn tune_boundary(
    lo: usize,
    hi: usize,
    threshold: u64,
    stats: &ClassStats,
    cfg: &TunerConfig,
) -> u64 {
    let min_samples = cfg.min_samples.max(1);
    let boundary_class = size_class(threshold);
    let mut classes: Vec<usize> = (0..SIZE_CLASSES).collect();
    classes.sort_by_key(|&c| (c.abs_diff(boundary_class), c));
    for c in classes {
        let (lo_count, lo_us) = stats[lo][c];
        let (hi_count, hi_us) = stats[hi][c];
        if lo_count < min_samples || hi_count < min_samples {
            continue;
        }
        let lo_mean = u128::from(lo_us) / u128::from(lo_count);
        let hi_mean = u128::from(hi_us) / u128::from(hi_count);
        let class_floor = if c == 0 { 0 } else { 1u64 << c };
        let class_ceil = (1u64 << (c + 1)) - 1;
        if class_ceil <= threshold {
            // Class fully inside lo's band: demote it if lo is losing.
            if lo_mean * 100 > hi_mean * u128::from(cfg.slowdown_pct) {
                return class_floor.saturating_sub(1);
            }
            return threshold; // nearest decidable evidence says stay
        }
        if class_floor > threshold {
            // Class fully inside hi's band: annex it if hi is losing.
            if hi_mean * 100 > lo_mean * u128::from(cfg.slowdown_pct) {
                return class_ceil;
            }
            return threshold;
        }
        // The class straddles the boundary: ambiguous, look further out.
    }
    threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use crate::kernel::Kernel;
    use crate::metrics::Metrics;
    use crate::plan_cache::PlanCache;
    use crate::supervisor::Supervisor;

    fn empty_stats() -> ClassStats {
        [[(0, 0); SIZE_CLASSES]; 5]
    }

    fn cfg() -> TunerConfig {
        TunerConfig {
            enabled: true,
            interval_ms: 5,
            min_samples: 10,
            slowdown_pct: 125,
        }
    }

    /// `(count, total_us)` cell with the given mean.
    fn cell(count: u64, mean_us: u64) -> (u64, u64) {
        (count, count * mean_us)
    }

    #[test]
    fn no_evidence_means_no_retune() {
        let policy = KernelPolicy::default();
        assert_eq!(retune(&policy, &empty_stats(), &cfg()), None);
        // One-sided data (only the selected kernel has samples) is not
        // evidence either.
        let mut stats = empty_stats();
        stats[1][12] = cell(1_000, 40);
        assert_eq!(retune(&policy, &stats, &cfg()), None);
        // Below min_samples on one side: still no move.
        stats[0][12] = cell(9, 10);
        assert_eq!(retune(&policy, &stats, &cfg()), None);
    }

    #[test]
    fn boundary_rises_when_the_upper_kernel_loses_its_bottom_class() {
        // Default schoolbook_max_bits = 2048. Class 12 (4096..8191) is
        // seq-toom territory, but degraded-to-schoolbook samples show
        // schoolbook is 4× faster there → the class is annexed.
        let policy = KernelPolicy::default();
        let mut stats = empty_stats();
        stats[0][12] = cell(50, 50);
        stats[1][12] = cell(50, 200);
        let tuned = retune(&policy, &stats, &cfg()).unwrap();
        assert_eq!(tuned.schoolbook_max_bits, (1 << 13) - 1);
        assert_eq!(tuned.seq_toom_max_bits, policy.seq_toom_max_bits);
    }

    #[test]
    fn boundary_falls_when_the_lower_kernel_loses_its_top_class() {
        // Class 10 (1024..2047) is schoolbook territory under the default
        // 2048 threshold; evidence shows seq toom is faster there.
        let policy = KernelPolicy::default();
        let mut stats = empty_stats();
        stats[0][10] = cell(50, 300);
        stats[1][10] = cell(50, 100);
        let tuned = retune(&policy, &stats, &cfg()).unwrap();
        assert_eq!(tuned.schoolbook_max_bits, (1 << 10) - 1);
    }

    #[test]
    fn insignificant_differences_keep_the_threshold() {
        // seq toom is slower in its bottom class, but only by 10% —
        // below slowdown_pct = 125 the tuner must not move.
        let policy = KernelPolicy::default();
        let mut stats = empty_stats();
        stats[0][12] = cell(100, 100);
        stats[1][12] = cell(100, 110);
        assert_eq!(retune(&policy, &stats, &cfg()), None);
    }

    #[test]
    fn nearest_class_wins_and_straddling_class_is_skipped() {
        let policy = KernelPolicy::default(); // T1 = 2048, boundary class 11
        let mut stats = empty_stats();
        // Straddling class 11 (2048..4095) has loud but ambiguous data.
        stats[0][11] = cell(1_000, 1);
        stats[1][11] = cell(1_000, 1_000);
        // Class 10 says lower, class 12 says raise; both are distance 1
        // from the boundary class — the tie resolves to the smaller
        // class, so the boundary falls.
        stats[0][10] = cell(50, 300);
        stats[1][10] = cell(50, 100);
        stats[0][12] = cell(50, 50);
        stats[1][12] = cell(50, 200);
        let tuned = retune(&policy, &stats, &cfg()).unwrap();
        assert_eq!(tuned.schoolbook_max_bits, (1 << 10) - 1);
    }

    #[test]
    fn thresholds_clamp_and_keep_band_ordering() {
        // Decisive "lower it" evidence at class 9 would drive the
        // schoolbook bound to 511; the floor clamps it to 512.
        let policy = KernelPolicy {
            schoolbook_max_bits: 1_023,
            ..KernelPolicy::default()
        };
        let mut stats = empty_stats();
        stats[0][9] = cell(50, 500);
        stats[1][9] = cell(50, 10);
        let tuned = retune(&policy, &stats, &cfg()).unwrap();
        assert_eq!(tuned.schoolbook_max_bits, MIN_SCHOOLBOOK_MAX_BITS);
        // seq_toom_max_bits can never fall below schoolbook_max_bits.
        let policy = KernelPolicy {
            schoolbook_max_bits: 4_095,
            seq_toom_max_bits: 4_095,
            ..KernelPolicy::default()
        };
        let mut stats = empty_stats();
        // Par toom wins class 11 (2048..4095) → boundary 2 would fall to
        // 2047, below the schoolbook bound; it is pinned at the bound,
        // which makes the whole retune a no-op.
        stats[1][11] = cell(50, 500);
        stats[2][11] = cell(50, 10);
        assert_eq!(retune(&policy, &stats, &cfg()), None);
    }

    #[test]
    fn ntt_boundary_moves_on_evidence_and_respects_band_ordering() {
        // Default ntt_min_bits = 2^23. Class 24 (16M..32M) is NTT
        // territory; degraded-to-par-toom samples show par Toom is 4×
        // faster there → the NTT floor rises to annex the class.
        let policy = KernelPolicy::default();
        let mut stats = empty_stats();
        stats[2][24] = cell(50, 50);
        stats[3][24] = cell(50, 200);
        let tuned = retune(&policy, &stats, &cfg()).unwrap();
        assert_eq!(tuned.ntt_min_bits, (1 << 25) - 1);
        assert_eq!(tuned.seq_toom_max_bits, policy.seq_toom_max_bits);
        // The floor can never fall below seq_toom_max_bits: decisive
        // "lower it" evidence just pins it at the ceiling → no-op retune.
        let policy = KernelPolicy {
            seq_toom_max_bits: (1 << 23) - 1,
            ntt_min_bits: (1 << 23) - 1,
            ..KernelPolicy::default()
        };
        let mut stats = empty_stats();
        stats[2][22] = cell(50, 500);
        stats[3][22] = cell(50, 10);
        assert_eq!(retune(&policy, &stats, &cfg()), None);
    }

    /// End-to-end: the tuner thread reads live metrics and republishes
    /// the policy. Latencies are recorded by hand, so the direction is
    /// deterministic.
    #[test]
    fn tuner_thread_republishes_the_live_policy() {
        let config = ServiceConfig {
            tuner: cfg(),
            ..ServiceConfig::default()
        };
        let shared = Arc::new(Shared {
            metrics: Metrics::default(),
            plans: PlanCache::new(2),
            supervisor: Supervisor::new(
                config.retry.clone(),
                config.breaker.clone(),
                false,
                crate::verify::VerifyPolicy::default(),
                None,
                None,
            ),
            live_policy: parking_lot::RwLock::new(config.kernel_policy.clone()),
            config,
            killed: std::sync::atomic::AtomicBool::new(false),
        });
        // Class 12 evidence: schoolbook 4× faster than seq toom.
        for _ in 0..20 {
            shared
                .metrics
                .record_served(Kernel::Schoolbook, 5_000, Duration::from_micros(50));
            shared
                .metrics
                .record_served(Kernel::SeqToom, 5_000, Duration::from_micros(200));
        }
        let handle = spawn(shared.clone(), 999);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while shared.policy().schoolbook_max_bits == 2_048 {
            assert!(std::time::Instant::now() < deadline, "tuner never retuned");
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
        assert_eq!(shared.policy().schoolbook_max_bits, (1 << 13) - 1);
        assert_eq!(
            shared.metrics.snapshot(0, (0, 0)).tuner_retunes,
            1,
            "stable after the move: the annexed class is now lo-band and lo is winning"
        );
    }
}
