//! Kernel auto-selection: size thresholds → multiplication strategy.

use crate::config::KernelPolicy;
use crate::plan_cache::PlanCache;
use ft_bigint::BigInt;
use ft_toom_core::{rayon_engine, seq};

/// The kernels the service dispatches between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Quadratic schoolbook multiplication — smallest operands.
    Schoolbook,
    /// Sequential Toom-Cook (`seq::toom_with_plan`) — mid-size operands.
    SeqToom,
    /// Fork-join parallel Toom-Cook (`rayon_engine::par_toom_with_plan`)
    /// — large operands.
    ParToom,
    /// Two-prime CRT NTT (`ft_bigint::ntt`) — the big-operand regime past
    /// `KernelPolicy::ntt_min_bits`, where `Θ(n log n)` beats every Toom
    /// split (≥1.5× over seq Toom at the default crossover; see
    /// BENCH_kernels.json). Degrades to [`Kernel::SeqToom`] on breaker
    /// trip: the structurally distinct algorithm the verify ladder also
    /// cross-checks NTT products against.
    Ntt,
    /// The simulated coded machine (`ft-core`'s polynomial-coded parallel
    /// Toom-Cook with heartbeat failure detection). Never picked by
    /// [`Kernel::select`]: the dispatcher promotes eligible coalesced
    /// groups to it when the distributed backend is enabled, and the
    /// supervisor routes it through `crate::distributed`. Its local
    /// methods here delegate to the parallel Toom kernel so the variant
    /// stays a sound (structural-fallback) kernel even without a backend.
    DistributedToom,
}

impl Kernel {
    /// Pick a kernel for operands by the smaller bit length, per `policy`.
    #[must_use]
    pub fn select(a: &BigInt, b: &BigInt, policy: &KernelPolicy) -> Kernel {
        let bits = a.bit_length().min(b.bit_length());
        if bits <= policy.schoolbook_max_bits {
            Kernel::Schoolbook
        } else if bits <= policy.seq_toom_max_bits {
            Kernel::SeqToom
        } else if bits <= policy.ntt_min_bits {
            Kernel::ParToom
        } else {
            Kernel::Ntt
        }
    }

    /// Run this kernel, resolving any Toom plan through `plans`.
    #[must_use]
    pub fn execute(
        self,
        a: &BigInt,
        b: &BigInt,
        policy: &KernelPolicy,
        plans: &PlanCache,
    ) -> BigInt {
        match self {
            Kernel::Schoolbook => a.mul_schoolbook(b),
            Kernel::SeqToom => {
                let plan = plans.get(policy.seq_toom_k);
                seq::toom_with_plan(a, b, &plan, policy.toom_threshold_bits)
            }
            Kernel::Ntt => a.mul_ntt(b),
            Kernel::ParToom | Kernel::DistributedToom => {
                let plan = plans.get(policy.par_toom_k);
                rayon_engine::par_toom_with_plan(
                    a,
                    b,
                    &plan,
                    policy.toom_threshold_bits,
                    policy.par_depth,
                )
            }
        }
    }

    /// Run this kernel over a whole coalesced batch with one shared plan
    /// resolution, returning products in input order. `lanes` bounds the
    /// threads used across elements (see
    /// [`rayon_engine::mul_batch_with_plan`]); the sequential Toom batch
    /// keeps `par_depth` at zero so a lane shares one scratch workspace
    /// across its elements.
    #[must_use]
    pub fn execute_batch(
        self,
        pairs: &[(BigInt, BigInt)],
        policy: &KernelPolicy,
        plans: &PlanCache,
        lanes: usize,
    ) -> Vec<BigInt> {
        match self {
            Kernel::Schoolbook => rayon_engine::mul_batch_schoolbook(pairs, lanes),
            Kernel::Ntt => rayon_engine::mul_batch_ntt(pairs, lanes),
            Kernel::SeqToom => {
                let plan = plans.get(policy.seq_toom_k);
                rayon_engine::mul_batch_with_plan(
                    pairs,
                    &plan,
                    policy.toom_threshold_bits,
                    0,
                    lanes,
                )
            }
            Kernel::ParToom | Kernel::DistributedToom => {
                let plan = plans.get(policy.par_toom_k);
                rayon_engine::mul_batch_with_plan(
                    pairs,
                    &plan,
                    policy.toom_threshold_bits,
                    policy.par_depth,
                    lanes,
                )
            }
        }
    }

    /// Run this kernel over a coalesced batch one element at a time with
    /// one shared plan resolution, handing each product to `sink` in
    /// input order. Unlike [`Self::execute_batch`] the caller's sink runs
    /// *between* multiplications, so per-element post-processing (residue
    /// verification in the supervisor) touches each operand/product while
    /// it is still cache-hot instead of re-walking the whole batch in a
    /// second cold pass.
    pub fn execute_each<F: FnMut(usize, BigInt)>(
        self,
        pairs: &[(BigInt, BigInt)],
        policy: &KernelPolicy,
        plans: &PlanCache,
        mut sink: F,
    ) {
        match self {
            Kernel::Schoolbook => {
                for (i, (a, b)) in pairs.iter().enumerate() {
                    sink(i, a.mul_schoolbook(b));
                }
            }
            Kernel::SeqToom => {
                let plan = plans.get(policy.seq_toom_k);
                for (i, (a, b)) in pairs.iter().enumerate() {
                    sink(
                        i,
                        seq::toom_with_plan(a, b, &plan, policy.toom_threshold_bits),
                    );
                }
            }
            Kernel::Ntt => {
                for (i, (a, b)) in pairs.iter().enumerate() {
                    sink(i, a.mul_ntt(b));
                }
            }
            Kernel::ParToom | Kernel::DistributedToom => {
                let plan = plans.get(policy.par_toom_k);
                for (i, (a, b)) in pairs.iter().enumerate() {
                    sink(
                        i,
                        rayon_engine::par_toom_with_plan(
                            a,
                            b,
                            &plan,
                            policy.toom_threshold_bits,
                            policy.par_depth,
                        ),
                    );
                }
            }
        }
    }

    /// The next rung down the degradation ladder the supervisor walks
    /// when this kernel keeps failing: distributed Toom → parallel Toom →
    /// sequential Toom → schoolbook → nothing. The NTT degrades straight
    /// to sequential Toom — the structurally distinct mid-size workhorse —
    /// rather than to parallel Toom, whose fork-join layer shares failure
    /// modes with the big-operand regime's memory pressure.
    #[must_use]
    pub fn degrade(self) -> Option<Kernel> {
        match self {
            Kernel::DistributedToom => Some(Kernel::ParToom),
            Kernel::Ntt => Some(Kernel::SeqToom),
            Kernel::ParToom => Some(Kernel::SeqToom),
            Kernel::SeqToom => Some(Kernel::Schoolbook),
            Kernel::Schoolbook => None,
        }
    }

    /// Stable name used as the metrics key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Schoolbook => "schoolbook",
            Kernel::SeqToom => "seq_toom",
            Kernel::ParToom => "par_toom",
            Kernel::Ntt => "ntt",
            Kernel::DistributedToom => "distributed_toom",
        }
    }

    /// All kernels, in selection order (the metrics/breaker index space).
    pub const ALL: [Kernel; 5] = [
        Kernel::Schoolbook,
        Kernel::SeqToom,
        Kernel::ParToom,
        Kernel::Ntt,
        Kernel::DistributedToom,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selection_respects_thresholds() {
        let policy = KernelPolicy {
            schoolbook_max_bits: 100,
            seq_toom_max_bits: 1_000,
            ntt_min_bits: 10_000,
            ..KernelPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let small = BigInt::random_bits(&mut rng, 80);
        let mid = BigInt::random_bits(&mut rng, 500);
        let big = BigInt::random_bits(&mut rng, 5_000);
        let huge = BigInt::random_bits(&mut rng, 20_000);
        assert_eq!(Kernel::select(&small, &small, &policy), Kernel::Schoolbook);
        assert_eq!(Kernel::select(&mid, &mid, &policy), Kernel::SeqToom);
        assert_eq!(Kernel::select(&big, &big, &policy), Kernel::ParToom);
        assert_eq!(Kernel::select(&huge, &huge, &policy), Kernel::Ntt);
        // The smaller operand drives selection.
        assert_eq!(Kernel::select(&small, &big, &policy), Kernel::Schoolbook);
        assert_eq!(Kernel::select(&big, &huge, &policy), Kernel::ParToom);
    }

    #[test]
    fn degradation_ladder_bottoms_out_at_schoolbook() {
        assert_eq!(Kernel::DistributedToom.degrade(), Some(Kernel::ParToom));
        assert_eq!(Kernel::Ntt.degrade(), Some(Kernel::SeqToom));
        assert_eq!(Kernel::ParToom.degrade(), Some(Kernel::SeqToom));
        assert_eq!(Kernel::SeqToom.degrade(), Some(Kernel::Schoolbook));
        assert_eq!(Kernel::Schoolbook.degrade(), None);
    }

    #[test]
    fn select_never_picks_the_distributed_kernel() {
        // Promotion to the coded machine is the dispatcher's decision, not
        // a size-threshold outcome.
        let policy = KernelPolicy::default();
        let mut rng = StdRng::seed_from_u64(4);
        for bits in [1u64, 3_000, 5_000_000, 40_000_000] {
            let x = BigInt::random_bits(&mut rng, bits);
            assert_ne!(Kernel::select(&x, &x, &policy), Kernel::DistributedToom);
        }
    }

    #[test]
    fn batch_execution_matches_per_element_execution() {
        let policy = KernelPolicy::default();
        let plans = PlanCache::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let pairs: Vec<_> = (0..6)
            .map(|i| {
                (
                    BigInt::random_signed_bits(&mut rng, 1_000 + 2_000 * i),
                    BigInt::random_signed_bits(&mut rng, 1_000 + 2_000 * i),
                )
            })
            .collect();
        let expect: Vec<_> = pairs.iter().map(|(a, b)| a.mul_schoolbook(b)).collect();
        for kernel in Kernel::ALL {
            for lanes in [1usize, 2] {
                assert_eq!(
                    kernel.execute_batch(&pairs, &policy, &plans, lanes),
                    expect,
                    "{} lanes={lanes}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn every_kernel_matches_schoolbook() {
        let policy = KernelPolicy::default();
        let plans = PlanCache::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        let a = BigInt::random_signed_bits(&mut rng, 9_000);
        let b = BigInt::random_signed_bits(&mut rng, 9_000);
        let expect = a.mul_schoolbook(&b);
        for kernel in Kernel::ALL {
            assert_eq!(
                kernel.execute(&a, &b, &policy, &plans),
                expect,
                "{}",
                kernel.name()
            );
        }
    }
}
