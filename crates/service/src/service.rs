//! The multiplication service: sharded bounded queues, batching workers,
//! per-request completion handles.
//!
//! Architecture: `submit` round-robins requests across `workers` bounded
//! crossbeam queues (one per worker, with one failover probe before
//! reporting backpressure). Each worker drains its queue in batches of up
//! to `batch_max`, applies the robustness checks (deadline, shedding),
//! auto-selects a kernel per request, and publishes the product through
//! the request's completion handle. Shutdown drops the senders; workers
//! drain what was accepted, then exit.

use crate::config::ServiceConfig;
use crate::error::{MulError, SubmitError};
use crate::kernel::Kernel;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan_cache::PlanCache;
use crate::supervisor::Supervisor;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ft_bigint::BigInt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One-shot result slot shared between a worker and a waiting client.
#[derive(Default)]
struct Completion {
    slot: Mutex<Option<Result<BigInt, MulError>>>,
    ready: Condvar,
}

impl Completion {
    fn fill(&self, result: Result<BigInt, MulError>) {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }
}

/// Fills `ServiceStopped` on drop unless a real result was published
/// first, so `ResponseHandle::wait` can never hang on a lost request
/// (worker panic, service drop mid-queue).
struct CompletionGuard {
    completion: Arc<Completion>,
    fulfilled: bool,
}

impl CompletionGuard {
    fn fulfill(mut self, result: Result<BigInt, MulError>) {
        self.completion.fill(result);
        self.fulfilled = true;
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.completion.fill(Err(MulError::ServiceStopped));
        }
    }
}

/// Client-side handle to one accepted request.
pub struct ResponseHandle {
    completion: Arc<Completion>,
}

impl ResponseHandle {
    /// Block until the request resolves.
    pub fn wait(self) -> Result<BigInt, MulError> {
        let mut slot = self
            .completion
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .completion
                .ready
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking poll; `Err(self)` when the request is still pending.
    pub fn try_wait(self) -> Result<Result<BigInt, MulError>, ResponseHandle> {
        let taken = self
            .completion
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        match taken {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }

    /// Block for at most `timeout`; `Err(self)` hands the still-usable
    /// handle back when the request has not resolved in time.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<BigInt, MulError>, ResponseHandle> {
        let completion = self.completion.clone();
        let deadline = Instant::now().checked_add(timeout);
        let mut slot = completion
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return Ok(result);
            }
            // An overflowing deadline (e.g. Duration::MAX) waits forever.
            let Some(deadline) = deadline else {
                slot = completion
                    .ready
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            };
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (guard, _) = completion
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
        }
    }
}

struct MulRequest {
    a: BigInt,
    b: BigInt,
    /// Submission sequence number; seeds deterministic chaos and backoff
    /// jitter for this request.
    index: u64,
    deadline: Option<Instant>,
    enqueued_at: Instant,
    done: CompletionGuard,
}

struct Shared {
    config: ServiceConfig,
    metrics: Metrics,
    plans: PlanCache,
    supervisor: Supervisor,
}

/// The batching multiplication service. See the module docs for the
/// architecture and [`ServiceConfig`] for the knobs.
///
/// ```
/// use ft_service::{MulService, ServiceConfig};
/// use ft_bigint::BigInt;
///
/// let service = MulService::start(ServiceConfig::default());
/// let a: BigInt = "123456789123456789".parse().unwrap();
/// let b: BigInt = "-987654321987654321".parse().unwrap();
/// let handle = service.submit(a.clone(), b.clone()).unwrap();
/// assert_eq!(handle.wait().unwrap(), a.mul_schoolbook(&b));
/// service.shutdown();
/// ```
pub struct MulService {
    shared: Arc<Shared>,
    senders: Vec<Sender<MulRequest>>,
    next: AtomicUsize,
    seq: AtomicU64,
    shutting_down: AtomicBool,
    workers: Vec<JoinHandle<()>>,
}

/// Distinguishes worker threads across service instances in one process.
static SERVICE_ID: AtomicUsize = AtomicUsize::new(0);

impl MulService {
    /// Spawn the worker pool and start accepting requests.
    ///
    /// # Panics
    /// Panics on a structurally invalid config (zero workers, zero
    /// capacity); [`ServiceConfig::from_json`] rejects those earlier.
    #[must_use]
    pub fn start(config: ServiceConfig) -> MulService {
        assert!(config.workers > 0, "workers must be >= 1");
        assert!(config.queue_capacity > 0, "queue_capacity must be >= 1");
        assert!(config.batch_max > 0, "batch_max must be >= 1");
        // Route ft-bigint's process-wide fast-multiply hook (BigInt::pow,
        // residue checks, …) through the Toom auto-dispatcher.
        let _ = ft_toom_core::seq::install_fast_mul_hook();
        let shared = Arc::new(Shared {
            plans: PlanCache::new(config.plan_cache_capacity),
            metrics: Metrics::default(),
            supervisor: Supervisor::new(
                config.retry.clone(),
                config.breaker.clone(),
                config.verify_residues,
                config.chaos.clone(),
            ),
            config,
        });
        let service_id = SERVICE_ID.fetch_add(1, Ordering::Relaxed) % 1_000;
        let mut senders = Vec::with_capacity(shared.config.workers);
        let mut workers = Vec::with_capacity(shared.config.workers);
        for index in 0..shared.config.workers {
            let (tx, rx) = bounded::<MulRequest>(shared.config.queue_capacity);
            senders.push(tx);
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    // Linux truncates thread names to 15 bytes; the old
                    // "ft-service-worker-N" collapsed every worker to the
                    // same truncated name. Keep it short and unique.
                    .name(format!("ftsvc{service_id}-w{index}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn service worker"),
            );
        }
        MulService {
            shared,
            senders,
            next: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            workers,
        }
    }

    /// Submit `a × b` with no deadline.
    pub fn submit(&self, a: BigInt, b: BigInt) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(a, b, None)
    }

    /// Submit `a × b`; if a worker does not reach the request within
    /// `deadline`, it resolves to [`MulError::DeadlineExceeded`].
    pub fn submit_with_deadline(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Duration,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(a, b, Some(Instant::now() + deadline))
    }

    fn submit_inner(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Option<Instant>,
    ) -> Result<ResponseHandle, SubmitError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let completion = Arc::new(Completion::default());
        let mut request = MulRequest {
            a,
            b,
            index: self.seq.fetch_add(1, Ordering::Relaxed),
            deadline,
            enqueued_at: Instant::now(),
            done: CompletionGuard {
                completion: completion.clone(),
                fulfilled: false,
            },
        };
        let n = self.senders.len();
        let first = self.next.fetch_add(1, Ordering::Relaxed);
        // Round-robin with up to one full-queue failover probe. A
        // disconnected queue means that worker died; skip it and keep
        // probing — only report ShuttingDown when no live queue was seen.
        let mut fulls = 0;
        let mut disconnected = 0;
        for offset in 0..n {
            let sender = &self.senders[(first + offset) % n];
            match sender.try_send(request) {
                Ok(()) => {
                    self.shared.metrics.observe_queue_depth(sender.len());
                    return Ok(ResponseHandle { completion });
                }
                Err(TrySendError::Full(r)) => {
                    request = r;
                    fulls += 1;
                    if fulls >= 2 {
                        break;
                    }
                }
                Err(TrySendError::Disconnected(r)) => {
                    request = r;
                    disconnected += 1;
                }
            }
        }
        if fulls == 0 && disconnected > 0 {
            return Err(SubmitError::ShuttingDown);
        }
        self.shared.metrics.record_queue_full();
        // Dropping `request` here resolves the handle as ServiceStopped,
        // but the caller only sees the SubmitError.
        Err(SubmitError::QueueFull {
            capacity: self.shared.config.queue_capacity,
        })
    }

    /// Point-in-time metrics (counters plus current total queue depth).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let depth = self.senders.iter().map(Sender::len).sum();
        self.shared
            .metrics
            .snapshot(depth, self.shared.plans.stats())
    }

    /// The configuration the service was started with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Stop accepting work, drain every accepted request, join the
    /// workers, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.shared.metrics.snapshot(0, self.shared.plans.stats())
    }

    fn stop_and_join(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        self.senders.clear(); // disconnects the channels once queues drain
        for handle in self.workers.drain(..) {
            // A panicked worker already resolved its lost requests as
            // ServiceStopped via CompletionGuard; nothing more to do.
            let _ = handle.join();
        }
    }
}

impl Drop for MulService {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(rx: &Receiver<MulRequest>, shared: &Shared) {
    let mut batch = Vec::with_capacity(shared.config.batch_max);
    // recv keeps returning queued requests after disconnect until the
    // queue is empty, so shutdown drains everything already accepted.
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < shared.config.batch_max {
            match rx.try_recv() {
                Ok(request) => batch.push(request),
                Err(_) => break,
            }
        }
        for request in batch.drain(..) {
            process(request, shared);
        }
    }
}

fn process(request: MulRequest, shared: &Shared) {
    let waited = request.enqueued_at.elapsed();
    if let Some(deadline) = request.deadline {
        if Instant::now() > deadline {
            shared.metrics.record_timed_out();
            request
                .done
                .fulfill(Err(MulError::DeadlineExceeded { waited }));
            return;
        }
    } else if let Some(shed_after_ms) = shared.config.shed_after_ms {
        if waited > Duration::from_millis(shed_after_ms) {
            shared.metrics.record_shed();
            request.done.fulfill(Err(MulError::Shed { waited }));
            return;
        }
    }
    let selected = Kernel::select(&request.a, &request.b, &shared.config.kernel_policy);
    match shared.supervisor.execute(
        &request.a,
        &request.b,
        request.index,
        selected,
        &shared.config.kernel_policy,
        &shared.plans,
        &shared.metrics,
    ) {
        Ok((product, kernel)) => {
            shared
                .metrics
                .record_served(kernel, request.enqueued_at.elapsed());
            request.done.fulfill(Ok(product));
        }
        Err(error) => request.done.fulfill(Err(error)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Operands big enough to keep one schoolbook-only worker busy for
    /// hundreds of milliseconds — the deterministic "blocker" for the
    /// robustness tests below.
    fn blocker_policy() -> KernelPolicy {
        KernelPolicy {
            schoolbook_max_bits: u64::MAX,
            ..KernelPolicy::default()
        }
    }

    #[test]
    fn serves_and_verifies_small_batch() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(10);
        let mut expected = Vec::new();
        let mut handles = Vec::new();
        for bits in [100u64, 3_000, 20_000, 150_000] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            expected.push(a.mul_schoolbook(&b));
            handles.push(service.submit(a, b).unwrap());
        }
        for (handle, want) in handles.into_iter().zip(expected) {
            assert_eq!(handle.wait().unwrap(), want);
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.served, 4);
        // Default thresholds route 100 bits → schoolbook and everything
        // else here → sequential Toom: with the limb-kernel base case the
        // schoolbook band ends at 2 kbit, and on the single-core reference
        // container the parallel kernel only pays at multi-megabit sizes
        // (far beyond what a unit test should multiply).
        assert_eq!(metrics.per_kernel[0].1, 1);
        assert_eq!(metrics.per_kernel[1].1, 3);
        assert_eq!(metrics.per_kernel[2].1, 0);
    }

    #[test]
    fn backpressure_rejects_when_queues_fill() {
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(11);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let blocker = service.submit(big.clone(), big.clone()).unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        // While the worker grinds the blocker, its depth-2 queue can hold
        // at most 2 of these 4; at least 2 must bounce.
        let results: Vec<_> = (0..4)
            .map(|_| service.submit(tiny.clone(), tiny.clone()))
            .collect();
        let rejected = results.iter().filter(|r| r.is_err()).count();
        assert!(rejected >= 2, "expected >= 2 rejections, got {rejected}");
        for r in &results {
            if let Err(e) = r {
                assert_eq!(*e, SubmitError::QueueFull { capacity: 2 });
            }
        }
        let expect_tiny = tiny.mul_schoolbook(&tiny);
        for handle in results.into_iter().flatten() {
            assert_eq!(handle.wait().unwrap(), expect_tiny);
        }
        assert_eq!(blocker.wait().unwrap(), big.mul_schoolbook(&big));
        let metrics = service.shutdown();
        assert!(metrics.rejected_queue_full >= 2);
        assert!(metrics.queue_depth_high_water >= 1);
    }

    #[test]
    fn deadline_in_queue_times_out() {
        let config = ServiceConfig {
            workers: 1,
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(12);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let blocker = service
            .submit(big, BigInt::random_bits(&mut rng, 400_000))
            .unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        let doomed = service
            .submit_with_deadline(tiny.clone(), tiny, Duration::from_millis(1))
            .unwrap();
        match doomed.wait() {
            Err(MulError::DeadlineExceeded { waited }) => {
                assert!(waited >= Duration::from_millis(1));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(blocker.wait().is_ok());
        assert_eq!(service.shutdown().timed_out, 1);
    }

    #[test]
    fn overaged_requests_are_shed() {
        let config = ServiceConfig {
            workers: 1,
            shed_after_ms: Some(0),
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(13);
        let big = BigInt::random_bits(&mut rng, 400_000);
        // The blocker carries a generous deadline so shedding (which only
        // applies to deadline-less requests) cannot touch it.
        let blocker = service
            .submit_with_deadline(big.clone(), big, Duration::from_secs(3600))
            .unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        let shed = service.submit(tiny.clone(), tiny).unwrap();
        match shed.wait() {
            Err(MulError::Shed { .. }) => {}
            other => panic!("expected Shed, got {other:?}"),
        }
        assert!(blocker.wait().is_ok());
        assert_eq!(service.shutdown().shed, 1);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(14);
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let a = BigInt::random_signed_bits(&mut rng, 2_000);
                let b = BigInt::random_signed_bits(&mut rng, 2_000);
                let want = a.mul_schoolbook(&b);
                (service.submit(a, b).unwrap(), want)
            })
            .collect();
        let metrics = service.shutdown();
        assert_eq!(metrics.served, 16);
        for (handle, want) in handles {
            assert_eq!(handle.wait().unwrap(), want);
        }
    }

    #[test]
    fn wait_timeout_returns_the_handle_then_the_result() {
        let config = ServiceConfig {
            workers: 1,
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(15);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let handle = service.submit(big.clone(), big.clone()).unwrap();
        // The worker is still grinding: the timeout hands the handle back.
        let handle = match handle.wait_timeout(Duration::from_millis(1)) {
            Err(handle) => handle,
            Ok(r) => panic!("400kbit product finished in 1 ms: {r:?}"),
        };
        // The same handle still resolves to the real product.
        match handle.wait_timeout(Duration::from_secs(600)) {
            Ok(result) => assert_eq!(result.unwrap(), big.mul_schoolbook(&big)),
            Err(_) => panic!("400kbit product did not finish in 600 s"),
        }
        service.shutdown();
    }

    #[test]
    fn dead_worker_does_not_break_submission_or_shutdown() {
        crate::chaos::install_quiet_panic_hook();
        // Two workers; requests 0 and 1 panic with escalation enabled, so
        // whichever workers execute them die mid-request.
        let config = ServiceConfig {
            workers: 2,
            kernel_policy: blocker_policy(),
            chaos: Some(crate::chaos::ChaosConfig {
                escalate_panics: true,
                force: vec![
                    (0, crate::chaos::FaultKind::Panic),
                    (1, crate::chaos::FaultKind::Panic),
                ],
                ..crate::chaos::ChaosConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(16);
        let x = BigInt::random_bits(&mut rng, 500);
        let doomed_a = service.submit(x.clone(), x.clone()).unwrap();
        let doomed_b = service.submit(x.clone(), x.clone()).unwrap();
        // The killed requests resolve (ServiceStopped via the completion
        // guard) instead of hanging.
        assert_eq!(doomed_a.wait(), Err(MulError::ServiceStopped));
        assert_eq!(doomed_b.wait(), Err(MulError::ServiceStopped));
        // Give the dying threads a beat to drop their receivers, then
        // confirm submission fails over past dead queues: with every
        // worker dead, submits report ShuttingDown rather than panicking
        // or hanging, and shutdown still joins cleanly.
        std::thread::sleep(Duration::from_millis(100));
        let expect = x.mul_schoolbook(&x);
        for _ in 0..4 {
            match service.submit(x.clone(), x.clone()) {
                Ok(handle) => match handle.wait() {
                    Ok(product) => assert_eq!(product, expect),
                    Err(MulError::ServiceStopped) => {}
                    Err(other) => panic!("unexpected error {other:?}"),
                },
                Err(SubmitError::ShuttingDown | SubmitError::QueueFull { .. }) => {}
            }
        }
        service.shutdown(); // must not hang on the dead workers
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let service = MulService::start(ServiceConfig::default());
        service.shutting_down.store(true, Ordering::Release);
        let one: BigInt = "1".parse().unwrap();
        assert!(matches!(
            service.submit(one.clone(), one),
            Err(SubmitError::ShuttingDown)
        ));
    }
}
