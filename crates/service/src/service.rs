//! The multiplication service: sharded bounded queues, batching workers,
//! per-request completion handles, and an event-driven async path.
//!
//! Architecture: `submit` round-robins requests across `workers` bounded
//! crossbeam queues (one per worker, with one failover probe before
//! reporting backpressure). Each worker drains its queue in batches of up
//! to `batch_max`, applies the robustness checks (deadline, shedding),
//! auto-selects a kernel per request, and publishes the product through
//! the request's completion handle.
//!
//! `submit_async` instead enqueues on one central queue consumed by the
//! coalescing dispatcher (see [`crate::dispatcher`]), which groups
//! same-shape requests into one batch kernel invocation; `submit_many`
//! ships a whole chunk of requests as one queue message resolved
//! through one shared [`BatchHandle`], amortizing the submit- and
//! wait-side costs across the chunk as well. All paths read
//! the *live* kernel policy, which the adaptive tuner
//! (see [`crate::tuner`]) re-derives from the latency histogram at
//! runtime. Shutdown drops the senders; workers and the dispatcher drain
//! what was accepted, then exit.

use crate::config::ServiceConfig;
use crate::distributed::DistributedBackend;
use crate::error::{MulError, SubmitError};
use crate::kernel::Kernel;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan_cache::PlanCache;
use crate::supervisor::Supervisor;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ft_bigint::BigInt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Callback = Box<dyn FnOnce(Result<BigInt, MulError>) + Send>;

#[derive(Default)]
struct CompletionState {
    result: Option<Result<BigInt, MulError>>,
    callback: Option<Callback>,
    done: bool,
}

/// One-shot result slot shared between a worker and a waiting client,
/// resolvable either by blocking/polling or by a registered callback.
#[derive(Default)]
struct Completion {
    state: Mutex<CompletionState>,
    ready: Condvar,
}

impl Completion {
    fn lock(&self) -> std::sync::MutexGuard<'_, CompletionState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn fill(&self, result: Result<BigInt, MulError>) {
        if self.store(result) {
            self.ready.notify_all();
        }
    }

    /// Publish `result` under the lock *without* waking a blocked waiter;
    /// returns whether a notify is still owed. A registered callback runs
    /// immediately (nothing sleeps on a callback completion).
    fn store(&self, result: Result<BigInt, MulError>) -> bool {
        let mut state = self.lock();
        if state.done {
            return false;
        }
        state.done = true;
        if let Some(callback) = state.callback.take() {
            drop(state);
            // A panicking callback must not take down the service thread
            // that happened to resolve this request.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| callback(result)));
            false
        } else {
            state.result = Some(result);
            true
        }
    }
}

/// A deferred wake-up for one staged completion (see
/// [`CompletionGuard::stage`]). Dropping it delivers the notify, so a
/// staged result can never strand its waiter.
pub(crate) struct CompletionWaker {
    completion: Arc<Completion>,
}

impl Drop for CompletionWaker {
    fn drop(&mut self) {
        self.completion.ready.notify_all();
    }
}

/// Fills `ServiceStopped` on drop unless a real result was published
/// first, so `ResponseHandle::wait` can never hang on a lost request
/// (worker panic, service drop mid-queue).
pub(crate) struct CompletionGuard {
    completion: Arc<Completion>,
    fulfilled: bool,
}

impl CompletionGuard {
    pub(crate) fn fulfill(mut self, result: Result<BigInt, MulError>) {
        self.completion.fill(result);
        self.fulfilled = true;
    }

    /// Publish the result but defer the waiter's wake-up to the returned
    /// [`CompletionWaker`] (`None` when no notify is owed, e.g. a callback
    /// completion). The batch dispatcher stages a whole round of results
    /// first and wakes afterwards: each notify of a sleeping client is a
    /// context switch that preempts the publishing thread, so waking
    /// mid-publication turns a coalesced round back into per-request
    /// ping-pong. A woken client instead finds every companion result
    /// already readable and drains them without sleeping again.
    pub(crate) fn stage(mut self, result: Result<BigInt, MulError>) -> Option<CompletionWaker> {
        let owed = self.completion.store(result);
        self.fulfilled = true;
        owed.then(|| CompletionWaker {
            completion: self.completion.clone(),
        })
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.completion.fill(Err(MulError::ServiceStopped));
        }
    }
}

struct BatchState {
    results: Vec<Option<Result<BigInt, MulError>>>,
    remaining: usize,
    /// Threads currently blocked in a per-slot wait
    /// ([`BatchHandle::wait_slot`] or the streaming iterator). While this
    /// is zero — the common, whole-batch case — slot arrivals stay
    /// silent and the single batch-level notify fires when the last slot
    /// lands.
    slot_waiters: usize,
}

/// Shared result table for one bulk submission: every element fills its
/// own slot; the waiter is woken once, when the last slot lands. This is
/// the wait-side half of the cross-request batching story — `n` requests
/// share one allocation, one condvar sleep, and one wake instead of `n`
/// of each.
struct BatchCompletion {
    state: Mutex<BatchState>,
    ready: Condvar,
}

impl BatchCompletion {
    fn new(len: usize) -> BatchCompletion {
        BatchCompletion {
            state: Mutex::new(BatchState {
                results: (0..len).map(|_| None).collect(),
                remaining: len,
                slot_waiters: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BatchState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Fill one slot; returns whether that was the last outstanding slot
    /// (i.e. the single batch-level notify is now owed). Wakes per-slot
    /// waiters immediately even when other slots are still outstanding,
    /// so [`BatchHandle::wait_slot`] resolves as soon as *its* slot
    /// lands — early elements stream out before the batch completes.
    fn store(&self, slot: usize, result: Result<BigInt, MulError>) -> bool {
        let mut state = self.lock();
        if state.results[slot].is_none() {
            state.results[slot] = Some(result);
            state.remaining -= 1;
        }
        let last = state.remaining == 0;
        if !last && state.slot_waiters > 0 {
            drop(state);
            self.ready.notify_all();
        }
        last
    }
}

/// Deferred wake-up for a fully-filled batch (see [`CompletionWaker`]).
pub(crate) struct BatchWaker {
    completion: Arc<BatchCompletion>,
}

impl Drop for BatchWaker {
    fn drop(&mut self) {
        self.completion.ready.notify_all();
    }
}

/// One element's write capability into a [`BatchCompletion`]. Mirrors
/// [`CompletionGuard`]: dropping it unfulfilled resolves the slot as
/// `ServiceStopped`, so [`BatchHandle::wait`] can never hang on a lost
/// request.
pub(crate) struct BatchSlotGuard {
    completion: Arc<BatchCompletion>,
    slot: usize,
    fulfilled: bool,
}

impl BatchSlotGuard {
    fn fulfill(mut self, result: Result<BigInt, MulError>) {
        if self.completion.store(self.slot, result) {
            self.completion.ready.notify_all();
        }
        self.fulfilled = true;
    }

    fn stage(mut self, result: Result<BigInt, MulError>) -> Option<BatchWaker> {
        let last = self.completion.store(self.slot, result);
        self.fulfilled = true;
        last.then(|| BatchWaker {
            completion: self.completion.clone(),
        })
    }
}

impl Drop for BatchSlotGuard {
    fn drop(&mut self) {
        if !self.fulfilled {
            let mut state = self.completion.lock();
            if state.results[self.slot].is_none() {
                state.results[self.slot] = Some(Err(MulError::ServiceStopped));
                state.remaining -= 1;
                if state.remaining == 0 || state.slot_waiters > 0 {
                    drop(state);
                    self.completion.ready.notify_all();
                }
            }
        }
    }
}

/// How one request publishes its result: through its own
/// [`Completion`] (per-request submits) or through one slot of a shared
/// [`BatchCompletion`] (bulk submits).
pub(crate) enum Done {
    Single(CompletionGuard),
    Slot(BatchSlotGuard),
}

/// A deferred notify from [`Done::stage`] — either kind wakes when the
/// held waker drops.
pub(crate) enum DoneWaker {
    Single { _waker: CompletionWaker },
    Batch { _waker: BatchWaker },
}

impl Done {
    pub(crate) fn fulfill(self, result: Result<BigInt, MulError>) {
        match self {
            Done::Single(guard) => guard.fulfill(result),
            Done::Slot(guard) => guard.fulfill(result),
        }
    }

    /// Publish without waking; see [`CompletionGuard::stage`]. A batch
    /// slot defers its (single, batch-level) notify the same way.
    pub(crate) fn stage(self, result: Result<BigInt, MulError>) -> Option<DoneWaker> {
        match self {
            Done::Single(guard) => guard
                .stage(result)
                .map(|waker| DoneWaker::Single { _waker: waker }),
            Done::Slot(guard) => guard
                .stage(result)
                .map(|waker| DoneWaker::Batch { _waker: waker }),
        }
    }
}

/// Client-side handle to one accepted bulk submission
/// ([`MulService::submit_many`]): resolves to one result per submitted
/// pair, in submission order.
pub struct BatchHandle {
    completion: Arc<BatchCompletion>,
}

impl BatchHandle {
    /// How many pairs this submission carries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.completion.lock().results.len()
    }

    /// Whether the submission was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until every element resolves; results are in submission
    /// order.
    pub fn wait(self) -> Vec<Result<BigInt, MulError>> {
        let mut state = self.completion.lock();
        while state.remaining > 0 {
            state = self
                .completion
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state
            .results
            .drain(..)
            .map(|r| r.expect("filled"))
            .collect()
    }

    /// Non-blocking poll; `Err(self)` while any element is pending.
    pub fn try_wait(self) -> Result<Vec<Result<BigInt, MulError>>, BatchHandle> {
        let mut state = self.completion.lock();
        if state.remaining > 0 {
            drop(state);
            return Err(self);
        }
        let results = state
            .results
            .drain(..)
            .map(|r| r.expect("filled"))
            .collect();
        drop(state);
        Ok(results)
    }

    /// Block until element `slot` (submission order) resolves, without
    /// waiting for its batch-mates — early elements of a large bulk
    /// submission stream out while later ones are still grinding. The
    /// handle stays usable: `wait_slot` can be called repeatedly, in any
    /// order, and [`Self::wait`] afterwards still returns every result.
    ///
    /// # Panics
    /// If `slot >= self.len()`.
    pub fn wait_slot(&self, slot: usize) -> Result<BigInt, MulError> {
        let mut state = self.completion.lock();
        assert!(
            slot < state.results.len(),
            "slot {slot} out of range for batch of {}",
            state.results.len()
        );
        while state.results[slot].is_none() {
            state.slot_waiters += 1;
            state = self
                .completion
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.slot_waiters -= 1;
        }
        state.results[slot].clone().expect("checked above")
    }
}

/// Streaming consumer of a [`BatchHandle`]: yields each element's result
/// in submission order, blocking only until *that* element resolves.
pub struct BatchResults {
    completion: Arc<BatchCompletion>,
    next: usize,
    len: usize,
}

impl Iterator for BatchResults {
    type Item = Result<BigInt, MulError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.len {
            return None;
        }
        let slot = self.next;
        self.next += 1;
        let mut state = self.completion.lock();
        while state.results[slot].is_none() {
            state.slot_waiters += 1;
            state = self
                .completion
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.slot_waiters -= 1;
        }
        // The iterator owns the handle, so the slot can be moved out.
        Some(state.results[slot].take().expect("checked above"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.len - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for BatchResults {}

impl IntoIterator for BatchHandle {
    type Item = Result<BigInt, MulError>;
    type IntoIter = BatchResults;

    /// Stream results in submission order as they land (see
    /// [`BatchResults`]).
    fn into_iter(self) -> BatchResults {
        let len = self.len();
        BatchResults {
            completion: self.completion,
            next: 0,
            len,
        }
    }
}

/// Client-side handle to one accepted request.
pub struct ResponseHandle {
    completion: Arc<Completion>,
}

impl ResponseHandle {
    /// Block until the request resolves.
    pub fn wait(self) -> Result<BigInt, MulError> {
        let mut state = self.completion.lock();
        loop {
            if let Some(result) = state.result.take() {
                return result;
            }
            state = self
                .completion
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking poll; `Err(self)` when the request is still pending.
    pub fn try_wait(self) -> Result<Result<BigInt, MulError>, ResponseHandle> {
        let taken = self.completion.lock().result.take();
        match taken {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }

    /// Block for at most `timeout`; `Err(self)` hands the still-usable
    /// handle back when the request has not resolved in time.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<BigInt, MulError>, ResponseHandle> {
        let completion = self.completion.clone();
        let deadline = Instant::now().checked_add(timeout);
        let mut state = completion.lock();
        loop {
            if let Some(result) = state.result.take() {
                return Ok(result);
            }
            // An overflowing deadline (e.g. Duration::MAX) waits forever.
            let Some(deadline) = deadline else {
                state = completion
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            };
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                return Err(self);
            }
            let (guard, _) = completion
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// Register a callback invoked with the result as soon as the request
    /// resolves, consuming the handle. If the request already resolved,
    /// the callback runs immediately on the calling thread; otherwise it
    /// runs on the service thread that resolves the request — keep it
    /// short and non-blocking.
    pub fn on_ready<F>(self, callback: F)
    where
        F: FnOnce(Result<BigInt, MulError>) + Send + 'static,
    {
        let mut state = self.completion.lock();
        if let Some(result) = state.result.take() {
            drop(state);
            callback(result);
        } else {
            state.callback = Some(Box::new(callback));
        }
    }
}

/// A request's deadline, kept overflow-safe: a huge user timeout (e.g.
/// `Duration::MAX`) saturates to `Far` — it can never expire, but unlike
/// `None` it still marks the request as deadline-carrying, so load
/// shedding (which only applies to deadline-less requests) skips it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Deadline {
    /// No deadline requested; the request is sheddable under load.
    None,
    /// Expires at the given instant.
    At(Instant),
    /// Requested deadline overflowed `Instant`: effectively infinite.
    Far,
}

impl Deadline {
    fn after(timeout: Duration) -> Deadline {
        Instant::now()
            .checked_add(timeout)
            .map_or(Deadline::Far, Deadline::At)
    }

    fn expired(self, now: Instant) -> bool {
        matches!(self, Deadline::At(t) if now > t)
    }

    fn sheddable(self) -> bool {
        matches!(self, Deadline::None)
    }
}

pub(crate) struct MulRequest {
    pub(crate) a: BigInt,
    pub(crate) b: BigInt,
    /// Submission sequence number; seeds deterministic chaos and backoff
    /// jitter for this request.
    pub(crate) index: u64,
    pub(crate) deadline: Deadline,
    pub(crate) enqueued_at: Instant,
    pub(crate) done: Done,
}

/// One message on the async queue: a single request, or a whole bulk
/// submission travelling as one message. Carrying the batch unexploded
/// is the submit-side half of cross-request batching — one channel lock,
/// one timestamp, one wake-up of the dispatcher for `n` requests; the
/// dispatcher explodes it into per-request entries for gating/grouping.
pub(crate) enum Submission {
    One(MulRequest),
    Many(BatchJob),
}

pub(crate) struct BatchJob {
    pub(crate) pairs: Vec<(BigInt, BigInt)>,
    /// Sequence number of the first element; element `i` is
    /// `first_index + i` (chaos/jitter seeding stays per-request).
    pub(crate) first_index: u64,
    pub(crate) deadline: Deadline,
    pub(crate) enqueued_at: Instant,
    pub(crate) slots: Vec<BatchSlotGuard>,
}

impl BatchJob {
    /// Explode into per-request entries (dispatcher side).
    pub(crate) fn explode(self, round: &mut Vec<MulRequest>) {
        for (offset, ((a, b), slot)) in self.pairs.into_iter().zip(self.slots).enumerate() {
            round.push(MulRequest {
                a,
                b,
                index: self.first_index + offset as u64,
                deadline: self.deadline,
                enqueued_at: self.enqueued_at,
                done: Done::Slot(slot),
            });
        }
    }
}

pub(crate) struct Shared {
    pub(crate) config: ServiceConfig,
    pub(crate) metrics: Metrics,
    pub(crate) plans: PlanCache,
    pub(crate) supervisor: Supervisor,
    /// The kernel policy currently in force. Starts as
    /// `config.kernel_policy`; the adaptive tuner republishes it from
    /// live latency data.
    pub(crate) live_policy: parking_lot::RwLock<crate::config::KernelPolicy>,
    /// Simulated fail-stop flag (see [`MulService::kill`]): when set, the
    /// admission gate resolves every not-yet-started request as
    /// `ServiceStopped` instead of executing it, so a sharded router can
    /// observe the loss and fail the work over to a survivor.
    pub(crate) killed: AtomicBool,
}

impl Shared {
    /// The kernel policy currently in force (tuner-adjusted).
    pub(crate) fn policy(&self) -> crate::config::KernelPolicy {
        self.live_policy.read().clone()
    }
}

/// The batching multiplication service. See the module docs for the
/// architecture and [`ServiceConfig`] for the knobs.
///
/// ```
/// use ft_service::{MulService, ServiceConfig};
/// use ft_bigint::BigInt;
///
/// let service = MulService::start(ServiceConfig::default());
/// let a: BigInt = "123456789123456789".parse().unwrap();
/// let b: BigInt = "-987654321987654321".parse().unwrap();
/// let handle = service.submit(a.clone(), b.clone()).unwrap();
/// assert_eq!(handle.wait().unwrap(), a.mul_schoolbook(&b));
/// let batched = service.submit_async(a.clone(), b.clone()).unwrap();
/// assert_eq!(batched.wait().unwrap(), a.mul_schoolbook(&b));
/// let bulk = service.submit_many(vec![(a.clone(), b.clone()); 3]).unwrap();
/// for result in bulk.wait() {
///     assert_eq!(result.unwrap(), a.mul_schoolbook(&b));
/// }
/// service.shutdown();
/// ```
pub struct MulService {
    shared: Arc<Shared>,
    senders: Vec<Sender<MulRequest>>,
    async_tx: Option<Sender<Submission>>,
    next: AtomicUsize,
    seq: AtomicU64,
    shutting_down: AtomicBool,
    workers: Vec<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    tuner: Option<crate::tuner::TunerHandle>,
}

/// Distinguishes worker threads across service instances in one process.
static SERVICE_ID: AtomicUsize = AtomicUsize::new(0);

impl MulService {
    /// Spawn the worker pool, the coalescing dispatcher, and (when
    /// enabled) the adaptive tuner, and start accepting requests.
    ///
    /// # Panics
    /// Panics on a structurally invalid config (zero workers, zero
    /// capacity); [`ServiceConfig::from_json`] rejects those earlier.
    #[must_use]
    pub fn start(config: ServiceConfig) -> MulService {
        assert!(config.workers > 0, "workers must be >= 1");
        assert!(config.queue_capacity > 0, "queue_capacity must be >= 1");
        assert!(config.batch_max > 0, "batch_max must be >= 1");
        // Route ft-bigint's process-wide fast-multiply hook (BigInt::pow,
        // residue checks, …) through the Toom auto-dispatcher.
        let _ = ft_toom_core::seq::install_fast_mul_hook();
        let shared = Arc::new(Shared {
            plans: PlanCache::new(config.plan_cache_capacity),
            metrics: Metrics::default(),
            supervisor: Supervisor::new(
                config.retry.clone(),
                config.breaker.clone(),
                config.verify_residues,
                config.verify.clone(),
                config.chaos.clone(),
                config
                    .distributed
                    .enabled
                    .then(|| DistributedBackend::new(&config.distributed)),
            ),
            live_policy: parking_lot::RwLock::new(config.kernel_policy.clone()),
            killed: AtomicBool::new(false),
            config,
        });
        // Resolve both Toom plans up front: the first coalesced batch
        // should not pay plan construction inside its latency.
        shared.plans.prewarm([
            shared.config.kernel_policy.seq_toom_k,
            shared.config.kernel_policy.par_toom_k,
        ]);
        let service_id = SERVICE_ID.fetch_add(1, Ordering::Relaxed) % 1_000;
        let mut senders = Vec::with_capacity(shared.config.workers);
        let mut workers = Vec::with_capacity(shared.config.workers);
        for index in 0..shared.config.workers {
            let (tx, rx) = bounded::<MulRequest>(shared.config.queue_capacity);
            senders.push(tx);
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    // Linux truncates thread names to 15 bytes; the old
                    // "ft-service-worker-N" collapsed every worker to the
                    // same truncated name. Keep it short and unique.
                    .name(format!("ftsvc{service_id}-w{index}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn service worker"),
            );
        }
        let (async_tx, async_rx) = bounded::<Submission>(shared.config.batching.queue_capacity);
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("ftsvc{service_id}-disp"))
                .spawn(move || crate::dispatcher::dispatcher_loop(&async_rx, &shared))
                .expect("spawn service dispatcher")
        };
        let tuner = shared
            .config
            .tuner
            .enabled
            .then(|| crate::tuner::spawn(shared.clone(), service_id));
        MulService {
            shared,
            senders,
            async_tx: Some(async_tx),
            next: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            workers,
            dispatcher: Some(dispatcher),
            tuner,
        }
    }

    /// Submit `a × b` with no deadline.
    pub fn submit(&self, a: BigInt, b: BigInt) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(a, b, Deadline::None)
    }

    /// Submit `a × b`; if a worker does not reach the request within
    /// `deadline`, it resolves to [`MulError::DeadlineExceeded`]. Huge
    /// deadlines (e.g. `Duration::MAX`) saturate to "never expires".
    pub fn submit_with_deadline(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Duration,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_inner(a, b, Deadline::after(deadline))
    }

    /// Submit `a × b` on the event-driven path: the request is enqueued
    /// for the coalescing dispatcher, which may merge it with other
    /// same-shape requests into one batch kernel invocation. Returns
    /// immediately; resolve the handle by polling ([`ResponseHandle::
    /// try_wait`]), blocking, or callback ([`ResponseHandle::on_ready`]).
    pub fn submit_async(&self, a: BigInt, b: BigInt) -> Result<ResponseHandle, SubmitError> {
        self.submit_async_inner(a, b, Deadline::None)
    }

    /// [`Self::submit_async`] with a deadline (same saturation semantics
    /// as [`Self::submit_with_deadline`]).
    pub fn submit_async_with_deadline(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Duration,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_async_inner(a, b, Deadline::after(deadline))
    }

    fn make_request(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Deadline,
    ) -> (MulRequest, Arc<Completion>) {
        let completion = Arc::new(Completion::default());
        let request = MulRequest {
            a,
            b,
            index: self.seq.fetch_add(1, Ordering::Relaxed),
            deadline,
            enqueued_at: Instant::now(),
            done: Done::Single(CompletionGuard {
                completion: completion.clone(),
                fulfilled: false,
            }),
        };
        (request, completion)
    }

    fn submit_async_inner(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Deadline,
    ) -> Result<ResponseHandle, SubmitError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let Some(tx) = self.async_tx.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let (request, completion) = self.make_request(a, b, deadline);
        match tx.try_send_counted(Submission::One(request)) {
            Ok(depth) => {
                self.shared.metrics.observe_queue_depth(depth);
                Ok(ResponseHandle { completion })
            }
            Err(TrySendError::Full(_)) => {
                self.shared.metrics.record_queue_full();
                Err(SubmitError::QueueFull {
                    capacity: self.shared.config.batching.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Bulk async submission: enqueue `pairs` as ONE message for the
    /// coalescing dispatcher and resolve them through one shared
    /// [`BatchHandle`]. This is the cross-request batching entry point —
    /// relative to `pairs.len()` calls of [`Self::submit_async`] it pays
    /// the channel lock, the enqueue timestamp, the completion
    /// allocation, and the client's blocking wait once per *batch*
    /// instead of once per request, mirroring the paper's per-batch (not
    /// per-multiplication) bandwidth/latency accounting. Elements still
    /// gate, group, verify, and count in metrics individually.
    ///
    /// The whole submission occupies one slot of the async queue
    /// regardless of length. Results come back in submission order.
    pub fn submit_many(&self, pairs: Vec<(BigInt, BigInt)>) -> Result<BatchHandle, SubmitError> {
        self.submit_many_inner(pairs, Deadline::None)
    }

    /// [`Self::submit_many`] with one deadline covering every element
    /// (same saturation semantics as [`Self::submit_with_deadline`]).
    pub fn submit_many_with_deadline(
        &self,
        pairs: Vec<(BigInt, BigInt)>,
        deadline: Duration,
    ) -> Result<BatchHandle, SubmitError> {
        self.submit_many_inner(pairs, Deadline::after(deadline))
    }

    fn submit_many_inner(
        &self,
        pairs: Vec<(BigInt, BigInt)>,
        deadline: Deadline,
    ) -> Result<BatchHandle, SubmitError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let Some(tx) = self.async_tx.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let completion = Arc::new(BatchCompletion::new(pairs.len()));
        if pairs.is_empty() {
            // Nothing to enqueue; the handle resolves immediately.
            return Ok(BatchHandle { completion });
        }
        let slots = (0..pairs.len())
            .map(|slot| BatchSlotGuard {
                completion: completion.clone(),
                slot,
                fulfilled: false,
            })
            .collect();
        let first_index = self.seq.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        let job = BatchJob {
            pairs,
            first_index,
            deadline,
            enqueued_at: Instant::now(),
            slots,
        };
        match tx.try_send_counted(Submission::Many(job)) {
            Ok(depth) => {
                self.shared.metrics.observe_queue_depth(depth);
                Ok(BatchHandle { completion })
            }
            Err(TrySendError::Full(_)) => {
                self.shared.metrics.record_queue_full();
                // The rejected job's slot guards resolved the handle as
                // ServiceStopped on drop; the caller only sees the error.
                Err(SubmitError::QueueFull {
                    capacity: self.shared.config.batching.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    fn submit_inner(
        &self,
        a: BigInt,
        b: BigInt,
        deadline: Deadline,
    ) -> Result<ResponseHandle, SubmitError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let (mut request, completion) = self.make_request(a, b, deadline);
        let n = self.senders.len();
        let first = self.next.fetch_add(1, Ordering::Relaxed);
        // Round-robin with up to one full-queue failover probe. A
        // disconnected queue means that worker died; skip it and keep
        // probing — only report ShuttingDown when no live queue was seen.
        let mut fulls = 0;
        let mut disconnected = 0;
        for offset in 0..n {
            let sender = &self.senders[(first + offset) % n];
            match sender.try_send_counted(request) {
                Ok(depth) => {
                    self.shared.metrics.observe_queue_depth(depth);
                    return Ok(ResponseHandle { completion });
                }
                Err(TrySendError::Full(r)) => {
                    request = r;
                    fulls += 1;
                    if fulls >= 2 {
                        break;
                    }
                }
                Err(TrySendError::Disconnected(r)) => {
                    request = r;
                    disconnected += 1;
                }
            }
        }
        if fulls == 0 && disconnected > 0 {
            return Err(SubmitError::ShuttingDown);
        }
        self.shared.metrics.record_queue_full();
        // Dropping `request` here resolves the handle as ServiceStopped,
        // but the caller only sees the SubmitError.
        Err(SubmitError::QueueFull {
            capacity: self.shared.config.queue_capacity,
        })
    }

    /// Point-in-time metrics (counters plus current total queue depth).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let depth = self.senders.iter().map(Sender::len).sum::<usize>()
            + self.async_tx.as_ref().map_or(0, Sender::len);
        self.shared
            .metrics
            .snapshot(depth, self.shared.plans.stats())
    }

    /// Current total queue depth (sync worker queues plus the async
    /// coalescing queue), without the full snapshot walk of
    /// [`MulService::metrics`] — cheap enough for per-rejection use,
    /// e.g. deriving an HTTP `Retry-After` from live backlog.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.senders.iter().map(Sender::len).sum::<usize>()
            + self.async_tx.as_ref().map_or(0, Sender::len)
    }

    /// The configuration the service was started with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// The kernel policy currently in force: the configured one until the
    /// adaptive tuner republishes thresholds from live latency data.
    #[must_use]
    pub fn live_policy(&self) -> crate::config::KernelPolicy {
        self.shared.policy()
    }

    /// Simulated fail-stop: refuse new submissions and resolve every
    /// accepted-but-unstarted request as [`MulError::ServiceStopped`]
    /// the moment a worker dequeues it. Requests already executing
    /// complete (and verify) normally — a fail-stop processor finishes
    /// nothing *new*, but this in-process simulation keeps its promises
    /// resolvable so no waiter ever hangs. The worker threads stay up to
    /// drain the surrendered queue; [`Self::shutdown`] still works
    /// afterwards and returns the final metrics.
    pub fn kill(&self) {
        self.shutting_down.store(true, Ordering::Release);
        self.shared.killed.store(true, Ordering::Release);
    }

    /// Whether [`Self::kill`] was called.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.shared.killed.load(Ordering::Acquire)
    }

    /// Stop accepting work, drain every accepted request, join the
    /// workers, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.shared.metrics.snapshot(0, self.shared.plans.stats())
    }

    fn stop_and_join(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        if let Some(tuner) = self.tuner.take() {
            tuner.stop();
        }
        // Disconnect the channels; workers and dispatcher drain whatever
        // was already accepted, then exit.
        self.async_tx = None;
        self.senders.clear();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        for handle in self.workers.drain(..) {
            // A panicked worker already resolved its lost requests as
            // ServiceStopped via CompletionGuard; nothing more to do.
            let _ = handle.join();
        }
    }
}

impl Drop for MulService {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A fresh client handle / write capability pair over one new
/// [`Completion`] — the router's building block: it hands the handle to
/// the client once, keeps the guard, and moves the guard between shards
/// as it fails work over.
pub(crate) fn completion_pair() -> (ResponseHandle, CompletionGuard) {
    let completion = Arc::new(Completion::default());
    let guard = CompletionGuard {
        completion: completion.clone(),
        fulfilled: false,
    };
    (ResponseHandle { completion }, guard)
}

/// A batch handle plus its per-slot write capabilities, detached from
/// any queue — the router resolves each slot through its own routed
/// (and possibly re-routed) sub-request.
pub(crate) fn batch_pair(len: usize) -> (BatchHandle, Vec<BatchSlotGuard>) {
    let completion = Arc::new(BatchCompletion::new(len));
    let slots = (0..len)
        .map(|slot| BatchSlotGuard {
            completion: completion.clone(),
            slot,
            fulfilled: false,
        })
        .collect();
    (BatchHandle { completion }, slots)
}

/// A handle that is already resolved — synchronous transports (the
/// simulated coded machine) compute inline and wrap the result.
pub(crate) fn resolved_handle(result: Result<BigInt, MulError>) -> ResponseHandle {
    let completion = Arc::new(Completion::default());
    completion.fill(result);
    ResponseHandle { completion }
}

fn worker_loop(rx: &Receiver<MulRequest>, shared: &Shared) {
    let mut batch = Vec::with_capacity(shared.config.batch_max);
    // recv keeps returning queued requests after disconnect until the
    // queue is empty, so shutdown drains everything already accepted.
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < shared.config.batch_max {
            match rx.try_recv() {
                Ok(request) => batch.push(request),
                Err(_) => break,
            }
        }
        for request in batch.drain(..) {
            process(request, shared);
        }
    }
}

/// Apply the pre-execution admission checks: reject a request whose
/// deadline has already passed (counted `timed_out` — this includes the
/// race where the deadline expires between dequeue and this check), shed
/// an over-aged deadline-less request. Returns the request when it should
/// run; `None` when it was resolved with a rejection. `now` is sampled by
/// the caller (once per dequeued batch, not per element — clock reads
/// are a measurable cost at coalesced-round sizes).
pub(crate) fn gate(request: MulRequest, now: Instant, shared: &Shared) -> Option<MulRequest> {
    if shared.killed.load(Ordering::Acquire) {
        // Simulated fail-stop: unstarted work is surrendered, not served.
        // The router's completion callback re-routes it to a live shard.
        request.done.fulfill(Err(MulError::ServiceStopped));
        return None;
    }
    let waited = now.saturating_duration_since(request.enqueued_at);
    if request.deadline.expired(now) {
        shared.metrics.record_timed_out();
        request
            .done
            .fulfill(Err(MulError::DeadlineExceeded { waited }));
        return None;
    }
    if request.deadline.sheddable() {
        if let Some(shed_after_ms) = shared.config.shed_after_ms {
            if waited > Duration::from_millis(shed_after_ms) {
                shared.metrics.record_shed();
                request.done.fulfill(Err(MulError::Shed { waited }));
                return None;
            }
        }
    }
    Some(request)
}

/// Execute one admitted request on the individual supervised path and
/// publish its result.
pub(crate) fn execute_single(request: MulRequest, shared: &Shared) {
    let policy = shared.policy();
    let selected = Kernel::select(&request.a, &request.b, &policy);
    match shared.supervisor.execute(
        &request.a,
        &request.b,
        request.index,
        selected,
        &policy,
        &shared.plans,
        &shared.metrics,
    ) {
        Ok((product, kernel)) => {
            let bits = request.a.bit_length().min(request.b.bit_length());
            shared
                .metrics
                .record_served(kernel, bits, request.enqueued_at.elapsed());
            request.done.fulfill(Ok(product));
        }
        Err(error) => request.done.fulfill(Err(error)),
    }
}

pub(crate) fn process(request: MulRequest, shared: &Shared) {
    if let Some(request) = gate(request, Instant::now(), shared) {
        execute_single(request, shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Operands big enough to keep one schoolbook-only worker busy for
    /// hundreds of milliseconds — the deterministic "blocker" for the
    /// robustness tests below.
    fn blocker_policy() -> KernelPolicy {
        KernelPolicy {
            schoolbook_max_bits: u64::MAX,
            ..KernelPolicy::default()
        }
    }

    #[test]
    fn kill_surrenders_queued_work_and_refuses_new_submits() {
        // One worker pinned by a slow schoolbook blocker; everything
        // queued behind it must resolve ServiceStopped after kill(), and
        // the blocker itself (already started) must complete normally.
        let service = MulService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            kernel_policy: blocker_policy(),
            verify_residues: false,
            ..ServiceConfig::default()
        });
        let mut rng = rng(77);
        let a = BigInt::random_signed_bits(&mut rng, 400_000);
        let b = BigInt::random_signed_bits(&mut rng, 400_000);
        let blocker = service.submit(a.clone(), b.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(30)); // let it start
        let queued: Vec<_> = (0..4)
            .map(|_| service.submit(a.clone(), b.clone()).unwrap())
            .collect();
        service.kill();
        assert!(service.is_killed());
        assert!(matches!(
            service.submit(a.clone(), b.clone()),
            Err(SubmitError::ShuttingDown)
        ));
        for handle in queued {
            assert_eq!(handle.wait(), Err(MulError::ServiceStopped));
        }
        assert_eq!(blocker.wait().unwrap(), a.mul_schoolbook(&b));
        let snap = service.shutdown();
        assert_eq!(snap.served, 1, "only the started request completed");
    }

    #[test]
    fn serves_and_verifies_small_batch() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(10);
        let mut expected = Vec::new();
        let mut handles = Vec::new();
        for bits in [100u64, 3_000, 20_000, 150_000] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            expected.push(a.mul_schoolbook(&b));
            handles.push(service.submit(a, b).unwrap());
        }
        for (handle, want) in handles.into_iter().zip(expected) {
            assert_eq!(handle.wait().unwrap(), want);
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.served, 4);
        // Default thresholds route 100 bits → schoolbook and everything
        // else here → sequential Toom: with the limb-kernel base case the
        // schoolbook band ends at 2 kbit, and on the single-core reference
        // container the parallel kernel only pays at multi-megabit sizes
        // (far beyond what a unit test should multiply).
        assert_eq!(metrics.per_kernel[0].1, 1);
        assert_eq!(metrics.per_kernel[1].1, 3);
        assert_eq!(metrics.per_kernel[2].1, 0);
    }

    #[test]
    fn backpressure_rejects_when_queues_fill() {
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(11);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let blocker = service.submit(big.clone(), big.clone()).unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        // While the worker grinds the blocker, its depth-2 queue can hold
        // at most 2 of these 4; at least 2 must bounce.
        let results: Vec<_> = (0..4)
            .map(|_| service.submit(tiny.clone(), tiny.clone()))
            .collect();
        let rejected = results.iter().filter(|r| r.is_err()).count();
        assert!(rejected >= 2, "expected >= 2 rejections, got {rejected}");
        for r in &results {
            if let Err(e) = r {
                assert_eq!(*e, SubmitError::QueueFull { capacity: 2 });
            }
        }
        let expect_tiny = tiny.mul_schoolbook(&tiny);
        for handle in results.into_iter().flatten() {
            assert_eq!(handle.wait().unwrap(), expect_tiny);
        }
        assert_eq!(blocker.wait().unwrap(), big.mul_schoolbook(&big));
        let metrics = service.shutdown();
        assert!(metrics.rejected_queue_full >= 2);
        assert!(metrics.queue_depth_high_water >= 1);
    }

    #[test]
    fn deadline_in_queue_times_out() {
        let config = ServiceConfig {
            workers: 1,
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(12);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let blocker = service
            .submit(big, BigInt::random_bits(&mut rng, 400_000))
            .unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        let doomed = service
            .submit_with_deadline(tiny.clone(), tiny, Duration::from_millis(1))
            .unwrap();
        match doomed.wait() {
            Err(MulError::DeadlineExceeded { waited }) => {
                assert!(waited >= Duration::from_millis(1));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(blocker.wait().is_ok());
        assert_eq!(service.shutdown().timed_out, 1);
    }

    /// Satellite regression: `submit_with_deadline(Duration::MAX)` used to
    /// compute `Instant::now() + deadline` unchecked and panic; it must
    /// saturate to a never-expiring deadline instead, on both submit
    /// paths.
    #[test]
    fn huge_deadlines_saturate_instead_of_panicking() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(17);
        let a = BigInt::random_signed_bits(&mut rng, 600);
        let b = BigInt::random_signed_bits(&mut rng, 600);
        let want = a.mul_schoolbook(&b);
        let sync = service
            .submit_with_deadline(a.clone(), b.clone(), Duration::MAX)
            .unwrap();
        assert_eq!(sync.wait().unwrap(), want);
        let huge = Duration::MAX - Duration::from_nanos(1);
        let asynced = service
            .submit_async_with_deadline(a.clone(), b.clone(), huge)
            .unwrap();
        assert_eq!(asynced.wait().unwrap(), want);
        let metrics = service.shutdown();
        assert_eq!(metrics.served, 2);
        assert_eq!(metrics.timed_out, 0, "a Far deadline never expires");
    }

    /// Satellite regression: a saturated (`Far`) deadline is still a
    /// deadline — shedding must not touch it.
    #[test]
    fn far_deadline_is_not_sheddable() {
        let config = ServiceConfig {
            workers: 1,
            shed_after_ms: Some(0),
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(18);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let blocker = service
            .submit_with_deadline(big.clone(), big, Duration::from_secs(3600))
            .unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        // Queued behind the blocker with shed_after_ms = 0: a deadline-less
        // request would be shed, but Duration::MAX saturates to Far which
        // still counts as deadline-carrying.
        let kept = service
            .submit_with_deadline(tiny.clone(), tiny.clone(), Duration::MAX)
            .unwrap();
        assert_eq!(kept.wait().unwrap(), tiny.mul_schoolbook(&tiny));
        assert!(blocker.wait().is_ok());
        assert_eq!(service.shutdown().shed, 0);
    }

    #[test]
    fn overaged_requests_are_shed() {
        let config = ServiceConfig {
            workers: 1,
            shed_after_ms: Some(0),
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(13);
        let big = BigInt::random_bits(&mut rng, 400_000);
        // The blocker carries a generous deadline so shedding (which only
        // applies to deadline-less requests) cannot touch it.
        let blocker = service
            .submit_with_deadline(big.clone(), big, Duration::from_secs(3600))
            .unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        let shed = service.submit(tiny.clone(), tiny).unwrap();
        match shed.wait() {
            Err(MulError::Shed { .. }) => {}
            other => panic!("expected Shed, got {other:?}"),
        }
        assert!(blocker.wait().is_ok());
        assert_eq!(service.shutdown().shed, 1);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(14);
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let a = BigInt::random_signed_bits(&mut rng, 2_000);
                let b = BigInt::random_signed_bits(&mut rng, 2_000);
                let want = a.mul_schoolbook(&b);
                (service.submit(a, b).unwrap(), want)
            })
            .collect();
        let metrics = service.shutdown();
        assert_eq!(metrics.served, 16);
        for (handle, want) in handles {
            assert_eq!(handle.wait().unwrap(), want);
        }
    }

    #[test]
    fn wait_timeout_returns_the_handle_then_the_result() {
        let config = ServiceConfig {
            workers: 1,
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(15);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let handle = service.submit(big.clone(), big.clone()).unwrap();
        // The worker is still grinding: the timeout hands the handle back.
        let handle = match handle.wait_timeout(Duration::from_millis(1)) {
            Err(handle) => handle,
            Ok(r) => panic!("400kbit product finished in 1 ms: {r:?}"),
        };
        // The same handle still resolves to the real product.
        match handle.wait_timeout(Duration::from_secs(600)) {
            Ok(result) => assert_eq!(result.unwrap(), big.mul_schoolbook(&big)),
            Err(_) => panic!("400kbit product did not finish in 600 s"),
        }
        service.shutdown();
    }

    #[test]
    fn dead_worker_does_not_break_submission_or_shutdown() {
        crate::chaos::install_quiet_panic_hook();
        // Two workers; requests 0 and 1 panic with escalation enabled, so
        // whichever workers execute them die mid-request.
        let config = ServiceConfig {
            workers: 2,
            kernel_policy: blocker_policy(),
            chaos: Some(crate::chaos::ChaosConfig {
                escalate_panics: true,
                force: vec![
                    (0, crate::chaos::FaultKind::Panic),
                    (1, crate::chaos::FaultKind::Panic),
                ],
                ..crate::chaos::ChaosConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(16);
        let x = BigInt::random_bits(&mut rng, 500);
        let doomed_a = service.submit(x.clone(), x.clone()).unwrap();
        let doomed_b = service.submit(x.clone(), x.clone()).unwrap();
        // The killed requests resolve (ServiceStopped via the completion
        // guard) instead of hanging.
        assert_eq!(doomed_a.wait(), Err(MulError::ServiceStopped));
        assert_eq!(doomed_b.wait(), Err(MulError::ServiceStopped));
        // Give the dying threads a beat to drop their receivers, then
        // confirm submission fails over past dead queues: with every
        // worker dead, submits report ShuttingDown rather than panicking
        // or hanging, and shutdown still joins cleanly.
        std::thread::sleep(Duration::from_millis(100));
        let expect = x.mul_schoolbook(&x);
        for _ in 0..4 {
            match service.submit(x.clone(), x.clone()) {
                Ok(handle) => match handle.wait() {
                    Ok(product) => assert_eq!(product, expect),
                    Err(MulError::ServiceStopped) => {}
                    Err(other) => panic!("unexpected error {other:?}"),
                },
                Err(SubmitError::ShuttingDown | SubmitError::QueueFull { .. }) => {}
            }
        }
        service.shutdown(); // must not hang on the dead workers
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let service = MulService::start(ServiceConfig::default());
        service.shutting_down.store(true, Ordering::Release);
        let one: BigInt = "1".parse().unwrap();
        assert!(matches!(
            service.submit(one.clone(), one.clone()),
            Err(SubmitError::ShuttingDown)
        ));
        assert!(matches!(
            service.submit_async(one.clone(), one),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn async_requests_resolve_and_coalesce() {
        let config = ServiceConfig {
            // A generous window so quickly-submitted requests coalesce
            // deterministically into few batches.
            batching: crate::config::BatchingConfig {
                window_us: 50_000,
                max_batch: 8,
                ..crate::config::BatchingConfig::default()
            },
            tuner: crate::config::TunerConfig {
                enabled: false,
                ..crate::config::TunerConfig::default()
            },
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(19);
        let mut handles = Vec::new();
        for _ in 0..8 {
            // Same size class (4 kbit) and kernel → one coalesced group.
            let a = BigInt::random_signed_bits(&mut rng, 4_000);
            let b = BigInt::random_signed_bits(&mut rng, 4_000);
            let want = a.mul_schoolbook(&b);
            handles.push((service.submit_async(a, b).unwrap(), want));
        }
        for (handle, want) in handles {
            assert_eq!(handle.wait().unwrap(), want);
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.served, 8);
        assert!(metrics.batches >= 1, "expected coalescing, got none");
        assert!(
            metrics.batched_requests >= 2,
            "batched_requests {}",
            metrics.batched_requests
        );
        assert!(metrics.batch_size_high_water >= 2);
    }

    #[test]
    fn mixed_shapes_still_resolve_correctly_async() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(20);
        let mut handles = Vec::new();
        for bits in [100u64, 700, 3_000, 3_100, 20_000, 100, 20_500, 64] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            let want = a.mul_schoolbook(&b);
            handles.push((service.submit_async(a, b).unwrap(), want));
        }
        for (handle, want) in handles {
            assert_eq!(handle.wait().unwrap(), want);
        }
        assert_eq!(service.shutdown().served, 8);
    }

    #[test]
    fn on_ready_callback_fires_with_the_product() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(21);
        let a = BigInt::random_signed_bits(&mut rng, 2_000);
        let b = BigInt::random_signed_bits(&mut rng, 2_000);
        let want = a.mul_schoolbook(&b);
        let (tx, rx) = std::sync::mpsc::channel();
        service
            .submit_async(a, b)
            .unwrap()
            .on_ready(move |result| tx.send(result).unwrap());
        let got = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        assert_eq!(got.unwrap(), want);
        // A callback registered after resolution fires immediately.
        let c = BigInt::random_signed_bits(&mut rng, 1_000);
        let d = BigInt::random_signed_bits(&mut rng, 1_000);
        let want2 = c.mul_schoolbook(&d);
        let handle = service.submit(c, d).unwrap();
        // Wait for completion through the metrics, keeping the handle.
        let deadline = Instant::now() + Duration::from_secs(60);
        while service.metrics().served < 2 {
            assert!(Instant::now() < deadline, "request did not complete");
            std::thread::sleep(Duration::from_millis(1));
        }
        let (tx, rx) = std::sync::mpsc::channel();
        handle.on_ready(move |result| tx.send(result).unwrap());
        assert_eq!(rx.try_recv().unwrap().unwrap(), want2);
        service.shutdown();
    }

    #[test]
    fn on_ready_reports_service_stopped_for_dropped_requests() {
        let config = ServiceConfig {
            workers: 1,
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(22);
        let big = BigInt::random_bits(&mut rng, 300_000);
        let blocker = service.submit(big.clone(), big).unwrap();
        let tiny = BigInt::random_bits(&mut rng, 64);
        let (tx, rx) = std::sync::mpsc::channel();
        service
            .submit_async(tiny.clone(), tiny)
            .unwrap()
            .on_ready(move |result| tx.send(result).unwrap());
        // Shutdown drains the async queue, so the callback fires with the
        // real product (or ServiceStopped if the dispatcher lost it —
        // either way it *fires*).
        drop(blocker);
        service.shutdown();
        let got = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        assert!(matches!(got, Ok(_) | Err(MulError::ServiceStopped)));
    }

    /// Satellite (e): a request whose deadline expires while it sits in
    /// the queue behind a chaos-injected straggler must resolve as
    /// `DeadlineExceeded` and count in `timed_out` — never in `served`.
    /// Deterministic: one worker, the straggler is forced on request 0.
    #[test]
    fn deadline_expiring_behind_straggler_counts_timed_out() {
        crate::chaos::install_quiet_panic_hook();
        let config = ServiceConfig {
            workers: 1,
            // Straggle request 0 for 80 ms on its first attempt.
            chaos: Some(crate::chaos::ChaosConfig {
                straggle_ms: 80,
                force: vec![(0, crate::chaos::FaultKind::Straggle)],
                ..crate::chaos::ChaosConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(23);
        let x = BigInt::random_bits(&mut rng, 500);
        let straggler = service.submit(x.clone(), x.clone()).unwrap();
        // Queued behind the straggler with a 5 ms deadline: it expires
        // while request 0 sleeps, after this request was already accepted
        // (and possibly already dequeued into the worker's batch).
        let doomed = service
            .submit_with_deadline(x.clone(), x.clone(), Duration::from_millis(5))
            .unwrap();
        assert!(straggler.wait().is_ok());
        match doomed.wait() {
            Err(MulError::DeadlineExceeded { waited }) => {
                assert!(waited >= Duration::from_millis(5));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.timed_out, 1);
        assert_eq!(metrics.served, 1, "the doomed request must not serve");
    }

    /// Same race on the async path: the deadline expires inside the
    /// dispatcher's coalescing window / behind a straggling batch.
    #[test]
    fn async_deadline_expiring_in_queue_counts_timed_out() {
        crate::chaos::install_quiet_panic_hook();
        let config = ServiceConfig {
            chaos: Some(crate::chaos::ChaosConfig {
                straggle_ms: 80,
                force: vec![(0, crate::chaos::FaultKind::Straggle)],
                ..crate::chaos::ChaosConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(24);
        let x = BigInt::random_bits(&mut rng, 500);
        let straggler = service.submit_async(x.clone(), x.clone()).unwrap();
        // Let the dispatcher pick up the straggler batch first.
        std::thread::sleep(Duration::from_millis(10));
        let doomed = service
            .submit_async_with_deadline(x.clone(), x.clone(), Duration::from_millis(5))
            .unwrap();
        assert!(straggler.wait().is_ok());
        match doomed.wait() {
            Err(MulError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.timed_out, 1);
        assert_eq!(metrics.served, 1);
    }

    #[test]
    fn submit_many_resolves_in_submission_order() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(26);
        let mut pairs = Vec::new();
        let mut want = Vec::new();
        // Mixed sizes in one bulk submission: the dispatcher explodes it
        // into several (kernel, size-class) groups, yet results must come
        // back in submission order.
        for bits in [100u64, 700, 100, 3_000, 700, 3_100, 64, 100] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            want.push(a.mul_schoolbook(&b));
            pairs.push((a, b));
        }
        let handle = service.submit_many(pairs).unwrap();
        assert_eq!(handle.len(), 8);
        let results = handle.wait();
        assert_eq!(results.len(), 8);
        for (result, want) in results.into_iter().zip(want) {
            assert_eq!(result.unwrap(), want);
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.served, 8);
        assert!(metrics.batches >= 1);
    }

    #[test]
    fn submit_many_empty_resolves_immediately() {
        let service = MulService::start(ServiceConfig::default());
        let handle = service.submit_many(Vec::new()).unwrap();
        assert!(handle.is_empty());
        assert_eq!(handle.try_wait().map_err(|_| ()).unwrap(), Vec::new());
        service.shutdown();
    }

    #[test]
    fn submit_many_deadline_covers_every_element() {
        crate::chaos::install_quiet_panic_hook();
        // The dispatcher grinds a forced straggler first; the bulk
        // submission's 5 ms deadline expires in-queue for ALL elements.
        let config = ServiceConfig {
            chaos: Some(crate::chaos::ChaosConfig {
                straggle_ms: 80,
                force: vec![(0, crate::chaos::FaultKind::Straggle)],
                ..crate::chaos::ChaosConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(27);
        let x = BigInt::random_bits(&mut rng, 500);
        let straggler = service.submit_async(x.clone(), x.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let doomed = service
            .submit_many_with_deadline(
                vec![(x.clone(), x.clone()), (x.clone(), x.clone())],
                Duration::from_millis(5),
            )
            .unwrap();
        assert!(straggler.wait().is_ok());
        for result in doomed.wait() {
            match result {
                Err(MulError::DeadlineExceeded { .. }) => {}
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.timed_out, 2);
        assert_eq!(metrics.served, 1);
    }

    #[test]
    fn submit_many_wait_survives_shutdown_drain() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(28);
        let pairs: Vec<_> = (0..16)
            .map(|_| {
                (
                    BigInt::random_signed_bits(&mut rng, 1_000),
                    BigInt::random_signed_bits(&mut rng, 1_000),
                )
            })
            .collect();
        let want: Vec<_> = pairs.iter().map(|(a, b)| a.mul_schoolbook(b)).collect();
        let handle = service.submit_many(pairs).unwrap();
        // Shutdown drains the accepted job; every slot must resolve (to
        // the real product here — the drop-guards would resolve lost
        // slots as ServiceStopped instead of hanging the wait).
        service.shutdown();
        for (result, want) in handle.wait().into_iter().zip(want) {
            assert_eq!(result.unwrap(), want);
        }
    }

    #[test]
    fn wait_slot_resolves_before_the_batch_completes() {
        let config = ServiceConfig {
            kernel_policy: blocker_policy(),
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(33);
        let tiny = BigInt::random_bits(&mut rng, 64);
        let big = BigInt::random_bits(&mut rng, 400_000);
        // Different size classes: the dispatcher executes the tiny
        // element's group before the 400kbit blocker's, so slot 0 lands
        // seconds before slot 1.
        let handle = service
            .submit_many(vec![
                (tiny.clone(), tiny.clone()),
                (big.clone(), big.clone()),
            ])
            .unwrap();
        assert_eq!(handle.wait_slot(0).unwrap(), tiny.mul_schoolbook(&tiny));
        let handle = match handle.try_wait() {
            Err(handle) => handle,
            Ok(r) => panic!("400kbit batch-mate finished with its tiny peer: {r:?}"),
        };
        // wait_slot is repeatable and leaves the whole-batch wait intact.
        assert_eq!(handle.wait_slot(0).unwrap(), tiny.mul_schoolbook(&tiny));
        let results = handle.wait();
        assert_eq!(results[0].clone().unwrap(), tiny.mul_schoolbook(&tiny));
        assert_eq!(results[1].clone().unwrap(), big.mul_schoolbook(&big));
        service.shutdown();
    }

    #[test]
    fn streaming_iteration_yields_results_in_submission_order() {
        let service = MulService::start(ServiceConfig::default());
        let mut rng = rng(34);
        let mut pairs = Vec::new();
        let mut want = Vec::new();
        for bits in [3_000u64, 100, 700, 64] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            want.push(a.mul_schoolbook(&b));
            pairs.push((a, b));
        }
        let handle = service.submit_many(pairs).unwrap();
        let stream = handle.into_iter();
        assert_eq!(stream.len(), 4);
        let mut yielded = 0;
        for (result, want) in stream.zip(want) {
            assert_eq!(result.unwrap(), want);
            yielded += 1;
        }
        assert_eq!(yielded, 4);
        service.shutdown();
    }

    #[test]
    fn submit_many_queue_full_reports_and_resolves() {
        let config = ServiceConfig {
            kernel_policy: blocker_policy(),
            batching: crate::config::BatchingConfig {
                queue_capacity: 1,
                ..crate::config::BatchingConfig::default()
            },
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(29);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let blocker = service.submit_async(big.clone(), big.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let tiny = BigInt::random_bits(&mut rng, 64);
        // Capacity-1 queue with the dispatcher busy: the first bulk job
        // parks in the queue, further ones bounce whole.
        let mut rejected = 0;
        let mut accepted = Vec::new();
        for _ in 0..3 {
            match service.submit_many(vec![(tiny.clone(), tiny.clone()); 4]) {
                Ok(handle) => accepted.push(handle),
                Err(e) => {
                    assert_eq!(e, SubmitError::QueueFull { capacity: 1 });
                    rejected += 1;
                }
            }
        }
        assert!(rejected >= 1, "expected at least one QueueFull");
        assert_eq!(blocker.wait().unwrap(), big.mul_schoolbook(&big));
        let expect = tiny.mul_schoolbook(&tiny);
        for handle in accepted {
            for result in handle.wait() {
                assert_eq!(result.unwrap(), expect);
            }
        }
        service.shutdown();
    }

    #[test]
    fn async_backpressure_reports_queue_full() {
        let config = ServiceConfig {
            kernel_policy: blocker_policy(),
            batching: crate::config::BatchingConfig {
                queue_capacity: 1,
                ..crate::config::BatchingConfig::default()
            },
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = rng(25);
        let big = BigInt::random_bits(&mut rng, 400_000);
        let blocker = service.submit_async(big.clone(), big.clone()).unwrap();
        // Let the dispatcher dequeue the blocker and start grinding.
        std::thread::sleep(Duration::from_millis(50));
        let tiny = BigInt::random_bits(&mut rng, 64);
        // Capacity-1 queue: the first submission parks, further ones
        // bounce with the async queue's capacity in the error.
        let mut rejected = 0;
        let mut accepted = Vec::new();
        for _ in 0..3 {
            match service.submit_async(tiny.clone(), tiny.clone()) {
                Ok(handle) => accepted.push(handle),
                Err(e) => {
                    assert_eq!(e, SubmitError::QueueFull { capacity: 1 });
                    rejected += 1;
                }
            }
        }
        assert!(rejected >= 1, "expected at least one QueueFull");
        assert_eq!(blocker.wait().unwrap(), big.mul_schoolbook(&big));
        let expect = tiny.mul_schoolbook(&tiny);
        for handle in accepted {
            assert_eq!(handle.wait().unwrap(), expect);
        }
        service.shutdown();
    }
}
