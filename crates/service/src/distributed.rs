//! The distributed backend: serve promoted requests on the simulated
//! coded machine.
//!
//! A [`DistributedBackend`] wraps `ft-core`'s polynomial-coded parallel
//! Toom-Cook ([`run_poly_ft_with`]): each multiplication spins up a
//! simulated machine of `(2k−1+f)·P/(2k−1)` ranks whose heartbeat
//! detector — not a fault oracle — finds injected failures, and whose
//! on-the-fly interpolation recovers the product from any `2k−1`
//! surviving columns. The backend owns the *injection* side of chaos:
//! a deterministic per-request fault stream plants up to
//! `hard_faults_per_run` hard faults (distinct columns, `poly-halt`
//! fault point) plus `delay_ranks` delay faults on early attempts, so a
//! supervised retry clears them.
//!
//! When the planned faults exceed the code's redundancy `f`, the run is
//! *unrecoverable*: the backend panics with [`UNRECOVERABLE_MSG`] before
//! touching the machine, the supervisor's `catch_unwind` converts that
//! into an ordinary attempt failure, and the request degrades down the
//! local kernel ladder (parallel Toom → …). The panic is deliberately
//! distinct from the chaos layer's injected-panic marker so it never
//! triggers panic escalation.

use crate::config::DistributedConfig;
use crate::metrics::Metrics;
use ft_bigint::BigInt;
use ft_machine::{DetectorConfig, FaultPlan};
use ft_toom_core::ft::poly::{run_poly_ft_with, PolyFtConfig, PolyRunOptions};
use ft_toom_core::parallel::ParallelConfig;

/// Panic payload of an unrecoverable distributed run (planned column
/// faults exceed the redundancy `f`). Silenced by the quiet panic hook;
/// intentionally different from the chaos injected-panic marker so the
/// supervisor treats it as a plain worker fault, never an escalation.
pub const UNRECOVERABLE_MSG: &str = "distributed-run unrecoverable: column faults exceed f";

/// The fault-point label every injected hard fault targets (any victim
/// halts its whole top-level column — see `ft-core`'s `poly` module).
const HALT_LABEL: &str = "poly-halt";

/// The recursion-phase fault point, live only under
/// `recursion_detect`: victims die *after* the first detection round and
/// are caught by the second.
const REC_HALT_LABEL: &str = "poly-rec-halt";

/// Serves multiplications on the simulated coded machine.
#[derive(Debug, Clone)]
pub struct DistributedBackend {
    cfg: DistributedConfig,
    poly: PolyFtConfig,
}

impl DistributedBackend {
    /// Build a backend from the service's distributed config.
    #[must_use]
    pub fn new(cfg: &DistributedConfig) -> DistributedBackend {
        let poly = PolyFtConfig {
            base: ParallelConfig::new(cfg.k, cfg.bfs_steps),
            f: cfg.f,
        };
        DistributedBackend {
            cfg: cfg.clone(),
            poly,
        }
    }

    /// Total simulated ranks a run spins up (data + redundant columns).
    #[must_use]
    pub fn processors(&self) -> usize {
        self.poly.processors()
    }

    /// Whether attempt `attempt` of any request still receives injection.
    fn attempt_is_faulty(&self, attempt: u32) -> bool {
        attempt < self.cfg.faulty_attempts
    }

    /// The deterministic fault plan and delay set for one attempt.
    /// Victims land in *distinct* columns starting from a per-request
    /// column, so `hard_faults_per_run > f` is unrecoverable by
    /// construction and `hard_faults_per_run <= f` always survives.
    fn injection_for(&self, request: u64, attempt: u32) -> (FaultPlan, Vec<(usize, u64)>) {
        if !self.attempt_is_faulty(attempt) {
            return (FaultPlan::none(), Vec::new());
        }
        let mix = splitmix64(self.cfg.fault_seed ^ request.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let cols = self.poly.base.q() + self.poly.f;
        let hard = (self.cfg.hard_faults_per_run as usize).min(cols);
        let start = (mix % cols as u64) as usize;
        let mut plan = FaultPlan::none();
        for i in 0..hard {
            let col = (start + i) % cols;
            let members = self.poly.column_members(col);
            let pick = splitmix64(mix ^ (i as u64 + 1)) as usize % members.len();
            // Two-round mode spreads the injected deaths across both
            // fault points so each wave's detection round finds work.
            let label = if self.cfg.recursion_detect && i % 2 == 1 {
                REC_HALT_LABEL
            } else {
                HALT_LABEL
            };
            plan = plan.kill(members[pick], label);
        }
        let ranks = self.poly.processors();
        let delays = (0..self.cfg.delay_ranks as usize)
            .map(|i| {
                let rank = splitmix64(mix ^ (0x5de1a ^ i as u64)) as usize % ranks;
                (rank, self.cfg.delay_factor)
            })
            .collect();
        (plan, delays)
    }

    /// Distinct columns the plan will halt — the injection-side
    /// recoverability check (mirrors `PolyFtConfig::dead_and_chosen`).
    fn planned_columns(&self, plan: &FaultPlan) -> usize {
        let mut cols: Vec<usize> = plan
            .specs()
            .iter()
            .map(|s| self.poly.column_of(s.rank))
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols.len()
    }

    /// Multiply `a·b` on the coded machine, recording distributed
    /// robustness metrics from the run report.
    ///
    /// # Panics
    /// With [`UNRECOVERABLE_MSG`] when this attempt's planned faults halt
    /// more than `f` columns — the supervisor catches the unwind and
    /// walks the degradation ladder.
    #[must_use]
    pub(crate) fn multiply(
        &self,
        a: &BigInt,
        b: &BigInt,
        request: u64,
        attempt: u32,
        metrics: &Metrics,
    ) -> BigInt {
        let (plan, slowdowns) = self.injection_for(request, attempt);
        if self.planned_columns(&plan) > self.poly.f {
            metrics.record_distributed_unrecoverable();
            panic!("{UNRECOVERABLE_MSG}");
        }
        let opts = PolyRunOptions {
            excluded: Vec::new(),
            slowdowns,
            random: None,
            detector: DetectorConfig {
                deadline_budget: self.cfg.deadline_budget,
                straggler_factor: self.cfg.straggler_factor,
                heartbeat_period: self.cfg.heartbeat_period.max(1),
            },
            recursion_detect: self.cfg.recursion_detect,
        };
        let outcome = run_poly_ft_with(a, b, &self.poly, plan, &opts);
        let deaths = u64::from(outcome.report.total_deaths());
        let detect = outcome.report.detect_totals();
        metrics.record_distributed_run(
            deaths,
            detect.rounds,
            detect.false_positives,
            detect.stragglers_flagged,
            detect.max_missed,
        );
        outcome.product
    }
}

/// SplitMix64 — the same cheap deterministic mixer the machine layer's
/// random fault stream uses.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backend(hard: u32) -> DistributedBackend {
        DistributedBackend::new(&DistributedConfig {
            enabled: true,
            hard_faults_per_run: hard,
            delay_ranks: 1,
            ..DistributedConfig::default()
        })
    }

    #[test]
    fn survivable_faults_yield_exact_products() {
        // Default config: k=2, m=1, f=1 → 4 ranks, one hard fault
        // recoverable. The detector (not the plan) drives recovery.
        let be = backend(1);
        assert_eq!(be.processors(), 4);
        let metrics = Metrics::default();
        let mut rng = StdRng::seed_from_u64(11);
        for request in 0..4u64 {
            let a = BigInt::random_signed_bits(&mut rng, 3_000);
            let b = BigInt::random_signed_bits(&mut rng, 3_000);
            let product = be.multiply(&a, &b, request, 0, &metrics);
            assert_eq!(product, a.mul_schoolbook(&b));
        }
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.distributed.runs, 4);
        assert_eq!(snap.distributed.recoveries, 4);
        assert_eq!(snap.distributed.unrecoverable, 0);
        assert_eq!(snap.distributed.false_positives, 0);
        assert!(snap.distributed.detect_rounds >= 4);
        assert!(snap.distributed.max_detect_latency_ticks > 0);
    }

    #[test]
    fn two_round_mode_recovers_deaths_in_both_waves() {
        // f=2 with two injected hard faults: injection alternates the
        // fault points, so one column dies before round one and one
        // during the recursion — the second detection round (plus
        // ack_recovery re-integration) recovers both.
        let be = DistributedBackend::new(&DistributedConfig {
            enabled: true,
            f: 2,
            hard_faults_per_run: 2,
            recursion_detect: true,
            ..DistributedConfig::default()
        });
        let metrics = Metrics::default();
        let mut rng = StdRng::seed_from_u64(14);
        for request in 0..3u64 {
            let a = BigInt::random_signed_bits(&mut rng, 3_000);
            let b = BigInt::random_signed_bits(&mut rng, 3_000);
            let (plan, _) = be.injection_for(request, 0);
            let labels: Vec<&str> = plan.specs().iter().map(|s| s.label.as_str()).collect();
            assert!(labels.contains(&HALT_LABEL), "request {request}");
            assert!(labels.contains(&REC_HALT_LABEL), "request {request}");
            let product = be.multiply(&a, &b, request, 0, &metrics);
            assert_eq!(product, a.mul_schoolbook(&b), "request {request}");
        }
        let snap = metrics.snapshot(0, (0, 0));
        assert_eq!(snap.distributed.runs, 3);
        assert_eq!(snap.distributed.recoveries, 3);
        assert_eq!(snap.distributed.false_positives, 0);
    }

    #[test]
    fn retry_attempts_clear_injected_faults() {
        // faulty_attempts defaults to 1: attempt 1 runs clean.
        let be = backend(3);
        let metrics = Metrics::default();
        let mut rng = StdRng::seed_from_u64(12);
        let a = BigInt::random_signed_bits(&mut rng, 2_500);
        let b = BigInt::random_signed_bits(&mut rng, 2_500);
        let product = be.multiply(&a, &b, 9, 1, &metrics);
        assert_eq!(product, a.mul_schoolbook(&b));
        assert_eq!(metrics.snapshot(0, (0, 0)).distributed.recoveries, 0);
    }

    #[test]
    #[should_panic(expected = "unrecoverable")]
    fn too_many_planned_faults_panic_before_the_machine_starts() {
        let be = backend(2); // 2 distinct columns > f = 1
        let metrics = Metrics::default();
        let mut rng = StdRng::seed_from_u64(13);
        let a = BigInt::random_signed_bits(&mut rng, 2_000);
        let b = BigInt::random_signed_bits(&mut rng, 2_000);
        let _ = be.multiply(&a, &b, 0, 0, &metrics);
    }

    #[test]
    fn injection_is_deterministic_per_request_and_attempt() {
        let be = backend(1);
        let (p1, d1) = be.injection_for(7, 0);
        let (p2, d2) = be.injection_for(7, 0);
        assert_eq!(p1.specs().len(), 1);
        assert_eq!(p1.specs()[0].rank, p2.specs()[0].rank);
        assert_eq!(d1, d2);
        // Past the faulty-attempt budget the plan is empty.
        let (clean, delays) = be.injection_for(7, 1);
        assert!(clean.specs().is_empty());
        assert!(delays.is_empty());
    }
}
