//! Property tests: whatever the batch size, kernel policy, or submitter
//! concurrency, every product the service returns equals schoolbook.

use ft_bigint::BigInt;
use ft_service::{KernelPolicy, MulService, ServiceConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_operand(rng: &mut StdRng, max_bits: u64) -> BigInt {
    let bits = 1 + rng.random::<u64>() % max_bits;
    BigInt::random_signed_bits(rng, bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn results_equal_schoolbook_across_policies(
        seed in any::<u64>(),
        workers in 1usize..5,
        batch_max in 1usize..24,
        queue_capacity in 8usize..64,
        schoolbook_max_bits in 256u64..4_096,
        seq_span in 4_096u64..24_576,
        requests in 4usize..24,
    ) {
        let config = ServiceConfig {
            workers,
            batch_max,
            queue_capacity,
            kernel_policy: KernelPolicy {
                schoolbook_max_bits,
                seq_toom_max_bits: schoolbook_max_bits + seq_span,
                ..KernelPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pending = Vec::new();
        for _ in 0..requests {
            let a = random_operand(&mut rng, 30_000);
            let b = random_operand(&mut rng, 30_000);
            let want = a.mul_schoolbook(&b);
            // Capacity 8+ per worker and bounded request count: submission
            // may still hit backpressure under a slow scheduler, so retry
            // through the blocking path rather than assert acceptance.
            let handle = loop {
                match service.submit(a.clone(), b.clone()) {
                    Ok(h) => break h,
                    Err(_) => std::thread::yield_now(),
                }
            };
            pending.push((handle, want));
        }
        for (handle, want) in pending {
            prop_assert_eq!(handle.wait().unwrap(), want);
        }
        let metrics = service.shutdown();
        prop_assert_eq!(metrics.served, requests as u64);
        prop_assert_eq!(
            metrics.per_kernel.iter().map(|&(_, n)| n).sum::<u64>(),
            requests as u64
        );
    }

    #[test]
    fn concurrent_submitters_each_get_their_own_product(
        seed in any::<u64>(),
        submitters in 2usize..6,
        per_thread in 2usize..10,
    ) {
        let config = ServiceConfig {
            workers: 2,
            kernel_policy: KernelPolicy {
                // Mixed 1..8000-bit operands straddle both thresholds.
                schoolbook_max_bits: 1_000,
                seq_toom_max_bits: 4_000,
                ..KernelPolicy::default()
            },
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..submitters {
                let service = &service;
                joins.push(scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
                    for _ in 0..per_thread {
                        let a = random_operand(&mut rng, 8_000);
                        let b = random_operand(&mut rng, 8_000);
                        let want = a.mul_schoolbook(&b);
                        let handle = loop {
                            match service.submit(a.clone(), b.clone()) {
                                Ok(h) => break h,
                                Err(_) => std::thread::yield_now(),
                            }
                        };
                        assert_eq!(handle.wait().unwrap(), want);
                    }
                }));
            }
            for join in joins {
                join.join().expect("submitter thread panicked");
            }
        });
        let metrics = service.shutdown();
        prop_assert_eq!(metrics.served, (submitters * per_thread) as u64);
    }
}
