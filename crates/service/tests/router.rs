//! Sharded-topology tests: rendezvous placement properties, shard death
//! detected by heartbeat and survived by failover, cross-shard work
//! stealing, saturation shedding, and stall → rejoin.

use ft_bigint::BigInt;
use ft_service::router::{placement_key, rendezvous_owner, rendezvous_weight, Router, ShardState};
use ft_service::{ChaosConfig, FaultKind, KernelPolicy, ServiceConfig, ShardConfig, SubmitError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// All-schoolbook policy: placement then depends only on the size class,
/// and worker time is predictable for blocker-style tests.
fn schoolbook_only() -> KernelPolicy {
    KernelPolicy {
        schoolbook_max_bits: 1 << 40,
        seq_toom_max_bits: 1 << 41,
        ..KernelPolicy::default()
    }
}

fn topology(shards: usize, service: ServiceConfig) -> ShardConfig {
    ShardConfig {
        shards,
        service,
        heartbeat_ms: 5,
        deadline_budget: 2,
        ..ShardConfig::default()
    }
}

fn wait_for_state(router: &Router, shard: usize, want: ShardState) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.shard_states()[shard] != want {
        assert!(
            Instant::now() < deadline,
            "shard {shard} never reached {want:?} (now {:?})",
            router.shard_states()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Removing one shard moves exactly the keys it owned — every other
    /// key keeps its owner — and the moved fraction stays near 1/N.
    #[test]
    fn removing_a_shard_moves_only_its_keys(n in 2usize..12, dead_raw in 0usize..12, base in any::<u64>()) {
        let dead = dead_raw % n;
        let shards: Vec<usize> = (0..n).collect();
        let survivors: Vec<usize> = shards.iter().copied().filter(|&s| s != dead).collect();
        let keys: Vec<u64> = (0..1024u64).map(|i| base.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        let mut moved = 0usize;
        for &key in &keys {
            let before = rendezvous_owner(key, &shards).unwrap();
            let after = rendezvous_owner(key, &survivors).unwrap();
            prop_assert_ne!(after, dead);
            if before == dead {
                moved += 1;
            } else {
                prop_assert_eq!(before, after, "surviving owner must not change");
            }
        }
        // Expected moved = keys/n; allow generous slack for hash noise.
        let expected = keys.len() / n;
        prop_assert!(moved <= expected * 3 + 8, "moved {} of {} with n={}", moved, keys.len(), n);
    }

    /// Ownership is unique: among any live set, exactly one shard holds
    /// the maximum weight for a key — two live shards never both own it.
    #[test]
    fn ownership_is_unique_and_total(n in 1usize..12, key in any::<u64>()) {
        let shards: Vec<usize> = (0..n).collect();
        let owner = rendezvous_owner(key, &shards).unwrap();
        let max_holders = shards
            .iter()
            .filter(|&&s| rendezvous_weight(key, s) >= rendezvous_weight(key, owner))
            .count();
        prop_assert_eq!(max_holders, 1);
        // The placement-key mixer feeds the same property.
        let pk = placement_key((key % 5) as usize, (key % 32) as usize);
        prop_assert!(shards.contains(&rendezvous_owner(pk, &shards).unwrap()));
    }
}

/// The acceptance run: 3 shards, the owner of a hot size class is killed
/// while holding a started request plus a queue of unstarted ones. The
/// death must be detected by the heartbeat verdict, every queued request
/// must fail over to a survivor and complete bit-exact, the started
/// request completes on the dying shard, and new work routes around the
/// corpse — zero lost requests.
#[test]
fn shard_death_is_detected_and_survived_by_failover() {
    let router = Router::start(topology(
        3,
        ServiceConfig {
            workers: 1,
            kernel_policy: schoolbook_only(),
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
    ));
    let mut rng = StdRng::seed_from_u64(11);
    let blocker_a = BigInt::random_signed_bits(&mut rng, 600_000);
    let blocker_b = BigInt::random_signed_bits(&mut rng, 600_000);
    let victim = router.owner_of(&blocker_a, &blocker_b).unwrap();
    // Precompute the whole workload before submitting anything: expected
    // products are expensive, and computing them mid-flight would give
    // the victim's worker time to drain the queue we want it to die on.
    let queued: Vec<(BigInt, BigInt, BigInt)> = (0..6)
        .map(|_| {
            let a = BigInt::random_signed_bits(&mut rng, 600_000);
            let b = BigInt::random_signed_bits(&mut rng, 600_000);
            let want = a.mul_schoolbook(&b);
            (a, b, want)
        })
        .collect();
    let blocker_want = blocker_a.mul_schoolbook(&blocker_b);
    let blocker = router.submit(blocker_a, blocker_b).unwrap();
    // Let the victim's single worker pick the blocker up, then pile
    // same-class (same-owner) work behind it and kill at once.
    std::thread::sleep(Duration::from_millis(30));
    let mut pending = Vec::new();
    for (a, b, want) in queued {
        assert_eq!(
            router.owner_of(&a, &b),
            Some(victim),
            "same class, same owner"
        );
        pending.push((router.submit(a, b).unwrap(), want));
    }
    router.kill_shard(victim);
    // Death is *detected* by the heartbeat monitor, not assumed.
    wait_for_state(&router, victim, ShardState::Dead);
    assert_eq!(router.live_shards().len(), 2);
    // Every queued request fails over to a survivor and completes.
    for (handle, want) in pending {
        assert_eq!(handle.wait().expect("failover must complete"), want);
    }
    // The started request rode the dying shard to completion.
    assert_eq!(blocker.wait().unwrap(), blocker_want);
    // New work in the dead shard's former classes routes to survivors.
    let a = BigInt::random_signed_bits(&mut rng, 400_000);
    let b = BigInt::random_signed_bits(&mut rng, 400_000);
    let want = a.mul_schoolbook(&b);
    assert_eq!(router.submit(a, b).unwrap().wait().unwrap(), want);
    let snap = router.shutdown();
    assert_eq!(snap.router.shards, 3);
    assert_eq!(snap.router.live, 2);
    assert_eq!(snap.router.shard_deaths, 1, "exactly one heartbeat death");
    assert!(
        snap.router.failovers >= 6,
        "every surrendered request re-routed"
    );
    assert_eq!(snap.served, 8, "zero lost requests");
    assert_eq!(snap.verify.residue_failures, 0);
}

/// The chaos injector's shard faults fire deterministically from the
/// monitor loop: a forced `(shard, round, ShardKill)` kills that shard
/// mid-run while the workload keeps completing verified on survivors.
#[test]
fn forced_shard_chaos_kills_mid_run_with_zero_lost_responses() {
    let router = Router::start(topology(
        3,
        ServiceConfig {
            workers: 1,
            kernel_policy: schoolbook_only(),
            chaos: Some(ChaosConfig {
                force_shard: vec![(1, 3, FaultKind::ShardKill)],
                ..ChaosConfig::default()
            }),
            ..ServiceConfig::default()
        },
    ));
    let mut rng = StdRng::seed_from_u64(23);
    let mut pending = Vec::new();
    // Mixed size classes so the load spreads over all three shards.
    for i in 0..30 {
        let bits = 2_000 + 9_000 * (i % 4);
        let a = BigInt::random_signed_bits(&mut rng, bits);
        let b = BigInt::random_signed_bits(&mut rng, bits);
        let want = a.mul_schoolbook(&b);
        // Admission may refuse while the kill is absorbed; retry.
        let handle = loop {
            match router.submit(a.clone(), b.clone()) {
                Ok(handle) => break handle,
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        };
        pending.push((handle, want));
        std::thread::sleep(Duration::from_millis(1));
    }
    wait_for_state(&router, 1, ShardState::Dead);
    for (handle, want) in pending {
        assert_eq!(handle.wait().expect("no response may be lost"), want);
    }
    let snap = router.shutdown();
    assert_eq!(snap.router.shard_deaths, 1);
    assert_eq!(snap.verify.residue_failures, 0, "zero corrupt responses");
    assert_eq!(snap.served, 30);
}

/// When the rendezvous owner runs hot past `hot_watermark` while a
/// sibling idles, placement steals the request to the idle sibling.
#[test]
fn hot_shard_work_is_stolen_by_an_idle_sibling() {
    let router = Router::start(ShardConfig {
        shards: 2,
        heartbeat_ms: 5,
        hot_watermark: 2,
        idle_watermark: 4,
        service: ServiceConfig {
            workers: 1,
            verify_residues: false,
            kernel_policy: schoolbook_only(),
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
        ..ShardConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(31);
    // Precompute the workload so submissions are back-to-back and the
    // owner's queue actually piles past the hot watermark.
    let mut work: Vec<(BigInt, BigInt, BigInt)> = (0..5)
        .map(|_| {
            let a = BigInt::random_signed_bits(&mut rng, 300_000);
            let b = BigInt::random_signed_bits(&mut rng, 300_000);
            let want = a.mul_schoolbook(&b);
            (a, b, want)
        })
        .collect();
    let (a, b, want) = work.remove(0);
    let owner = router.owner_of(&a, &b).unwrap();
    let mut pending = vec![(router.submit(a, b).unwrap(), want)];
    std::thread::sleep(Duration::from_millis(30));
    // Pile 3 unstarted requests on the owner: depth 3 > hot_watermark 2;
    // the 4th gets stolen by the idle sibling.
    for (a, b, want) in work {
        assert_eq!(router.owner_of(&a, &b), Some(owner));
        pending.push((router.submit(a, b).unwrap(), want));
    }
    for (handle, want) in pending {
        assert_eq!(handle.wait().unwrap(), want);
    }
    let snap = router.shutdown();
    assert!(
        snap.router.steals >= 1,
        "steal must be metered: {:?}",
        snap.router
    );
    assert_eq!(snap.served, 5);
}

/// Only when *every* live shard refuses does the router shed: the
/// returned `QueueFull` is what the HTTP front door turns into a 429.
#[test]
fn router_sheds_only_when_all_live_shards_are_saturated() {
    let router = Router::start(ShardConfig {
        shards: 2,
        heartbeat_ms: 5,
        service: ServiceConfig {
            workers: 1,
            verify_residues: false,
            kernel_policy: schoolbook_only(),
            // The router submits on the async path: its admission gate is
            // the central async queue, so that is the capacity to squeeze.
            batching: ft_service::BatchingConfig {
                queue_capacity: 2,
                max_batch: 1,
                ..ft_service::BatchingConfig::default()
            },
            ..ServiceConfig::default()
        },
        ..ShardConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(47);
    // Precompute so the submission loop is tight: two 1-worker shards
    // grinding 250k-bit schoolbook products cannot drain between sends.
    let work: Vec<(BigInt, BigInt, BigInt)> = (0..16)
        .map(|_| {
            let a = BigInt::random_signed_bits(&mut rng, 250_000);
            let b = BigInt::random_signed_bits(&mut rng, 250_000);
            let want = a.mul_schoolbook(&b);
            (a, b, want)
        })
        .collect();
    let mut pending = Vec::new();
    let mut shed = None;
    for (a, b, want) in work {
        match router.submit(a, b) {
            Ok(handle) => pending.push((handle, want)),
            Err(error) => {
                shed = Some(error);
                break;
            }
        }
    }
    let shed = shed.expect("two 1-worker shards with capacity 2 must saturate");
    assert!(
        matches!(shed, SubmitError::QueueFull { .. }),
        "saturation surfaces as QueueFull, got {shed:?}"
    );
    // Retry-After derives from the *live* minimum depth, which is real
    // backlog here — both shards live and full.
    assert!(router.queue_depth() >= 1);
    // Shedding lost nothing that was accepted.
    for (handle, want) in pending {
        assert_eq!(handle.wait().unwrap(), want);
    }
    let _ = router.shutdown();
}

/// A stalled shard is declared dead by the same verdict as a killed one,
/// keeps serving what it already held, and rejoins once its heartbeats
/// resume — lifecycle: live → suspect → dead → rejoined.
#[test]
fn stalled_shard_dies_then_rejoins_when_beats_resume() {
    let router = Router::start(topology(
        2,
        ServiceConfig {
            workers: 1,
            verify_residues: false,
            ..ServiceConfig::default()
        },
    ));
    router.stall_shard(0, 20); // ~100 ms of heartbeat silence
    wait_for_state(&router, 0, ShardState::Dead);
    // While shard 0 is dead, everything routes to shard 1.
    assert_eq!(router.live_shards(), vec![1]);
    let a: BigInt = "123456789123456789".parse().unwrap();
    let b: BigInt = "987654321987654321".parse().unwrap();
    let want = a.mul_schoolbook(&b);
    assert_eq!(router.submit(a, b).unwrap().wait().unwrap(), want);
    // Beats resume after the stall window: the shard rejoins.
    wait_for_state(&router, 0, ShardState::Live);
    assert_eq!(router.live_shards(), vec![0, 1]);
    let snap = router.shutdown();
    assert_eq!(snap.router.shard_deaths, 1);
    assert!(snap.router.rejoins >= 1, "rejoin must be metered");
    assert_eq!(snap.served, 1);
}
