//! End-to-end acceptance for the verification ladder (`residue →
//! dual-algorithm → recompute`).
//!
//! The headline property: under chaos that injects *residue-evading*
//! corruptions — deltas divisible by `2^128 − 1`, invisible to the
//! residue rung by construction — a service with the dual rung always-on
//! serves **zero** corrupt responses, meters every escalation, and fails
//! no request. The control experiment runs the same fault plan with the
//! dual rung disabled and demonstrates the blind spot: wrong products
//! reach clients while `verification_failures` stays zero.
//!
//! Seed matrix: `FT_CHAOS_SEED=7 cargo test -p ft-service --test
//! verify_ladder`.

use ft_bigint::BigInt;
use ft_service::chaos::FaultKind;
use ft_service::{
    install_quiet_panic_hook, BreakerPolicy, ChaosConfig, CorruptionKind, DistributedConfig,
    KernelPolicy, MulService, ServiceConfig, SubmitError, VerifyPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("FT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Thresholds that exercise all three local kernels on small operands.
fn mixed_kernel_policy() -> KernelPolicy {
    KernelPolicy {
        schoolbook_max_bits: 2_000,
        seq_toom_max_bits: 8_000,
        ..KernelPolicy::default()
    }
}

/// ~15% of requests draw a residue-evading corruption; nothing else.
fn evading_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        corrupt_per_10k: 1_500,
        corruption: CorruptionKind::ResidueEvading,
        ..ChaosConfig::default()
    }
}

fn dual_always() -> VerifyPolicy {
    VerifyPolicy {
        dual_per_10k: 10_000,
        ..VerifyPolicy::default()
    }
}

fn submit_with_backoff(service: &MulService, a: BigInt, b: BigInt) -> ft_service::ResponseHandle {
    loop {
        match service.submit(a.clone(), b.clone()) {
            Ok(handle) => return handle,
            Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
            Err(SubmitError::ShuttingDown) => unreachable!("service is not shutting down"),
        }
    }
}

/// The acceptance run: every residue-evading corruption is caught by the
/// dual rung, confirmed by the recompute, and the request is served the
/// correct product in place — no retries, no worker faults, zero corrupt
/// responses.
#[test]
fn dual_rung_serves_zero_corrupt_responses_under_evading_chaos() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let config = ServiceConfig {
        workers: 2,
        kernel_policy: mixed_kernel_policy(),
        verify_residues: true,
        verify: dual_always(),
        chaos: Some(evading_chaos(seed)),
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1adde5);
    let mut pending = Vec::new();
    for i in 0..200u64 {
        let bits = [1_000, 4_000, 16_000][(i % 3) as usize];
        let a = BigInt::random_signed_bits(&mut rng, bits);
        let b = BigInt::random_signed_bits(&mut rng, bits);
        let expect = a.mul_schoolbook(&b);
        pending.push((submit_with_backoff(&service, a, b), expect));
    }
    for (i, (handle, expect)) in pending.into_iter().enumerate() {
        let product = handle
            .wait_timeout(Duration::from_secs(300))
            .unwrap_or_else(|_| panic!("request {i} hung"))
            .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert_eq!(product, expect, "request {i} served a corrupt product");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 200);
    assert_eq!(metrics.worker_faults, 0);
    let corruptions = metrics.injected_faults[FaultKind::Corrupt as usize].1;
    assert!(corruptions > 0, "seed {seed} injected no corruptions");
    // The blind spot, metered: zero residue failures, and exactly one
    // dual mismatch + escalation + confirmed recompute per injection.
    assert_eq!(metrics.verify.residue_failures, 0);
    assert_eq!(metrics.verify.dual_checks, 200);
    assert_eq!(metrics.verify.dual_failures, corruptions);
    assert_eq!(metrics.verify.escalations, corruptions);
    assert_eq!(metrics.verify.recompute_checks, corruptions);
    assert_eq!(metrics.verify.recompute_failures, corruptions);
    assert_eq!(metrics.verification_failures, corruptions);
    // Recovery happened in place: the ladder never burned a retry.
    assert_eq!(metrics.retries, 0);
    // Per-rung cost is metered (dual recomputed every product).
    assert_eq!(metrics.verify.residue_checks, 200);
    assert!(
        metrics.verify.dual_cost_us > 0,
        "dual-rung cost was metered"
    );
}

/// The control experiment: the same fault plan with the dual rung off.
/// Residue-only supervision demonstrably misses residue-evading
/// corruptions — wrong products reach clients and no failure is metered.
#[test]
fn residue_only_config_misses_evading_corruptions() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let config = ServiceConfig {
        workers: 2,
        kernel_policy: mixed_kernel_policy(),
        verify_residues: true,
        verify: VerifyPolicy {
            dual_per_10k: 0,
            ..VerifyPolicy::default()
        },
        chaos: Some(evading_chaos(seed)),
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1adde5);
    let mut pending = Vec::new();
    for i in 0..200u64 {
        let bits = [1_000, 4_000][(i % 2) as usize];
        let a = BigInt::random_signed_bits(&mut rng, bits);
        let b = BigInt::random_signed_bits(&mut rng, bits);
        let expect = a.mul_schoolbook(&b);
        pending.push((submit_with_backoff(&service, a, b), expect));
    }
    let mut wrong = 0u64;
    for (i, (handle, expect)) in pending.into_iter().enumerate() {
        let product = handle
            .wait_timeout(Duration::from_secs(300))
            .unwrap_or_else(|_| panic!("request {i} hung"))
            .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        if product != expect {
            wrong += 1;
        }
    }
    let metrics = service.shutdown();
    let corruptions = metrics.injected_faults[FaultKind::Corrupt as usize].1;
    assert!(corruptions > 0, "seed {seed} injected no corruptions");
    assert_eq!(
        wrong, corruptions,
        "every injected evading corruption was served as-is"
    );
    assert_eq!(
        metrics.verification_failures, 0,
        "the residue rung saw nothing wrong"
    );
    assert_eq!(metrics.verify.dual_checks, 0, "the dual rung never ran");
    assert_eq!(metrics.residue_checks, 200, "yet every product was checked");
}

/// The coalesced batch path: `submit_many` elements ride the dispatcher's
/// batch attempt, where the ladder verifies each product fused with its
/// multiplication. Corrupt elements are recovered in place — no element
/// falls back to the individual retry path.
#[test]
fn batched_elements_are_recovered_in_place() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let chaos = ChaosConfig {
        seed,
        corrupt_per_10k: 10_000, // every element draws a corruption
        corruption: CorruptionKind::ResidueEvading,
        ..ChaosConfig::default()
    };
    let config = ServiceConfig {
        kernel_policy: mixed_kernel_policy(),
        verify_residues: true,
        verify: dual_always(),
        chaos: Some(chaos),
        // Keep the breaker closed across all 8 confirmed corruptions so
        // the batch demonstrably stays on its selected kernel.
        breaker: BreakerPolicy {
            failure_threshold: 100,
            open_ms: 10,
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c5);
    let (pairs, want): (Vec<_>, Vec<_>) = (0..8)
        .map(|_| {
            let a = BigInt::random_signed_bits(&mut rng, 4_000);
            let b = BigInt::random_signed_bits(&mut rng, 4_000);
            let expect = a.mul_schoolbook(&b);
            ((a, b), expect)
        })
        .unzip();
    let handle = service.submit_many(pairs).unwrap();
    for (i, (result, want)) in handle.wait().into_iter().zip(want).enumerate() {
        assert_eq!(result.unwrap(), want, "element {i} must be bit-exact");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 8);
    assert_eq!(metrics.verify.dual_failures, 8);
    assert_eq!(metrics.verify.recompute_failures, 8);
    assert_eq!(metrics.batch_element_retries, 0, "recovered in place");
    assert_eq!(metrics.worker_faults, 0);
}

/// Responses from the simulated coded machine ride the same ladder: a
/// corruption injected into a distributed response is caught, confirmed
/// against a *local* clean recompute, and served correct — while the
/// batch stays on the distributed kernel.
#[test]
fn distributed_responses_ride_the_ladder() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let chaos = ChaosConfig {
        seed,
        corrupt_per_10k: 10_000,
        corruption: CorruptionKind::ResidueEvading,
        ..ChaosConfig::default()
    };
    let config = ServiceConfig {
        kernel_policy: KernelPolicy {
            schoolbook_max_bits: 2_000,
            seq_toom_max_bits: 3_000,
            ..KernelPolicy::default()
        },
        verify_residues: true,
        verify: dual_always(),
        chaos: Some(chaos),
        breaker: BreakerPolicy {
            failure_threshold: 100,
            open_ms: 10,
        },
        distributed: DistributedConfig {
            enabled: true,
            k: 2,
            bfs_steps: 1,
            f: 1,
            min_group: 2,
            min_bits: 3_000,
            max_bits: 1_000_000,
            fault_seed: seed,
            ..DistributedConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd157);
    let (pairs, want): (Vec<_>, Vec<_>) = (0..4)
        .map(|_| {
            let a = BigInt::random_signed_bits(&mut rng, 4_000);
            let b = BigInt::random_signed_bits(&mut rng, 4_000);
            let expect = a.mul_schoolbook(&b);
            ((a, b), expect)
        })
        .unzip();
    let handle = service.submit_many(pairs).unwrap();
    for (i, (result, want)) in handle.wait().into_iter().zip(want).enumerate() {
        assert_eq!(result.unwrap(), want, "element {i} must be bit-exact");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 4);
    let distributed_served = metrics
        .per_kernel
        .iter()
        .find(|(name, _)| *name == "distributed_toom")
        .map_or(0, |&(_, n)| n);
    assert_eq!(distributed_served, 4, "served from the coded machine");
    assert_eq!(metrics.verify.dual_failures, 4);
    assert_eq!(metrics.verify.recompute_failures, 4);
    assert_eq!(metrics.worker_faults, 0);
}

/// Confirmed corruptions charge the serving kernel's breaker
/// (`breaker_on_mismatch`): a kernel that keeps returning corrupt
/// products trips its breaker and later requests divert below it.
#[test]
fn repeat_offenders_trip_the_breaker() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let chaos = ChaosConfig {
        seed,
        corrupt_per_10k: 10_000,
        corruption: CorruptionKind::ResidueEvading,
        ..ChaosConfig::default()
    };
    let config = ServiceConfig {
        workers: 1,
        kernel_policy: mixed_kernel_policy(),
        verify_residues: true,
        verify: dual_always(),
        chaos: Some(chaos),
        breaker: BreakerPolicy {
            failure_threshold: 3,
            open_ms: 60_000,
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0ffe);
    let mut pending = Vec::new();
    for _ in 0..10 {
        // 4-kbit operands select seq toom while its breaker holds.
        let a = BigInt::random_signed_bits(&mut rng, 4_000);
        let b = BigInt::random_signed_bits(&mut rng, 4_000);
        let expect = a.mul_schoolbook(&b);
        pending.push((submit_with_backoff(&service, a, b), expect));
    }
    for (i, (handle, expect)) in pending.into_iter().enumerate() {
        let product = handle
            .wait_timeout(Duration::from_secs(300))
            .unwrap_or_else(|_| panic!("request {i} hung"))
            .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        assert_eq!(product, expect, "request {i}");
    }
    let metrics = service.shutdown();
    assert!(
        metrics.breaker_opens >= 1,
        "three confirmed corruptions must trip the seq-toom breaker"
    );
    assert_eq!(metrics.worker_faults, 0);
    assert_eq!(
        metrics.verify.recompute_failures,
        metrics.verification_failures
    );
}
