//! End-to-end chaos test: the issue's acceptance run. A 500-request
//! mixed-kernel workload with ~10% injected faults (panics, stragglers,
//! corruptions) must complete every request with a verified-correct
//! product via retry / breaker fallback, hang no handles, and meter the
//! recoveries.
//!
//! The chaos seed defaults to 42 and can be overridden for exploratory
//! runs: `FT_CHAOS_SEED=7 cargo test -p ft-service --test chaos`. The
//! corruption shape is part of the matrix too:
//! `FT_CHAOS_CORRUPTION=residue_evading` switches the injector to deltas
//! that are invisible to the residue rung, and the config flips the
//! dual-algorithm rung to always-on so the run still serves zero corrupt
//! products (the assertions branch on the mode).

use ft_bigint::BigInt;
use ft_service::chaos::FaultKind;
use ft_service::{
    install_quiet_panic_hook, BreakerPolicy, ChaosConfig, CorruptionKind, KernelPolicy, MulService,
    RetryPolicy, ServiceConfig, SubmitError, VerifyPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Bounded queues are part of the design: on transient backpressure keep
/// trying instead of dropping the request on the floor.
fn submit_with_backoff(service: &MulService, a: BigInt, b: BigInt) -> ft_service::ResponseHandle {
    loop {
        match service.submit(a.clone(), b.clone()) {
            Ok(handle) => return handle,
            Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
            Err(SubmitError::ShuttingDown) => unreachable!("service is not shutting down"),
        }
    }
}

fn chaos_seed() -> u64 {
    std::env::var("FT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn chaos_corruption() -> CorruptionKind {
    match std::env::var("FT_CHAOS_CORRUPTION") {
        Ok(name) => CorruptionKind::from_name(&name)
            .unwrap_or_else(|| panic!("unknown FT_CHAOS_CORRUPTION {name:?}")),
        Err(_) => CorruptionKind::default(),
    }
}

/// Residue-evading corruptions demand the dual rung on every product;
/// single-limb ones are fully caught by the default policy.
fn verify_policy() -> VerifyPolicy {
    match chaos_corruption() {
        CorruptionKind::SingleLimb => VerifyPolicy::default(),
        CorruptionKind::ResidueEvading => VerifyPolicy {
            dual_per_10k: 10_000,
            ..VerifyPolicy::default()
        },
    }
}

/// Thresholds that exercise all three kernels on operand sizes small
/// enough to grind 500 requests quickly.
fn mixed_kernel_policy() -> KernelPolicy {
    KernelPolicy {
        schoolbook_max_bits: 2_000,
        seq_toom_max_bits: 8_000,
        ..KernelPolicy::default()
    }
}

fn chaos_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        // ~10% of requests draw a fault, split across the three kinds.
        panic_per_10k: 333,
        straggle_per_10k: 333,
        corrupt_per_10k: 334,
        straggle_ms: 1,
        corruption: chaos_corruption(),
        ..ChaosConfig::default()
    }
}

#[test]
fn five_hundred_request_chaos_run_survives() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let config = ServiceConfig {
        workers: 4,
        kernel_policy: mixed_kernel_policy(),
        verify_residues: true,
        verify: verify_policy(),
        chaos: Some(chaos_config(seed)),
        retry: RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_max_ms: 8,
        },
        // A single failure trips a breaker, so injected faults on Toom
        // requests demonstrably divert retries down the kernel ladder.
        breaker: BreakerPolicy {
            failure_threshold: 1,
            open_ms: 20,
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut pending = Vec::new();
    for i in 0..500u64 {
        // Cycle schoolbook (1 kbit), seq toom (4 kbit), par toom (16 kbit).
        let bits = [1_000, 4_000, 16_000][(i % 3) as usize];
        let a = BigInt::random_signed_bits(&mut rng, bits);
        let b = BigInt::random_signed_bits(&mut rng, bits);
        let expect = a.mul_schoolbook(&b);
        pending.push((submit_with_backoff(&service, a, b), expect));
    }
    // Zero handles may hang; the bound is generous but finite.
    for (i, (handle, expect)) in pending.into_iter().enumerate() {
        match handle.wait_timeout(Duration::from_secs(300)) {
            Ok(result) => {
                let product = result.unwrap_or_else(|e| panic!("request {i} failed: {e}"));
                assert_eq!(product, expect, "request {i} returned a wrong product");
            }
            Err(_) => panic!("request {i} hung past the timeout"),
        }
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 500);
    assert_eq!(metrics.worker_faults, 0, "no request exhausted recovery");
    let injected: u64 = metrics.injected_faults.iter().map(|&(_, n)| n).sum();
    assert!(injected > 0, "the fault plan injected nothing");
    assert!(metrics.retries > 0, "faults must force retries");
    assert!(
        metrics.fallbacks > 0,
        "breakers must divert retries to degraded kernels"
    );
    let corruptions = metrics.injected_faults[FaultKind::Corrupt as usize].1;
    assert!(corruptions > 0, "seed {seed} injected no corruptions");
    match chaos_corruption() {
        CorruptionKind::SingleLimb => {
            // The residue check catches *every* injected corruption — no
            // more, no fewer: honest products never fail verification.
            assert_eq!(metrics.verification_failures, corruptions);
            // Every attempt that produced a product was spot-checked: the
            // 500 served products plus each corrupted one (panicked
            // attempts never reach the verifier).
            assert_eq!(metrics.residue_checks, 500 + metrics.verification_failures);
        }
        CorruptionKind::ResidueEvading => {
            // The residue rung is provably blind to these deltas; the
            // always-on dual rung catches every one, and every escalation
            // is confirmed against the original (the ladder recovers the
            // element in place, so corrupt attempts consume no retry and
            // no second residue check).
            assert_eq!(metrics.verify.residue_failures, 0);
            assert_eq!(metrics.verify.dual_failures, corruptions);
            assert_eq!(metrics.verify.escalations, corruptions);
            assert_eq!(metrics.verify.recompute_failures, corruptions);
            assert_eq!(metrics.verification_failures, corruptions);
            assert_eq!(metrics.residue_checks, 500);
        }
    }
}

/// The NTT-served leg of the chaos matrix: a policy whose NTT floor sits
/// right on the sequential-Toom ceiling routes every large request to the
/// two-prime CRT NTT kernel, and the same ~10% fault plan (panics,
/// stragglers, corruptions of the configured kind) must still serve zero
/// corrupt products. Breaker trips demonstrably degrade NTT → seq Toom.
#[test]
fn ntt_chaos_run_survives() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let config = ServiceConfig {
        workers: 4,
        kernel_policy: KernelPolicy {
            schoolbook_max_bits: 2_000,
            seq_toom_max_bits: 8_000,
            ntt_min_bits: 8_000,
            ..KernelPolicy::default()
        },
        verify_residues: true,
        verify: verify_policy(),
        chaos: Some(chaos_config(seed)),
        retry: RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_max_ms: 8,
        },
        breaker: BreakerPolicy {
            failure_threshold: 1,
            open_ms: 20,
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x277);
    let mut pending = Vec::new();
    for i in 0..200u64 {
        // All sizes above the NTT floor, so every undegraded request is
        // NTT-served; the spread keeps transform sizes from all rounding
        // to one power of two.
        let bits = [12_000, 16_000, 24_000][(i % 3) as usize];
        let a = BigInt::random_signed_bits(&mut rng, bits);
        let b = BigInt::random_signed_bits(&mut rng, bits);
        let expect = a.mul_schoolbook(&b);
        pending.push((submit_with_backoff(&service, a, b), expect));
    }
    for (i, (handle, expect)) in pending.into_iter().enumerate() {
        match handle.wait_timeout(Duration::from_secs(300)) {
            Ok(result) => {
                let product = result.unwrap_or_else(|e| panic!("request {i} failed: {e}"));
                assert_eq!(product, expect, "request {i} returned a wrong product");
            }
            Err(_) => panic!("request {i} hung past the timeout"),
        }
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 200);
    assert_eq!(metrics.worker_faults, 0, "no request exhausted recovery");
    let ntt_served = metrics
        .per_kernel
        .iter()
        .find(|&&(name, _)| name == "ntt")
        .map_or(0, |&(_, n)| n);
    assert!(ntt_served > 0, "no request was served by the NTT kernel");
    let injected: u64 = metrics.injected_faults.iter().map(|&(_, n)| n).sum();
    assert!(injected > 0, "the fault plan injected nothing");
    assert!(
        metrics.fallbacks > 0,
        "breaker trips must degrade NTT retries down the ladder"
    );
    let corruptions = metrics.injected_faults[FaultKind::Corrupt as usize].1;
    assert!(corruptions > 0, "seed {seed} injected no corruptions");
    match chaos_corruption() {
        CorruptionKind::SingleLimb => {
            assert_eq!(metrics.verification_failures, corruptions);
            assert_eq!(metrics.residue_checks, 200 + metrics.verification_failures);
        }
        CorruptionKind::ResidueEvading => {
            // NTT products cross-check against alternate-point Toom — no
            // shared transform machinery — so the always-on dual rung
            // catches every evading delta the residue rung is blind to.
            assert_eq!(metrics.verify.residue_failures, 0);
            assert_eq!(metrics.verify.dual_failures, corruptions);
            assert_eq!(metrics.verify.recompute_failures, corruptions);
            assert_eq!(metrics.verification_failures, corruptions);
        }
    }
}

/// Async-path analogue of [`submit_with_backoff`].
fn submit_async_with_backoff(
    service: &MulService,
    a: BigInt,
    b: BigInt,
) -> ft_service::ResponseHandle {
    loop {
        match service.submit_async(a.clone(), b.clone()) {
            Ok(handle) => return handle,
            Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
            Err(SubmitError::ShuttingDown) => unreachable!("service is not shutting down"),
        }
    }
}

/// The batched acceptance run: the same fault plan pushed through
/// `submit_async`, where the dispatcher coalesces same-class requests
/// into single supervised batches. A fault injected into one batch
/// element must never fail an uninjured neighbour — every request still
/// resolves to a verified-correct product.
#[test]
fn batched_chaos_run_survives() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let config = ServiceConfig {
        workers: 2,
        kernel_policy: mixed_kernel_policy(),
        verify_residues: true,
        verify: verify_policy(),
        chaos: Some(chaos_config(seed)),
        retry: RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_max_ms: 8,
        },
        breaker: BreakerPolicy {
            failure_threshold: 1,
            open_ms: 20,
        },
        batching: ft_service::BatchingConfig {
            // A generous window so a single fast submitter reliably lands
            // companions in each round.
            window_us: 20_000,
            max_batch: 16,
            ..ft_service::BatchingConfig::default()
        },
        tuner: ft_service::TunerConfig {
            enabled: false,
            ..ft_service::TunerConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba7c4);
    // Precompute the workload so submission is tight enough to coalesce.
    let workload: Vec<(BigInt, BigInt, BigInt)> = (0..300u64)
        .map(|i| {
            let bits = [1_000, 4_000][(i % 2) as usize];
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            let expect = a.mul_schoolbook(&b);
            (a, b, expect)
        })
        .collect();
    let mut pending = Vec::new();
    for (a, b, expect) in workload {
        pending.push((submit_async_with_backoff(&service, a, b), expect));
    }
    for (i, (handle, expect)) in pending.into_iter().enumerate() {
        match handle.wait_timeout(Duration::from_secs(300)) {
            Ok(result) => {
                let product = result.unwrap_or_else(|e| panic!("request {i} failed: {e}"));
                assert_eq!(product, expect, "request {i} returned a wrong product");
            }
            Err(_) => panic!("request {i} hung past the timeout"),
        }
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 300);
    assert_eq!(metrics.worker_faults, 0, "no request exhausted recovery");
    assert!(metrics.batches > 0, "nothing coalesced — window too tight?");
    assert!(metrics.batched_requests > metrics.batches);
    let injected: u64 = metrics.injected_faults.iter().map(|&(_, n)| n).sum();
    assert!(injected > 0, "the fault plan injected nothing");
    // On the batch path a drawn corruption can be masked by a sibling's
    // panic (the batch attempt dies before products exist), so unlike the
    // per-request run the tally is an upper bound, not an equality.
    let corruptions = metrics.injected_faults[FaultKind::Corrupt as usize].1;
    assert!(corruptions > 0, "seed {seed} injected no corruptions");
    assert!(metrics.verification_failures <= corruptions);
    // Every served product passed a residue spot-check at least once.
    assert!(metrics.residue_checks >= 300);
    if chaos_corruption() == CorruptionKind::ResidueEvading {
        // Evading deltas never trip the residue rung; whatever was caught
        // was caught by the dual rung and confirmed by the recompute.
        assert_eq!(metrics.verify.residue_failures, 0);
        assert_eq!(
            metrics.verification_failures,
            metrics.verify.recompute_failures
        );
        assert!(
            metrics.verify.dual_checks >= 300,
            "every element dual-checked"
        );
    }
}

#[test]
fn chaos_runs_are_reproducible_for_a_seed() {
    install_quiet_panic_hook();
    let run = |seed: u64| {
        let config = ServiceConfig {
            workers: 2,
            kernel_policy: mixed_kernel_policy(),
            verify: verify_policy(),
            chaos: Some(chaos_config(seed)),
            breaker: BreakerPolicy {
                failure_threshold: 1,
                open_ms: 10,
            },
            ..ServiceConfig::default()
        };
        let service = MulService::start(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let handles: Vec<_> = (0..100u64)
            .map(|i| {
                let bits = [1_500, 5_000][(i % 2) as usize];
                let a = BigInt::random_signed_bits(&mut rng, bits);
                let b = BigInt::random_signed_bits(&mut rng, bits);
                submit_with_backoff(&service, a, b)
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        service.shutdown()
    };
    let seed = chaos_seed();
    let first = run(seed);
    let second = run(seed);
    // Fault decisions depend only on (seed, request index, attempt), so
    // the injected-fault tally is identical across runs regardless of
    // worker scheduling.
    assert_eq!(first.injected_faults, second.injected_faults);
    assert_eq!(
        first.verification_failures, second.verification_failures,
        "every corruption is caught in both runs"
    );
}
