//! End-to-end distributed serving: coalesced batches promoted to the
//! simulated coded machine, with faults injected *inside* the machine.
//!
//! The acceptance run: a batch served via `DistributedToom` with `f`
//! injected hard faults plus one delay fault per run returns bit-exact,
//! residue-verified products — recovery driven entirely by the heartbeat
//! detector's verdict (the fault plan is injection-only; nothing on the
//! detection path queries it). A second run with more than `f` faults on
//! every attempt must degrade through the supervisor's ladder to the
//! local kernels instead of erroring.
//!
//! The in-machine fault seed defaults to 42 and follows the chaos seed
//! matrix: `FT_CHAOS_SEED=1337 cargo test -p ft-service --test distributed`.

use ft_bigint::BigInt;
use ft_service::{
    install_quiet_panic_hook, BreakerPolicy, DistributedConfig, KernelPolicy, MulService,
    RetryPolicy, ServiceConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chaos_seed() -> u64 {
    std::env::var("FT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// 4-kbit operands select the parallel Toom kernel, making the coalesced
/// group eligible for promotion to the distributed backend.
fn policy() -> KernelPolicy {
    KernelPolicy {
        schoolbook_max_bits: 2_000,
        seq_toom_max_bits: 3_000,
        ..KernelPolicy::default()
    }
}

fn distributed(hard_faults: u32, faulty_attempts: u32) -> DistributedConfig {
    DistributedConfig {
        enabled: true,
        k: 2,
        bfs_steps: 1,
        f: 1,
        min_group: 2,
        min_bits: 3_000,
        max_bits: 1_000_000,
        fault_seed: chaos_seed(),
        hard_faults_per_run: hard_faults,
        delay_ranks: 1,
        delay_factor: 4,
        faulty_attempts,
        deadline_budget: 1,
        straggler_factor: 0,
        heartbeat_period: 1,
        recursion_detect: false,
    }
}

fn batch(n: u64, seed: u64) -> (Vec<(BigInt, BigInt)>, Vec<BigInt>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::new();
    let mut want = Vec::new();
    for _ in 0..n {
        let a = BigInt::random_signed_bits(&mut rng, 4_000);
        let b = BigInt::random_signed_bits(&mut rng, 4_000);
        want.push(a.mul_schoolbook(&b));
        pairs.push((a, b));
    }
    (pairs, want)
}

#[test]
fn promoted_batch_recovers_injected_faults_on_the_coded_machine() {
    install_quiet_panic_hook();
    let config = ServiceConfig {
        kernel_policy: policy(),
        verify_residues: true,
        // f = 1 hard fault per run plus one delay fault: every run is
        // survivable, so nothing should ever leave the distributed rung.
        distributed: distributed(1, 1),
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let (pairs, want) = batch(6, chaos_seed() ^ 0xd157);
    let handle = service.submit_many(pairs).unwrap();
    for (i, (result, want)) in handle.wait().into_iter().zip(want).enumerate() {
        assert_eq!(result.unwrap(), want, "element {i} must be bit-exact");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 6);
    let distributed_served = metrics
        .per_kernel
        .iter()
        .find(|(name, _)| *name == "distributed_toom")
        .map(|&(_, n)| n)
        .unwrap();
    assert_eq!(distributed_served, 6, "whole batch promoted and served");
    assert_eq!(metrics.distributed.runs, 6);
    assert_eq!(
        metrics.distributed.recoveries, 6,
        "every run had a hard fault to detect and recover"
    );
    assert_eq!(metrics.distributed.unrecoverable, 0);
    assert_eq!(
        metrics.distributed.false_positives, 0,
        "the detector never declares a live rank dead"
    );
    assert!(metrics.distributed.detect_rounds >= 6);
    assert!(
        metrics.distributed.max_detect_latency_ticks >= 1,
        "a detected death has a positive heartbeat lag"
    );
    assert!(metrics.residue_checks >= 6, "products were spot-checked");
    assert_eq!(metrics.worker_faults, 0);
    assert_eq!(metrics.verification_failures, 0);
}

#[test]
fn unrecoverable_faults_degrade_to_local_kernels() {
    install_quiet_panic_hook();
    let config = ServiceConfig {
        kernel_policy: policy(),
        verify_residues: true,
        // 2 faulty columns > f = 1 on EVERY attempt: the distributed rung
        // can never serve these, so the supervisor must walk each element
        // down to the local kernels.
        distributed: distributed(2, u32::MAX),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
        },
        // Keep the distributed breaker closed throughout so every element
        // demonstrably attempts (and fails) the coded machine first.
        breaker: BreakerPolicy {
            failure_threshold: 100,
            open_ms: 10,
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let (pairs, want) = batch(4, chaos_seed() ^ 0xfa11);
    let handle = service.submit_many(pairs).unwrap();
    for (i, (result, want)) in handle.wait().into_iter().zip(want).enumerate() {
        assert_eq!(result.unwrap(), want, "element {i} must be bit-exact");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.served, 4);
    let by_kernel = |name: &str| {
        metrics
            .per_kernel
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, n)| n)
            .unwrap()
    };
    assert_eq!(by_kernel("distributed_toom"), 0);
    assert_eq!(by_kernel("par_toom"), 4, "served on the local fallback");
    // One unrecoverable batch attempt plus one per element on the
    // individual retry path.
    assert_eq!(metrics.distributed.unrecoverable, 5);
    assert_eq!(metrics.distributed.runs, 0, "no machine run ever completed");
    assert!(metrics.fallbacks > 0, "degradation was metered");
    assert!(metrics.retries > 0);
    assert_eq!(metrics.worker_faults, 0, "no request was failed outright");
    assert_eq!(metrics.batch_faults, 1, "the promoted batch hard-faulted");
}

#[test]
fn disabled_backend_never_promotes() {
    let config = ServiceConfig {
        kernel_policy: policy(),
        distributed: DistributedConfig {
            enabled: false,
            ..distributed(0, 0)
        },
        ..ServiceConfig::default()
    };
    let service = MulService::start(config);
    let (pairs, want) = batch(4, 9);
    let handle = service.submit_many(pairs).unwrap();
    for (result, want) in handle.wait().into_iter().zip(want) {
        assert_eq!(result.unwrap(), want);
    }
    let metrics = service.shutdown();
    let distributed_served = metrics
        .per_kernel
        .iter()
        .find(|(name, _)| *name == "distributed_toom")
        .map(|&(_, n)| n)
        .unwrap();
    assert_eq!(distributed_served, 0);
    assert_eq!(metrics.distributed.runs, 0);
}
