//! Property tests for the zero-allocation limb kernels: every `_into` /
//! `_assign` kernel must match its allocating reference on arbitrary,
//! empty, single-limb, and maximally-carrying operands — plus workspace
//! checkpoint discipline (the recursion never leaks arena space and the
//! pools stabilize across repeated multiplies).

use ft_bigint::workspace::Workspace;
use ft_bigint::{ntt, ops, BigInt, Limb};
use proptest::prelude::*;

/// Normalized limb magnitudes biased toward the edge cases that break
/// carry chains: empty, single limb, all-`MAX` runs, and `2^(64·(n−1))`.
fn mag() -> impl Strategy<Value = Vec<Limb>> {
    (
        any::<u8>(),
        proptest::collection::vec(any::<u64>(), 0..10),
        1usize..9,
    )
        .prop_map(|(mode, plain, n)| {
            let raw = match mode % 5 {
                0 => Vec::new(),
                1 => vec![u64::MAX; n],
                2 => plain.into_iter().take(1).collect(),
                3 => {
                    let mut v = vec![0 as Limb; n];
                    v[n - 1] = 1;
                    v
                }
                _ => plain,
            };
            BigInt::from_limbs(raw).into_limbs()
        })
}

/// Wide magnitudes (past the Karatsuba crossover) for the recursive paths.
fn mag_wide() -> impl Strategy<Value = Vec<Limb>> {
    (any::<u8>(), proptest::collection::vec(any::<u64>(), 0..70)).prop_map(|(mode, plain)| {
        let raw = if mode % 4 == 0 {
            vec![u64::MAX; plain.len()]
        } else {
            plain
        };
        BigInt::from_limbs(raw).into_limbs()
    })
}

/// Arbitrary signed integer built from [`mag`].
fn signed() -> impl Strategy<Value = BigInt> {
    (mag(), any::<bool>()).prop_map(|(m, neg)| {
        let v = BigInt::from_limbs(m);
        if neg {
            -v
        } else {
            v
        }
    })
}

fn from_mag(m: &[Limb]) -> BigInt {
    BigInt::from_limbs(m.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_assign_slices_matches_add_slices(a in mag(), b in mag()) {
        let mut acc = a.clone();
        ops::add_assign_slices(&mut acc, &b);
        prop_assert_eq!(acc, ops::add_slices(&a, &b));
    }

    #[test]
    fn sub_assign_slices_matches_signed_subtraction(a in mag(), b in mag()) {
        let mut acc = a.clone();
        let flipped = ops::sub_assign_slices(&mut acc, &b);
        let want = &from_mag(&a) - &from_mag(&b);
        prop_assert_eq!(&acc, &want.abs().into_limbs());
        // The flip report matters only when the difference is non-zero.
        if !want.is_zero() {
            prop_assert_eq!(flipped, want.is_negative());
        }
    }

    #[test]
    fn mul_into_matches_schoolbook_and_reuses_dirty_buffers(a in mag(), b in mag(), junk in mag()) {
        let mut out = junk; // arbitrary leftover contents and capacity
        ops::mul_into(&a, &b, &mut out);
        prop_assert_eq!(out, ops::mul_schoolbook(&a, &b));
    }

    #[test]
    fn mul_limb_kernels_match_mul_limb(a in mag(), m in any::<u64>()) {
        let mut out = Vec::new();
        ops::mul_limb_into(&a, m, &mut out);
        prop_assert_eq!(&out, &ops::mul_limb(&a, m));
        let mut assign = a.clone();
        ops::mul_limb_assign(&mut assign, m);
        prop_assert_eq!(assign, out);
    }

    #[test]
    fn div_rem_limb_assign_matches_div_rem_limb(
        a in mag(),
        d in any::<u64>().prop_filter("nonzero", |v| *v != 0),
    ) {
        let (want_q, want_r) = ops::div_rem_limb(&a, d);
        let mut q = a.clone();
        let r = ops::div_rem_limb_assign(&mut q, d);
        ops::normalize(&mut q);
        prop_assert_eq!(q, want_q);
        prop_assert_eq!(r, want_r);
    }

    #[test]
    fn add_shifted_matches_shl_then_add(acc in mag(), a in mag(), shift in 0u64..200) {
        let mut got = acc.clone();
        ops::add_shifted_assign_slices(&mut got, &a, shift);
        let want = ops::add_slices(&acc, &ops::shl_bits(&a, shift));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bits_range_into_matches_bits_range(a in mag(), lo in 0u64..300, width in 0u64..200) {
        let mut out = Vec::new();
        ops::bits_range_into(&a, lo, lo + width, &mut out);
        prop_assert_eq!(out, ops::bits_range(&a, lo, lo + width));
    }

    #[test]
    fn workspace_multiply_matches_schoolbook(a in mag_wide(), b in mag_wide()) {
        let mut ws = Workspace::new();
        let (x, y) = (from_mag(&a), from_mag(&b));
        prop_assert_eq!(x.mul_with_ws(&y, &mut ws), x.mul_schoolbook(&y));
        prop_assert_eq!(ws.in_use(), 0, "multiply must release all arena scratch");
    }

    #[test]
    fn workspace_square_matches_schoolbook(a in mag_wide()) {
        let mut ws = Workspace::new();
        let x = from_mag(&a);
        prop_assert_eq!(x.square_with_ws(&mut ws), x.mul_schoolbook(&x));
        prop_assert_eq!(ws.in_use(), 0, "squaring must release all arena scratch");
    }

    #[test]
    fn add_mul_small_assign_matches_composed(acc in signed(), x in signed(), c in any::<i64>()) {
        let mut got = acc.clone();
        let mut tmp = Vec::new();
        got.add_mul_small_assign(&x, c, &mut tmp);
        prop_assert_eq!(got, &acc + &x.mul_small(c));
    }

    #[test]
    fn small_assign_kernels_match_and_roundtrip(
        x in signed(),
        c in any::<i64>().prop_filter("nonzero", |v| *v != 0),
    ) {
        let mut got = x.clone();
        got.mul_small_assign(c);
        prop_assert_eq!(&got, &x.mul_small(c));
        got.div_exact_small_assign(c);
        prop_assert_eq!(got, x);
    }

    #[test]
    fn assign_operators_match_operator_forms(a in signed(), b in signed()) {
        let (mut add, mut sub, mut mul) = (a.clone(), a.clone(), a.clone());
        add += &b;
        sub -= &b;
        mul *= &b;
        prop_assert_eq!(add, &a + &b);
        prop_assert_eq!(sub, &a - &b);
        prop_assert_eq!(mul, &a * &b);
    }

    #[test]
    fn ntt_multiply_matches_schoolbook(a in mag_wide(), b in mag_wide()) {
        let mut ws = Workspace::new();
        let (x, y) = (from_mag(&a), from_mag(&b));
        prop_assert_eq!(x.mul_ntt_with_ws(&y, &mut ws), x.mul_schoolbook(&y));
        prop_assert_eq!(ws.in_use(), 0, "NTT multiply must release all arena scratch");
    }

    /// CRT edge cases: operands that are multiples of one (or both) NTT
    /// primes make entire residue vectors vanish mod that prime, so the
    /// reconstruction leans fully on the CRT lift — any sign error in the
    /// division-free combine shows up here first.
    #[test]
    fn ntt_handles_operands_divisible_by_a_crt_prime(
        r in mag(),
        s in mag(),
        k in 1u32..3,
    ) {
        let p0 = BigInt::from(ntt::PRIMES[0]);
        let p1 = BigInt::from(ntt::PRIMES[1]);
        let x = &from_mag(&r) * &p0.pow(k);
        let y = &from_mag(&s) * &p1.pow(k);
        prop_assert_eq!(x.mul_ntt(&y), x.mul_schoolbook(&y));
        // Both operands ≡ 0 mod the same prime.
        prop_assert_eq!(x.mul_ntt(&x), x.mul_schoolbook(&x));
        prop_assert_eq!(y.mul_ntt(&y), y.mul_schoolbook(&y));
    }

    /// The auto dispatcher straddling its crossovers: products must be
    /// identical no matter which kernel the size bands pick.
    #[test]
    fn auto_multiply_is_kernel_independent(a in mag_wide(), b in mag_wide(), neg in any::<bool>()) {
        let x = from_mag(&a);
        let y = if neg { -from_mag(&b) } else { from_mag(&b) };
        let want = x.mul_schoolbook(&y);
        prop_assert_eq!(x.mul_auto(&y), want.clone());
        prop_assert_eq!(x.mul_ntt(&y), want);
    }

    #[test]
    fn pow_matches_repeated_multiplication(x in signed(), e in 0u32..8) {
        let mut want = BigInt::one();
        for _ in 0..e {
            want = &want * &x;
        }
        prop_assert_eq!(x.pow(e), want);
    }
}

/// The arena obeys stack discipline across nested checkpoints, and a
/// release returns `in_use` exactly to the checkpoint's level.
#[test]
fn workspace_checkpoint_discipline() {
    let mut ws = Workspace::new();
    let outer = ws.mark();
    ws.alloc(17);
    assert_eq!(ws.in_use(), 17);
    let inner = ws.mark();
    ws.alloc(40);
    ws.alloc(3);
    assert_eq!(ws.in_use(), 60);
    ws.release(inner);
    assert_eq!(ws.in_use(), 17);
    ws.release(outer);
    assert_eq!(ws.in_use(), 0);
    assert!(ws.high_water() >= 60);
}

/// Repeated same-shape multiplies through one workspace stop growing it:
/// the second multiply must not raise the high-water mark, and every
/// multiply must fully release its scratch.
#[test]
fn workspace_stabilizes_across_repeated_multiplies() {
    let mut rng_a = BigInt::from(3u64);
    let mut rng_b = BigInt::from(7u64);
    // Deterministic ~4000-bit operands without pulling in a rand dep.
    for _ in 0..10 {
        rng_a = rng_a.square();
        rng_b = rng_b.square();
    }
    let mut ws = Workspace::new();
    let first = rng_a.mul_with_ws(&rng_b, &mut ws);
    let settled = ws.high_water();
    for _ in 0..5 {
        let again = rng_a.mul_with_ws(&rng_b, &mut ws);
        assert_eq!(again, first);
        assert_eq!(ws.in_use(), 0);
        assert_eq!(
            ws.high_water(),
            settled,
            "same-shape multiplies must not grow the arena"
        );
    }
}
