//! Property-based tests: ring axioms, division invariants, radix and digit
//! round-trips — checked against both `i128` reference semantics and
//! self-consistency on arbitrarily large values.

use ft_bigint::{BigInt, Sign};
use proptest::prelude::*;

/// Arbitrary signed big integer up to ~4 limbs.
fn bigint() -> impl Strategy<Value = BigInt> {
    (any::<Vec<u64>>(), any::<bool>()).prop_map(|(mut limbs, neg)| {
        limbs.truncate(4);
        let v = BigInt::from_limbs(limbs);
        if neg {
            -v
        } else {
            v
        }
    })
}

/// Larger integers (up to ~16 limbs) for stress paths.
fn bigint_wide() -> impl Strategy<Value = BigInt> {
    (
        proptest::collection::vec(any::<u64>(), 0..16),
        any::<bool>(),
    )
        .prop_map(|(limbs, neg)| {
            let v = BigInt::from_limbs(limbs);
            if neg {
                -v
            } else {
                v
            }
        })
}

proptest! {
    #[test]
    fn i128_addition_model(a in any::<i64>(), b in any::<i64>()) {
        let (x, y) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!(&x + &y, BigInt::from(a as i128 + b as i128));
        prop_assert_eq!(&x - &y, BigInt::from(a as i128 - b as i128));
        prop_assert_eq!(&x * &y, BigInt::from(a as i128 * b as i128));
    }

    #[test]
    fn i128_division_model(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = BigInt::from(a).div_rem(&BigInt::from(b));
        prop_assert_eq!(q, BigInt::from(a as i128 / b as i128));
        prop_assert_eq!(r, BigInt::from(a as i128 % b as i128));
    }

    #[test]
    fn add_commutes(a in bigint(), b in bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in bigint(), b in bigint(), c in bigint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in bigint(), b in bigint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associates(a in bigint(), b in bigint(), c in bigint()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes(a in bigint(), b in bigint(), c in bigint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_is_add_neg(a in bigint(), b in bigint()) {
        prop_assert_eq!(&a - &b, &a + &(-&b));
        prop_assert!((&a - &a).is_zero());
    }

    #[test]
    fn division_invariant(a in bigint_wide(), b in bigint().prop_filter("nonzero", |v| !v.is_zero())) {
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.cmp_abs(&b) == std::cmp::Ordering::Less);
        // sign(r) == sign(a) or r == 0 (truncated division)
        prop_assert!(r.is_zero() || r.signum() == a.signum());
    }

    #[test]
    fn exact_division_of_products(a in bigint_wide(), b in bigint().prop_filter("nonzero", |v| !v.is_zero())) {
        let p = &a * &b;
        prop_assert_eq!(p.div_exact(&b), a);
    }

    #[test]
    fn decimal_roundtrip(a in bigint_wide()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in bigint_wide()) {
        let s = a.to_hex();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), a);
    }

    #[test]
    fn shift_is_pow2_mul(a in bigint(), bits in 0u64..200) {
        let shifted = a.shl_bits(bits);
        let pow = BigInt::from(1u64).shl_bits(bits);
        prop_assert_eq!(shifted.clone(), &a * &pow);
        prop_assert_eq!(shifted.shr_bits(bits), a);
    }

    #[test]
    fn gcd_divides_both(a in bigint(), b in bigint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
            prop_assert!(g.signum() > 0);
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn extended_gcd_bezout(a in bigint(), b in bigint()) {
        let (g, x, y) = a.extended_gcd(&b);
        prop_assert_eq!(&(&a * &x) + &(&b * &y), g.clone());
        prop_assert_eq!(g, a.gcd(&b));
    }

    #[test]
    fn digit_split_roundtrip(a in bigint_wide().prop_map(|v| v.abs()), k in 2usize..8) {
        let width = BigInt::shared_digit_width(&a, &a, k);
        let digits = a.split_base_pow2(width, k);
        prop_assert_eq!(digits.len(), k);
        prop_assert_eq!(BigInt::join_base_pow2(&digits, width), a);
    }

    #[test]
    fn mod_floor_in_range(a in bigint(), m in bigint().prop_filter("nonzero", |v| !v.is_zero())) {
        let r = a.mod_floor(&m);
        prop_assert!(!r.is_negative());
        prop_assert!(r.cmp_abs(&m) == std::cmp::Ordering::Less);
        // a ≡ r (mod m)
        prop_assert!((&a - &r).div_rem(&m).1.is_zero());
    }

    #[test]
    fn mod_pow_matches_naive(base in any::<i32>(), e in 0u32..24, m in 2u64..10_000) {
        let m_big = BigInt::from(m);
        let expected = {
            let mut acc = BigInt::one();
            for _ in 0..e {
                acc = (&acc * &BigInt::from(base)).mod_floor(&m_big);
            }
            acc
        };
        let got = BigInt::from(base).mod_pow(&BigInt::from(e), &m_big);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn normalization_invariants(a in bigint_wide()) {
        // No trailing zero limbs; sign Zero iff empty magnitude.
        prop_assert!(a.limbs().last() != Some(&0));
        prop_assert_eq!(a.sign() == Sign::Zero, a.limbs().is_empty());
    }

    #[test]
    fn mul_schoolbook_cost_is_quadratic_bounded(a in bigint_wide(), b in bigint_wide()) {
        let (_, ops) = ft_bigint::metrics::measure(|| a.mul_schoolbook(&b));
        let (la, lb) = (a.word_len() as u64, b.word_len() as u64);
        // One tally of |b| per non-zero limb of a (plus normalize slack).
        prop_assert!(ops <= (la + 1) * (lb + 1) + la + lb + 2,
            "ops={} la={} lb={}", ops, la, lb);
    }
}
