//! Random integer generation for workloads and property tests.

use crate::bigint::{BigInt, Sign};
use crate::Limb;
use rand::{Rng, RngExt};

impl BigInt {
    /// Uniformly random non-negative integer with exactly `bits` significant
    /// bits (top bit set), or zero when `bits == 0`.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> BigInt {
        if bits == 0 {
            return BigInt::zero();
        }
        let limbs = bits.div_ceil(64) as usize;
        let mut mag: Vec<Limb> = (0..limbs).map(|_| rng.random()).collect();
        let top_bits = ((bits - 1) % 64) as u32; // index of the forced top bit
        let last = mag.last_mut().unwrap();
        if top_bits == 63 {
            *last |= 1 << 63;
        } else {
            *last &= (1u64 << (top_bits + 1)) - 1;
            *last |= 1 << top_bits;
        }
        BigInt::from_limbs(mag)
    }

    /// Uniformly random integer in `[0, bound)`. `bound` must be positive.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigInt) -> BigInt {
        assert!(bound.signum() > 0, "bound must be positive");
        let bits = bound.bit_length();
        // Rejection sampling: expected < 2 draws.
        loop {
            let limbs = bits.div_ceil(64) as usize;
            let mut mag: Vec<Limb> = (0..limbs).map(|_| rng.random()).collect();
            let extra = (limbs as u64) * 64 - bits;
            if extra > 0 {
                let last = mag.last_mut().unwrap();
                *last >>= extra;
            }
            let candidate = BigInt::from_limbs(mag);
            if candidate.cmp_abs(bound) == std::cmp::Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random signed integer: magnitude of exactly `bits` bits with a random
    /// sign (zero when `bits == 0`).
    pub fn random_signed_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> BigInt {
        let mut v = BigInt::random_bits(rng, bits);
        if !v.is_zero() && rng.random::<bool>() {
            v.sign = Sign::Negative;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(0xfeed_beef)
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [1u64, 2, 63, 64, 65, 100, 1000] {
            let v = BigInt::random_bits(&mut r, bits);
            assert_eq!(v.bit_length(), bits, "bits={bits}");
        }
        assert!(BigInt::random_bits(&mut r, 0).is_zero());
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound: BigInt = "123456789123456789123456789".parse().unwrap();
        for _ in 0..50 {
            let v = BigInt::random_below(&mut r, &bound);
            assert!(v < bound);
            assert!(!v.is_negative());
        }
    }

    #[test]
    fn random_below_small_bound_hits_all() {
        let mut r = rng();
        let bound = BigInt::from(3u64);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = BigInt::random_below(&mut r, &bound);
            seen[u64::try_from(&v).unwrap() as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn random_signed_produces_both_signs() {
        let mut r = rng();
        let mut pos = false;
        let mut neg = false;
        for _ in 0..100 {
            match BigInt::random_signed_bits(&mut r, 32).signum() {
                1 => pos = true,
                -1 => neg = true,
                _ => {}
            }
        }
        assert!(pos && neg);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = BigInt::random_bits(&mut rng(), 256);
        let b = BigInt::random_bits(&mut rng(), 256);
        assert_eq!(a, b);
    }
}
