//! Number-theoretic-transform multiplication for the big-operand regime.
//!
//! Operands are split into base-`2^32` digits, multiplied as polynomials
//! via two independent word-sized prime NTTs, and recombined with the CRT:
//! each product coefficient is bounded by `n·(2^32−1)² < 2^84·n`, far under
//! the 122-bit product of the two primes for every transform size this
//! crate can reach, so two primes always suffice. This is the top rung of
//! the sequential kernel ladder (schoolbook → Karatsuba → Toom → NTT): the
//! `Θ(n log n)` regime the Toom papers point at once `k`-way splitting
//! stops paying (Kronenburg, PAPERS.md).
//!
//! Both primes have high 2-adicity so one primitive root covers every
//! power-of-two transform size:
//!
//! * `P0 = 57·2^55 + 1`, generator 7
//! * `P1 = 27·2^56 + 1`, generator 5
//!
//! The butterflies use Shoup multiplication: each twiddle `w` is cached
//! with its companion `⌊w·2^64/p⌋`, so the inner loop is two widening
//! multiplies and one conditional subtraction — no division, valid because
//! both primes are below `2^63`. Twiddle tables are flat and *prefix
//! closed* (`tw[k+j] = w_{2k}^j`), so one grow-only per-thread cache
//! serves every transform size up to the largest seen.
//!
//! The warm path is allocation-free: all five `N`-limb scratch buffers
//! come from one [`Workspace::alloc`] split, and the twiddle cache only
//! grows when a new maximum size appears. The transform primitives are
//! `pub` so the coded-NTT machine protocol (`ft-toom-core::ft::ntt`) can
//! run column transforms under the same arithmetic.

use crate::metrics;
use crate::workspace::{self, Workspace};
use crate::{BigInt, Limb, Sign};
use std::cell::RefCell;

/// The two CRT primes, most-significant first: `p0 = 57·2^55 + 1` and
/// `p1 = 27·2^56 + 1`. Both `< 2^63` (Shoup-safe), both `≡ 1 mod 2^55`.
pub const PRIMES: [u64; 2] = [P0, P1];

const P0: u64 = 2_053_641_430_080_946_177; // 57 * 2^55 + 1
const P1: u64 = 1_945_555_039_024_054_273; // 27 * 2^56 + 1

/// `ROOTS[i]` generates the full power-of-two subgroup of `Z_{p_i}^*`:
/// a primitive `2^ADICITY[i]`-th root of unity.
const ROOTS: [u64; 2] = [640_559_856_471_874_596, 1_613_915_479_851_665_306];
const ADICITY: [u32; 2] = [55, 56];

/// `p0^{-1} mod p1`, the CRT lift constant.
const P0_INV_MOD_P1: u64 = 1_945_555_039_024_054_255;

/// `−p^{-1} mod 2^64` per prime (Montgomery companion), by Newton
/// iteration — 6 doublings take the seed `1` (exact mod 2) to 64 bits.
const fn neg_inv_2_64(p: u64) -> u64 {
    let mut x: u64 = 1;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(x)));
        i += 1;
    }
    x.wrapping_neg()
}
const NEG_INV: [u64; 2] = [neg_inv_2_64(P0), neg_inv_2_64(P1)];

/// Digits per coefficient: operands are split into base-`2^32` digits so
/// every digit is already reduced modulo both primes.
pub const DIGIT_BITS: u32 = 32;
const DIGIT_MASK: u64 = (1 << DIGIT_BITS) - 1;

/// Below this many limbs in the *shorter* operand, [`mul_ntt_into`] is not
/// selected by the auto dispatch: 131 072 limbs = 8 Mbit, where the NTT
/// beats Toom-3 by ≥1.5× and Karatsuba by ≥2× on the CI container in
/// repeated `tune_thresholds` sweeps (the win is real from ~3 Mbit, but
/// run-to-run noise there is larger than the margin; see
/// BENCH_kernels.json / EXPERIMENTS.md §S9).
pub const NTT_THRESHOLD_LIMBS: usize = 131_072;

// ---------------------------------------------------------------------------
// Modular arithmetic helpers (pub for the coded-NTT machine protocol).
// ---------------------------------------------------------------------------

/// `(a + b) mod p`, requiring `a, b < p < 2^63`.
#[inline(always)]
#[must_use]
pub fn add_mod(a: u64, b: u64, p: u64) -> u64 {
    let s = a + b;
    if s >= p {
        s - p
    } else {
        s
    }
}

/// `(a − b) mod p`, requiring `a, b < p`.
#[inline(always)]
#[must_use]
pub fn sub_mod(a: u64, b: u64, p: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + p - b
    }
}

/// `(a · b) mod p` through a 128-bit product. Fine off the hot path; the
/// butterflies use [`shoup_mul`] instead.
#[inline]
#[must_use]
pub fn mul_mod(a: u64, b: u64, p: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(p)) as u64
}

/// `b^e mod p` by square-and-multiply.
#[must_use]
pub fn pow_mod(mut b: u64, mut e: u64, p: u64) -> u64 {
    let mut acc = 1u64;
    b %= p;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, b, p);
        }
        b = mul_mod(b, b, p);
        e >>= 1;
    }
    acc
}

/// `a^{-1} mod p` for prime `p` (Fermat).
#[must_use]
pub fn inv_mod(a: u64, p: u64) -> u64 {
    pow_mod(a, p - 2, p)
}

/// Shoup companion of a fixed multiplicand `w`: `⌊w·2^64/p⌋`.
#[inline]
#[must_use]
pub fn shoup_precompute(w: u64, p: u64) -> u64 {
    ((u128::from(w) << 64) / u128::from(p)) as u64
}

/// `(x · w) mod p` with `w`'s precomputed companion `w_shoup`; requires
/// `p < 2^63` and `x, w < p`. Two widening multiplies, one correction.
#[inline(always)]
#[must_use]
pub fn shoup_mul(x: u64, w: u64, w_shoup: u64, p: u64) -> u64 {
    let q = ((u128::from(x) * u128::from(w_shoup)) >> 64) as u64;
    let r = x.wrapping_mul(w).wrapping_sub(q.wrapping_mul(p));
    if r >= p {
        r - p
    } else {
        r
    }
}

/// A primitive root of unity of the given power-of-two `order` modulo
/// `PRIMES[prime]`.
///
/// # Panics
/// If `order` is not a power of two or exceeds the prime's 2-adicity.
#[must_use]
pub fn root_of_order(prime: usize, order: usize) -> u64 {
    assert!(order.is_power_of_two(), "order must be a power of two");
    let e = order.trailing_zeros();
    assert!(
        e <= ADICITY[prime],
        "order 2^{e} exceeds the 2-adicity of prime {prime}"
    );
    pow_mod(ROOTS[prime], 1u64 << (ADICITY[prime] - e), PRIMES[prime])
}

/// `(a · b) mod p` in Montgomery form: returns `a·b·2^{-64} mod p`. The
/// pointwise stage uses this and folds the stray `2^{-64}` into the final
/// `n^{-1}` scaling — no division anywhere on the hot path.
#[inline(always)]
fn mont_mul(a: u64, b: u64, p: u64, ninv: u64) -> u64 {
    let t = u128::from(a) * u128::from(b);
    let m = (t as u64).wrapping_mul(ninv);
    let u = ((t + u128::from(m) * u128::from(p)) >> 64) as u64;
    if u >= p {
        u - p
    } else {
        u
    }
}

/// CRT-combine residues of the same coefficient modulo `P0` and `P1` into
/// the unique value below `P0·P1` (fits in 122 bits). Division-free:
/// `P0 < 2·P1` makes the reduction a conditional subtract, and the fixed
/// lift constant carries a Shoup companion.
#[inline]
#[must_use]
pub fn crt_combine(r0: u64, r1: u64) -> u128 {
    // c = r0 + p0 · ((r1 − r0) · p0^{-1} mod p1)
    let r0_mod_p1 = if r0 >= P1 { r0 - P1 } else { r0 };
    let diff = sub_mod(r1, r0_mod_p1, P1);
    const LIFT_SHOUP: u64 = ((P0_INV_MOD_P1 as u128) << 64).wrapping_div(P1 as u128) as u64;
    let t = shoup_mul(diff, P0_INV_MOD_P1, LIFT_SHOUP, P1);
    u128::from(r0) + u128::from(P0) * u128::from(t)
}

// ---------------------------------------------------------------------------
// Transforms.
// ---------------------------------------------------------------------------

/// Grow-only flat twiddle tables for one prime. `tw[k + j] = w_{2k}^j`
/// (forward) and `itw[k + j] = w_{2k}^{-j}` (inverse) for every power of
/// two `k < built`, with Shoup companions alongside — the prefix for a
/// smaller transform is exactly the smaller transform's table.
struct PrimeTables {
    tw: Vec<u64>,
    tws: Vec<u64>,
    itw: Vec<u64>,
    itws: Vec<u64>,
    built: usize,
}

impl PrimeTables {
    const fn new() -> PrimeTables {
        PrimeTables {
            tw: Vec::new(),
            tws: Vec::new(),
            itw: Vec::new(),
            itws: Vec::new(),
            built: 0,
        }
    }

    /// Extend the tables to cover transforms of size `n` (a power of two).
    fn ensure(&mut self, prime: usize, n: usize) {
        if self.built >= n {
            return;
        }
        let p = PRIMES[prime];
        self.tw.resize(n, 0);
        self.tws.resize(n, 0);
        self.itw.resize(n, 0);
        self.itws.resize(n, 0);
        let mut k = self.built.max(1);
        while k < n {
            // Segment [k, 2k): powers of the primitive 2k-th root.
            let w = root_of_order(prime, 2 * k);
            let winv = inv_mod(w, p);
            let (mut f, mut r) = (1u64, 1u64);
            for j in 0..k {
                self.tw[k + j] = f;
                self.tws[k + j] = shoup_precompute(f, p);
                self.itw[k + j] = r;
                self.itws[k + j] = shoup_precompute(r, p);
                f = mul_mod(f, w, p);
                r = mul_mod(r, winv, p);
            }
            k *= 2;
        }
        self.built = n;
    }
}

thread_local! {
    static TABLES: RefCell<[PrimeTables; 2]> =
        const { RefCell::new([PrimeTables::new(), PrimeTables::new()]) };
}

/// In-place bit-reversal permutation of a power-of-two-length slice.
fn bit_reverse(data: &mut [u64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Cooley–Tukey decimation-in-time stages: **bit-reversed** input,
/// natural-order output, no scaling. `tw[k + j] = w_{2k}^j`.
fn dit_stages(data: &mut [u64], p: u64, tw: &[u64], tws: &[u64]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let mut k = 1;
    while k < n {
        let (wk, wsk) = (&tw[k..2 * k], &tws[k..2 * k]);
        for block in data.chunks_exact_mut(2 * k) {
            let (lo, hi) = block.split_at_mut(k);
            for j in 0..k {
                let t = shoup_mul(hi[j], wk[j], wsk[j], p);
                let u = lo[j];
                lo[j] = add_mod(u, t, p);
                hi[j] = sub_mod(u, t, p);
            }
        }
        k *= 2;
    }
    // One tallied word-op per butterfly per stage: N/2 · log2 N in total
    // (§2.1 cost model — the machine simulator folds this into F).
    metrics::tally(((n / 2) * n.trailing_zeros() as usize) as u64);
}

/// Gentleman–Sande decimation-in-frequency stages: natural-order input,
/// **bit-reversed** output, no scaling. Paired with [`dit_stages`] on the
/// inverse tables this multiplies polynomials without any bit-reversal
/// pass — the pointwise product is taken in bit-reversed order, where
/// elementwise position is all that matters.
fn dif_stages(data: &mut [u64], p: u64, tw: &[u64], tws: &[u64]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    let mut k = n / 2;
    while k >= 1 {
        let (wk, wsk) = (&tw[k..2 * k], &tws[k..2 * k]);
        for block in data.chunks_exact_mut(2 * k) {
            let (lo, hi) = block.split_at_mut(k);
            for j in 0..k {
                let u = lo[j];
                let v = hi[j];
                lo[j] = add_mod(u, v, p);
                hi[j] = shoup_mul(sub_mod(u, v, p), wk[j], wsk[j], p);
            }
        }
        k /= 2;
    }
    metrics::tally(((n / 2) * n.trailing_zeros() as usize) as u64);
}

/// Natural-order-to-natural-order transform (bit-reverse, then DIT).
fn transform(data: &mut [u64], p: u64, tw: &[u64], tws: &[u64]) {
    bit_reverse(data);
    dit_stages(data, p, tw, tws);
}

/// Forward NTT of `data` (length a power of two, entries `< PRIMES[prime]`)
/// using this thread's twiddle cache. Natural order in and out.
///
/// # Panics
/// If the length is not a power of two within the prime's 2-adicity.
pub fn forward(prime: usize, data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "NTT length must be a power of two");
    TABLES.with(|cell| {
        let tables = &mut cell.borrow_mut()[prime];
        tables.ensure(prime, n);
        transform(data, PRIMES[prime], &tables.tw, &tables.tws);
    });
}

/// Inverse NTT of `data`, including the final `n^{-1}` scaling.
pub fn inverse(prime: usize, data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "NTT length must be a power of two");
    let p = PRIMES[prime];
    TABLES.with(|cell| {
        let tables = &mut cell.borrow_mut()[prime];
        tables.ensure(prime, n);
        transform(data, p, &tables.itw, &tables.itws);
    });
    scale_by_inv_len(prime, data);
}

/// Multiply every entry by `len^{-1} mod p` — the normalization a raw
/// inverse [`transform`] leaves out (exposed for protocols that fold the
/// scaling into a later stage).
pub fn scale_by_inv_len(prime: usize, data: &mut [u64]) {
    let p = PRIMES[prime];
    let ninv = inv_mod(data.len() as u64 % p, p);
    let ninv_shoup = shoup_precompute(ninv, p);
    for x in data.iter_mut() {
        *x = shoup_mul(*x, ninv, ninv_shoup, p);
    }
    metrics::tally(data.len() as u64);
}

// ---------------------------------------------------------------------------
// Digit splitting / recombination.
// ---------------------------------------------------------------------------

/// Number of base-`2^32` digits carried by `limbs`.
#[must_use]
pub fn digit_count(limbs: usize) -> usize {
    2 * limbs
}

/// Transform size for a product of `la`-limb and `lb`-limb operands: the
/// smallest power of two holding every product digit.
#[must_use]
pub fn transform_size(la: usize, lb: usize) -> usize {
    (digit_count(la) + digit_count(lb)).next_power_of_two()
}

/// Split limbs into base-`2^32` digits, zero-padding `out` past the end.
/// Every digit is `< 2^32`, hence already reduced modulo both primes.
pub fn split_digits(limbs: &[Limb], out: &mut [u64]) {
    debug_assert!(out.len() >= digit_count(limbs.len()));
    for (i, &limb) in limbs.iter().enumerate() {
        out[2 * i] = limb & DIGIT_MASK;
        out[2 * i + 1] = limb >> DIGIT_BITS;
    }
    out[digit_count(limbs.len())..].fill(0);
    metrics::tally(limbs.len() as u64);
}

/// Scratch requirement (in limbs) of [`mul_ntt_into`]: five transform-sized
/// buffers from one arena allocation.
#[must_use]
pub fn ntt_scratch_limbs(la: usize, lb: usize) -> usize {
    5 * transform_size(la, lb)
}

/// `out = a · b` via the two-prime CRT NTT; `out` is fully overwritten
/// with the normalized `la + lb`-limb product. All scratch comes from
/// `ws`; the warm path performs no heap allocation.
pub fn mul_ntt_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>, ws: &mut Workspace) {
    let (la, lb) = (a.len(), b.len());
    out.clear();
    if la == 0 || lb == 0 {
        return;
    }
    let n = transform_size(la, lb);
    let out_limbs = la + lb;
    out.reserve(out_limbs);
    let mark = ws.mark();
    {
        let buf = ws.alloc(5 * n);
        let (da, rest) = buf.split_at_mut(n);
        let (db, rest) = rest.split_at_mut(n);
        let (r0, rest) = rest.split_at_mut(n);
        let (r1, tmp) = rest.split_at_mut(n);
        split_digits(a, da);
        split_digits(b, db);
        TABLES.with(|cell| {
            let mut tables = cell.borrow_mut();
            for (prime, res) in [&mut *r0, &mut *r1].into_iter().enumerate() {
                let p = PRIMES[prime];
                let t = &mut tables[prime];
                t.ensure(prime, n);
                res.copy_from_slice(da);
                tmp.copy_from_slice(db);
                // DIF forward → pointwise in bit-reversed order → raw DIT
                // inverse: no bit-reversal pass anywhere. The Montgomery
                // pointwise product carries a stray 2^{-64}, folded into
                // the final scaling constant `n^{-1}·2^64 mod p`.
                dif_stages(res, p, &t.tw, &t.tws);
                dif_stages(tmp, p, &t.tw, &t.tws);
                let ninv = NEG_INV[prime];
                for (x, &y) in res.iter_mut().zip(tmp.iter()) {
                    *x = mont_mul(*x, y, p, ninv);
                }
                metrics::tally(n as u64);
                dit_stages(res, p, &t.itw, &t.itws);
                let r_mod_p = ((1u128 << 64) % u128::from(p)) as u64;
                let scale = mul_mod(inv_mod(n as u64 % p, p), r_mod_p, p);
                let scale_shoup = shoup_precompute(scale, p);
                for x in res.iter_mut() {
                    *x = shoup_mul(*x, scale, scale_shoup, p);
                }
                metrics::tally(n as u64);
            }
        });
        // CRT lift + base-2^32 carry propagation, packed back to limbs.
        // `n ≥ 2·out_limbs`, and the product fits `out_limbs` limbs, so the
        // final carry provably dies in-window.
        let mut carry: u128 = 0;
        let mut lo32: u64 = 0;
        for i in 0..digit_count(out_limbs) {
            let cur = crt_combine(r0[i], r1[i]) + carry;
            let digit = (cur as u64) & DIGIT_MASK;
            carry = cur >> DIGIT_BITS;
            if i % 2 == 0 {
                lo32 = digit;
            } else {
                out.push(lo32 | (digit << DIGIT_BITS));
            }
        }
        debug_assert_eq!(carry, 0, "NTT product carry escaped the window");
        metrics::tally(digit_count(out_limbs) as u64);
    }
    ws.release(mark);
    while out.last() == Some(&0) {
        out.pop();
    }
}

impl BigInt {
    /// Signed product via the two-prime CRT NTT kernel. `mul_auto` reaches
    /// this automatically above [`NTT_THRESHOLD_LIMBS`]; this entry point
    /// forces it at any size (tests, explicit kernel selection).
    #[must_use]
    pub fn mul_ntt(&self, other: &BigInt) -> BigInt {
        workspace::with_thread_local(|ws| self.mul_ntt_with_ws(other, ws))
    }

    /// [`BigInt::mul_ntt`] against a caller-held workspace.
    #[must_use]
    pub fn mul_ntt_with_ws(&self, other: &BigInt, ws: &mut Workspace) -> BigInt {
        let sign = self.sign.mul(other.sign);
        if sign == Sign::Zero {
            return BigInt::zero();
        }
        let mut out = ws.take_limbs();
        mul_ntt_into(&self.mag, &other.mag, &mut out, ws);
        BigInt { sign, mag: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_are_prime_and_roots_are_primitive() {
        for (i, &p) in PRIMES.iter().enumerate() {
            assert!(miller_rabin(p), "PRIMES[{i}] failed Miller-Rabin");
            // p − 1 = odd · 2^adicity exactly.
            assert_eq!((p - 1).trailing_zeros(), ADICITY[i]);
            // The stored root has exact order 2^adicity.
            let r = ROOTS[i];
            assert_eq!(pow_mod(r, 1 << ADICITY[i], p), 1);
            assert_ne!(pow_mod(r, 1 << (ADICITY[i] - 1), p), 1);
        }
        // CRT constant.
        assert_eq!(mul_mod(P0 % P1, P0_INV_MOD_P1, P1), 1);
    }

    #[test]
    fn forward_inverse_round_trip() {
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for (prime, &p) in PRIMES.iter().enumerate() {
            for n in [1usize, 2, 4, 64, 1024] {
                let data: Vec<u64> = (0..n).map(|_| next() % p).collect();
                let mut work = data.clone();
                forward(prime, &mut work);
                inverse(prime, &mut work);
                assert_eq!(work, data, "prime {prime} size {n}");
            }
        }
    }

    #[test]
    fn forward_matches_naive_dft() {
        let prime = 0;
        let p = PRIMES[prime];
        let n = 8;
        let w = root_of_order(prime, n);
        let data: Vec<u64> = (0..n as u64).map(|i| i * i + 3).collect();
        let mut fast = data.clone();
        forward(prime, &mut fast);
        for (m, &got) in fast.iter().enumerate() {
            let mut want = 0u64;
            for (i, &x) in data.iter().enumerate() {
                want = add_mod(want, mul_mod(x, pow_mod(w, (i * m) as u64, p), p), p);
            }
            assert_eq!(got, want, "coefficient {m}");
        }
    }

    #[test]
    fn ntt_product_matches_schoolbook() {
        let mut rng = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for limbs in [1usize, 2, 17, 64, 200] {
            let a = BigInt::from_limbs((0..limbs).map(|_| next()).collect());
            let b = BigInt::from_limbs((0..limbs + 3).map(|_| next()).collect());
            assert_eq!(a.mul_ntt(&b), a.mul_schoolbook(&b), "limbs {limbs}");
            assert_eq!(a.mul_ntt(&-&a), -&a.mul_schoolbook(&a));
        }
        // Degenerate shapes.
        let zero = BigInt::zero();
        let one = BigInt::from(1u64);
        let x = BigInt::from_limbs(vec![u64::MAX; 9]);
        assert_eq!(x.mul_ntt(&zero), zero);
        assert_eq!(x.mul_ntt(&one), x);
        assert_eq!(x.mul_ntt(&x), x.mul_schoolbook(&x));
    }

    fn miller_rabin(n: u64) -> bool {
        if n < 2 {
            return false;
        }
        let s = (n - 1).trailing_zeros();
        let d = (n - 1) >> s;
        'witness: for &a in &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            if a % n == 0 {
                continue;
            }
            let mut x = pow_mod(a, d, n);
            if x == 1 || x == n - 1 {
                continue;
            }
            for _ in 1..s {
                x = mul_mod(x, x, n);
                if x == n - 1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}
