//! Parsing and formatting: decimal `Display`/`FromStr`, `LowerHex`, `Debug`.

use crate::bigint::{BigInt, Sign};
use crate::ops;
use crate::Limb;
use std::fmt;
use std::str::FromStr;

/// Largest power of ten below 2^64 and its exponent: format/parse in chunks
/// of 19 decimal digits per limb-division.
const TEN19: Limb = 10_000_000_000_000_000_000;
const TEN19_DIGITS: usize = 19;

/// Error parsing a [`BigInt`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "empty string is not a valid integer"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseBigIntError {}

impl BigInt {
    /// Parse from a string in the given radix (supported: 2, 10, 16), with
    /// optional leading `-`/`+` and `_` separators.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<BigInt, ParseBigIntError> {
        assert!(
            radix == 2 || radix == 10 || radix == 16,
            "supported radixes: 2, 10, 16"
        );
        let s = s.trim();
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() {
            return Err(ParseBigIntError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut mag: Vec<Limb> = Vec::new();
        match radix {
            10 => {
                let mut chunk: Limb = 0;
                let mut chunk_len = 0usize;
                let mut seen = false;
                let flush = |mag: &mut Vec<Limb>, chunk: Limb, chunk_len: usize| {
                    let scale = 10u64.pow(chunk_len as u32);
                    let mut m = ops::mul_limb(mag, scale);
                    m = ops::add_slices(&m, &[chunk]);
                    *mag = m;
                };
                for c in body.chars() {
                    if c == '_' {
                        continue;
                    }
                    let d = c.to_digit(10).ok_or(ParseBigIntError {
                        kind: ParseErrorKind::InvalidDigit(c),
                    })?;
                    seen = true;
                    chunk = chunk * 10 + d as Limb;
                    chunk_len += 1;
                    if chunk_len == TEN19_DIGITS {
                        flush(&mut mag, chunk, chunk_len);
                        chunk = 0;
                        chunk_len = 0;
                    }
                }
                if !seen {
                    return Err(ParseBigIntError {
                        kind: ParseErrorKind::Empty,
                    });
                }
                if chunk_len > 0 {
                    flush(&mut mag, chunk, chunk_len);
                }
            }
            16 | 2 => {
                // Power-of-two digits map straight to bit positions, so the
                // magnitude assembles in one linear pass over the text — no
                // per-digit bignum shift (which would be quadratic and
                // dominates request parsing for megabit operands).
                let bits_per = if radix == 16 { 4u32 } else { 1 };
                let mut digits: Vec<u8> = Vec::with_capacity(body.len());
                for c in body.chars() {
                    if c == '_' {
                        continue;
                    }
                    let d = c.to_digit(radix).ok_or(ParseBigIntError {
                        kind: ParseErrorKind::InvalidDigit(c),
                    })?;
                    digits.push(d as u8);
                }
                if digits.is_empty() {
                    return Err(ParseBigIntError {
                        kind: ParseErrorKind::Empty,
                    });
                }
                // Digits are most-significant-first; `rchunks` walks groups
                // from the low end, yielding little-endian limbs directly.
                let per_limb = (Limb::BITS / bits_per) as usize;
                mag = digits
                    .rchunks(per_limb)
                    .map(|chunk| {
                        chunk
                            .iter()
                            .fold(0 as Limb, |acc, &d| (acc << bits_per) | Limb::from(d))
                    })
                    .collect();
            }
            _ => unreachable!(),
        }
        Ok(BigInt::from_sign_limbs(
            if mag.is_empty() { Sign::Zero } else { sign },
            mag,
        ))
    }

    /// Decimal string (same as `Display`).
    #[must_use]
    pub fn to_decimal(&self) -> String {
        format!("{self}")
    }

    /// Lowercase hexadecimal string with sign and `0x` prefix.
    #[must_use]
    pub fn to_hex(&self) -> String {
        format!("{self:#x}")
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Peel 19 decimal digits at a time.
        let mut chunks: Vec<Limb> = Vec::new();
        let mut cur = self.mag.clone();
        while !cur.is_empty() {
            let (q, r) = ops::div_rem_limb(&cur, TEN19);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::with_capacity(chunks.len() * TEN19_DIGITS);
        s.push_str(&chunks.last().unwrap().to_string());
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        f.pad_integral(self.sign != Sign::Negative, "", &s)
    }
}

impl fmt::LowerHex for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.mag.last().unwrap());
        for l in self.mag.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.pad_integral(self.sign != Sign::Negative, "0x", &s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal for small values, hex limb count summary for huge ones.
        if self.mag.len() <= 4 {
            write!(f, "BigInt({self})")
        } else {
            write!(
                f,
                "BigInt({} limbs, {} bits, top=0x{:x}…)",
                self.mag.len(),
                self.bit_length(),
                self.mag.last().unwrap()
            )
        }
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        if let Some(rest) = s.strip_prefix("0x") {
            BigInt::from_str_radix(rest, 16)
        } else if let Some(rest) = s.strip_prefix("-0x") {
            Ok(-BigInt::from_str_radix(rest, 16)?)
        } else {
            BigInt::from_str_radix(s, 10)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_small() {
        assert_eq!(BigInt::from(0u64).to_string(), "0");
        assert_eq!(BigInt::from(12345u64).to_string(), "12345");
        assert_eq!(BigInt::from(-12345i64).to_string(), "-12345");
    }

    #[test]
    fn display_multi_chunk() {
        // 2^128 = 340282366920938463463374607431768211456 (39 digits, 3 chunks)
        let v = BigInt::from(1u64).shl_bits(128);
        assert_eq!(v.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn parse_roundtrip_decimal() {
        for s in [
            "0",
            "7",
            "-7",
            "18446744073709551616",
            "-340282366920938463463374607431768211455",
            "99999999999999999999999999999999999999999999999999",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_separators_and_plus() {
        let v: BigInt = "+1_000_000".parse().unwrap();
        assert_eq!(v, BigInt::from(1_000_000u64));
    }

    #[test]
    fn parse_hex() {
        let v = BigInt::from_str_radix("ff", 16).unwrap();
        assert_eq!(v, BigInt::from(255u64));
        let v: BigInt = "0xdeadbeefdeadbeefdeadbeef".parse().unwrap();
        assert_eq!(format!("{v:#x}"), "0xdeadbeefdeadbeefdeadbeef");
        assert_eq!(v.to_hex(), "0xdeadbeefdeadbeefdeadbeef");
        let v: BigInt = "-0x10".parse().unwrap();
        assert_eq!(v, BigInt::from(-16i64));
    }

    #[test]
    fn parse_binary() {
        let v = BigInt::from_str_radix("101101", 2).unwrap();
        assert_eq!(v, BigInt::from(45u64));
    }

    #[test]
    fn parse_hex_leading_zeros_and_zero() {
        assert_eq!(BigInt::from_str_radix("000", 16).unwrap(), BigInt::zero());
        assert_eq!(BigInt::from_str_radix("-000", 16).unwrap(), BigInt::zero());
        let v = BigInt::from_str_radix("0000deadbeef", 16).unwrap();
        assert_eq!(v, BigInt::from(0xdead_beefu64));
        // Separators may split a limb boundary.
        let v = BigInt::from_str_radix("a_0000000000000001", 16).unwrap();
        assert_eq!(v, BigInt::from_limbs(vec![0x1, 0xa]));
    }

    #[test]
    fn parse_hex_roundtrip_large() {
        // Exercise the chunked limb-assembly path on a multi-limb value
        // whose digit count is not a multiple of 16.
        let mut s = String::from("1");
        for i in 0..997u32 {
            s.push(char::from_digit(i % 16, 16).unwrap());
        }
        let v = BigInt::from_str_radix(&s, 16).unwrap();
        assert_eq!(format!("{v:x}"), s);
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("_".parse::<BigInt>().is_err());
    }

    #[test]
    fn hex_zero_padding_between_limbs() {
        let v = BigInt::from_limbs(vec![0x1, 0xa]);
        assert_eq!(format!("{v:x}"), "a0000000000000001");
        assert_eq!(format!("{v:#x}"), "0xa0000000000000001");
        assert_eq!(format!("{:#x}", -&v), "-0xa0000000000000001");
    }

    #[test]
    fn debug_forms() {
        assert_eq!(format!("{:?}", BigInt::from(5u64)), "BigInt(5)");
        let huge = BigInt::from(1u64).shl_bits(1000);
        let dbg = format!("{huge:?}");
        assert!(dbg.contains("limbs"), "{dbg}");
    }
}
