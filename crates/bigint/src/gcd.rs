//! Greatest common divisor (binary GCD) and extended Euclid.
//!
//! Needed by `ft-algebra`'s rational normalization (interpolation matrices
//! over ℚ) and by modular inversion in the crypto example.

use crate::bigint::{BigInt, Sign};

impl BigInt {
    /// Greatest common divisor of `|self|` and `|other|` (non-negative;
    /// `gcd(0, x) = |x|`). Binary (Stein) algorithm — shift/subtract only.
    #[must_use]
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = a.shr_bits(az);
        b = b.shr_bits(bz);
        // Invariant: a, b odd.
        loop {
            if a.cmp_abs(&b) == std::cmp::Ordering::Less {
                std::mem::swap(&mut a, &mut b);
            }
            a = &a - &b; // even (odd - odd)
            if a.is_zero() {
                return b.shl_bits(common);
            }
            a = a.shr_bits(a.trailing_zeros());
        }
    }

    /// Number of trailing zero bits of the magnitude (0 for zero).
    #[must_use]
    pub fn trailing_zeros(&self) -> u64 {
        for (i, &l) in self.mag.iter().enumerate() {
            if l != 0 {
                return i as u64 * 64 + l.trailing_zeros() as u64;
            }
        }
        0
    }

    /// Extended GCD: returns `(g, x, y)` with `g = gcd(self, other) >= 0`
    /// and `self*x + other*y = g`.
    #[must_use]
    pub fn extended_gcd(&self, other: &BigInt) -> (BigInt, BigInt, BigInt) {
        // Classic iterative extended Euclid on signed values.
        let (mut old_r, mut r) = (self.clone(), other.clone());
        let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
        let (mut old_t, mut t) = (BigInt::zero(), BigInt::one());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let ns = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, ns);
            let nt = &old_t - &(&q * &t);
            old_t = std::mem::replace(&mut t, nt);
        }
        if old_r.sign() == Sign::Negative {
            (-old_r, -old_s, -old_t)
        } else {
            (old_r, old_s, old_t)
        }
    }

    /// Least common multiple of `|self|` and `|other|` (`lcm(0, x) = 0`).
    #[must_use]
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        self.abs().div_exact(&g).mul_schoolbook(&other.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn gcd_small_table() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(12).gcd(&b(-18)), b(6));
        assert_eq!(b(0).gcd(&b(-5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(0).gcd(&b(0)), b(0));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(1 << 40).gcd(&b(1 << 20)), b(1 << 20));
    }

    #[test]
    fn gcd_big() {
        let a = BigInt::from(u128::MAX).pow(2).mul_small(12);
        let c = BigInt::from(u128::MAX).pow(2).mul_small(18);
        assert_eq!(a.gcd(&c), BigInt::from(u128::MAX).pow(2).mul_small(6));
    }

    #[test]
    fn extended_gcd_bezout() {
        for (x, y) in [
            (240i128, 46),
            (-240, 46),
            (240, -46),
            (0, 7),
            (7, 0),
            (12, 12),
        ] {
            let (g, s, t) = b(x).extended_gcd(&b(y));
            assert_eq!(g, b(x).gcd(&b(y)), "gcd({x},{y})");
            assert_eq!(&(&b(x) * &s) + &(&b(y) * &t), g, "bezout({x},{y})");
        }
    }

    #[test]
    fn lcm_cases() {
        assert_eq!(b(4).lcm(&b(6)), b(12));
        assert_eq!(b(-4).lcm(&b(6)), b(12));
        assert_eq!(b(0).lcm(&b(6)), b(0));
        assert_eq!(b(7).lcm(&b(13)), b(91));
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(b(0).trailing_zeros(), 0);
        assert_eq!(b(1).trailing_zeros(), 0);
        assert_eq!(b(8).trailing_zeros(), 3);
        assert_eq!(BigInt::from(1u64).shl_bits(100).trailing_zeros(), 100);
    }
}
