//! Ring operations on [`BigInt`]: addition, subtraction, negation,
//! schoolbook multiplication, shifts, powers, and small-integer helpers.

use crate::bigint::{BigInt, Sign};
use crate::ops;
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Shl, Shr, Sub, SubAssign};

impl BigInt {
    /// Signed addition on references.
    #[must_use]
    fn add_ref(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                mag: ops::add_slices(&self.mag, &other.mag),
            },
            _ => match self.cmp_abs(other) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    sign: self.sign,
                    mag: ops::sub_slices(&self.mag, &other.mag),
                },
                Ordering::Less => BigInt {
                    sign: other.sign,
                    mag: ops::sub_slices(&other.mag, &self.mag),
                },
            },
        }
    }

    /// Signed schoolbook multiplication (`Θ(n²)` — this is the paper's
    /// naïve baseline; fast algorithms live in `ft-toom-core`).
    #[must_use]
    pub fn mul_schoolbook(&self, other: &BigInt) -> BigInt {
        let sign = self.sign.mul(other.sign);
        if sign == Sign::Zero {
            return BigInt::zero();
        }
        BigInt {
            sign,
            mag: ops::mul_schoolbook(&self.mag, &other.mag),
        }
    }

    /// Multiply by a signed machine integer.
    #[must_use]
    pub fn mul_small(&self, m: i64) -> BigInt {
        let msign = match m.cmp(&0) {
            Ordering::Less => Sign::Negative,
            Ordering::Equal => return BigInt::zero(),
            Ordering::Greater => Sign::Positive,
        };
        let sign = self.sign.mul(msign);
        if sign == Sign::Zero {
            return BigInt::zero();
        }
        BigInt {
            sign,
            mag: ops::mul_limb(&self.mag, m.unsigned_abs()),
        }
    }

    /// In-place [`BigInt::mul_small`]: scales `self`'s own limb buffer,
    /// allocating at most one limb of growth.
    pub fn mul_small_assign(&mut self, m: i64) {
        let msign = match m.cmp(&0) {
            Ordering::Less => Sign::Negative,
            Ordering::Equal => {
                self.sign = Sign::Zero;
                self.mag.clear();
                return;
            }
            Ordering::Greater => Sign::Positive,
        };
        if self.sign == Sign::Zero {
            return;
        }
        ops::mul_limb_assign(&mut self.mag, m.unsigned_abs());
        self.sign = self.sign.mul(msign);
    }

    /// `self * 2^bits`.
    #[must_use]
    pub fn shl_bits(&self, bits: u64) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        BigInt {
            sign: self.sign,
            mag: ops::shl_bits(&self.mag, bits),
        }
    }

    /// Arithmetic shift right by `bits` **of the magnitude** (truncates
    /// towards zero): `sign(self) * (|self| >> bits)`.
    #[must_use]
    pub fn shr_bits(&self, bits: u64) -> BigInt {
        let mag = ops::shr_bits(&self.mag, bits);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt {
                sign: self.sign,
                mag,
            }
        }
    }

    /// Raise to a small power by binary exponentiation. Products go through
    /// the process-wide fast-multiply hook ([`crate::kernels::fast_mul`] —
    /// Toom-Cook once `ft-toom-core` installs itself, workspace Karatsuba
    /// otherwise) and repeated squarings use the halved squaring kernel.
    #[must_use]
    pub fn pow(&self, mut e: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = crate::kernels::fast_mul(&acc, &base);
            }
            e >>= 1;
            if e > 0 {
                base = crate::workspace::with_thread_local(|ws| base.square_with_ws(ws));
            }
        }
        acc
    }

    /// Sum of a slice of integers: a left fold whose `+=` accumulates into
    /// one growing buffer (no per-element reallocation).
    #[must_use]
    pub fn sum<'a>(items: impl IntoIterator<Item = &'a BigInt>) -> BigInt {
        let mut acc = BigInt::zero();
        for x in items {
            acc += x;
        }
        acc
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.neg();
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        self.add_ref(rhs)
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self.add_ref(&-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        self.mul_schoolbook(rhs)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        if rhs.sign != Sign::Zero {
            self.add_mag_assign(&rhs.mag, rhs.sign);
        }
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        if rhs.sign != Sign::Zero {
            self.add_mag_assign(&rhs.mag, rhs.sign.neg());
        }
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        let sign = self.sign.mul(rhs.sign);
        if sign == Sign::Zero {
            self.sign = Sign::Zero;
            self.mag.clear();
            return;
        }
        // The product needs a fresh buffer regardless (it outgrows `self`),
        // but the displaced magnitude is recycled for later products.
        crate::workspace::with_thread_local(|ws| {
            let mut out = ws.take_limbs();
            crate::kernels::mul_into_auto(&self.mag, &rhs.mag, &mut out, ws);
            ws.recycle_limbs(std::mem::replace(&mut self.mag, out));
        });
        self.sign = sign;
    }
}

impl Shl<u64> for &BigInt {
    type Output = BigInt;
    fn shl(self, bits: u64) -> BigInt {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &BigInt {
    type Output = BigInt;
    fn shr(self, bits: u64) -> BigInt {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_addition_table() {
        for x in [-7i128, -1, 0, 1, 9] {
            for y in [-5i128, -1, 0, 1, 12] {
                assert_eq!(&b(x) + &b(y), b(x + y), "{x}+{y}");
                assert_eq!(&b(x) - &b(y), b(x - y), "{x}-{y}");
                assert_eq!(&b(x) * &b(y), b(x * y), "{x}*{y}");
            }
        }
    }

    #[test]
    fn cancellation_to_zero() {
        let big = BigInt::from(u128::MAX) * BigInt::from(u128::MAX);
        assert!((&big - &big).is_zero());
        assert_eq!(&big + &-&big, BigInt::zero());
    }

    #[test]
    fn mul_small_signs() {
        assert_eq!(b(7).mul_small(-3), b(-21));
        assert_eq!(b(-7).mul_small(-3), b(21));
        assert_eq!(b(7).mul_small(0), BigInt::zero());
        assert_eq!(b(0).mul_small(5), BigInt::zero());
        assert_eq!(b(-1).mul_small(i64::MIN), BigInt::from(1u128 << 63));
    }

    #[test]
    fn shifts_signed() {
        assert_eq!(b(-3).shl_bits(2), b(-12));
        assert_eq!(b(-12).shr_bits(2), b(-3));
        assert_eq!(b(-1).shr_bits(1), BigInt::zero(), "truncates toward zero");
    }

    #[test]
    fn pow_small() {
        assert_eq!(b(3).pow(0), b(1));
        assert_eq!(b(3).pow(5), b(243));
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(-2).pow(4), b(16));
        assert_eq!(b(0).pow(0), b(1), "0^0 = 1 by convention");
    }

    #[test]
    fn pow_large_matches_repeated_mul() {
        let x = BigInt::from(0xdead_beefu64);
        let mut acc = BigInt::one();
        for _ in 0..9 {
            acc = &acc * &x;
        }
        assert_eq!(x.pow(9), acc);
    }

    #[test]
    fn sum_folds() {
        let xs = [b(1), b(-2), b(30)];
        assert_eq!(BigInt::sum(xs.iter()), b(29));
        assert_eq!(BigInt::sum([].iter()), BigInt::zero());
    }

    #[test]
    fn small_assign_variants_match_allocating_forms() {
        let mut x = b(-21);
        x.mul_small_assign(-3);
        assert_eq!(x, b(63));
        x.div_exact_small_assign(-9);
        assert_eq!(x, b(-7));
        x.mul_small_assign(0);
        assert!(x.is_zero());
        x.div_exact_small_assign(5);
        assert!(x.is_zero());
    }

    #[test]
    fn assign_ops() {
        let mut x = b(10);
        x += &b(5);
        x -= &b(3);
        x *= &b(-2);
        assert_eq!(x, b(-24));
    }
}
