//! Sequential sub-quadratic limb kernels over workspace scratch.
//!
//! This module implements limb-level Karatsuba multiplication and squaring
//! that write through caller-provided buffers and draw every temporary from
//! a [`Workspace`] arena — zero allocations after warm-up. It sits between
//! the `Θ(n²)` basecase in [`crate::ops`] and the Toom-Cook engines in
//! `ft-toom-core`: Toom recursions bottom out here instead of in raw
//! schoolbook, which is what makes their base cases competitive (the
//! "tuned crossover" of the GMP-class libraries the paper's cost model
//! assumes).
//!
//! Scratch layout per balanced level (operand split at `m = ⌈n/2⌉`):
//!
//! ```text
//! [ A: 2m+1 limbs | B: 2m limbs | recursive scratch … ]
//!   t1,t2 then w    z1 = t1·t2
//! ```
//!
//! `A` first holds the folded halves `t1 = |a0−a1|`, `t2 = |b0−b1|`, whose
//! product `z1` lands in `B`; once `z1` exists the fold buffers are dead and
//! `A` is reused for `w = z0+z2`. Total: `S(n) = 4⌈n/2⌉+1 + S(⌈n/2⌉)` ≈ `4n`
//! limbs, resolved exactly by [`karatsuba_scratch_limbs`].

use crate::ops;
use crate::workspace::{self, Workspace};
use crate::{BigInt, Limb, Sign};
use std::sync::OnceLock;

/// Process-wide hook for a faster signed multiply (e.g. Toom-Cook from a
/// higher crate that cannot be a dependency of this one). Installed once;
/// later installs are ignored.
static FAST_MUL: OnceLock<fn(&BigInt, &BigInt) -> BigInt> = OnceLock::new();

/// Install the process-wide fast-multiply hook used by [`fast_mul`] (and
/// through it by `BigInt::pow`). `ft-toom-core` installs its auto-dispatch
/// Toom multiply here so `ft-bigint` callers benefit without a dependency
/// cycle. First caller wins; returns whether this install took effect.
pub fn install_fast_mul(f: fn(&BigInt, &BigInt) -> BigInt) -> bool {
    FAST_MUL.set(f).is_ok()
}

/// The best available signed multiply: the installed hook, or this crate's
/// workspace-backed Karatsuba/schoolbook auto-dispatch.
#[must_use]
pub fn fast_mul(a: &BigInt, b: &BigInt) -> BigInt {
    match FAST_MUL.get() {
        Some(f) => f(a, b),
        None => a.mul_auto(b),
    }
}

/// Below this many limbs in the *shorter* operand, multiplication uses the
/// schoolbook basecase. Tuned on the CI container via `kernel_baseline`.
pub const KARATSUBA_THRESHOLD_LIMBS: usize = 24;

/// Below this many limbs, squaring uses the halved schoolbook basecase
/// (its constant is smaller, so the crossover sits higher than multiply's).
pub const SQUARE_THRESHOLD_LIMBS: usize = 36;

/// Exact scratch requirement (in limbs) of [`mul_karatsuba_into`] /
/// [`sqr_karatsuba_into`] for operands of `n` limbs, assuming recursion may
/// continue down to `threshold`.
#[must_use]
pub fn karatsuba_scratch_limbs(n: usize, threshold: usize) -> usize {
    let floor = threshold.max(2);
    let mut total = 0;
    let mut n = n;
    while n > floor {
        let m = n.div_ceil(2);
        total += 4 * m + 1;
        n = m;
    }
    total
}

/// `out = |x - y|` over the full (zero-padded) window; returns `true` when
/// the true difference was negative. `x`/`y` may be shorter than `out`.
fn sub_abs_into(x: &[Limb], y: &[Limb], out: &mut [Limb]) -> bool {
    debug_assert!(x.len() <= out.len() && y.len() <= out.len());
    out[..x.len()].copy_from_slice(x);
    out[x.len()..].fill(0);
    let borrow = ops::sub_in_place(out, y);
    let borrow = ops::propagate_borrow(&mut out[y.len()..], borrow);
    if borrow != 0 {
        ops::negate_in_place(out);
        true
    } else {
        false
    }
}

/// Recursive Karatsuba: `out[..la+lb] = a · b`, fully overwritten. `scratch`
/// must hold at least [`karatsuba_scratch_limbs`] of the longer length.
fn kara_rec(a: &[Limb], b: &[Limb], out: &mut [Limb], scratch: &mut [Limb]) {
    let (a, b) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let (la, lb) = (a.len(), b.len());
    debug_assert_eq!(out.len(), la + lb);
    if lb == 0 {
        out.fill(0);
        return;
    }
    if lb <= KARATSUBA_THRESHOLD_LIMBS {
        ops::mul_basecase(a, b, out);
        return;
    }
    let m = la.div_ceil(2);
    let (a0, a1) = a.split_at(m);
    if lb <= m {
        // Unbalanced: only `a` splits. t = a1·b, then out = a0·b + t·B^m.
        let tlen = (la - m) + lb;
        let (t, rest) = scratch.split_at_mut(tlen);
        kara_rec(a1, b, t, rest);
        kara_rec(a0, b, &mut out[..m + lb], rest);
        out[m + lb..].fill(0);
        // dst and src windows are the same length, and the full product
        // fits in la+lb limbs, so the carry provably dies in-window.
        let carry = ops::add_in_place(&mut out[m..], t);
        debug_assert_eq!(carry, 0, "unbalanced join carry escaped");
        return;
    }
    // Balanced: la, lb ∈ (m, 2m]. See module docs for the scratch layout.
    let (b0, b1) = b.split_at(m);
    let (abuf, tail) = scratch.split_at_mut(2 * m + 1);
    let (z1, rest) = tail.split_at_mut(2 * m);
    // Fold the halves; z1 = |a0−a1|·|b0−b1| with sign neg_a ⊕ neg_b.
    let (t1, t2x) = abuf.split_at_mut(m);
    let t2 = &mut t2x[..m];
    let neg_a = sub_abs_into(a0, a1, t1);
    let neg_b = sub_abs_into(b0, b1, t2);
    kara_rec(t1, t2, z1, rest);
    // z0 = a0·b0 and z2 = a1·b1 straight into the output.
    {
        let (lo, hi) = out.split_at_mut(2 * m);
        kara_rec(a0, b0, lo, rest);
        kara_rec(a1, b1, hi, rest);
    }
    // w = z0 + z2 (2m+1 limbs), built in `abuf` *before* touching out[m..]
    // — the add below reads out[m..2m], which is z0's upper half.
    let w = abuf;
    let z2len = la + lb - 2 * m;
    w[..2 * m].copy_from_slice(&out[..2 * m]);
    w[2 * m] = 0;
    let carry = ops::add_in_place(&mut w[..z2len], &out[2 * m..]);
    let carry = ops::propagate_carry(&mut w[z2len..], carry);
    debug_assert_eq!(carry, 0, "z0+z2 exceeds 2m+1 limbs");
    // out[m..] += w; then −z1 (same fold signs) or +z1 (opposite). The
    // region may transiently overflow by one unit after the w add; the
    // balance counter proves the combine lands exactly.
    let region = &mut out[m..];
    let wl = w.len().min(region.len());
    let mut balance: i64 = {
        let c = ops::add_in_place(&mut region[..wl], &w[..wl]);
        let c = ops::propagate_carry(&mut region[wl..], c);
        c as i64 + w[wl..].iter().map(|&x| x as i64).sum::<i64>()
    };
    if neg_a == neg_b {
        let b = ops::sub_in_place(region, z1);
        balance -= ops::propagate_borrow(&mut region[z1.len()..], b) as i64;
    } else {
        let c = ops::add_in_place(region, z1);
        balance += ops::propagate_carry(&mut region[z1.len()..], c) as i64;
    }
    debug_assert_eq!(balance, 0, "karatsuba combine must balance");
}

/// Schoolbook squaring straight into `out[..2·a.len()]` (zero-filled first;
/// cross products once, doubled, then the diagonal).
fn sqr_basecase(a: &[Limb], out: &mut [Limb]) {
    use crate::metrics::tally;
    use crate::DoubleLimb;
    let n = a.len();
    debug_assert_eq!(out.len(), 2 * n);
    out.fill(0);
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for j in i + 1..n {
            let t = out[i + j] as DoubleLimb
                + a[i] as DoubleLimb * a[j] as DoubleLimb
                + carry as DoubleLimb;
            out[i + j] = t as Limb;
            carry = (t >> 64) as Limb;
        }
        out[i + n] = carry;
        tally((n - i) as u64);
    }
    let mut carry_bit: Limb = 0;
    for limb in out.iter_mut() {
        let new_carry = *limb >> 63;
        *limb = (*limb << 1) | carry_bit;
        carry_bit = new_carry;
    }
    tally(2 * n as u64);
    debug_assert_eq!(carry_bit, 0, "top cross product cannot overflow 2n limbs");
    let mut carry: Limb = 0;
    for i in 0..n {
        let sq = a[i] as DoubleLimb * a[i] as DoubleLimb;
        let lo = sq as Limb;
        let hi = (sq >> 64) as Limb;
        let t = out[2 * i] as DoubleLimb + lo as DoubleLimb + carry as DoubleLimb;
        out[2 * i] = t as Limb;
        let c1 = (t >> 64) as Limb;
        let t = out[2 * i + 1] as DoubleLimb + hi as DoubleLimb + c1 as DoubleLimb;
        out[2 * i + 1] = t as Limb;
        carry = (t >> 64) as Limb;
        if carry != 0 {
            carry = ops::propagate_carry(&mut out[2 * i + 2..], carry);
            debug_assert_eq!(carry, 0);
        }
    }
    tally(2 * n as u64);
}

/// Recursive Karatsuba squaring: `out[..2·la] = a²`, fully overwritten.
fn sqr_rec(a: &[Limb], out: &mut [Limb], scratch: &mut [Limb]) {
    let la = a.len();
    debug_assert_eq!(out.len(), 2 * la);
    if la <= SQUARE_THRESHOLD_LIMBS {
        sqr_basecase(a, out);
        return;
    }
    let m = la.div_ceil(2);
    let (a0, a1) = a.split_at(m);
    let (abuf, tail) = scratch.split_at_mut(2 * m + 1);
    let (z1, rest) = tail.split_at_mut(2 * m);
    // z1 = (a0−a1)² — the sign of the fold never matters for a square.
    {
        let t = &mut abuf[..m];
        sub_abs_into(a0, a1, t);
        sqr_rec(t, z1, rest);
    }
    {
        let (lo, hi) = out.split_at_mut(2 * m);
        sqr_rec(a0, lo, rest);
        sqr_rec(a1, hi, rest);
    }
    let w = abuf;
    let z2len = 2 * (la - m);
    w[..2 * m].copy_from_slice(&out[..2 * m]);
    w[2 * m] = 0;
    let carry = ops::add_in_place(&mut w[..z2len], &out[2 * m..]);
    let carry = ops::propagate_carry(&mut w[z2len..], carry);
    debug_assert_eq!(carry, 0);
    // 2·a0·a1 = z0 + z2 − (a0−a1)² ≥ 0, so the combine always subtracts.
    let region = &mut out[m..];
    let wl = w.len().min(region.len());
    let mut balance: i64 = {
        let c = ops::add_in_place(&mut region[..wl], &w[..wl]);
        let c = ops::propagate_carry(&mut region[wl..], c);
        c as i64 + w[wl..].iter().map(|&x| x as i64).sum::<i64>()
    };
    let b = ops::sub_in_place(region, z1);
    balance -= ops::propagate_borrow(&mut region[z1.len()..], b) as i64;
    debug_assert_eq!(balance, 0, "squaring combine must balance");
}

/// Karatsuba product of two magnitudes into a reused buffer; result
/// normalized. All temporaries come from `ws`'s arena (stack-disciplined:
/// the arena is back to its entry extent on return).
pub fn mul_karatsuba_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>, ws: &mut Workspace) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    out.resize(a.len() + b.len(), 0);
    let n = a.len().max(b.len());
    let mark = ws.mark();
    let scratch = ws.alloc(karatsuba_scratch_limbs(n, KARATSUBA_THRESHOLD_LIMBS));
    kara_rec(a, b, out, scratch);
    ws.release(mark);
    ops::normalize(out);
}

/// Karatsuba squaring of a magnitude into a reused buffer; result
/// normalized. Roughly half the limb products of [`mul_karatsuba_into`]
/// with itself, at every recursion level.
pub fn sqr_karatsuba_into(a: &[Limb], out: &mut Vec<Limb>, ws: &mut Workspace) {
    out.clear();
    if a.is_empty() {
        return;
    }
    out.resize(2 * a.len(), 0);
    let mark = ws.mark();
    let scratch = ws.alloc(karatsuba_scratch_limbs(a.len(), SQUARE_THRESHOLD_LIMBS));
    sqr_rec(a, out, scratch);
    ws.release(mark);
    ops::normalize(out);
}

/// Best sequential kernel for the size: schoolbook below the crossover,
/// Karatsuba above. Result normalized into the reused buffer.
pub fn mul_into_auto(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>, ws: &mut Workspace) {
    let shorter = a.len().min(b.len());
    if shorter <= KARATSUBA_THRESHOLD_LIMBS {
        ops::mul_into(a, b, out);
    } else if shorter >= crate::ntt::NTT_THRESHOLD_LIMBS {
        crate::ntt::mul_ntt_into(a, b, out, ws);
    } else {
        mul_karatsuba_into(a, b, out, ws);
    }
}

impl BigInt {
    /// Signed product using the workspace-backed sequential kernels
    /// (schoolbook below the Karatsuba crossover, Karatsuba above).
    #[must_use]
    pub fn mul_with_ws(&self, other: &BigInt, ws: &mut Workspace) -> BigInt {
        let sign = self.sign.mul(other.sign);
        if sign == Sign::Zero {
            return BigInt::zero();
        }
        let mut out = ws.take_limbs();
        mul_into_auto(&self.mag, &other.mag, &mut out, ws);
        BigInt { sign, mag: out }
    }

    /// `self²` using the workspace-backed halved squaring kernel.
    #[must_use]
    pub fn square_with_ws(&self, ws: &mut Workspace) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        let mut out = ws.take_limbs();
        if self.mag.len() <= SQUARE_THRESHOLD_LIMBS {
            out.extend_from_slice(&crate::square::sqr_schoolbook(&self.mag));
        } else {
            sqr_karatsuba_into(&self.mag, &mut out, ws);
        }
        BigInt {
            sign: Sign::Positive,
            mag: out,
        }
    }

    /// Signed product via this thread's long-lived workspace — the entry
    /// point for callers without a [`Workspace`] in hand.
    #[must_use]
    pub fn mul_auto(&self, other: &BigInt) -> BigInt {
        workspace::with_thread_local(|ws| self.mul_with_ws(other, ws))
    }

    /// `self += c·x` with one borrowed scratch buffer and no intermediate
    /// `BigInt` — the inner statement of every evaluation/interpolation
    /// mat-vec in the Toom engines.
    pub fn add_mul_small_assign(&mut self, x: &BigInt, c: i64, tmp: &mut Vec<Limb>) {
        if c == 0 || x.is_zero() {
            return;
        }
        ops::mul_limb_into(&x.mag, c.unsigned_abs(), tmp);
        let csign = if c < 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        let term_sign = x.sign.mul(csign);
        self.add_mag_assign(tmp, term_sign);
    }

    /// `self += sign·mag` for a raw (normalized, non-empty) magnitude.
    pub(crate) fn add_mag_assign(&mut self, mag: &[Limb], sign: Sign) {
        debug_assert!(sign != Sign::Zero && !mag.is_empty());
        if self.sign == Sign::Zero {
            self.mag.clear();
            self.mag.extend_from_slice(mag);
            self.sign = sign;
        } else if self.sign == sign {
            ops::add_assign_slices(&mut self.mag, mag);
        } else {
            let flipped = ops::sub_assign_slices(&mut self.mag, mag);
            if self.mag.is_empty() {
                self.sign = Sign::Zero;
            } else if flipped {
                self.sign = sign;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn rand_mag(rng: &mut impl Rng, limbs: usize) -> Vec<Limb> {
        let mut v: Vec<Limb> = (0..limbs).map(|_| rng.random()).collect();
        ops::normalize(&mut v);
        v
    }

    #[test]
    fn karatsuba_matches_schoolbook_across_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut ws = Workspace::new();
        let mut out = Vec::new();
        // Balanced, unbalanced, threshold-straddling, and carry-heavy.
        let shapes = [
            (1, 1),
            (25, 25),
            (25, 3),
            (64, 64),
            (65, 64),
            (100, 30),
            (130, 129),
            (200, 51),
        ];
        for &(la, lb) in &shapes {
            let a = rand_mag(&mut rng, la);
            let b = rand_mag(&mut rng, lb);
            mul_karatsuba_into(&a, &b, &mut out, &mut ws);
            assert_eq!(out, ops::mul_schoolbook(&a, &b), "shape {la}x{lb}");
            assert_eq!(ws.in_use(), 0, "arena leaked at {la}x{lb}");
        }
        // All-ones maximizes carries through every combine step.
        let a = vec![Limb::MAX; 77];
        let b = vec![Limb::MAX; 76];
        mul_karatsuba_into(&a, &b, &mut out, &mut ws);
        assert_eq!(out, ops::mul_schoolbook(&a, &b));
    }

    #[test]
    fn karatsuba_square_matches_general() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let mut ws = Workspace::new();
        let mut out = Vec::new();
        for limbs in [1usize, 36, 37, 75, 128, 200] {
            let a = rand_mag(&mut rng, limbs);
            sqr_karatsuba_into(&a, &mut out, &mut ws);
            assert_eq!(out, ops::mul_schoolbook(&a, &a), "limbs={limbs}");
            assert_eq!(ws.in_use(), 0);
        }
        let a = vec![Limb::MAX; 99];
        sqr_karatsuba_into(&a, &mut out, &mut ws);
        assert_eq!(out, ops::mul_schoolbook(&a, &a));
    }

    #[test]
    fn bigint_entry_points_match_operator() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let a = BigInt::random_signed_bits(&mut rng, 9_000);
        let b = BigInt::random_signed_bits(&mut rng, 7_000);
        assert_eq!(a.mul_auto(&b), a.mul_schoolbook(&b));
        let mut ws = Workspace::new();
        assert_eq!(a.mul_with_ws(&b, &mut ws), a.mul_schoolbook(&b));
        assert_eq!(a.square_with_ws(&mut ws), a.mul_schoolbook(&a));
        assert_eq!(BigInt::zero().mul_auto(&b), BigInt::zero());
    }

    #[test]
    fn add_mul_small_assign_matches_composed_ops() {
        let mut tmp = Vec::new();
        for acc0 in [-9i64, 0, 4] {
            for x in [-3i64, 0, 5, i64::MAX] {
                for c in [-4i64, -1, 0, 1, 7] {
                    let mut acc = BigInt::from(acc0);
                    acc.add_mul_small_assign(&BigInt::from(x), c, &mut tmp);
                    let expect = &BigInt::from(acc0) + &BigInt::from(x).mul_small(c);
                    assert_eq!(acc, expect, "{acc0} + {c}*{x}");
                }
            }
        }
    }

    #[test]
    fn scratch_estimate_is_monotone_and_linear() {
        let s1 = karatsuba_scratch_limbs(1_000, KARATSUBA_THRESHOLD_LIMBS);
        let s2 = karatsuba_scratch_limbs(2_000, KARATSUBA_THRESHOLD_LIMBS);
        assert!(s1 > 0 && s2 > s1);
        assert!(s2 < 5 * 2_000, "scratch should stay ~4n limbs");
        assert_eq!(karatsuba_scratch_limbs(10, KARATSUBA_THRESHOLD_LIMBS), 0);
    }
}
