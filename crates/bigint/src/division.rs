//! Multi-precision division: Knuth's Algorithm D plus exact-division and
//! floor-mod helpers.
//!
//! Toom-Cook interpolation divides by small constants (exactly), erasure
//! decoding divides by Vandermonde minors (exactly), and the decimal
//! formatter and modular arithmetic need general `div_rem` — so we implement
//! the full algorithm rather than special cases.

use crate::bigint::{BigInt, Sign};
use crate::metrics::tally;
use crate::ops;
use crate::Limb;
use std::cmp::Ordering;

/// Error for checked division entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionError {
    /// The divisor was zero.
    DivisionByZero,
    /// `div_exact` was asked for a quotient that leaves a remainder.
    NotExact,
}

impl std::fmt::Display for DivisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivisionError::DivisionByZero => write!(f, "division by zero"),
            DivisionError::NotExact => write!(f, "inexact division where exactness was required"),
        }
    }
}

impl std::error::Error for DivisionError {}

/// Knuth Algorithm D on magnitudes. Requires `v` normalized and non-empty.
/// Returns normalized `(quotient, remainder)`.
fn div_rem_mag(u: &[Limb], v: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    debug_assert!(!v.is_empty() && *v.last().unwrap() != 0);
    if ops::cmp_slices(u, v) == Ordering::Less {
        return (Vec::new(), u.to_vec());
    }
    if v.len() == 1 {
        let (q, r) = ops::div_rem_limb(u, v[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    let n = v.len();
    let m = u.len() - n; // quotient has m+1 limbs
    let shift = v.last().unwrap().leading_zeros() as u64;

    let vn = ops::shl_bits(v, shift);
    debug_assert_eq!(vn.len(), n);
    let mut un = ops::shl_bits(u, shift);
    un.resize(u.len() + 1, 0);

    let b: u128 = 1u128 << 64;
    let mut q = vec![0 as Limb; m + 1];
    for j in (0..=m).rev() {
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vn[n - 1] as u128;
        let mut rhat = top % vn[n - 1] as u128;
        while qhat >= b || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >= b {
                break;
            }
        }

        // un[j..=j+n] -= qhat * vn
        let mut carry: u128 = 0;
        let mut borrow: i128 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let sub = un[i + j] as i128 - (p as u64) as i128 - borrow;
            un[i + j] = sub as u64;
            borrow = i128::from(sub < 0);
        }
        let sub = un[j + n] as i128 - carry as i128 - borrow;
        un[j + n] = sub as u64;

        if sub < 0 {
            // qhat was one too large (rare): add back one multiple of vn.
            qhat -= 1;
            let mut c: u128 = 0;
            for i in 0..n {
                let t = un[i + j] as u128 + vn[i] as u128 + c;
                un[i + j] = t as u64;
                c = t >> 64;
            }
            un[j + n] = (un[j + n] as u128 + c) as u64;
        }
        q[j] = qhat as u64;
        tally(n as u64);
    }

    let rem = ops::shr_bits(&un[..n], shift);
    ops::normalize(&mut q);
    (q, rem)
}

impl BigInt {
    /// Truncated division: returns `(q, r)` with `self = q*rhs + r`,
    /// `|r| < |rhs|`, and `sign(r) == sign(self)` (or zero) — the same
    /// convention as Rust's primitive `/` and `%`.
    ///
    /// # Panics
    /// Panics if `rhs` is zero; use [`BigInt::checked_div_rem`] to avoid.
    #[must_use]
    pub fn div_rem(&self, rhs: &BigInt) -> (BigInt, BigInt) {
        self.checked_div_rem(rhs).expect("division by zero")
    }

    /// Truncated division that reports division by zero as an error.
    pub fn checked_div_rem(&self, rhs: &BigInt) -> Result<(BigInt, BigInt), DivisionError> {
        if rhs.is_zero() {
            return Err(DivisionError::DivisionByZero);
        }
        if self.is_zero() {
            return Ok((BigInt::zero(), BigInt::zero()));
        }
        let (qm, rm) = div_rem_mag(&self.mag, &rhs.mag);
        let qsign = self.sign.mul(rhs.sign);
        let q = BigInt::from_sign_limbs(if qm.is_empty() { Sign::Zero } else { qsign }, qm);
        let r = BigInt::from_sign_limbs(if rm.is_empty() { Sign::Zero } else { self.sign }, rm);
        Ok((q, r))
    }

    /// Exact division: `self / rhs` asserting that the remainder is zero.
    /// Used by interpolation (divisions by interpolation-matrix constants
    /// are exact by construction) and by erasure decoding.
    ///
    /// # Panics
    /// Panics on a non-zero remainder or zero divisor.
    #[must_use]
    pub fn div_exact(&self, rhs: &BigInt) -> BigInt {
        self.checked_div_exact(rhs)
            .expect("div_exact: inexact or zero division")
    }

    /// Checked version of [`BigInt::div_exact`].
    pub fn checked_div_exact(&self, rhs: &BigInt) -> Result<BigInt, DivisionError> {
        let (q, r) = self.checked_div_rem(rhs)?;
        if r.is_zero() {
            Ok(q)
        } else {
            Err(DivisionError::NotExact)
        }
    }

    /// Exact division by a signed machine integer.
    ///
    /// # Panics
    /// Panics on a non-zero remainder or zero divisor.
    #[must_use]
    pub fn div_exact_small(&self, d: i64) -> BigInt {
        assert!(d != 0, "division by zero");
        if self.is_zero() {
            return BigInt::zero();
        }
        let (q, r) = ops::div_rem_limb(&self.mag, d.unsigned_abs());
        assert_eq!(r, 0, "div_exact_small: remainder {r} dividing by {d}");
        let dsign = if d < 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        BigInt::from_sign_limbs(self.sign.mul(dsign), q)
    }

    /// In-place [`BigInt::div_exact_small`]: divides `self`'s own limb
    /// buffer, allocating nothing.
    ///
    /// # Panics
    /// Panics on a non-zero remainder or zero divisor.
    pub fn div_exact_small_assign(&mut self, d: i64) {
        assert!(d != 0, "division by zero");
        if self.is_zero() {
            return;
        }
        let r = ops::div_rem_limb_assign(&mut self.mag, d.unsigned_abs());
        assert_eq!(
            r, 0,
            "div_exact_small_assign: remainder {r} dividing by {d}"
        );
        if self.mag.is_empty() {
            self.sign = Sign::Zero;
        } else if d < 0 {
            self.sign = self.sign.neg();
        }
    }

    /// Euclidean (floor) remainder: the unique `r` in `[0, |rhs|)` with
    /// `self ≡ r (mod rhs)`.
    #[must_use]
    pub fn mod_floor(&self, rhs: &BigInt) -> BigInt {
        let (_, r) = self.div_rem(rhs);
        if r.is_negative() {
            &r + &rhs.abs()
        } else {
            r
        }
    }
}

impl std::ops::Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl std::ops::Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn matches_primitive_truncated_division() {
        for x in [-100i128, -17, -1, 0, 1, 17, 100, 12345] {
            for y in [-7i128, -3, -1, 1, 3, 7, 100] {
                let (q, r) = b(x).div_rem(&b(y));
                assert_eq!(q, b(x / y), "{x}/{y}");
                assert_eq!(r, b(x % y), "{x}%{y}");
            }
        }
    }

    #[test]
    fn big_reconstruction() {
        let u = BigInt::from(u128::MAX).pow(3);
        let v = BigInt::from(0xfeed_face_dead_beefu64);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r.cmp_abs(&v) == Ordering::Less);
    }

    #[test]
    fn multi_limb_divisor() {
        let v = BigInt::from(u128::MAX - 12345);
        let u = &v * &v * &v + BigInt::from(987654321u64);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert_eq!(r, BigInt::from(987654321u64));
        assert_eq!(q, &v * &v);
    }

    #[test]
    fn quotient_smaller_than_divisor() {
        let (q, r) = b(5).div_rem(&b(100));
        assert!(q.is_zero());
        assert_eq!(r, b(5));
    }

    #[test]
    fn algorithm_d_add_back_case() {
        // Constructed so qhat overestimates: u = [0, 2^64-1, 2^64-1],
        // v = [2^64-1, 2^64-1] triggers the rare add-back branch.
        let u = BigInt::from_limbs(vec![0, u64::MAX, u64::MAX]);
        let v = BigInt::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r.cmp_abs(&v) == Ordering::Less);
    }

    #[test]
    fn div_exact_small_signs() {
        assert_eq!(b(-12).div_exact_small(4), b(-3));
        assert_eq!(b(-12).div_exact_small(-4), b(3));
        assert_eq!(b(0).div_exact_small(-4), b(0));
    }

    #[test]
    #[should_panic(expected = "remainder")]
    fn div_exact_small_panics_on_inexact() {
        let _ = b(10).div_exact_small(3);
    }

    #[test]
    fn div_exact_big() {
        let a = BigInt::from(u128::MAX).pow(2);
        let d = BigInt::from(u128::MAX);
        assert_eq!(a.div_exact(&d), d);
        assert_eq!(
            (&a + &BigInt::one()).checked_div_exact(&d),
            Err(DivisionError::NotExact)
        );
    }

    #[test]
    fn checked_reports_zero_divisor() {
        assert_eq!(
            b(1).checked_div_rem(&BigInt::zero()),
            Err(DivisionError::DivisionByZero)
        );
    }

    #[test]
    fn mod_floor_always_nonnegative() {
        for x in [-10i128, -7, -1, 0, 1, 7, 10] {
            for y in [-3i128, 3, 5] {
                let m = b(x).mod_floor(&b(y));
                let yy = y.unsigned_abs() as i128;
                assert_eq!(m, b(x.rem_euclid(yy)), "{x} mod {y}");
            }
        }
    }

    #[test]
    fn operator_sugar() {
        assert_eq!(&b(17) / &b(5), b(3));
        assert_eq!(&b(17) % &b(5), b(2));
    }
}
