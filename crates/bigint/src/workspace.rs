//! Scratch-memory arena for recursive multiplication kernels.
//!
//! A [`Workspace`] owns three kinds of reusable memory:
//!
//! 1. a single grow-only limb **arena** handed out in stack discipline
//!    ([`Workspace::mark`] / [`Workspace::alloc`] / [`Workspace::release`])
//!    — this backs the slice-level Karatsuba scratch, which nests exactly
//!    like the recursion tree;
//! 2. a **limb-buffer pool** of owned `Vec<Limb>`s ([`Workspace::take_limbs`]
//!    / [`Workspace::recycle_limbs`]) for temporaries that must be owned
//!    (a [`BigInt`] magnitude cannot borrow from the arena);
//! 3. a **node pool** of `Vec<BigInt>` containers for the per-level digit /
//!    evaluation / product vectors of the Toom recursion.
//!
//! The arena never shrinks: after the first multiply at a given size, every
//! later multiply at that size (or smaller) runs allocation-free. One
//! workspace must never be shared across threads — parallel engines create
//! one per task ([`Workspace`] is deliberately `!Sync` via its interior
//! `Vec`s being plainly owned; it is `Send`, so moving one *into* a task is
//! fine).
//!
//! Public multiplication entry points that want reuse across calls on the
//! same thread go through [`with_thread_local`], which falls back to a fresh
//! workspace when re-entered (e.g. a callback multiplying during a multiply).

use crate::{BigInt, Limb, Sign};
use std::cell::RefCell;

/// A checkpoint into the arena returned by [`Workspace::mark`]; pass it to
/// [`Workspace::release`] to free everything allocated since.
#[derive(Debug, Clone, Copy)]
#[must_use = "a Mark that is never released leaks arena space"]
pub struct Mark(usize);

/// Reusable scratch memory for multiplication kernels. See the module docs.
#[derive(Default)]
pub struct Workspace {
    scratch: Vec<Limb>,
    top: usize,
    high_water: usize,
    limb_pool: Vec<Vec<Limb>>,
    node_pool: Vec<Vec<BigInt>>,
}

impl Workspace {
    /// An empty workspace; the arena and pools grow on demand.
    #[must_use]
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// A workspace whose arena starts at `limbs` capacity.
    #[must_use]
    pub fn with_capacity(limbs: usize) -> Workspace {
        Workspace {
            scratch: vec![0; limbs],
            ..Workspace::default()
        }
    }

    /// Checkpoint the arena stack.
    pub fn mark(&self) -> Mark {
        Mark(self.top)
    }

    /// Pop the arena stack back to `mark`, releasing every [`Workspace::alloc`]
    /// made since. Release order must mirror mark order (stack discipline).
    pub fn release(&mut self, mark: Mark) {
        debug_assert!(mark.0 <= self.top, "release past an outdated mark");
        self.top = mark.0;
    }

    /// Allocate `n` limbs from the arena. Contents are **unspecified**
    /// (previous users' data); callers must fully overwrite before reading.
    /// The region is valid until the enclosing mark is released.
    pub fn alloc(&mut self, n: usize) -> &mut [Limb] {
        let start = self.top;
        self.top += n;
        if self.scratch.len() < self.top {
            self.scratch.resize(self.top, 0);
        }
        self.high_water = self.high_water.max(self.top);
        &mut self.scratch[start..start + n]
    }

    /// Limbs currently allocated from the arena (0 when fully released —
    /// the invariant the checkpoint-discipline tests pin).
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.top
    }

    /// Largest arena extent ever reached.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Take an empty owned limb buffer from the pool (or a fresh one).
    #[must_use]
    pub fn take_limbs(&mut self) -> Vec<Limb> {
        self.limb_pool.pop().unwrap_or_default()
    }

    /// Return a limb buffer to the pool for later [`Workspace::take_limbs`];
    /// its contents are cleared, its capacity kept.
    pub fn recycle_limbs(&mut self, mut v: Vec<Limb>) {
        if v.capacity() > 0 {
            v.clear();
            self.limb_pool.push(v);
        }
    }

    /// A zero [`BigInt`] whose magnitude buffer comes from the pool.
    #[must_use]
    pub fn take_bigint(&mut self) -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: self.take_limbs(),
        }
    }

    /// Recycle a [`BigInt`]'s magnitude buffer into the pool.
    pub fn recycle_bigint(&mut self, x: BigInt) {
        self.recycle_limbs(x.mag);
    }

    /// Take an empty `Vec<BigInt>` container from the node pool.
    #[must_use]
    pub fn take_nodes(&mut self) -> Vec<BigInt> {
        self.node_pool.pop().unwrap_or_default()
    }

    /// Recycle a node container: every element's magnitude buffer goes to
    /// the limb pool, the (emptied) container to the node pool.
    pub fn recycle_nodes(&mut self, mut v: Vec<BigInt>) {
        for x in v.drain(..) {
            self.recycle_limbs(x.mag);
        }
        if v.capacity() > 0 {
            self.node_pool.push(v);
        }
    }
}

thread_local! {
    static THREAD_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Run `f` with this thread's long-lived [`Workspace`].
///
/// Re-entrancy safe: if the thread-local workspace is already borrowed
/// (a multiply triggered inside a multiply), `f` gets a fresh throwaway
/// workspace instead of panicking.
pub fn with_thread_local<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut Workspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_stack_discipline() {
        let mut ws = Workspace::new();
        let outer = ws.mark();
        {
            let s = ws.alloc(16);
            s.fill(7);
        }
        let inner = ws.mark();
        ws.alloc(32).fill(9);
        assert_eq!(ws.in_use(), 48);
        ws.release(inner);
        assert_eq!(ws.in_use(), 16);
        ws.release(outer);
        assert_eq!(ws.in_use(), 0);
        assert_eq!(ws.high_water(), 48);
        // Re-allocating after release reuses the same extent.
        let again = ws.mark();
        ws.alloc(48);
        assert_eq!(ws.high_water(), 48);
        ws.release(again);
    }

    #[test]
    fn pools_round_trip() {
        let mut ws = Workspace::new();
        let mut v = ws.take_limbs();
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        ws.recycle_limbs(v);
        let v2 = ws.take_limbs();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);

        let x = BigInt::from(12345u64);
        ws.recycle_bigint(x);
        let z = ws.take_bigint();
        assert!(z.is_zero());

        let mut nodes = ws.take_nodes();
        nodes.push(BigInt::from(9u64));
        nodes.push(BigInt::from(11u64));
        ws.recycle_nodes(nodes);
        // Two magnitudes plus the earlier buffer ended up pooled; takes
        // drain them without allocating new backing stores.
        let a = ws.take_limbs();
        let b = ws.take_limbs();
        assert!(a.capacity() > 0 && b.capacity() > 0);
    }

    #[test]
    fn thread_local_reuses_and_survives_reentry() {
        let hw = with_thread_local(|ws| {
            let m = ws.mark();
            ws.alloc(64);
            ws.release(m);
            // Re-entrant call sees a *fresh* workspace, not a panic.
            let nested = with_thread_local(|inner| inner.high_water());
            assert_eq!(nested, 0);
            ws.high_water()
        });
        assert!(hw >= 64);
        // A second borrow of the same thread-local sees the same arena.
        let hw2 = with_thread_local(|ws| ws.high_water());
        assert_eq!(hw2, hw);
    }
}
