//! Low-level limb-slice primitives.
//!
//! All functions operate on little-endian `u64` limb slices. Magnitudes are
//! *normalized* when they carry no trailing (most-significant) zero limbs;
//! functions document whether they require or produce normalized slices.
//!
//! These are the word operations the paper's cost model charges for; each
//! inner loop tallies one unit per limb touched arithmetically.

use crate::metrics::tally;
use crate::{DoubleLimb, Limb};
use std::cmp::Ordering;

/// Strip trailing zero limbs in place, leaving a normalized magnitude.
pub fn normalize(v: &mut Vec<Limb>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

/// Compare two normalized magnitudes.
pub fn cmp_slices(a: &[Limb], b: &[Limb]) -> Ordering {
    debug_assert!(a.last() != Some(&0) && b.last() != Some(&0));
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        }
        other => other,
    }
}

/// `a + b`, magnitudes in any normalization state; result normalized.
#[allow(clippy::needless_range_loop)] // index drives two slices at once
pub fn add_slices(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: Limb = 0;
    for i in 0..long.len() {
        let s =
            long[i] as DoubleLimb + *short.get(i).unwrap_or(&0) as DoubleLimb + carry as DoubleLimb;
        out.push(s as Limb);
        carry = (s >> 64) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    tally(long.len() as u64);
    normalize(&mut out);
    out
}

/// `a - b` for normalized `a >= b`; result normalized.
///
/// # Panics
/// Debug-panics if `a < b`.
#[allow(clippy::needless_range_loop)] // index drives two slices at once
pub fn sub_slices(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    debug_assert!(
        cmp_slices(a, b) != Ordering::Less,
        "sub_slices requires a >= b"
    );
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: Limb = 0;
    for i in 0..a.len() {
        let bi = *b.get(i).unwrap_or(&0);
        let (d1, o1) = a[i].overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (o1 | o2) as Limb;
    }
    debug_assert_eq!(borrow, 0);
    tally(a.len() as u64);
    normalize(&mut out);
    out
}

/// Schoolbook product of two magnitudes (`Θ(|a|·|b|)` word ops); result
/// normalized. Empty inputs yield the empty (zero) magnitude.
pub fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let mut out = Vec::new();
    mul_into(a, b, &mut out);
    out
}

// ---------------------------------------------------------------------------
// In-place / into-buffer kernels.
//
// The functions below are the zero-allocation counterparts of the `Vec`-
// returning primitives above: they write through caller-provided buffers so
// recursive algorithms (Karatsuba, Toom-Cook) can reuse scratch memory
// across levels. Slice-level helpers (`add_in_place`, `sub_in_place`,
// `mul_basecase`, …) work on fixed-width windows and report the out-of-range
// carry/borrow; `Vec`-level helpers (`*_assign_slices`, `*_into`) manage
// length and leave a normalized magnitude.
// ---------------------------------------------------------------------------

/// Limbs per block of `b` in the blocked accumulating multiply: 4 KiB of
/// multiplicand stays L1-resident while `a` and `out` stream past it.
const MUL_BLOCK_LIMBS: usize = 512;

/// `acc[..b.len()] += b` over a fixed window; returns the carry out of the
/// window (0 or 1). Requires `b.len() <= acc.len()`; limbs of `acc` past
/// `b.len()` are *not* touched.
#[inline]
pub fn add_in_place(acc: &mut [Limb], b: &[Limb]) -> Limb {
    debug_assert!(b.len() <= acc.len());
    let mut carry: Limb = 0;
    for (x, &y) in acc.iter_mut().zip(b) {
        let s = *x as DoubleLimb + y as DoubleLimb + carry as DoubleLimb;
        *x = s as Limb;
        carry = (s >> 64) as Limb;
    }
    tally(b.len() as u64);
    carry
}

/// Propagate a single carry limb into `acc`; returns the carry out of the
/// slice (0 unless the whole slice was `u64::MAX`s).
#[inline]
pub fn propagate_carry(acc: &mut [Limb], mut carry: Limb) -> Limb {
    let mut i = 0;
    while carry != 0 && i < acc.len() {
        let (s, o) = acc[i].overflowing_add(carry);
        acc[i] = s;
        carry = o as Limb;
        i += 1;
    }
    carry
}

/// `acc[..b.len()] -= b` over a fixed window; returns the borrow out of the
/// window (0 or 1). Requires `b.len() <= acc.len()`; limbs of `acc` past
/// `b.len()` are *not* touched.
#[inline]
pub fn sub_in_place(acc: &mut [Limb], b: &[Limb]) -> Limb {
    debug_assert!(b.len() <= acc.len());
    let mut borrow: Limb = 0;
    for (x, &y) in acc.iter_mut().zip(b) {
        let (d1, o1) = x.overflowing_sub(y);
        let (d2, o2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = (o1 | o2) as Limb;
    }
    tally(b.len() as u64);
    borrow
}

/// Propagate a single borrow limb into `acc`; returns the borrow out of the
/// slice.
#[inline]
pub fn propagate_borrow(acc: &mut [Limb], mut borrow: Limb) -> Limb {
    let mut i = 0;
    while borrow != 0 && i < acc.len() {
        let (d, o) = acc[i].overflowing_sub(borrow);
        acc[i] = d;
        borrow = o as Limb;
        i += 1;
    }
    borrow
}

/// Two's-complement negate in place: `v = 2^(64·len) - v`. Used to recover
/// the magnitude after a subtraction that underflowed.
#[inline]
pub(crate) fn negate_in_place(v: &mut [Limb]) {
    let mut carry: Limb = 1;
    for x in v.iter_mut() {
        let s = (!*x) as DoubleLimb + carry as DoubleLimb;
        *x = s as Limb;
        carry = (s >> 64) as Limb;
    }
    tally(v.len() as u64);
}

/// `acc += b` in place, growing `acc` as needed; result normalized.
pub fn add_assign_slices(acc: &mut Vec<Limb>, b: &[Limb]) {
    if acc.len() < b.len() {
        acc.resize(b.len(), 0);
    }
    let carry = add_in_place(&mut acc[..], b);
    let carry = propagate_carry(&mut acc[b.len()..], carry);
    if carry != 0 {
        acc.push(carry);
    }
    normalize(acc);
}

/// `acc = |acc - b|` in place with no pre-comparison pass; returns `true`
/// when the true difference was negative (the caller must flip the sign).
///
/// Subtracts limb-wise and, only when the final borrow indicates underflow,
/// recovers the magnitude with one two's-complement negate — one data pass
/// in the common case instead of compare-then-subtract's two.
pub fn sub_assign_slices(acc: &mut Vec<Limb>, b: &[Limb]) -> bool {
    if acc.len() < b.len() {
        acc.resize(b.len(), 0);
    }
    let borrow = sub_in_place(&mut acc[..], b);
    let borrow = propagate_borrow(&mut acc[b.len()..], borrow);
    let flipped = borrow != 0;
    if flipped {
        negate_in_place(acc);
    }
    normalize(acc);
    flipped
}

/// `out += a * b`, cache-blocked: `b` is consumed in [`MUL_BLOCK_LIMBS`]
/// chunks so each chunk stays cache-resident while all of `a` streams past.
/// Requires `out.len() >= a.len() + b.len()`; carries that outrun a block
/// are propagated immediately (the running value never exceeds the final
/// product, so propagation terminates inside `out`).
pub fn addmul_slices(a: &[Limb], b: &[Limb], out: &mut [Limb]) {
    debug_assert!(out.len() >= a.len() + b.len());
    for (c0, chunk) in b.chunks(MUL_BLOCK_LIMBS).enumerate() {
        let base = c0 * MUL_BLOCK_LIMBS;
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry: Limb = 0;
            let lo = i + base;
            for (x, &bj) in out[lo..lo + chunk.len()].iter_mut().zip(chunk) {
                let t =
                    *x as DoubleLimb + ai as DoubleLimb * bj as DoubleLimb + carry as DoubleLimb;
                *x = t as Limb;
                carry = (t >> 64) as Limb;
            }
            let spill = propagate_carry(&mut out[lo + chunk.len()..], carry);
            debug_assert_eq!(spill, 0, "addmul carry escaped the output buffer");
            tally(chunk.len() as u64);
        }
    }
}

/// Schoolbook product written straight into `out[..a.len()+b.len()]` with
/// *overwrite* semantics: the first row writes, later rows accumulate, so
/// `out` need not be zeroed beforehand. Requires non-empty inputs and
/// `out.len() == a.len() + b.len()`; every limb of `out` is written.
pub fn mul_basecase(a: &[Limb], b: &[Limb], out: &mut [Limb]) {
    let (la, lb) = (a.len(), b.len());
    debug_assert!(la >= 1 && lb >= 1);
    debug_assert_eq!(out.len(), la + lb);
    // Row 0 overwrites out[0..=lb]; the tail is zero-filled so later rows
    // (and their plain carry stores) can accumulate into defined limbs.
    let a0 = a[0];
    let mut carry: Limb = 0;
    for (x, &bj) in out[..lb].iter_mut().zip(b) {
        let t = a0 as DoubleLimb * bj as DoubleLimb + carry as DoubleLimb;
        *x = t as Limb;
        carry = (t >> 64) as Limb;
    }
    out[lb] = carry;
    for x in &mut out[lb + 1..] {
        *x = 0;
    }
    tally(lb as u64);
    for (i, &ai) in a.iter().enumerate().skip(1) {
        if ai == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (x, &bj) in out[i..i + lb].iter_mut().zip(b) {
            let t = *x as DoubleLimb + ai as DoubleLimb * bj as DoubleLimb + carry as DoubleLimb;
            *x = t as Limb;
            carry = (t >> 64) as Limb;
        }
        // Rows only touch out[i..=i+lb], so out[i+lb] still holds its fill
        // value 0 when row i reaches it: a plain store is enough.
        out[i + lb] = carry;
        tally(lb as u64);
    }
}

/// Schoolbook product into a caller-provided buffer: `out` is reused
/// (cleared, sized, filled) rather than freshly allocated; result
/// normalized.
pub fn mul_into(a: &[Limb], b: &[Limb], out: &mut Vec<Limb>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    out.resize(a.len() + b.len(), 0);
    addmul_slices(a, b, out);
    normalize(out);
}

/// `a * m` into a caller-provided buffer; result normalized.
pub fn mul_limb_into(a: &[Limb], m: Limb, out: &mut Vec<Limb>) {
    out.clear();
    if m == 0 || a.is_empty() {
        return;
    }
    out.reserve(a.len() + 1);
    let mut carry: Limb = 0;
    for &ai in a {
        let t = ai as DoubleLimb * m as DoubleLimb + carry as DoubleLimb;
        out.push(t as Limb);
        carry = (t >> 64) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    tally(a.len() as u64);
    normalize(out);
}

/// `a *= m` in place; result normalized.
pub fn mul_limb_assign(a: &mut Vec<Limb>, m: Limb) {
    if a.is_empty() {
        return;
    }
    if m == 0 {
        a.clear();
        return;
    }
    let mut carry: Limb = 0;
    for x in a.iter_mut() {
        let t = *x as DoubleLimb * m as DoubleLimb + carry as DoubleLimb;
        *x = t as Limb;
        carry = (t >> 64) as Limb;
    }
    tally(a.len() as u64);
    if carry != 0 {
        a.push(carry);
    }
    normalize(a);
}

/// `a /= d` in place for a single non-zero limb divisor; returns the
/// remainder. Quotient left normalized.
pub fn div_rem_limb_assign(a: &mut Vec<Limb>, d: Limb) -> Limb {
    assert!(d != 0, "division by zero limb");
    let mut rem: Limb = 0;
    for x in a.iter_mut().rev() {
        let cur = ((rem as DoubleLimb) << 64) | *x as DoubleLimb;
        *x = (cur / d as DoubleLimb) as Limb;
        rem = (cur % d as DoubleLimb) as Limb;
    }
    tally(a.len() as u64);
    normalize(a);
    rem
}

/// `acc += a << shift` in place (bit shift applied on the fly, no shifted
/// temporary); result normalized. This is the offset-add join primitive
/// behind base-`2^b` digit recombination.
pub fn add_shifted_assign_slices(acc: &mut Vec<Limb>, a: &[Limb], shift: u64) {
    if a.is_empty() {
        normalize(acc);
        return;
    }
    let limb_off = (shift / 64) as usize;
    let bit_off = (shift % 64) as u32;
    let needed = limb_off + a.len() + 1;
    if acc.len() < needed {
        acc.resize(needed, 0);
    }
    let mut carry: Limb = 0;
    let mut spill: Limb = 0; // bits shifted out of the previous source limb
    let mut k = limb_off;
    for &ai in a {
        let shifted = if bit_off == 0 {
            ai
        } else {
            (ai << bit_off) | spill
        };
        spill = if bit_off == 0 {
            0
        } else {
            ai >> (64 - bit_off)
        };
        let s = acc[k] as DoubleLimb + shifted as DoubleLimb + carry as DoubleLimb;
        acc[k] = s as Limb;
        carry = (s >> 64) as Limb;
        k += 1;
    }
    let s = acc[k] as DoubleLimb + spill as DoubleLimb + carry as DoubleLimb;
    acc[k] = s as Limb;
    carry = (s >> 64) as Limb;
    k += 1;
    let carry = propagate_carry(&mut acc[k..], carry);
    if carry != 0 {
        acc.push(carry);
    }
    tally(a.len() as u64 + 1);
    normalize(acc);
}

/// Extract the bit range `[lo, hi)` into a caller-provided buffer — the
/// digit-splitting primitive without the intermediate shifted `Vec` that
/// [`bits_range`] pays for. Result normalized.
pub fn bits_range_into(a: &[Limb], lo: u64, hi: u64, out: &mut Vec<Limb>) {
    assert!(lo <= hi);
    out.clear();
    let limb_off = (lo / 64) as usize;
    if limb_off >= a.len() || hi == lo {
        return;
    }
    let bit_off = (lo % 64) as u32;
    let width = hi - lo;
    let keep = (width.div_ceil(64) as usize).min(a.len() - limb_off);
    let src = &a[limb_off..];
    out.reserve(keep);
    for i in 0..keep {
        let lo_part = src[i] >> bit_off;
        let hi_part = if bit_off == 0 {
            0
        } else {
            src.get(i + 1).map_or(0, |&x| x << (64 - bit_off))
        };
        out.push(lo_part | hi_part);
    }
    let rem_bits = (width % 64) as u32;
    if rem_bits != 0 && out.len() as u64 == width.div_ceil(64) {
        if let Some(last) = out.last_mut() {
            *last &= (1u64 << rem_bits) - 1;
        }
    }
    tally(keep as u64);
    normalize(out);
}

/// `a * m` for a single limb multiplier; result normalized.
pub fn mul_limb(a: &[Limb], m: Limb) -> Vec<Limb> {
    if m == 0 || a.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry: Limb = 0;
    for &ai in a {
        let t = ai as DoubleLimb * m as DoubleLimb + carry as DoubleLimb;
        out.push(t as Limb);
        carry = (t >> 64) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    tally(a.len() as u64);
    normalize(&mut out);
    out
}

/// Divide a magnitude by a single non-zero limb: returns `(quotient, remainder)`,
/// quotient normalized.
pub fn div_rem_limb(a: &[Limb], d: Limb) -> (Vec<Limb>, Limb) {
    assert!(d != 0, "division by zero limb");
    let mut q = vec![0 as Limb; a.len()];
    let mut rem: Limb = 0;
    for i in (0..a.len()).rev() {
        let cur = ((rem as DoubleLimb) << 64) | a[i] as DoubleLimb;
        q[i] = (cur / d as DoubleLimb) as Limb;
        rem = (cur % d as DoubleLimb) as Limb;
    }
    tally(a.len() as u64);
    normalize(&mut q);
    (q, rem)
}

/// Left shift by `bits`; result normalized.
pub fn shl_bits(a: &[Limb], bits: u64) -> Vec<Limb> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    let mut out = vec![0 as Limb; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry: Limb = 0;
        for &ai in a {
            out.push((ai << bit_shift) | carry);
            carry = ai >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    tally(a.len() as u64);
    normalize(&mut out);
    out
}

/// Logical right shift by `bits`; result normalized.
pub fn shr_bits(a: &[Limb], bits: u64) -> Vec<Limb> {
    let limb_shift = (bits / 64) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (bits % 64) as u32;
    let src = &a[limb_shift..];
    let mut out = Vec::with_capacity(src.len());
    if bit_shift == 0 {
        out.extend_from_slice(src);
    } else {
        for i in 0..src.len() {
            let hi = if i + 1 < src.len() {
                src[i + 1] << (64 - bit_shift)
            } else {
                0
            };
            out.push((src[i] >> bit_shift) | hi);
        }
    }
    tally(src.len() as u64);
    normalize(&mut out);
    out
}

/// Extract the bit range `[lo, hi)` of a magnitude as a new normalized
/// magnitude (bits beyond the magnitude's length read as zero).
///
/// This is the primitive behind base-`2^b` digit splitting (Toom-Cook input
/// splitting, Alg. 1 line 4).
pub fn bits_range(a: &[Limb], lo: u64, hi: u64) -> Vec<Limb> {
    let mut out = Vec::new();
    bits_range_into(a, lo, hi, &mut out);
    out
}

/// Number of significant bits of a normalized magnitude (0 for zero).
pub fn bit_length(a: &[Limb]) -> u64 {
    match a.last() {
        None => 0,
        Some(&top) => (a.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![u64::MAX, u64::MAX, 7];
        let b = vec![1, 0, u64::MAX];
        let s = add_slices(&a, &b);
        assert_eq!(sub_slices(&s, &b), a);
        assert_eq!(sub_slices(&s, &a), b);
    }

    #[test]
    fn add_carry_chain() {
        let a = vec![u64::MAX, u64::MAX];
        let s = add_slices(&a, &[1]);
        assert_eq!(s, vec![0, 0, 1]);
    }

    #[test]
    fn cmp_orders_by_length_then_lexicographic() {
        assert_eq!(cmp_slices(&[1, 2], &[5]), Ordering::Greater);
        assert_eq!(cmp_slices(&[9], &[1, 1]), Ordering::Less);
        assert_eq!(cmp_slices(&[3, 2], &[4, 2]), Ordering::Less);
        assert_eq!(cmp_slices(&[3, 2], &[3, 2]), Ordering::Equal);
    }

    #[test]
    fn schoolbook_small_products() {
        assert_eq!(mul_schoolbook(&[3], &[4]), vec![12]);
        assert_eq!(mul_schoolbook(&[], &[4]), Vec::<u64>::new());
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let p = mul_schoolbook(&[u64::MAX], &[u64::MAX]);
        assert_eq!(p, vec![1, u64::MAX - 1]);
    }

    #[test]
    fn mul_limb_matches_schoolbook() {
        let a = vec![0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210, 42];
        assert_eq!(mul_limb(&a, 12345), mul_schoolbook(&a, &[12345]));
    }

    #[test]
    fn div_rem_limb_inverts_mul() {
        let a = vec![0xdead_beef, 0xcafe_babe, 99];
        let m = 0x1234_5678_9abc_def1;
        let prod = mul_limb(&a, m);
        let (q, r) = div_rem_limb(&prod, m);
        assert_eq!(q, a);
        assert_eq!(r, 0);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = vec![0x8000_0000_0000_0001, 0xf0f0];
        for bits in [0u64, 1, 13, 64, 65, 130] {
            let up = shl_bits(&a, bits);
            assert_eq!(shr_bits(&up, bits), a, "bits={bits}");
        }
    }

    #[test]
    fn shr_to_zero() {
        assert_eq!(shr_bits(&[5], 3), Vec::<u64>::new());
        assert_eq!(shr_bits(&[5, 7], 200), Vec::<u64>::new());
    }

    #[test]
    fn bits_range_extracts_digits() {
        // value = 0b_1011_0110, digits of width 4: lo=0110, hi=1011
        let a = vec![0b1011_0110u64];
        assert_eq!(bits_range(&a, 0, 4), vec![0b0110]);
        assert_eq!(bits_range(&a, 4, 8), vec![0b1011]);
        assert_eq!(bits_range(&a, 8, 12), Vec::<u64>::new());
    }

    #[test]
    fn bits_range_across_limb_boundary() {
        let a = vec![u64::MAX, 0b101];
        assert_eq!(bits_range(&a, 60, 68), vec![0b0101_1111]);
    }

    #[test]
    fn bit_length_cases() {
        assert_eq!(bit_length(&[]), 0);
        assert_eq!(bit_length(&[1]), 1);
        assert_eq!(bit_length(&[u64::MAX]), 64);
        assert_eq!(bit_length(&[0, 1]), 65);
    }

    #[test]
    fn add_assign_matches_add_slices() {
        let cases: &[(Vec<Limb>, Vec<Limb>)] = &[
            (vec![], vec![]),
            (vec![], vec![7]),
            (vec![u64::MAX, u64::MAX], vec![1]),
            (vec![1], vec![u64::MAX, u64::MAX, u64::MAX]),
            (vec![5, 6, 7], vec![9, 10]),
        ];
        for (a, b) in cases {
            let mut acc = a.clone();
            add_assign_slices(&mut acc, b);
            assert_eq!(acc, add_slices(a, b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn sub_assign_reports_flip() {
        let mut acc = vec![3u64];
        assert!(sub_assign_slices(&mut acc, &[0, 1]));
        assert_eq!(acc, sub_slices(&[0, 1], &[3]));

        let mut acc = vec![0u64, 1];
        assert!(!sub_assign_slices(&mut acc, &[3]));
        assert_eq!(acc, sub_slices(&[0, 1], &[3]));

        let mut acc = vec![9u64, 4];
        assert!(!sub_assign_slices(&mut acc, &[9, 4]));
        assert_eq!(acc, Vec::<u64>::new());
    }

    #[test]
    fn mul_into_reuses_buffer() {
        let a = vec![u64::MAX; 5];
        let b = vec![u64::MAX; 3];
        let mut out = vec![0xdead_beefu64; 2]; // stale contents must vanish
        mul_into(&a, &b, &mut out);
        assert_eq!(out, mul_schoolbook(&a, &b));
        mul_into(&[], &b, &mut out);
        assert_eq!(out, Vec::<u64>::new());
    }

    #[test]
    fn mul_basecase_overwrites_dirty_buffer() {
        let a = vec![0x0123_4567_89ab_cdefu64, 0, u64::MAX];
        let b = vec![u64::MAX, 42];
        let mut out = vec![u64::MAX; a.len() + b.len()];
        mul_basecase(&a, &b, &mut out);
        let mut expect = mul_schoolbook(&a, &b);
        expect.resize(a.len() + b.len(), 0);
        assert_eq!(out, expect);
    }

    #[test]
    fn addmul_blocked_matches_schoolbook() {
        // Force multiple blocks with a long multiplicand.
        let a: Vec<Limb> = (0..7).map(|i| u64::MAX - i).collect();
        let b: Vec<Limb> = (0..(MUL_BLOCK_LIMBS as u64 + 9))
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
            .collect();
        let mut out = vec![0u64; a.len() + b.len()];
        addmul_slices(&a, &b, &mut out);
        normalize(&mut out);
        assert_eq!(out, mul_schoolbook(&a, &b));
    }

    #[test]
    fn mul_limb_into_and_assign_match() {
        let a = vec![u64::MAX, 0xcafe, u64::MAX];
        let m = 0x1234_5678_9abc_def1;
        let mut out = Vec::new();
        mul_limb_into(&a, m, &mut out);
        assert_eq!(out, mul_limb(&a, m));
        let mut v = a.clone();
        mul_limb_assign(&mut v, m);
        assert_eq!(v, out);
        mul_limb_assign(&mut v, 0);
        assert_eq!(v, Vec::<u64>::new());
    }

    #[test]
    fn div_rem_limb_assign_matches() {
        let a = vec![0xdead_beefu64, 0xcafe_babe, 99];
        let (q, r) = div_rem_limb(&a, 0x1234_5679);
        let mut v = a.clone();
        let r2 = div_rem_limb_assign(&mut v, 0x1234_5679);
        assert_eq!((v, r2), (q, r));
    }

    #[test]
    fn add_shifted_matches_shl_then_add() {
        let d = vec![0x8000_0000_0000_0001u64, 0xf0f0];
        for shift in [0u64, 1, 13, 64, 65, 130, 200] {
            let mut acc = vec![u64::MAX, u64::MAX, 3];
            let expect = add_slices(&acc, &shl_bits(&d, shift));
            add_shifted_assign_slices(&mut acc, &d, shift);
            assert_eq!(acc, expect, "shift={shift}");
        }
        // Empty digit is a no-op.
        let mut acc = vec![5u64];
        add_shifted_assign_slices(&mut acc, &[], 77);
        assert_eq!(acc, vec![5]);
    }

    #[test]
    fn bits_range_into_matches_shift_and_mask() {
        let a = vec![u64::MAX, 0b101, 0, 0xffff_0000_0000_0000];
        for (lo, hi) in [
            (0u64, 4u64),
            (60, 68),
            (64, 128),
            (13, 200),
            (250, 260),
            (300, 400),
            (7, 7),
        ] {
            // Independent reference: shift down, truncate, mask.
            let shifted = shr_bits(&a, lo);
            let width = hi - lo;
            let mut expect: Vec<Limb> = shifted
                .into_iter()
                .take(width.div_ceil(64) as usize)
                .collect();
            let rem = (width % 64) as u32;
            if rem != 0 && expect.len() as u64 == width.div_ceil(64) {
                if let Some(last) = expect.last_mut() {
                    *last &= (1u64 << rem) - 1;
                }
            }
            normalize(&mut expect);
            let mut out = vec![1u64; 3];
            bits_range_into(&a, lo, hi, &mut out);
            assert_eq!(out, expect, "[{lo},{hi})");
        }
    }

    #[test]
    fn propagate_carry_and_borrow_ripple() {
        let mut v = vec![u64::MAX, u64::MAX, 7];
        assert_eq!(propagate_carry(&mut v, 1), 0);
        assert_eq!(v, vec![0, 0, 8]);
        assert_eq!(propagate_borrow(&mut v, 1), 0);
        assert_eq!(v, vec![u64::MAX, u64::MAX, 7]);
        let mut w = vec![u64::MAX];
        assert_eq!(propagate_carry(&mut w, 1), 1);
    }
}
