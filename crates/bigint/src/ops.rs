//! Low-level limb-slice primitives.
//!
//! All functions operate on little-endian `u64` limb slices. Magnitudes are
//! *normalized* when they carry no trailing (most-significant) zero limbs;
//! functions document whether they require or produce normalized slices.
//!
//! These are the word operations the paper's cost model charges for; each
//! inner loop tallies one unit per limb touched arithmetically.

use crate::metrics::tally;
use crate::{DoubleLimb, Limb};
use std::cmp::Ordering;

/// Strip trailing zero limbs in place, leaving a normalized magnitude.
pub fn normalize(v: &mut Vec<Limb>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

/// Compare two normalized magnitudes.
pub fn cmp_slices(a: &[Limb], b: &[Limb]) -> Ordering {
    debug_assert!(a.last() != Some(&0) && b.last() != Some(&0));
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        }
        other => other,
    }
}

/// `a + b`, magnitudes in any normalization state; result normalized.
#[allow(clippy::needless_range_loop)] // index drives two slices at once
pub fn add_slices(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: Limb = 0;
    for i in 0..long.len() {
        let s =
            long[i] as DoubleLimb + *short.get(i).unwrap_or(&0) as DoubleLimb + carry as DoubleLimb;
        out.push(s as Limb);
        carry = (s >> 64) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    tally(long.len() as u64);
    normalize(&mut out);
    out
}

/// `a - b` for normalized `a >= b`; result normalized.
///
/// # Panics
/// Debug-panics if `a < b`.
#[allow(clippy::needless_range_loop)] // index drives two slices at once
pub fn sub_slices(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    debug_assert!(
        cmp_slices(a, b) != Ordering::Less,
        "sub_slices requires a >= b"
    );
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: Limb = 0;
    for i in 0..a.len() {
        let bi = *b.get(i).unwrap_or(&0);
        let (d1, o1) = a[i].overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (o1 | o2) as Limb;
    }
    debug_assert_eq!(borrow, 0);
    tally(a.len() as u64);
    normalize(&mut out);
    out
}

/// Schoolbook product of two magnitudes (`Θ(|a|·|b|)` word ops); result
/// normalized. Empty inputs yield the empty (zero) magnitude.
pub fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0 as Limb; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as DoubleLimb
                + ai as DoubleLimb * bj as DoubleLimb
                + carry as DoubleLimb;
            out[i + j] = t as Limb;
            carry = (t >> 64) as Limb;
        }
        out[i + b.len()] = carry;
        tally(b.len() as u64);
    }
    normalize(&mut out);
    out
}

/// `a * m` for a single limb multiplier; result normalized.
pub fn mul_limb(a: &[Limb], m: Limb) -> Vec<Limb> {
    if m == 0 || a.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry: Limb = 0;
    for &ai in a {
        let t = ai as DoubleLimb * m as DoubleLimb + carry as DoubleLimb;
        out.push(t as Limb);
        carry = (t >> 64) as Limb;
    }
    if carry != 0 {
        out.push(carry);
    }
    tally(a.len() as u64);
    normalize(&mut out);
    out
}

/// Divide a magnitude by a single non-zero limb: returns `(quotient, remainder)`,
/// quotient normalized.
pub fn div_rem_limb(a: &[Limb], d: Limb) -> (Vec<Limb>, Limb) {
    assert!(d != 0, "division by zero limb");
    let mut q = vec![0 as Limb; a.len()];
    let mut rem: Limb = 0;
    for i in (0..a.len()).rev() {
        let cur = ((rem as DoubleLimb) << 64) | a[i] as DoubleLimb;
        q[i] = (cur / d as DoubleLimb) as Limb;
        rem = (cur % d as DoubleLimb) as Limb;
    }
    tally(a.len() as u64);
    normalize(&mut q);
    (q, rem)
}

/// Left shift by `bits`; result normalized.
pub fn shl_bits(a: &[Limb], bits: u64) -> Vec<Limb> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    let mut out = vec![0 as Limb; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry: Limb = 0;
        for &ai in a {
            out.push((ai << bit_shift) | carry);
            carry = ai >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    tally(a.len() as u64);
    normalize(&mut out);
    out
}

/// Logical right shift by `bits`; result normalized.
pub fn shr_bits(a: &[Limb], bits: u64) -> Vec<Limb> {
    let limb_shift = (bits / 64) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (bits % 64) as u32;
    let src = &a[limb_shift..];
    let mut out = Vec::with_capacity(src.len());
    if bit_shift == 0 {
        out.extend_from_slice(src);
    } else {
        for i in 0..src.len() {
            let hi = if i + 1 < src.len() {
                src[i + 1] << (64 - bit_shift)
            } else {
                0
            };
            out.push((src[i] >> bit_shift) | hi);
        }
    }
    tally(src.len() as u64);
    normalize(&mut out);
    out
}

/// Extract the bit range `[lo, hi)` of a magnitude as a new normalized
/// magnitude (bits beyond the magnitude's length read as zero).
///
/// This is the primitive behind base-`2^b` digit splitting (Toom-Cook input
/// splitting, Alg. 1 line 4).
pub fn bits_range(a: &[Limb], lo: u64, hi: u64) -> Vec<Limb> {
    assert!(lo <= hi);
    let shifted = shr_bits(a, lo);
    let width = hi - lo;
    // Mask to `width` bits.
    let keep_limbs = width.div_ceil(64) as usize;
    let mut out: Vec<Limb> = shifted.into_iter().take(keep_limbs).collect();
    let rem_bits = (width % 64) as u32;
    if rem_bits != 0 && out.len() == keep_limbs {
        if let Some(last) = out.last_mut() {
            *last &= (1u64 << rem_bits) - 1;
        }
    }
    normalize(&mut out);
    out
}

/// Number of significant bits of a normalized magnitude (0 for zero).
pub fn bit_length(a: &[Limb]) -> u64 {
    match a.last() {
        None => 0,
        Some(&top) => (a.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![u64::MAX, u64::MAX, 7];
        let b = vec![1, 0, u64::MAX];
        let s = add_slices(&a, &b);
        assert_eq!(sub_slices(&s, &b), a);
        assert_eq!(sub_slices(&s, &a), b);
    }

    #[test]
    fn add_carry_chain() {
        let a = vec![u64::MAX, u64::MAX];
        let s = add_slices(&a, &[1]);
        assert_eq!(s, vec![0, 0, 1]);
    }

    #[test]
    fn cmp_orders_by_length_then_lexicographic() {
        assert_eq!(cmp_slices(&[1, 2], &[5]), Ordering::Greater);
        assert_eq!(cmp_slices(&[9], &[1, 1]), Ordering::Less);
        assert_eq!(cmp_slices(&[3, 2], &[4, 2]), Ordering::Less);
        assert_eq!(cmp_slices(&[3, 2], &[3, 2]), Ordering::Equal);
    }

    #[test]
    fn schoolbook_small_products() {
        assert_eq!(mul_schoolbook(&[3], &[4]), vec![12]);
        assert_eq!(mul_schoolbook(&[], &[4]), Vec::<u64>::new());
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let p = mul_schoolbook(&[u64::MAX], &[u64::MAX]);
        assert_eq!(p, vec![1, u64::MAX - 1]);
    }

    #[test]
    fn mul_limb_matches_schoolbook() {
        let a = vec![0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210, 42];
        assert_eq!(mul_limb(&a, 12345), mul_schoolbook(&a, &[12345]));
    }

    #[test]
    fn div_rem_limb_inverts_mul() {
        let a = vec![0xdead_beef, 0xcafe_babe, 99];
        let m = 0x1234_5678_9abc_def1;
        let prod = mul_limb(&a, m);
        let (q, r) = div_rem_limb(&prod, m);
        assert_eq!(q, a);
        assert_eq!(r, 0);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = vec![0x8000_0000_0000_0001, 0xf0f0];
        for bits in [0u64, 1, 13, 64, 65, 130] {
            let up = shl_bits(&a, bits);
            assert_eq!(shr_bits(&up, bits), a, "bits={bits}");
        }
    }

    #[test]
    fn shr_to_zero() {
        assert_eq!(shr_bits(&[5], 3), Vec::<u64>::new());
        assert_eq!(shr_bits(&[5, 7], 200), Vec::<u64>::new());
    }

    #[test]
    fn bits_range_extracts_digits() {
        // value = 0b_1011_0110, digits of width 4: lo=0110, hi=1011
        let a = vec![0b1011_0110u64];
        assert_eq!(bits_range(&a, 0, 4), vec![0b0110]);
        assert_eq!(bits_range(&a, 4, 8), vec![0b1011]);
        assert_eq!(bits_range(&a, 8, 12), Vec::<u64>::new());
    }

    #[test]
    fn bits_range_across_limb_boundary() {
        let a = vec![u64::MAX, 0b101];
        assert_eq!(bits_range(&a, 60, 68), vec![0b0101_1111]);
    }

    #[test]
    fn bit_length_cases() {
        assert_eq!(bit_length(&[]), 0);
        assert_eq!(bit_length(&[1]), 1);
        assert_eq!(bit_length(&[u64::MAX]), 64);
        assert_eq!(bit_length(&[0, 1]), 65);
    }
}
