//! Montgomery modular arithmetic — the production way to run the RSA-style
//! workloads of the crypto example without per-step long division.
//!
//! A [`MontgomeryCtx`] fixes an odd modulus `n` of `L` limbs; values live
//! in Montgomery form `x·R mod n` with `R = 2^{64L}`, and `mont_mul`
//! performs multiply + word-by-word REDC in `O(L²)` limb operations. The
//! *plain multiplier* used inside (`a·b` before reduction) is pluggable,
//! so Toom-Cook kernels accelerate Montgomery exponentiation too.

use crate::bigint::BigInt;
use crate::metrics::tally;
use crate::ops;
use crate::{DoubleLimb, Limb};

/// Precomputed context for Montgomery arithmetic modulo an odd `n`.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: BigInt,
    limbs: usize,
    /// `-n⁻¹ mod 2^64`.
    n0_inv: Limb,
    /// `R² mod n` (to enter Montgomery form).
    rr: BigInt,
}

impl MontgomeryCtx {
    /// Build a context.
    ///
    /// # Panics
    /// Panics if `n` is even or not positive.
    #[must_use]
    pub fn new(n: &BigInt) -> MontgomeryCtx {
        assert!(n.signum() > 0, "modulus must be positive");
        assert!(n.is_odd(), "Montgomery arithmetic needs an odd modulus");
        let limbs = n.word_len();
        // Newton iteration for the 64-bit inverse of n0 (odd ⇒ invertible).
        let n0 = n.limbs()[0];
        let mut inv: Limb = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        // R² mod n with R = 2^{64·limbs}.
        let rr = BigInt::one().shl_bits(128 * limbs as u64).mod_floor(n);
        MontgomeryCtx {
            n: n.clone(),
            limbs,
            n0_inv,
            rr,
        }
    }

    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> &BigInt {
        &self.n
    }

    /// REDC: given `t < n·R`, compute `t·R⁻¹ mod n` (word-by-word).
    fn redc(&self, t: &BigInt) -> BigInt {
        let l = self.limbs;
        let mut buf: Vec<Limb> = t.limbs().to_vec();
        buf.resize(2 * l + 1, 0);
        let n = self.n.limbs();
        for i in 0..l {
            let m = buf[i].wrapping_mul(self.n0_inv);
            // buf += m · n · 2^{64 i}
            let mut carry: Limb = 0;
            for (j, &nj) in n.iter().enumerate() {
                let s = buf[i + j] as DoubleLimb
                    + m as DoubleLimb * nj as DoubleLimb
                    + carry as DoubleLimb;
                buf[i + j] = s as Limb;
                carry = (s >> 64) as Limb;
            }
            // Propagate the carry.
            let mut idx = i + l;
            let mut c = carry;
            while c != 0 {
                let (v, o) = buf[idx].overflowing_add(c);
                buf[idx] = v;
                c = Limb::from(o);
                idx += 1;
            }
            tally(l as u64);
        }
        let mut out: Vec<Limb> = buf[l..].to_vec();
        ops::normalize(&mut out);
        let mut r = BigInt::from_limbs(out);
        if r.cmp_abs(&self.n) != std::cmp::Ordering::Less {
            r = &r - &self.n;
        }
        r
    }

    /// Enter Montgomery form: `x·R mod n`.
    #[must_use]
    pub fn to_mont(&self, x: &BigInt) -> BigInt {
        let x = x.mod_floor(&self.n);
        self.redc(&x.mul_schoolbook(&self.rr))
    }

    /// Leave Montgomery form: `x̄·R⁻¹ mod n`.
    #[must_use]
    pub fn from_mont(&self, x: &BigInt) -> BigInt {
        self.redc(x)
    }

    /// Montgomery product of two Montgomery-form values, with a pluggable
    /// plain multiplier for the `a·b` step.
    #[must_use]
    pub fn mont_mul_with(
        &self,
        a: &BigInt,
        b: &BigInt,
        mul: &dyn Fn(&BigInt, &BigInt) -> BigInt,
    ) -> BigInt {
        self.redc(&mul(a, b))
    }

    /// Montgomery product with the schoolbook multiplier.
    #[must_use]
    pub fn mont_mul(&self, a: &BigInt, b: &BigInt) -> BigInt {
        self.mont_mul_with(a, b, &|x, y| x.mul_schoolbook(y))
    }

    /// `base^exp mod n` via Montgomery square-and-multiply.
    #[must_use]
    pub fn mod_pow(&self, base: &BigInt, exp: &BigInt) -> BigInt {
        self.mod_pow_with(base, exp, &|x, y| x.mul_schoolbook(y))
    }

    /// `base^exp mod n` with a pluggable plain multiplier.
    ///
    /// # Panics
    /// Panics on a negative exponent.
    #[must_use]
    pub fn mod_pow_with(
        &self,
        base: &BigInt,
        exp: &BigInt,
        mul: &dyn Fn(&BigInt, &BigInt) -> BigInt,
    ) -> BigInt {
        assert!(!exp.is_negative(), "negative exponent");
        let mut acc = self.to_mont(&BigInt::one());
        let mut b = self.to_mont(base);
        let bits = exp.bit_length();
        for i in 0..bits {
            if exp.bit(i) {
                acc = self.mont_mul_with(&acc, &b, mul);
            }
            if i + 1 < bits {
                b = self.mont_mul_with(&b.clone(), &b, mul);
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn roundtrip_mont_form() {
        let n = b(1_000_003);
        let ctx = MontgomeryCtx::new(&n);
        for v in [0i64, 1, 2, 999_999, 123_456] {
            let m = ctx.to_mont(&b(v));
            assert_eq!(ctx.from_mont(&m), b(v).mod_floor(&n), "v={v}");
        }
    }

    #[test]
    fn mont_mul_matches_plain() {
        let n = b(104_729); // prime
        let ctx = MontgomeryCtx::new(&n);
        for (x, y) in [(3i64, 5i64), (104_728, 104_728), (54_321, 9_876)] {
            let mx = ctx.to_mont(&b(x));
            let my = ctx.to_mont(&b(y));
            let got = ctx.from_mont(&ctx.mont_mul(&mx, &my));
            assert_eq!(got, (&b(x) * &b(y)).mod_floor(&n), "{x}*{y}");
        }
    }

    #[test]
    fn mod_pow_matches_generic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut n = BigInt::random_bits(&mut rng, 512);
        if !n.is_odd() {
            n += &BigInt::one();
        }
        let ctx = MontgomeryCtx::new(&n);
        for _ in 0..5 {
            let base = BigInt::random_below(&mut rng, &n);
            let exp = BigInt::random_bits(&mut rng, 40);
            assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow(&exp, &n));
        }
    }

    #[test]
    fn multi_limb_modulus() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut n = BigInt::random_bits(&mut rng, 1024);
        if !n.is_odd() {
            n += &BigInt::one();
        }
        let ctx = MontgomeryCtx::new(&n);
        let x = BigInt::random_below(&mut rng, &n);
        let y = BigInt::random_below(&mut rng, &n);
        let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&x), &ctx.to_mont(&y)));
        assert_eq!(got, (&x * &y).mod_floor(&n));
    }

    #[test]
    fn custom_multiplier_is_used() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let n = b(1_000_003);
        let ctx = MontgomeryCtx::new(&n);
        let mul = |x: &BigInt, y: &BigInt| {
            calls.set(calls.get() + 1);
            x.mul_schoolbook(y)
        };
        let r = ctx.mod_pow_with(&b(7), &b(65_537), &mul);
        assert_eq!(r, b(7).mod_pow(&b(65_537), &n));
        assert!(calls.get() > 16);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        let _ = MontgomeryCtx::new(&b(100));
    }
}
