//! The [`BigInt`] type: sign-magnitude arbitrary-precision integers.

use crate::ops;
use crate::Limb;
use std::cmp::Ordering;

/// Sign of a [`BigInt`]. Zero is its own sign so normalization is unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

#[allow(clippy::should_implement_trait)] // sign algebra, not std::ops
impl Sign {
    /// The opposite sign (zero is its own opposite).
    #[must_use]
    pub fn neg(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Product-of-signs rule.
    #[must_use]
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }

    /// `-1`, `0`, or `1`.
    #[must_use]
    pub fn signum(self) -> i32 {
        match self {
            Sign::Negative => -1,
            Sign::Zero => 0,
            Sign::Positive => 1,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariants: `mag` is normalized (no trailing zero limbs) and
/// `sign == Sign::Zero` iff `mag.is_empty()`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    pub(crate) sign: Sign,
    pub(crate) mag: Vec<Limb>,
}

impl BigInt {
    /// The integer `0`.
    #[must_use]
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer `1`.
    #[must_use]
    pub fn one() -> BigInt {
        BigInt::from(1u64)
    }

    /// Build from a sign and raw little-endian limbs (normalizes; sign of a
    /// zero magnitude is forced to [`Sign::Zero`]).
    #[must_use]
    pub fn from_sign_limbs(sign: Sign, mut mag: Vec<Limb>) -> BigInt {
        ops::normalize(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "non-zero magnitude with Sign::Zero");
            BigInt { sign, mag }
        }
    }

    /// Non-negative integer from little-endian limbs.
    #[must_use]
    pub fn from_limbs(mag: Vec<Limb>) -> BigInt {
        let mut mag = mag;
        ops::normalize(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag,
            }
        }
    }

    /// The sign of this integer.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// `-1`, `0` or `1`.
    #[must_use]
    pub fn signum(&self) -> i32 {
        self.sign.signum()
    }

    /// `true` iff this is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff this equals one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag == [1]
    }

    /// `true` iff strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// `true` iff the low bit is set (odd magnitude).
    #[must_use]
    pub fn is_odd(&self) -> bool {
        self.mag.first().is_some_and(|l| l & 1 == 1)
    }

    /// Little-endian limbs of the magnitude (normalized; empty for zero).
    #[must_use]
    pub fn limbs(&self) -> &[Limb] {
        &self.mag
    }

    /// Consume `self`, returning the magnitude's limb buffer (the sign is
    /// discarded). Lets callers recycle the allocation, e.g. via
    /// [`crate::workspace::Workspace::recycle_limbs`].
    #[must_use]
    pub fn into_limbs(self) -> Vec<Limb> {
        self.mag
    }

    /// Number of limbs ("words") in the magnitude. This is the unit in which
    /// the simulator charges bandwidth for transferring this integer.
    #[must_use]
    pub fn word_len(&self) -> usize {
        self.mag.len()
    }

    /// Number of significant bits of the magnitude (0 for zero).
    #[must_use]
    pub fn bit_length(&self) -> u64 {
        ops::bit_length(&self.mag)
    }

    /// Value of bit `i` of the magnitude.
    #[must_use]
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        self.mag.get(limb).is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Zero {
                Sign::Zero
            } else {
                Sign::Positive
            },
            mag: self.mag.clone(),
        }
    }

    /// Compare absolute values.
    #[must_use]
    pub fn cmp_abs(&self, other: &BigInt) -> Ordering {
        ops::cmp_slices(&self.mag, &other.mag)
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => ops::cmp_slices(&other.mag, &self.mag),
            (Sign::Positive, Sign::Positive) => ops::cmp_slices(&self.mag, &other.mag),
            (a, b) => a.signum().cmp(&b.signum()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized() {
        let z = BigInt::from_limbs(vec![0, 0, 0]);
        assert!(z.is_zero());
        assert_eq!(z, BigInt::zero());
        assert_eq!(z.word_len(), 0);
    }

    #[test]
    fn ordering_mixed_signs() {
        let neg = BigInt::from(-5i64);
        let zero = BigInt::zero();
        let pos = BigInt::from(3u64);
        assert!(neg < zero);
        assert!(zero < pos);
        assert!(neg < pos);
        assert!(BigInt::from(-10i64) < BigInt::from(-2i64));
        assert!(BigInt::from(10i64) > BigInt::from(2i64));
    }

    #[test]
    fn sign_algebra() {
        assert_eq!(Sign::Negative.mul(Sign::Negative), Sign::Positive);
        assert_eq!(Sign::Negative.mul(Sign::Positive), Sign::Negative);
        assert_eq!(Sign::Zero.mul(Sign::Negative), Sign::Zero);
        assert_eq!(Sign::Positive.neg(), Sign::Negative);
        assert_eq!(Sign::Zero.neg(), Sign::Zero);
    }

    #[test]
    fn bit_accessors() {
        let x = BigInt::from(0b1010u64);
        assert!(!x.bit(0));
        assert!(x.bit(1));
        assert!(!x.bit(2));
        assert!(x.bit(3));
        assert!(!x.bit(64));
        assert_eq!(x.bit_length(), 4);
        assert!(!x.is_odd());
        assert!(BigInt::from(7u64).is_odd());
    }
}
