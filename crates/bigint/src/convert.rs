//! Conversions between [`BigInt`] and primitive integers.

use crate::bigint::{BigInt, Sign};

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let v = v as u128;
                if v == 0 {
                    BigInt::zero()
                } else if v <= u64::MAX as u128 {
                    BigInt { sign: Sign::Positive, mag: vec![v as u64] }
                } else {
                    BigInt { sign: Sign::Positive, mag: vec![v as u64, (v >> 64) as u64] }
                }
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let neg = v < 0;
                let mag = (v as i128).unsigned_abs();
                let mut out = BigInt::from(mag);
                if neg {
                    out.sign = Sign::Negative;
                }
                out
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize, u128);
from_signed!(i8, i16, i32, i64, isize, i128);

/// Error converting a [`BigInt`] into a primitive: out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryFromBigIntError;

impl std::fmt::Display for TryFromBigIntError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigInt out of range for target integer type")
    }
}

impl std::error::Error for TryFromBigIntError {}

impl TryFrom<&BigInt> for u64 {
    type Error = TryFromBigIntError;
    fn try_from(v: &BigInt) -> Result<u64, TryFromBigIntError> {
        match (v.sign, v.mag.as_slice()) {
            (Sign::Zero, _) => Ok(0),
            (Sign::Positive, [l]) => Ok(*l),
            _ => Err(TryFromBigIntError),
        }
    }
}

impl TryFrom<&BigInt> for i64 {
    type Error = TryFromBigIntError;
    fn try_from(v: &BigInt) -> Result<i64, TryFromBigIntError> {
        match (v.sign, v.mag.as_slice()) {
            (Sign::Zero, _) => Ok(0),
            (Sign::Positive, [l]) if *l <= i64::MAX as u64 => Ok(*l as i64),
            (Sign::Negative, [l]) if *l <= 1u64 << 63 => Ok((*l).wrapping_neg() as i64),
            _ => Err(TryFromBigIntError),
        }
    }
}

impl TryFrom<&BigInt> for u128 {
    type Error = TryFromBigIntError;
    fn try_from(v: &BigInt) -> Result<u128, TryFromBigIntError> {
        match (v.sign, v.mag.as_slice()) {
            (Sign::Zero, _) => Ok(0),
            (Sign::Positive, [l]) => Ok(*l as u128),
            (Sign::Positive, [lo, hi]) => Ok((*hi as u128) << 64 | *lo as u128),
            _ => Err(TryFromBigIntError),
        }
    }
}

/// Approximate the value as an `f64` (for reporting only; saturates to
/// `±inf` when out of range).
impl From<&BigInt> for f64 {
    fn from(v: &BigInt) -> f64 {
        let mut acc = 0.0f64;
        for &l in v.mag.iter().rev() {
            acc = acc * 2f64.powi(64) + l as f64;
        }
        acc * v.signum() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::try_from(&BigInt::from(42u64)), Ok(42));
        assert_eq!(i64::try_from(&BigInt::from(-42i64)), Ok(-42));
        assert_eq!(i64::try_from(&BigInt::from(i64::MIN)), Ok(i64::MIN));
        assert_eq!(i64::try_from(&BigInt::from(i64::MAX)), Ok(i64::MAX));
        assert_eq!(u128::try_from(&BigInt::from(u128::MAX)), Ok(u128::MAX));
        assert_eq!(u64::try_from(&BigInt::zero()), Ok(0));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u64::try_from(&BigInt::from(u128::MAX)).is_err());
        assert!(u64::try_from(&BigInt::from(-1i64)).is_err());
        assert!(i64::try_from(&BigInt::from(u64::MAX)).is_err());
    }

    #[test]
    fn two_limb_unsigned() {
        let v = BigInt::from(u128::MAX);
        assert_eq!(v.word_len(), 2);
        assert_eq!(v.limbs(), &[u64::MAX, u64::MAX]);
    }

    #[test]
    fn f64_approximation() {
        let v = BigInt::from(1u64 << 52);
        assert_eq!(f64::from(&v), 2f64.powi(52));
        assert_eq!(f64::from(&BigInt::from(-8i64)), -8.0);
    }
}
