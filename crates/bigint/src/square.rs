//! Squaring — the asymmetric special case (`a·a`) with roughly half the
//! limb products of a general multiplication (cf. Zuras, "On squaring and
//! multiplying large integers", the paper's reference [86]).

use crate::bigint::{BigInt, Sign};
use crate::metrics::tally;
use crate::ops;
use crate::{DoubleLimb, Limb};

/// Schoolbook squaring of a magnitude: diagonal terms once, cross terms
/// doubled — `n(n+1)/2` limb products instead of `n²`.
#[must_use]
pub fn sqr_schoolbook(a: &[Limb]) -> Vec<Limb> {
    if a.is_empty() {
        return Vec::new();
    }
    let n = a.len();
    let mut out = vec![0 as Limb; 2 * n];

    // Cross products a[i]·a[j] for i < j, accumulated once.
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        let mut carry: Limb = 0;
        for j in i + 1..n {
            let t = out[i + j] as DoubleLimb
                + a[i] as DoubleLimb * a[j] as DoubleLimb
                + carry as DoubleLimb;
            out[i + j] = t as Limb;
            carry = (t >> 64) as Limb;
        }
        out[i + n] = carry;
        tally((n - i) as u64);
    }

    // Double the cross products (shift left by one bit).
    let mut carry_bit: Limb = 0;
    for limb in out.iter_mut() {
        let new_carry = *limb >> 63;
        *limb = (*limb << 1) | carry_bit;
        carry_bit = new_carry;
    }
    tally(2 * n as u64);
    debug_assert_eq!(carry_bit, 0, "top cross product cannot overflow 2n limbs");

    // Add the diagonal a[i]².
    let mut carry: Limb = 0;
    for i in 0..n {
        let sq = a[i] as DoubleLimb * a[i] as DoubleLimb;
        let lo = sq as Limb;
        let hi = (sq >> 64) as Limb;
        let t = out[2 * i] as DoubleLimb + lo as DoubleLimb + carry as DoubleLimb;
        out[2 * i] = t as Limb;
        let c1 = (t >> 64) as Limb;
        let t = out[2 * i + 1] as DoubleLimb + hi as DoubleLimb + c1 as DoubleLimb;
        out[2 * i + 1] = t as Limb;
        carry = (t >> 64) as Limb;
        debug_assert!(carry <= 1);
        // Propagate the (rare) carry into higher limbs.
        let mut idx = 2 * i + 2;
        while carry != 0 && idx < 2 * n {
            let (v, o) = out[idx].overflowing_add(carry);
            out[idx] = v;
            carry = Limb::from(o);
            idx += 1;
        }
    }
    tally(2 * n as u64);

    ops::normalize(&mut out);
    out
}

impl BigInt {
    /// `self²` — halved schoolbook squaring below the Karatsuba crossover,
    /// workspace-backed Karatsuba squaring above it. Always non-negative.
    #[must_use]
    pub fn square(&self) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        if self.mag.len() <= crate::kernels::SQUARE_THRESHOLD_LIMBS {
            BigInt {
                sign: Sign::Positive,
                mag: sqr_schoolbook(&self.mag),
            }
        } else {
            crate::workspace::with_thread_local(|ws| self.square_with_ws(ws))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;

    #[test]
    fn small_squares() {
        for v in [0i64, 1, 2, -3, 255, -256, i64::MAX] {
            let x = BigInt::from(v);
            assert_eq!(x.square(), x.mul_schoolbook(&x), "v={v}");
        }
    }

    #[test]
    fn carry_heavy_squares() {
        let cases = [
            BigInt::from(u64::MAX),
            BigInt::from(u128::MAX),
            BigInt::from_limbs(vec![u64::MAX; 5]),
            BigInt::from_limbs(vec![u64::MAX, 0, u64::MAX]),
            BigInt::from_limbs(vec![0, 0, 1]),
        ];
        for x in &cases {
            assert_eq!(x.square(), x.mul_schoolbook(x), "{x:?}");
        }
    }

    #[test]
    fn random_squares_match_general_multiply() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for bits in [63u64, 64, 65, 500, 4_000] {
            let x = BigInt::random_signed_bits(&mut rng, bits);
            assert_eq!(x.square(), x.mul_schoolbook(&x), "bits={bits}");
        }
    }

    #[test]
    fn squaring_does_fewer_ops() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let x = BigInt::random_bits(&mut rng, 64 * 256);
        let (_, sq_ops) = metrics::measure(|| x.square());
        let (_, mul_ops) = metrics::measure(|| x.mul_schoolbook(&x));
        assert!(
            (sq_ops as f64) < 0.75 * mul_ops as f64,
            "square {sq_ops} ops should be well under multiply {mul_ops}"
        );
    }
}
