//! Thread-local arithmetic-work accounting.
//!
//! The paper's machine model (§2.1) charges `γ` per word-level arithmetic
//! operation; `F` is the number of such operations along the critical path.
//! Each simulated processor in `ft-machine` runs on its own OS thread, so a
//! thread-local counter gives exact per-processor `F` with zero sharing.
//!
//! All limb-level inner loops in this crate call [`tally`]. Higher layers
//! read deltas with [`ops_performed`] or scoped via [`measure`].

use std::cell::Cell;

thread_local! {
    static OPS: Cell<u64> = const { Cell::new(0) };
}

/// Record `n` word operations performed by the current thread.
#[inline(always)]
pub fn tally(n: u64) {
    OPS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Total word operations performed by the current thread since it started
/// (or since the counter last wrapped; it is a free-running counter — take
/// deltas, do not compare across threads).
#[inline]
pub fn ops_performed() -> u64 {
    OPS.with(|c| c.get())
}

/// Reset this thread's counter to zero. Mostly useful in tests.
#[inline]
pub fn reset() {
    OPS.with(|c| c.set(0));
}

/// Run `f` and return `(result, word-ops performed by f on this thread)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ops_performed();
    let out = f();
    let after = ops_performed();
    (out, after.wrapping_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates() {
        let base = ops_performed();
        tally(5);
        tally(7);
        assert_eq!(ops_performed().wrapping_sub(base), 12);
    }

    #[test]
    fn measure_reports_delta() {
        let ((), n) = measure(|| tally(42));
        assert_eq!(n, 42);
    }

    #[test]
    fn counters_are_per_thread() {
        reset();
        tally(3);
        let other = std::thread::spawn(|| {
            tally(1000);
            ops_performed()
        })
        .join()
        .unwrap();
        assert!(other >= 1000);
        assert_eq!(ops_performed(), 3);
    }
}
