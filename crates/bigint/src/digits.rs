//! Base-`2^b` digit splitting and reassembly.
//!
//! Toom-Cook-k splits its inputs into `k` digits over a shared power-of-two
//! base `B = 2^b` (Alg. 1 line 4) and reassembles the product with carries
//! as `c = Σ c'_i · B^i` (Alg. 1 line 16). Digits produced by splitting are
//! non-negative and `< B`; digits fed to [`BigInt::join_base_pow2`] may be
//! arbitrary signed integers wider than `b` bits — the evaluation at `B`
//! performs the carry propagation.

use crate::bigint::{BigInt, Sign};
use crate::ops;
use crate::workspace::Workspace;

impl BigInt {
    /// Split `|self|` into exactly `count` digits of `b_bits` bits each,
    /// least-significant first. Requires `count * b_bits >= bit_length()`
    /// (high digits pad with zero) and a non-negative value.
    ///
    /// # Panics
    /// Panics if `self` is negative, `b_bits == 0`, or the digits cannot
    /// hold the value.
    #[must_use]
    pub fn split_base_pow2(&self, b_bits: u64, count: usize) -> Vec<BigInt> {
        assert!(
            !self.is_negative(),
            "split_base_pow2 requires a non-negative value"
        );
        assert!(b_bits > 0, "digit width must be positive");
        assert!(
            count as u64 * b_bits >= self.bit_length(),
            "{count} digits of {b_bits} bits cannot hold a {}-bit value",
            self.bit_length()
        );
        (0..count)
            .map(|i| {
                let lo = i as u64 * b_bits;
                BigInt::from_limbs(ops::bits_range(&self.mag, lo, lo + b_bits))
            })
            .collect()
    }

    /// [`BigInt::split_base_pow2`] of `|self|` with the digit vector and
    /// every digit magnitude drawn from the workspace pools (the sign is
    /// ignored — Toom engines track it separately). Recycle the result with
    /// [`Workspace::recycle_nodes`].
    #[must_use]
    pub fn split_base_pow2_ws(&self, b_bits: u64, count: usize, ws: &mut Workspace) -> Vec<BigInt> {
        assert!(b_bits > 0, "digit width must be positive");
        assert!(
            count as u64 * b_bits >= self.bit_length(),
            "{count} digits of {b_bits} bits cannot hold a {}-bit value",
            self.bit_length()
        );
        let mut out = ws.take_nodes();
        for i in 0..count {
            let lo = i as u64 * b_bits;
            let mut mag = ws.take_limbs();
            ops::bits_range_into(&self.mag, lo, lo + b_bits, &mut mag);
            if mag.is_empty() {
                ws.recycle_limbs(mag);
                out.push(BigInt::zero());
            } else {
                out.push(BigInt {
                    sign: Sign::Positive,
                    mag,
                });
            }
        }
        out
    }

    /// Evaluate `Σ digits[i] · 2^(b_bits·i)` — reassembly with carry
    /// propagation. Digits may be signed and wider than `b_bits`.
    #[must_use]
    pub fn join_base_pow2(digits: &[BigInt], b_bits: u64) -> BigInt {
        let mut ws = Workspace::new();
        BigInt::join_base_pow2_ws(digits, b_bits, &mut ws)
    }

    /// [`BigInt::join_base_pow2`] with accumulators from the workspace's
    /// pool. Positive and negative digits accumulate separately by shifted
    /// in-place adds (no per-step shift temporary, no Horner re-adds of the
    /// running prefix); one final subtraction settles the sign.
    #[must_use]
    pub fn join_base_pow2_ws(digits: &[BigInt], b_bits: u64, ws: &mut Workspace) -> BigInt {
        let mut pos = ws.take_limbs();
        let mut neg = ws.take_limbs();
        for (i, d) in digits.iter().enumerate() {
            let shift = i as u64 * b_bits;
            match d.sign {
                Sign::Zero => {}
                Sign::Positive => ops::add_shifted_assign_slices(&mut pos, &d.mag, shift),
                Sign::Negative => ops::add_shifted_assign_slices(&mut neg, &d.mag, shift),
            }
        }
        let flipped = if neg.is_empty() {
            false
        } else {
            ops::sub_assign_slices(&mut pos, &neg)
        };
        ws.recycle_limbs(neg);
        if pos.is_empty() {
            ws.recycle_limbs(pos);
            BigInt::zero()
        } else {
            BigInt {
                sign: if flipped {
                    Sign::Negative
                } else {
                    Sign::Positive
                },
                mag: pos,
            }
        }
    }

    /// Choose the shared digit width for splitting `a` and `b` into `k`
    /// digits: the paper's `B = 2^{max(⌊log₂a⌋, ⌊log₂b⌋)/k + 1}` rule,
    /// i.e. the smallest width `b_bits` with `k·b_bits` covering both
    /// inputs.
    #[must_use]
    pub fn shared_digit_width(a: &BigInt, b: &BigInt, k: usize) -> u64 {
        let max_bits = a.bit_length().max(b.bit_length()).max(1);
        max_bits.div_ceil(k as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn split_join_roundtrip() {
        let v: BigInt = "987654321987654321987654321987654321".parse().unwrap();
        for k in [2usize, 3, 4, 5, 7] {
            let b_bits = BigInt::shared_digit_width(&v, &v, k);
            let digits = v.split_base_pow2(b_bits, k);
            assert_eq!(digits.len(), k);
            for d in &digits {
                assert!(d.bit_length() <= b_bits);
                assert!(!d.is_negative());
            }
            assert_eq!(BigInt::join_base_pow2(&digits, b_bits), v, "k={k}");
        }
    }

    #[test]
    fn join_handles_signed_wide_digits() {
        // digits = [5, -1, 3] base 2^4: 5 - 16 + 3*256 = 757
        let digits = [BigInt::from(5u64), BigInt::from(-1i64), BigInt::from(3u64)];
        assert_eq!(BigInt::join_base_pow2(&digits, 4), BigInt::from(757u64));
        // digit wider than the base: [20, 1] base 2^4: 20 + 16 = 36
        let digits = [BigInt::from(20u64), BigInt::from(1u64)];
        assert_eq!(BigInt::join_base_pow2(&digits, 4), BigInt::from(36u64));
    }

    #[test]
    fn zero_splits_to_zeros() {
        let digits = BigInt::zero().split_base_pow2(8, 3);
        assert!(digits.iter().all(BigInt::is_zero));
        assert!(BigInt::join_base_pow2(&digits, 8).is_zero());
    }

    #[test]
    fn shared_width_covers_both() {
        let a = BigInt::from(1u64).shl_bits(100);
        let b = BigInt::from(1u64).shl_bits(40);
        let w = BigInt::shared_digit_width(&a, &b, 3);
        assert!(3 * w >= 101);
        assert_eq!(w, 34);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn split_rejects_too_narrow() {
        let _ = BigInt::from(u128::MAX).split_base_pow2(4, 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn split_rejects_negative() {
        let _ = BigInt::from(-5i64).split_base_pow2(4, 3);
    }

    #[test]
    fn random_roundtrips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let v = BigInt::random_bits(&mut rng, 777);
            let b_bits = BigInt::shared_digit_width(&v, &v, 5);
            let digits = v.split_base_pow2(b_bits, 5);
            assert_eq!(BigInt::join_base_pow2(&digits, b_bits), v);
        }
    }
}
