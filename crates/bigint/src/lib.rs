//! # ft-bigint — arbitrary-precision signed integers, from scratch
//!
//! This crate is the arithmetic substrate for the fault-tolerant parallel
//! Toom-Cook reproduction. It deliberately implements **only schoolbook
//! multiplication** (`Θ(n²)`): the fast algorithms live in `ft-toom-core`
//! and are benchmarked *against* this baseline, exactly as the paper
//! compares Toom-Cook against naïve multiplication.
//!
//! Representation: sign-magnitude, little-endian `u64` limbs, normalized
//! (no trailing zero limbs; the empty magnitude is zero).
//!
//! Every limb-level inner loop reports work to a thread-local counter
//! ([`metrics`]) so the distributed-machine simulator can account the
//! arithmetic cost `F` of each simulated processor (the paper's unit-cost
//! word model, §2.1).
//!
//! ```
//! use ft_bigint::BigInt;
//! let a: BigInt = "123456789012345678901234567890".parse().unwrap();
//! let b: BigInt = "-987654321098765432109876543210".parse().unwrap();
//! let c = &a * &b;
//! assert_eq!(c.to_string(),
//!     "-121932631137021795226185032733622923332237463801111263526900");
//! ```

pub mod digits;
pub mod fmt;
pub mod gcd;
pub mod kernels;
pub mod metrics;
pub mod modular;
pub mod montgomery;
pub mod ntt;
pub mod ops;
pub mod random;
pub mod workspace;

mod arith;
mod bigint;
mod convert;
mod division;
mod square;

pub use bigint::{BigInt, Sign};
pub use division::DivisionError;
pub use montgomery::MontgomeryCtx;

/// Number of bits in one limb.
pub const LIMB_BITS: u32 = 64;

/// One machine limb (the "word" of the paper's cost model).
pub type Limb = u64;

/// Double-width type used for carry/borrow propagation.
pub(crate) type DoubleLimb = u128;
