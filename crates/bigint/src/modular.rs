//! Modular arithmetic with a pluggable multiplication kernel.
//!
//! The crypto example performs RSA-style modular exponentiation; the whole
//! point of the reproduction is that the *multiplication kernel* is
//! swappable (schoolbook vs Toom-Cook-k), so `mod_pow_with` takes the
//! multiplier as a closure. `ft-toom-core` plugs its fast multipliers in.

use crate::bigint::BigInt;

/// A multiplication kernel: computes the full product of two integers.
pub type Multiplier<'a> = dyn Fn(&BigInt, &BigInt) -> BigInt + 'a;

impl BigInt {
    /// Modular multiplication using the supplied multiplication kernel.
    #[must_use]
    pub fn mod_mul_with(&self, other: &BigInt, modulus: &BigInt, mul: &Multiplier) -> BigInt {
        mul(self, other).mod_floor(modulus)
    }

    /// `self^exponent mod modulus` by square-and-multiply, with all products
    /// computed by `mul`. `exponent` must be non-negative.
    ///
    /// # Panics
    /// Panics if `exponent` is negative or `modulus` is zero.
    #[must_use]
    pub fn mod_pow_with(&self, exponent: &BigInt, modulus: &BigInt, mul: &Multiplier) -> BigInt {
        assert!(!exponent.is_negative(), "negative exponent");
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.is_one() {
            return BigInt::zero();
        }
        let mut result = BigInt::one();
        let mut base = self.mod_floor(modulus);
        let nbits = exponent.bit_length();
        for i in 0..nbits {
            if exponent.bit(i) {
                result = result.mod_mul_with(&base, modulus, mul);
            }
            if i + 1 < nbits {
                base = base.mod_mul_with(&base.clone(), modulus, mul);
            }
        }
        result
    }

    /// `self^exponent mod modulus` with the schoolbook kernel.
    #[must_use]
    pub fn mod_pow(&self, exponent: &BigInt, modulus: &BigInt) -> BigInt {
        self.mod_pow_with(exponent, modulus, &|a, b| a.mul_schoolbook(b))
    }

    /// Modular inverse: `x` with `self*x ≡ 1 (mod modulus)`, if it exists.
    #[must_use]
    pub fn mod_inverse(&self, modulus: &BigInt) -> Option<BigInt> {
        let (g, x, _) = self.extended_gcd(modulus);
        if g.is_one() {
            Some(x.mod_floor(modulus))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn mod_pow_small() {
        assert_eq!(b(2).mod_pow(&b(10), &b(1000)), b(24));
        assert_eq!(b(3).mod_pow(&b(0), &b(7)), b(1));
        assert_eq!(b(0).mod_pow(&b(5), &b(7)), b(0));
        assert_eq!(b(5).mod_pow(&b(3), &b(1)), b(0));
    }

    #[test]
    fn fermat_little_theorem() {
        let p = b(1_000_000_007);
        for a in [2i128, 3, 65537, 123456789] {
            assert_eq!(b(a).mod_pow(&(&p - &b(1)), &p), b(1), "a={a}");
        }
    }

    #[test]
    fn negative_base_normalized() {
        assert_eq!(b(-2).mod_pow(&b(3), &b(7)), b((-8i128).rem_euclid(7)));
    }

    #[test]
    fn mod_inverse_roundtrip() {
        let m = b(97);
        for a in 1..97i128 {
            let inv = b(a).mod_inverse(&m).unwrap();
            assert_eq!((&b(a) * &inv).mod_floor(&m), b(1), "a={a}");
        }
        assert!(
            b(6).mod_inverse(&b(9)).is_none(),
            "gcd(6,9)=3 has no inverse"
        );
    }

    #[test]
    fn custom_kernel_is_used() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let kernel = |a: &BigInt, bb: &BigInt| {
            calls.set(calls.get() + 1);
            a.mul_schoolbook(bb)
        };
        let r = b(7).mod_pow_with(&b(5), &b(100), &kernel);
        assert_eq!(r, b(7));
        assert!(calls.get() > 0, "kernel must be invoked");
    }
}
