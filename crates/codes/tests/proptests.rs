//! Property tests for the erasure code: any `≤ f` erasures recover, any
//! parity subset works, linearity holds, and block payloads of arbitrary
//! big integers round-trip.

use ft_bigint::BigInt;
use ft_codes::ErasureCode;
use proptest::prelude::*;

fn blocks(k: usize, width: usize) -> impl Strategy<Value = Vec<Vec<BigInt>>> {
    proptest::collection::vec(proptest::collection::vec(any::<i64>(), width), k).prop_map(|rows| {
        rows.into_iter()
            .map(|r| r.into_iter().map(BigInt::from).collect())
            .collect()
    })
}

proptest! {
    #[test]
    fn any_f_erasures_recover(
        data in blocks(5, 3),
        erased in proptest::collection::hash_set(0usize..5, 1..=2),
    ) {
        let code = ErasureCode::new(5, 2);
        let parity = code.encode_blocks(&data).unwrap();
        let erased: Vec<usize> = {
            let mut v: Vec<usize> = erased.into_iter().collect();
            v.sort_unstable();
            v
        };
        let surviving: Vec<(usize, Vec<BigInt>)> = (0..5)
            .filter(|i| !erased.contains(i))
            .map(|i| (i, data[i].clone()))
            .collect();
        let sp: Vec<(usize, Vec<BigInt>)> = parity.iter().cloned().enumerate().collect();
        let rec = code.recover(&surviving, &sp, &erased).unwrap();
        for (t, &i) in erased.iter().enumerate() {
            prop_assert_eq!(&rec[t], &data[i]);
        }
    }

    #[test]
    fn recovery_works_with_any_parity_subset(
        data in blocks(4, 2),
        lost in 0usize..4,
        parity_pick in 0usize..3,
    ) {
        let code = ErasureCode::new(4, 3);
        let parity = code.encode_blocks(&data).unwrap();
        let surviving: Vec<(usize, Vec<BigInt>)> = (0..4)
            .filter(|&i| i != lost)
            .map(|i| (i, data[i].clone()))
            .collect();
        // Offer only one parity symbol — any single one must suffice.
        let sp = vec![(parity_pick, parity[parity_pick].clone())];
        let rec = code.recover(&surviving, &sp, &[lost]).unwrap();
        prop_assert_eq!(&rec[0], &data[lost]);
    }

    #[test]
    fn encoding_is_linear(x in blocks(3, 2), y in blocks(3, 2)) {
        let code = ErasureCode::new(3, 2);
        let px = code.encode_blocks(&x).unwrap();
        let py = code.encode_blocks(&y).unwrap();
        let sum: Vec<Vec<BigInt>> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| a.iter().zip(b).map(|(u, v)| u + v).collect())
            .collect();
        let psum = code.encode_blocks(&sum).unwrap();
        for i in 0..2 {
            for w in 0..2 {
                prop_assert_eq!(&psum[i][w], &(&px[i][w] + &py[i][w]));
            }
        }
    }

    #[test]
    fn big_payloads_roundtrip(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let code = ErasureCode::new(3, 1);
        let data: Vec<Vec<BigInt>> = (0..3)
            .map(|_| (0..2).map(|_| BigInt::random_signed_bits(&mut rng, 500)).collect())
            .collect();
        let parity = code.encode_blocks(&data).unwrap();
        let rec = code
            .recover(
                &[(0, data[0].clone()), (2, data[2].clone())],
                &[(0, parity[0].clone())],
                &[1],
            )
            .unwrap();
        prop_assert_eq!(&rec[0], &data[1]);
    }

    #[test]
    fn decoding_succeeds_at_f_erasures_and_fails_at_f_plus_one(
        data in blocks(6, 2),
        f in 1usize..=3,
        start in 0usize..6,
    ) {
        use ft_codes::CodeError;
        let code = ErasureCode::new(6, f);
        let parity = code.encode_blocks(&data).unwrap();
        let sp: Vec<(usize, Vec<BigInt>)> = parity.iter().cloned().enumerate().collect();
        // Exactly f erasures (a cyclic window, so `start` varies the set):
        // recovery must succeed with the f parity symbols.
        let erased: Vec<usize> = {
            let mut v: Vec<usize> = (0..f).map(|j| (start + j) % 6).collect();
            v.sort_unstable();
            v
        };
        let surviving: Vec<(usize, Vec<BigInt>)> = (0..6)
            .filter(|i| !erased.contains(i))
            .map(|i| (i, data[i].clone()))
            .collect();
        let rec = code.recover(&surviving, &sp, &erased).unwrap();
        for (t, &i) in erased.iter().enumerate() {
            prop_assert_eq!(&rec[t], &data[i]);
        }
        // One more erasure than parity symbols: recovery must refuse.
        let erased: Vec<usize> = {
            let mut v: Vec<usize> = (0..=f).map(|j| (start + j) % 6).collect();
            v.sort_unstable();
            v
        };
        let surviving: Vec<(usize, Vec<BigInt>)> = (0..6)
            .filter(|i| !erased.contains(i))
            .map(|i| (i, data[i].clone()))
            .collect();
        prop_assert_eq!(
            code.recover(&surviving, &sp, &erased).unwrap_err(),
            CodeError::TooManyErasures { erased: f + 1, parity: f }
        );
    }

    #[test]
    fn scalar_and_block_encodings_agree(vals in proptest::collection::vec(any::<i32>(), 4)) {
        let code = ErasureCode::new(4, 2);
        let scalars: Vec<BigInt> = vals.iter().map(|&v| BigInt::from(v as i64)).collect();
        let as_blocks: Vec<Vec<BigInt>> = scalars.iter().map(|s| vec![s.clone()]).collect();
        let ps = code.encode_scalars(&scalars);
        let pb = code.encode_blocks(&as_blocks).unwrap();
        for i in 0..2 {
            prop_assert_eq!(&ps[i], &pb[i][0]);
        }
    }
}
