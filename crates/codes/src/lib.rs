//! # ft-codes — systematic linear erasure codes over big-integer payloads
//!
//! Implements §2.5 of the paper: a systematic `(n, k, d)` code whose parity
//! part is a Vandermonde matrix `E` with `E[i][j] = η_i^j` for distinct
//! positive integers `η_i`. With `0 < η_0 < η_1 < …`, `E` is totally
//! positive, so **every minor is invertible** — the code is MDS with
//! distance `f + 1` where `f = n − k` is the parity count, and any `≤ f`
//! erasures are recoverable.
//!
//! Payloads are *blocks* of big integers (`[BigInt]`): in the fault-tolerant
//! algorithm each code processor stores one weighted sum of the data
//! blocks held by the `P/(2k−1)` processors in its grid column (§4.1), and
//! recovery of a failed processor solves a small Vandermonde minor system
//! exactly over ℚ.

pub mod erasure;

pub use erasure::{CodeError, ErasureCode};
