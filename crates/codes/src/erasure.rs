//! Systematic Vandermonde erasure codes (Definition 2.7).

use ft_algebra::{Matrix, Rational, ScaledIntMatrix};
use ft_bigint::BigInt;

/// Errors from encoding / recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// More erasures than parity symbols.
    TooManyErasures {
        /// Number of erased data symbols.
        erased: usize,
        /// Parity symbols available.
        parity: usize,
    },
    /// A symbol index was out of range or duplicated.
    BadSymbolIndex(usize),
    /// Payload blocks had inconsistent lengths.
    RaggedBlocks,
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::TooManyErasures { erased, parity } => {
                write!(
                    f,
                    "{erased} erasures exceed the {parity} available parity symbols"
                )
            }
            CodeError::BadSymbolIndex(i) => write!(f, "bad symbol index {i}"),
            CodeError::RaggedBlocks => write!(f, "payload blocks have differing lengths"),
        }
    }
}

impl std::error::Error for CodeError {}

/// A systematic `(k + f, k, f + 1)` Vandermonde erasure code.
///
/// Generator `G = [ I_k ; E ]` with `E[i][j] = η_i^j`, `η_i = i + 1`
/// (strictly increasing positive seeds ⇒ `E` totally positive ⇒ MDS).
#[derive(Clone, Debug)]
pub struct ErasureCode {
    data_len: usize,
    parity_len: usize,
    /// Parity matrix `E` (`f × k`).
    parity: Matrix<BigInt>,
}

impl ErasureCode {
    /// Create a code for `data_len` data symbols and `parity_len` parity
    /// symbols, using seeds `η_i = i + 1`.
    ///
    /// # Panics
    /// Panics if `data_len == 0`.
    #[must_use]
    pub fn new(data_len: usize, parity_len: usize) -> ErasureCode {
        Self::with_seeds(data_len, &(1..=parity_len as i64).collect::<Vec<_>>())
    }

    /// Create a code with explicit distinct positive seeds `η`.
    ///
    /// # Panics
    /// Panics on zero data length or non-distinct / non-positive seeds.
    #[must_use]
    pub fn with_seeds(data_len: usize, etas: &[i64]) -> ErasureCode {
        assert!(data_len > 0, "code needs at least one data symbol");
        for (i, &e) in etas.iter().enumerate() {
            assert!(e > 0, "seeds must be positive for total positivity");
            assert!(!etas[..i].contains(&e), "seeds must be distinct");
        }
        let parity = Matrix::from_fn(etas.len(), data_len, |i, j| {
            BigInt::from(etas[i]).pow(j as u32)
        });
        ErasureCode {
            data_len,
            parity_len: etas.len(),
            parity,
        }
    }

    /// Number of data symbols `k`.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of parity symbols `f`.
    #[must_use]
    pub fn parity_len(&self) -> usize {
        self.parity_len
    }

    /// Code length `n = k + f`.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.data_len + self.parity_len
    }

    /// Minimum distance `d = f + 1` (MDS).
    #[must_use]
    pub fn distance(&self) -> usize {
        self.parity_len + 1
    }

    /// The parity matrix `E`.
    #[must_use]
    pub fn parity_matrix(&self) -> &Matrix<BigInt> {
        &self.parity
    }

    /// Encode scalar symbols: returns the `f` parity scalars
    /// `p_i = Σ_j η_i^j · data_j`.
    ///
    /// # Panics
    /// Panics if `data.len() != k`.
    #[must_use]
    pub fn encode_scalars(&self, data: &[BigInt]) -> Vec<BigInt> {
        assert_eq!(data.len(), self.data_len);
        self.parity.matvec(data)
    }

    /// Encode block payloads: `data` is `k` equal-length blocks; returns the
    /// `f` parity blocks (entrywise weighted sums).
    pub fn encode_blocks(&self, data: &[Vec<BigInt>]) -> Result<Vec<Vec<BigInt>>, CodeError> {
        if data.len() != self.data_len {
            return Err(CodeError::BadSymbolIndex(data.len()));
        }
        let width = data.first().map_or(0, Vec::len);
        if data.iter().any(|b| b.len() != width) {
            return Err(CodeError::RaggedBlocks);
        }
        Ok((0..self.parity_len)
            .map(|i| {
                (0..width)
                    .map(|w| {
                        let mut acc = BigInt::zero();
                        for (j, block) in data.iter().enumerate() {
                            acc += &(&self.parity[(i, j)] * &block[w]);
                        }
                        acc
                    })
                    .collect()
            })
            .collect())
    }

    /// Recover erased **data** symbols.
    ///
    /// * `surviving_data` — `(index, block)` pairs with `index < k`;
    /// * `surviving_parity` — `(parity index, block)` pairs with
    ///   `parity index < f`;
    /// * `erased` — the data indices to reconstruct.
    ///
    /// Solves the `e × e` Vandermonde-minor system over ℚ exactly; all
    /// divisions are exact because the true solution is integral.
    ///
    /// Duplicate indices anywhere — in `erased`, among the surviving data,
    /// or among the surviving parity rows — are rejected as
    /// [`CodeError::BadSymbolIndex`]: a repeated erasure or parity row
    /// would make the Vandermonde minor singular (repeated column/row),
    /// and the total-positivity invertibility argument only covers minors
    /// with distinct choices.
    pub fn recover(
        &self,
        surviving_data: &[(usize, Vec<BigInt>)],
        surviving_parity: &[(usize, Vec<BigInt>)],
        erased: &[usize],
    ) -> Result<Vec<Vec<BigInt>>, CodeError> {
        let e = erased.len();
        if e == 0 {
            return Ok(Vec::new());
        }
        if e > surviving_parity.len() {
            return Err(CodeError::TooManyErasures {
                erased: e,
                parity: surviving_parity.len(),
            });
        }
        for (t, &i) in erased.iter().enumerate() {
            if i >= self.data_len || erased[..t].contains(&i) {
                return Err(CodeError::BadSymbolIndex(i));
            }
        }
        for (t, &(i, _)) in surviving_data.iter().enumerate() {
            if i >= self.data_len
                || erased.contains(&i)
                || surviving_data[..t].iter().any(|(j, _)| *j == i)
            {
                return Err(CodeError::BadSymbolIndex(i));
            }
        }
        let width = surviving_parity[0].1.len();
        if surviving_parity.iter().any(|(_, b)| b.len() != width)
            || surviving_data.iter().any(|(_, b)| b.len() != width)
        {
            return Err(CodeError::RaggedBlocks);
        }

        // Use the first `e` surviving parity rows. A duplicated parity row
        // must be rejected here, before it reaches the minor: two equal
        // rows make the minor singular.
        let rows: Vec<usize> = surviving_parity.iter().take(e).map(|&(i, _)| i).collect();
        for (t, &i) in rows.iter().enumerate() {
            if i >= self.parity_len || rows[..t].contains(&i) {
                return Err(CodeError::BadSymbolIndex(self.data_len + i));
            }
        }

        // rhs_i = parity_i − Σ_{j surviving} η_i^j · data_j   (blockwise)
        let rhs: Vec<Vec<BigInt>> = rows
            .iter()
            .zip(surviving_parity.iter().take(e))
            .map(|(&ri, (_, pblock))| {
                (0..width)
                    .map(|w| {
                        let mut acc = pblock[w].clone();
                        for (j, dblock) in surviving_data {
                            acc -= &(&self.parity[(ri, *j)] * &dblock[w]);
                        }
                        acc
                    })
                    .collect()
            })
            .collect();

        // Minor M[i][t] = η_{rows[i]}^{erased[t]}; solve M · x = rhs.
        let minor = Matrix::from_fn(e, e, |i, t| self.parity[(rows[i], erased[t])].clone());
        let inv = minor
            .to_rational()
            .inverse()
            .expect("Vandermonde minor is invertible by total positivity");
        let scaled = ScaledIntMatrix::from_rational(&inv);

        // Apply the inverse blockwise: x_t[w] = Σ_i inv[t][i] · rhs_i[w].
        let mut out = vec![vec![BigInt::zero(); width]; e];
        for w in 0..width {
            let col: Vec<BigInt> = rhs.iter().map(|b| b[w].clone()).collect();
            let sol = scaled.apply(&col);
            for (t, v) in sol.into_iter().enumerate() {
                out[t][w] = v;
            }
        }
        Ok(out)
    }

    /// Check the MDS property exhaustively: every square minor of `E`
    /// obtained by choosing `e ≤ min(f, k)` rows and `e` columns is
    /// invertible. Exponential — use in tests on small codes only.
    #[must_use]
    pub fn verify_mds(&self) -> bool {
        use ft_algebra::points::for_each_combination;
        for e in 1..=self.parity_len.min(self.data_len) {
            let ok = for_each_combination(self.parity_len, e, |rows| {
                for_each_combination(self.data_len, e, |cols| {
                    !self
                        .parity
                        .select_rows(rows)
                        .select_cols(cols)
                        .det_bareiss()
                        .is_zero()
                })
            });
            if !ok {
                return false;
            }
        }
        true
    }

    /// The decode coefficients (over ℚ) a *reduce-based* recovery applies:
    /// for erased set `erased` and chosen parity rows, each surviving symbol
    /// contributes a rational multiple. Exposed for the cost model — the
    /// recovery reduce in §4.1 moves `O(f · M)` words.
    #[must_use]
    pub fn recovery_weights(
        &self,
        surviving_data: &[usize],
        parity_rows: &[usize],
        erased: &[usize],
    ) -> Matrix<Rational> {
        let e = erased.len();
        assert_eq!(parity_rows.len(), e);
        let minor = Matrix::from_fn(e, e, |i, t| {
            self.parity[(parity_rows[i], erased[t])].clone()
        });
        let inv = minor.to_rational().inverse().expect("invertible minor");
        // weight of parity row i on erased t = inv[t][i]; weight of data j:
        // −Σ_i inv[t][i]·η_{row_i}^j.
        Matrix::from_fn(e, parity_rows.len() + surviving_data.len(), |t, c| {
            if c < parity_rows.len() {
                inv[(t, c)].clone()
            } else {
                let j = surviving_data[c - parity_rows.len()];
                let mut acc = Rational::zero();
                for (i, &ri) in parity_rows.iter().enumerate() {
                    let w = &inv[(t, i)] * &Rational::from_int(self.parity[(ri, j)].clone());
                    acc = &acc - &w;
                }
                acc
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(vals: &[&[i64]]) -> Vec<Vec<BigInt>> {
        vals.iter()
            .map(|b| b.iter().map(|&v| BigInt::from(v)).collect())
            .collect()
    }

    #[test]
    fn parity_is_weighted_sums() {
        let code = ErasureCode::new(3, 2);
        // η = [1, 2]; data = [10, 20, 30]
        let p = code.encode_scalars(&[10, 20, 30].map(BigInt::from));
        assert_eq!(p[0], BigInt::from(60u64)); // 10 + 20 + 30
        assert_eq!(p[1], BigInt::from(10 + 40 + 120u64)); // η=2: 10+2·20+4·30
    }

    #[test]
    fn mds_property_small_codes() {
        for (k, f) in [(2, 1), (3, 2), (4, 3), (5, 2), (8, 4)] {
            assert!(ErasureCode::new(k, f).verify_mds(), "k={k} f={f}");
        }
    }

    #[test]
    fn recover_single_erasure() {
        let code = ErasureCode::new(3, 1);
        let data = blocks(&[&[1, 100], &[2, 200], &[3, 300]]);
        let parity = code.encode_blocks(&data).unwrap();
        for lost in 0..3 {
            let surviving: Vec<(usize, Vec<BigInt>)> = (0..3)
                .filter(|&i| i != lost)
                .map(|i| (i, data[i].clone()))
                .collect();
            let rec = code
                .recover(&surviving, &[(0, parity[0].clone())], &[lost])
                .unwrap();
            assert_eq!(rec[0], data[lost], "lost={lost}");
        }
    }

    #[test]
    fn recover_all_double_erasures() {
        let code = ErasureCode::new(4, 2);
        let data = blocks(&[&[7, -3], &[0, 11], &[-5, 5], &[123456, -654321]]);
        let parity = code.encode_blocks(&data).unwrap();
        for a in 0..4 {
            for b in a + 1..4 {
                let surviving: Vec<(usize, Vec<BigInt>)> = (0..4)
                    .filter(|&i| i != a && i != b)
                    .map(|i| (i, data[i].clone()))
                    .collect();
                let sp: Vec<(usize, Vec<BigInt>)> = parity.iter().cloned().enumerate().collect();
                let rec = code.recover(&surviving, &sp, &[a, b]).unwrap();
                assert_eq!(rec[0], data[a], "a={a} b={b}");
                assert_eq!(rec[1], data[b], "a={a} b={b}");
            }
        }
    }

    #[test]
    fn recover_with_partial_parity() {
        // 2 parity symbols, only the second survives, one erasure.
        let code = ErasureCode::new(3, 2);
        let data = blocks(&[&[5], &[6], &[7]]);
        let parity = code.encode_blocks(&data).unwrap();
        let rec = code
            .recover(
                &[(0, data[0].clone()), (2, data[2].clone())],
                &[(1, parity[1].clone())],
                &[1],
            )
            .unwrap();
        assert_eq!(rec[0], data[1]);
    }

    #[test]
    fn too_many_erasures_rejected() {
        let code = ErasureCode::new(3, 1);
        let err = code
            .recover(&[], &[(0, vec![BigInt::zero()])], &[0, 1])
            .unwrap_err();
        assert_eq!(
            err,
            CodeError::TooManyErasures {
                erased: 2,
                parity: 1
            }
        );
    }

    #[test]
    fn ragged_blocks_rejected() {
        let code = ErasureCode::new(2, 1);
        let data = vec![vec![BigInt::zero()], vec![BigInt::zero(), BigInt::one()]];
        assert_eq!(
            code.encode_blocks(&data).unwrap_err(),
            CodeError::RaggedBlocks
        );
    }

    #[test]
    fn code_parameters() {
        let code = ErasureCode::new(5, 3);
        assert_eq!(code.code_len(), 8);
        assert_eq!(code.distance(), 4);
        assert_eq!(code.data_len(), 5);
        assert_eq!(code.parity_len(), 3);
    }

    #[test]
    fn linearity_of_encoding() {
        // parity(x + y) = parity(x) + parity(y): the property that makes the
        // code survive the (linear) evaluation and interpolation stages.
        let code = ErasureCode::new(3, 2);
        let x = [3i64, -1, 4].map(BigInt::from);
        let y = [10i64, 20, -30].map(BigInt::from);
        let sum: Vec<BigInt> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let px = code.encode_scalars(&x);
        let py = code.encode_scalars(&y);
        let psum = code.encode_scalars(&sum);
        for i in 0..2 {
            assert_eq!(psum[i], &px[i] + &py[i]);
        }
    }

    #[test]
    fn recovery_weights_reconstruct() {
        // Weighted-sum form of recovery (as executed by the reduce): check
        // the weights matrix against direct recovery.
        let code = ErasureCode::new(3, 1);
        let data = [2i64, 9, -4].map(BigInt::from);
        let parity = code.encode_scalars(&data);
        let weights = code.recovery_weights(&[0, 2], &[0], &[1]);
        // x_1 = w_p·parity0 + w_0·data0 + w_2·data2
        let got = &(&weights[(0, 0)].mul_int(&parity[0]) + &weights[(0, 1)].mul_int(&data[0]))
            + &weights[(0, 2)].mul_int(&data[2]);
        assert!(got.is_integer());
        assert_eq!(got.to_integer(), data[1]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_seeds_rejected() {
        let _ = ErasureCode::with_seeds(3, &[1, 1]);
    }

    #[test]
    fn duplicate_erased_indices_rejected_not_panicking() {
        // A repeated erasure duplicates a minor column (singular): this
        // used to panic inside `inverse().expect(...)`.
        let code = ErasureCode::new(4, 2);
        let data = blocks(&[&[7], &[0], &[-5], &[9]]);
        let parity = code.encode_blocks(&data).unwrap();
        let surviving: Vec<(usize, Vec<BigInt>)> =
            [(2usize, data[2].clone()), (3, data[3].clone())].to_vec();
        let sp: Vec<(usize, Vec<BigInt>)> = parity.iter().cloned().enumerate().collect();
        let err = code.recover(&surviving, &sp, &[1, 1]).unwrap_err();
        assert_eq!(err, CodeError::BadSymbolIndex(1));
    }

    #[test]
    fn duplicate_parity_rows_rejected_not_panicking() {
        // The same parity row listed twice duplicates a minor row
        // (singular): also a former panic path.
        let code = ErasureCode::new(4, 2);
        let data = blocks(&[&[7], &[0], &[-5], &[9]]);
        let parity = code.encode_blocks(&data).unwrap();
        let surviving: Vec<(usize, Vec<BigInt>)> =
            [(2usize, data[2].clone()), (3, data[3].clone())].to_vec();
        let sp = vec![(0usize, parity[0].clone()), (0, parity[0].clone())];
        let err = code.recover(&surviving, &sp, &[0, 1]).unwrap_err();
        // Parity indices are reported offset by the data length.
        assert_eq!(err, CodeError::BadSymbolIndex(code.data_len()));
    }

    #[test]
    fn duplicate_surviving_data_rejected() {
        let code = ErasureCode::new(3, 1);
        let data = blocks(&[&[5], &[6], &[7]]);
        let parity = code.encode_blocks(&data).unwrap();
        let surviving = vec![(0usize, data[0].clone()), (0, data[0].clone())];
        let err = code
            .recover(&surviving, &[(0, parity[0].clone())], &[1])
            .unwrap_err();
        assert_eq!(err, CodeError::BadSymbolIndex(0));
    }
}
