//! [`ScaledIntMatrix`]: a rational matrix stored as `(integer matrix) / denom`.
//!
//! Interpolation (Alg. 1 line 15) multiplies a vector of big integers by the
//! rational matrix `W^T`; erasure decoding does the same with an inverted
//! Vandermonde minor. Both results are provably integral, so we clear
//! denominators once — `W^T = M / d` with `M` integral — apply `M` with pure
//! integer arithmetic, and finish with one **exact** division by `d` per
//! entry. This keeps the hot path in `ft-bigint` (where word operations are
//! tallied for the cost model) instead of in rational arithmetic.

use crate::matrix::Matrix;
use crate::rational::Rational;
use ft_bigint::BigInt;

/// A rational matrix `M / denom` with `M` integral and `denom > 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaledIntMatrix {
    mat: Matrix<BigInt>,
    denom: BigInt,
}

impl ScaledIntMatrix {
    /// Clear denominators of a rational matrix: compute the lcm `d` of all
    /// entry denominators and store `(d·A, d)`.
    #[must_use]
    pub fn from_rational(a: &Matrix<Rational>) -> ScaledIntMatrix {
        let mut d = BigInt::one();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                d = d.lcm(a[(i, j)].denom());
            }
        }
        let mat = Matrix::from_fn(a.rows(), a.cols(), |i, j| {
            let e = &a[(i, j)];
            e.numer() * &d.div_exact(e.denom())
        });
        ScaledIntMatrix { mat, denom: d }
    }

    /// An integral matrix viewed as scaled (denominator one).
    #[must_use]
    pub fn from_integer(mat: Matrix<BigInt>) -> ScaledIntMatrix {
        ScaledIntMatrix {
            mat,
            denom: BigInt::one(),
        }
    }

    /// The integer matrix `denom · self`.
    #[must_use]
    pub fn numerator(&self) -> &Matrix<BigInt> {
        &self.mat
    }

    /// The common denominator.
    #[must_use]
    pub fn denom(&self) -> &BigInt {
        &self.denom
    }

    /// Shape.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.mat.rows()
    }

    /// Shape.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.mat.cols()
    }

    /// Apply to an integer vector with exact final division.
    ///
    /// # Panics
    /// Panics if any result entry is not integral — callers use this only
    /// where integrality is guaranteed (interpolation of integer products,
    /// erasure decoding of integer codewords).
    #[must_use]
    pub fn apply(&self, v: &[BigInt]) -> Vec<BigInt> {
        self.mat
            .matvec(v)
            .into_iter()
            .map(|x| x.div_exact(&self.denom))
            .collect()
    }

    /// Apply to an integer vector, reporting a non-integral result instead
    /// of panicking — corrupted inputs (soft faults) surface here as
    /// `Err(NotExact)`, which callers treat as an inconsistency signal.
    pub fn checked_apply(&self, v: &[BigInt]) -> Result<Vec<BigInt>, ft_bigint::DivisionError> {
        self.mat
            .matvec(v)
            .into_iter()
            .map(|x| x.checked_div_exact(&self.denom))
            .collect()
    }

    /// Reconstruct the rational matrix (for tests / reporting).
    #[must_use]
    pub fn to_rational(&self) -> Matrix<Rational> {
        self.mat
            .map(|x| Rational::new(x.clone(), self.denom.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn clears_denominators() {
        let a = Matrix::from_rows(vec![vec![q(1, 2), q(1, 3)], vec![q(1, 6), q(2, 1)]]);
        let s = ScaledIntMatrix::from_rational(&a);
        assert_eq!(s.denom(), &BigInt::from(6u64));
        assert_eq!(s.numerator()[(0, 0)], BigInt::from(3u64));
        assert_eq!(s.numerator()[(1, 1)], BigInt::from(12u64));
        assert_eq!(s.to_rational(), a);
    }

    #[test]
    fn apply_matches_rational_matvec() {
        let a = Matrix::from_rows(vec![vec![q(1, 2), q(-1, 2)], vec![q(3, 4), q(1, 4)]]);
        let s = ScaledIntMatrix::from_rational(&a);
        // v chosen so the result is integral: [6, 2] -> [2, 5]
        let v = vec![BigInt::from(6u64), BigInt::from(2u64)];
        assert_eq!(s.apply(&v), vec![BigInt::from(2u64), BigInt::from(5u64)]);
    }

    #[test]
    #[should_panic(expected = "inexact")]
    fn apply_panics_on_non_integral_result() {
        let a = Matrix::from_rows(vec![vec![q(1, 2)]]);
        let s = ScaledIntMatrix::from_rational(&a);
        let _ = s.apply(&[BigInt::from(3u64)]);
    }

    #[test]
    fn integer_matrix_passthrough() {
        let m = Matrix::from_rows(vec![vec![BigInt::from(2u64), BigInt::from(3u64)]]);
        let s = ScaledIntMatrix::from_integer(m);
        assert_eq!(
            s.apply(&[BigInt::from(10u64), BigInt::from(1u64)]),
            vec![BigInt::from(23u64)]
        );
    }
}
