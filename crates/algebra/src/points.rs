//! Evaluation points, evaluation matrices, and general position.
//!
//! - [`HPoint`] — a homogeneous (projective) evaluation point `(x, h)` per
//!   Zanoni's notation (Remark 2.2): `h = 0` is the classic `∞` point.
//! - [`MPoint`] — an `l`-tuple of homogeneous points, the evaluation points
//!   of multivariate (multi-step) Toom-Cook (Claim 2.1).
//! - Evaluation matrices for `Poly_{r,l}` (Definition 2.4).
//! - The `(r,l)`-general-position predicate (Definition 6.1 via Claim 6.1:
//!   every `r^l × r^l` sub-matrix of the evaluation matrix is invertible).
//! - The §6.2 heuristic for finding redundant evaluation points.

use crate::matrix::Matrix;
use ft_bigint::BigInt;

/// A homogeneous evaluation point `(x : h)`. `h = 0` encodes `∞`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HPoint {
    /// Numerator coordinate.
    pub x: i64,
    /// Homogenizing coordinate (1 for affine points, 0 for infinity).
    pub h: i64,
}

impl HPoint {
    /// The affine point `x` (i.e. `(x : 1)`).
    #[must_use]
    pub fn affine(x: i64) -> HPoint {
        HPoint { x, h: 1 }
    }

    /// The point at infinity `(1 : 0)`.
    #[must_use]
    pub fn infinity() -> HPoint {
        HPoint { x: 1, h: 0 }
    }

    /// `true` iff this is the infinity point.
    #[must_use]
    pub fn is_infinity(&self) -> bool {
        self.h == 0
    }

    /// The monomial value `h^{deg−e} · x^e` used when evaluating a
    /// degree-`deg` homogeneous polynomial's `x^e` coefficient slot.
    ///
    /// # Panics
    /// Panics if `e > deg`.
    #[must_use]
    pub fn monomial(&self, deg: usize, e: usize) -> BigInt {
        assert!(e <= deg, "exponent {e} exceeds homogeneous degree {deg}");
        &BigInt::from(self.h).pow((deg - e) as u32) * &BigInt::from(self.x).pow(e as u32)
    }

    /// `true` iff the two points are projectively equal (same line through
    /// the origin).
    #[must_use]
    pub fn proj_eq(&self, other: &HPoint) -> bool {
        (self.x as i128) * (other.h as i128) == (other.x as i128) * (self.h as i128)
    }
}

/// A multivariate evaluation point: one homogeneous point per variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MPoint {
    coords: Vec<HPoint>,
}

impl MPoint {
    /// Build from per-variable homogeneous coordinates.
    #[must_use]
    pub fn new(coords: Vec<HPoint>) -> MPoint {
        MPoint { coords }
    }

    /// An all-affine point from integer coordinates.
    #[must_use]
    pub fn affine(xs: &[i64]) -> MPoint {
        MPoint {
            coords: xs.iter().map(|&x| HPoint::affine(x)).collect(),
        }
    }

    /// Per-variable coordinates.
    #[must_use]
    pub fn coords(&self) -> &[HPoint] {
        &self.coords
    }

    /// Number of variables.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.coords.len()
    }

    /// Cartesian power `S^l` of a univariate point set (Claim 2.1: the
    /// evaluation points of `l`-step Toom-Cook). Ordered with variable 0
    /// fastest, matching [`crate::MPoly`]'s mixed-radix coefficient order.
    #[must_use]
    pub fn cartesian_power(s: &[HPoint], l: usize) -> Vec<MPoint> {
        let n = s.len().pow(l as u32);
        (0..n)
            .map(|mut idx| {
                let coords = (0..l)
                    .map(|_| {
                        let c = s[idx % s.len()];
                        idx /= s.len();
                        c
                    })
                    .collect();
                MPoint { coords }
            })
            .collect()
    }
}

/// Evaluation matrix of univariate homogeneous points for polynomials with
/// `width` coefficients (degree `width − 1`): row `i`, column `j` holds
/// `h_i^{width−1−j} · x_i^j`. This is the `U`/`V` matrix of §2.2 when
/// `width = k` and the product-evaluation matrix when `width = 2k−1`.
#[must_use]
pub fn eval_matrix(points: &[HPoint], width: usize) -> Matrix<BigInt> {
    Matrix::from_fn(points.len(), width, |i, j| points[i].monomial(width - 1, j))
}

/// Evaluation matrix of multivariate points for `Poly_{r,l}`: row per point,
/// column per mixed-radix exponent vector, entry `Π_v h^{r−1−e_v} x^{e_v}`.
#[must_use]
pub fn eval_matrix_multi(points: &[MPoint], r: usize, l: usize) -> Matrix<BigInt> {
    let cols = r.pow(l as u32);
    Matrix::from_fn(points.len(), cols, |i, mut idx| {
        let mut acc = BigInt::one();
        for v in 0..l {
            let e = idx % r;
            idx /= r;
            acc = &acc * &points[i].coords()[v].monomial(r - 1, e);
        }
        acc
    })
}

/// Visit every `k`-combination of `0..n` (lexicographic); abort early when
/// `f` returns `false`.
pub fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize]) -> bool) -> bool {
    fn rec(
        n: usize,
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if cur.len() == k {
            return f(cur);
        }
        let remaining = k - cur.len();
        for i in start..=n.saturating_sub(remaining) {
            cur.push(i);
            if !rec(n, k, i + 1, cur, f) {
                return false;
            }
            cur.pop();
        }
        true
    }
    if k > n {
        return true;
    }
    rec(n, k, 0, &mut Vec::with_capacity(k), &mut f)
}

/// Claim 6.1 test: `points` is a valid evaluation set for fault-tolerant
/// `l`-step Toom-Cook with product width `r` iff every `r^l`-subset's square
/// evaluation matrix is invertible — i.e. the points are in
/// `(r,l)`-general position.
#[must_use]
pub fn in_general_position(points: &[MPoint], r: usize, l: usize) -> bool {
    let n = r.pow(l as u32);
    if points.len() < n {
        return false;
    }
    let full = eval_matrix_multi(points, r, l);
    for_each_combination(points.len(), n, |subset| {
        !full.select_rows(subset).det_bareiss().is_zero()
    })
}

/// Incremental version (Claim 6.2): given `base` already in `(r,l)`-general
/// position, is `base ∪ {x}` still in general position? Only subsets
/// containing `x` need checking.
#[must_use]
pub fn extends_general_position(base: &[MPoint], x: &MPoint, r: usize, l: usize) -> bool {
    let n = r.pow(l as u32);
    let mut all: Vec<MPoint> = base.to_vec();
    all.push(x.clone());
    if all.len() < n {
        // Not enough points for any square subset yet — vacuously fine.
        return true;
    }
    let full = eval_matrix_multi(&all, r, l);
    let xi = all.len() - 1;
    // Choose n−1 rows from base, always adjoin x's row.
    for_each_combination(base.len(), n - 1, |subset| {
        let mut rows: Vec<usize> = subset.to_vec();
        rows.push(xi);
        !full.select_rows(&rows).det_bareiss().is_zero()
    })
}

/// §6.2 heuristic: find `count` redundant evaluation points extending `base`
/// while keeping `(r,l)`-general position, searching small integer affine
/// points (Claim 6.5 guarantees integer candidates always exist).
///
/// # Panics
/// Panics if the search space (coordinates bounded by `bound`) is exhausted —
/// raise `bound` in that case.
#[must_use]
pub fn find_redundant_points(
    base: &[MPoint],
    r: usize,
    l: usize,
    count: usize,
    bound: i64,
) -> Vec<MPoint> {
    let mut have: Vec<MPoint> = base.to_vec();
    let mut found = Vec::with_capacity(count);
    // Candidate scan order: spiral outwards through small integers so
    // chosen points stay small (cheap arithmetic, Discussion §7).
    let candidates = candidate_grid(l, bound);
    'next_point: while found.len() < count {
        for cand in &candidates {
            if have.iter().any(|p| p == cand) {
                continue;
            }
            if extends_general_position(&have, cand, r, l) {
                have.push(cand.clone());
                found.push(cand.clone());
                continue 'next_point;
            }
        }
        panic!(
            "no candidate within coordinate bound {bound} extends the point set \
             (found {}/{count})",
            found.len()
        );
    }
    found
}

/// All affine integer points with coordinates in `[-bound, bound]`, ordered
/// by max-norm (small points first).
fn candidate_grid(l: usize, bound: i64) -> Vec<MPoint> {
    let side = (2 * bound + 1) as usize;
    let mut pts: Vec<Vec<i64>> = (0..side.pow(l as u32))
        .map(|mut idx| {
            (0..l)
                .map(|_| {
                    let c = (idx % side) as i64 - bound;
                    idx /= side;
                    c
                })
                .collect()
        })
        .collect();
    pts.sort_by_key(|p| (p.iter().map(|c| c.abs()).max().unwrap_or(0), p.clone()));
    pts.into_iter().map(|p| MPoint::affine(&p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_values() {
        let p = HPoint::affine(2);
        assert_eq!(p.monomial(2, 0), BigInt::one()); // h^2 x^0 = 1
        assert_eq!(p.monomial(2, 2), BigInt::from(4u64));
        let inf = HPoint::infinity();
        assert_eq!(inf.monomial(2, 2), BigInt::one());
        assert_eq!(inf.monomial(2, 0), BigInt::zero());
    }

    #[test]
    fn proj_equality() {
        assert!(HPoint { x: 2, h: 1 }.proj_eq(&HPoint { x: 4, h: 2 }));
        assert!(!HPoint { x: 2, h: 1 }.proj_eq(&HPoint { x: 4, h: 1 }));
        assert!(HPoint::infinity().proj_eq(&HPoint { x: 5, h: 0 }));
    }

    #[test]
    fn interpolation_theorem_for_distinct_points() {
        // Theorem 2.1: the k-evaluation matrix of k distinct points is
        // invertible. Check k = 5 with the classic TC-3 set.
        let pts = vec![
            HPoint::affine(0),
            HPoint::affine(1),
            HPoint::affine(-1),
            HPoint::affine(2),
            HPoint::infinity(),
        ];
        let m = eval_matrix(&pts, 5);
        assert!(!m.det_bareiss().is_zero());
    }

    #[test]
    fn eval_matrix_rows_match_point_eval() {
        use crate::mpoly::MPoly;
        let pts = vec![HPoint::affine(3), HPoint::infinity(), HPoint::affine(-2)];
        let coeffs: Vec<BigInt> = [7i64, -4, 9].iter().map(|&v| BigInt::from(v)).collect();
        let p = MPoly::univariate(coeffs.clone());
        let m = eval_matrix(&pts, 3);
        let vals = m.matvec(&coeffs);
        for (i, pt) in pts.iter().enumerate() {
            assert_eq!(vals[i], p.eval(&MPoint::new(vec![*pt])), "point {i}");
        }
    }

    #[test]
    fn cartesian_power_order_matches_mpoly_indexing() {
        let s = vec![HPoint::affine(0), HPoint::affine(1)];
        let pts = MPoint::cartesian_power(&s, 2);
        assert_eq!(pts.len(), 4);
        // Index 1 = (s[1], s[0]): variable 0 fastest.
        assert_eq!(pts[1].coords()[0], HPoint::affine(1));
        assert_eq!(pts[1].coords()[1], HPoint::affine(0));
    }

    #[test]
    fn combinations_enumerated() {
        let mut seen = Vec::new();
        for_each_combination(4, 2, |c| {
            seen.push(c.to_vec());
            true
        });
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 1]);
        assert_eq!(seen[5], vec![2, 3]);
    }

    #[test]
    fn combination_early_abort() {
        let mut count = 0;
        let completed = for_each_combination(5, 2, |_| {
            count += 1;
            count < 3
        });
        assert!(!completed);
        assert_eq!(count, 3);
    }

    #[test]
    fn distinct_univariate_points_are_general_position() {
        // (r,1)-general position for distinct points = Vandermonde.
        let pts: Vec<MPoint> = [-2i64, -1, 0, 1, 2]
            .iter()
            .map(|&x| MPoint::affine(&[x]))
            .collect();
        assert!(in_general_position(&pts, 3, 1));
        // Repeated point breaks it.
        let mut bad = pts.clone();
        bad[0] = bad[1].clone();
        assert!(!in_general_position(&bad, 3, 1));
    }

    #[test]
    fn grid_points_not_in_general_position_bivariate() {
        // 4 points on a 2x2 grid ARE in (2,2)-general position? The product
        // polynomial family Poly_{2,2} has dimension 4; the grid {0,1}² is
        // exactly the tensor Vandermonde — invertible. But 4 collinear
        // points are NOT (a bilinear polynomial vanishes on a line).
        let grid = MPoint::cartesian_power(&[HPoint::affine(0), HPoint::affine(1)], 2);
        assert!(in_general_position(&grid, 2, 2));
        let line: Vec<MPoint> = (0..4).map(|i| MPoint::affine(&[i, 0])).collect();
        assert!(!in_general_position(&line, 2, 2));
    }

    #[test]
    fn extends_matches_full_check() {
        let grid = MPoint::cartesian_power(&[HPoint::affine(0), HPoint::affine(1)], 2);
        let good = MPoint::affine(&[2, 3]);
        let bad = MPoint::affine(&[2, 0]); // collinear with a grid row? check both ways
        assert_eq!(extends_general_position(&grid, &good, 2, 2), {
            let mut all = grid.clone();
            all.push(good.clone());
            in_general_position(&all, 2, 2)
        });
        assert_eq!(extends_general_position(&grid, &bad, 2, 2), {
            let mut all = grid.clone();
            all.push(bad.clone());
            in_general_position(&all, 2, 2)
        });
    }

    #[test]
    fn heuristic_finds_redundant_points() {
        // Base: {0,1}² grid (valid for 1-step-combined TC-2 with l=2).
        let grid = MPoint::cartesian_power(&[HPoint::affine(0), HPoint::affine(1)], 2);
        let extra = find_redundant_points(&grid, 2, 2, 2, 4);
        assert_eq!(extra.len(), 2);
        let mut all = grid.clone();
        all.extend(extra);
        assert!(in_general_position(&all, 2, 2));
    }
}
