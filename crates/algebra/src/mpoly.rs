//! Dense multivariate polynomials with bounded per-variable degree — the
//! family `Poly_{r,l}` of Definition 2.4 (each of the `l` variables appears
//! with exponent at most `r−1`).
//!
//! Coefficients are indexed mixed-radix: the coefficient of
//! `x_0^{e_0}···x_{l-1}^{e_{l-1}}` lives at `Σ_v e_v · r^v`.
//!
//! Used to state and test Claims 2.1–2.3: Toom-Cook-k with lazy
//! interpolation at recursion depth `l` *is* multiplication in `Poly_{k,l}`.

use crate::points::MPoint;
use ft_bigint::BigInt;
use std::fmt;

/// A polynomial in `Poly_{r,l}`: `l` variables, per-variable degree `< r`.
#[derive(Clone, PartialEq)]
pub struct MPoly {
    r: usize,
    l: usize,
    coeffs: Vec<BigInt>,
}

impl MPoly {
    /// The zero polynomial of shape `(r, l)`.
    #[must_use]
    pub fn zero(r: usize, l: usize) -> MPoly {
        assert!(r >= 1);
        MPoly {
            r,
            l,
            coeffs: vec![BigInt::zero(); r.pow(l as u32)],
        }
    }

    /// Build from a dense coefficient vector of length `r^l`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn from_coeffs(r: usize, l: usize, coeffs: Vec<BigInt>) -> MPoly {
        assert_eq!(
            coeffs.len(),
            r.pow(l as u32),
            "coefficient count must be r^l"
        );
        MPoly { r, l, coeffs }
    }

    /// A univariate polynomial (`l = 1`) from its coefficients, low first.
    #[must_use]
    pub fn univariate(coeffs: Vec<BigInt>) -> MPoly {
        let r = coeffs.len().max(1);
        MPoly { r, l: 1, coeffs }
    }

    /// Per-variable degree bound `r` (exponents are `< r`).
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of variables.
    #[must_use]
    pub fn vars(&self) -> usize {
        self.l
    }

    /// Dense coefficients, mixed-radix order.
    #[must_use]
    pub fn coeffs(&self) -> &[BigInt] {
        &self.coeffs
    }

    /// Decode a flat index into its exponent vector.
    #[must_use]
    pub fn exponents_of(&self, mut idx: usize) -> Vec<usize> {
        let mut e = Vec::with_capacity(self.l);
        for _ in 0..self.l {
            e.push(idx % self.r);
            idx /= self.r;
        }
        e
    }

    /// Coefficient of the monomial with exponent vector `e`.
    ///
    /// # Panics
    /// Panics if `e` has the wrong arity or an exponent `>= r`.
    #[must_use]
    pub fn coeff(&self, e: &[usize]) -> &BigInt {
        assert_eq!(e.len(), self.l);
        let mut idx = 0usize;
        for (v, &ev) in e.iter().enumerate().rev() {
            assert!(ev < self.r, "exponent {ev} out of range (< {})", self.r);
            idx = idx * self.r + ev;
            let _ = v;
        }
        &self.coeffs[idx]
    }

    /// Polynomial sum (shapes must match).
    #[must_use]
    pub fn add(&self, rhs: &MPoly) -> MPoly {
        assert_eq!((self.r, self.l), (rhs.r, rhs.l), "shape mismatch");
        MPoly {
            r: self.r,
            l: self.l,
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Full product: `Poly_{r,l} × Poly_{r,l} → Poly_{2r−1,l}` by direct
    /// convolution (the reference semantics the fast algorithms must match).
    #[must_use]
    pub fn mul(&self, rhs: &MPoly) -> MPoly {
        assert_eq!((self.r, self.l), (rhs.r, rhs.l), "shape mismatch");
        let rr = 2 * self.r - 1;
        let mut out = MPoly::zero(rr, self.l);
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            let ei = self.exponents_of(i);
            for (j, b) in rhs.coeffs.iter().enumerate() {
                if b.is_zero() {
                    continue;
                }
                let ej = rhs.exponents_of(j);
                let mut idx = 0usize;
                for v in (0..self.l).rev() {
                    idx = idx * rr + (ei[v] + ej[v]);
                }
                out.coeffs[idx] += &(a * b);
            }
        }
        out
    }

    /// Homogeneous evaluation at a multivariate point: each variable `v`
    /// contributes `h_v^{(r−1)−e_v} · x_v^{e_v}` (Zanoni's homogeneous
    /// notation, Remark 2.2 — `h = 0` encodes the ∞ point).
    ///
    /// # Panics
    /// Panics if the point arity differs from `l`.
    #[must_use]
    pub fn eval(&self, p: &MPoint) -> BigInt {
        assert_eq!(p.coords().len(), self.l, "point arity mismatch");
        let mut acc = BigInt::zero();
        for (idx, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let e = self.exponents_of(idx);
            let mut term = c.clone();
            for (v, hp) in p.coords().iter().enumerate() {
                term = &term * &hp.monomial(self.r - 1, e[v]);
            }
            acc += &term;
        }
        acc
    }

    /// Substitute `x_v = base^{k^v}`-style values: evaluate all variables at
    /// affine integer values (`h = 1`). Convenience over [`MPoly::eval`].
    #[must_use]
    pub fn eval_affine(&self, xs: &[BigInt]) -> BigInt {
        assert_eq!(xs.len(), self.l);
        let mut acc = BigInt::zero();
        for (idx, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let e = self.exponents_of(idx);
            let mut term = c.clone();
            for v in 0..self.l {
                term = &term * &xs[v].pow(e[v] as u32);
            }
            acc += &term;
        }
        acc
    }

    /// `true` iff every coefficient is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(BigInt::is_zero)
    }
}

impl fmt::Debug for MPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MPoly(r={}, l={}, ", self.r, self.l)?;
        let mut first = true;
        for (idx, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{c}·x^{:?}", self.exponents_of(idx))?;
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::HPoint;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn indexing_mixed_radix() {
        // r=3, l=2: index of x0^2 x1^1 is 2 + 1*3 = 5
        let mut c = vec![BigInt::zero(); 9];
        c[5] = b(7);
        let p = MPoly::from_coeffs(3, 2, c);
        assert_eq!(p.coeff(&[2, 1]), &b(7));
        assert_eq!(p.exponents_of(5), vec![2, 1]);
    }

    #[test]
    fn univariate_mul_is_convolution() {
        // (1 + 2x)(3 + x) = 3 + 7x + 2x^2
        let a = MPoly::univariate(vec![b(1), b(2)]);
        let c = MPoly::univariate(vec![b(3), b(1)]);
        let p = a.mul(&c);
        assert_eq!(p.coeffs(), &[b(3), b(7), b(2)]);
    }

    #[test]
    fn bivariate_mul() {
        // (x0 + x1)^2 = x0^2 + 2 x0 x1 + x1^2  (r=2 -> rr=3)
        let mut c = vec![BigInt::zero(); 4];
        c[1] = b(1); // x0
        c[2] = b(1); // x1
        let a = MPoly::from_coeffs(2, 2, c);
        let p = a.mul(&a);
        assert_eq!(p.coeff(&[2, 0]), &b(1));
        assert_eq!(p.coeff(&[1, 1]), &b(2));
        assert_eq!(p.coeff(&[0, 2]), &b(1));
        assert_eq!(p.coeff(&[0, 0]), &b(0));
    }

    #[test]
    fn eval_affine_matches_direct() {
        // p = 1 + 2 x0 + 3 x1 + 4 x0 x1 at (5, 7): 1 + 10 + 21 + 140 = 172
        let p = MPoly::from_coeffs(2, 2, vec![b(1), b(2), b(3), b(4)]);
        assert_eq!(p.eval_affine(&[b(5), b(7)]), b(172));
    }

    #[test]
    fn homogeneous_eval_infinity_picks_top_coeff() {
        // Univariate r=3: p = c0 h^2 + c1 h x + c2 x^2; at ∞=(1,0) -> c2.
        let p = MPoly::univariate(vec![b(10), b(20), b(30)]);
        let inf = MPoint::new(vec![HPoint::infinity()]);
        assert_eq!(p.eval(&inf), b(30));
        let at2 = MPoint::new(vec![HPoint::affine(2)]);
        assert_eq!(p.eval(&at2), b(10 + 40 + 120));
    }

    #[test]
    fn eval_multiplicative_on_products() {
        // E(a·b) = E(a)·E(b) pointwise for homogeneous evaluation.
        let a = MPoly::from_coeffs(2, 2, vec![b(1), b(-2), b(3), b(4)]);
        let c = MPoly::from_coeffs(2, 2, vec![b(5), b(1), b(0), b(-1)]);
        let prod = a.mul(&c);
        for pt in [
            MPoint::new(vec![HPoint::affine(0), HPoint::affine(1)]),
            MPoint::new(vec![HPoint::affine(-1), HPoint::affine(2)]),
            MPoint::new(vec![HPoint::infinity(), HPoint::affine(3)]),
            MPoint::new(vec![HPoint::infinity(), HPoint::infinity()]),
        ] {
            assert_eq!(prod.eval(&pt), &a.eval(&pt) * &c.eval(&pt), "{pt:?}");
        }
    }

    #[test]
    fn add_and_zero() {
        let a = MPoly::from_coeffs(2, 1, vec![b(1), b(2)]);
        let z = MPoly::zero(2, 1);
        assert_eq!(a.add(&z), a);
        assert!(z.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    #[should_panic(expected = "r^l")]
    fn wrong_len_rejected() {
        let _ = MPoly::from_coeffs(3, 2, vec![BigInt::zero(); 8]);
    }
}
