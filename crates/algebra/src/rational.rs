//! Exact rational numbers over [`BigInt`].
//!
//! Invariants: denominator strictly positive, fraction fully reduced,
//! zero is `0/1`. All operations are exact — this is what lets
//! interpolation matrices and erasure-decode coefficients be applied with
//! provably exact divisions.

use ft_bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num/den` with `den > 0` and `gcd(num,den) = 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// `0/1`.
    #[must_use]
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// `1/1`.
    #[must_use]
    pub fn one() -> Rational {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Construct and normalize `num/den`.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.gcd(&den);
        let mut num = num.div_exact(&g);
        let mut den = den.div_exact(&g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The integer `n` as a rational.
    #[must_use]
    pub fn from_int(n: impl Into<BigInt>) -> Rational {
        Rational {
            num: n.into(),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    #[must_use]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// `true` iff zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff the denominator is one.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Extract the integer value.
    ///
    /// # Panics
    /// Panics if not an integer.
    #[must_use]
    pub fn to_integer(&self) -> BigInt {
        assert!(self.is_integer(), "rational {self} is not an integer");
        self.num.clone()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[must_use]
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Integer power (negative exponents allowed for non-zero values).
    #[must_use]
    pub fn pow(&self, e: i32) -> Rational {
        if e < 0 {
            return self.recip().pow(-e);
        }
        Rational::new(self.num.pow(e as u32), self.den.pow(e as u32))
    }

    /// Exact product with a big integer.
    #[must_use]
    pub fn mul_int(&self, n: &BigInt) -> Rational {
        Rational::new(&self.num * n, self.den.clone())
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<BigInt> for Rational {
    fn from(n: BigInt) -> Rational {
        Rational::from_int(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Rational {
        Rational::from_int(BigInt::from(n))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division by reciprocal
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.recip()
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
    };
}
forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);
forward_owned!(Div, div);

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -&self
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(q(2, 4), q(1, 2));
        assert_eq!(q(-2, -4), q(1, 2));
        assert_eq!(q(2, -4), q(-1, 2));
        assert_eq!(q(0, -7), Rational::zero());
        assert!(q(6, 3).is_integer());
        assert_eq!(q(6, 3).to_integer(), BigInt::from(2u64));
    }

    #[test]
    fn field_ops() {
        assert_eq!(&q(1, 2) + &q(1, 3), q(5, 6));
        assert_eq!(&q(1, 2) - &q(1, 3), q(1, 6));
        assert_eq!(&q(2, 3) * &q(3, 4), q(1, 2));
        assert_eq!(&q(2, 3) / &q(4, 9), q(3, 2));
        assert_eq!(-&q(1, 2), q(-1, 2));
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(q(2, 3).recip(), q(3, 2));
        assert_eq!(q(2, 3).pow(3), q(8, 27));
        assert_eq!(q(2, 3).pow(-2), q(9, 4));
        assert_eq!(q(5, 7).pow(0), Rational::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        let _ = q(1, 0);
    }

    #[test]
    fn ordering() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(-1, 2) < Rational::zero());
        assert_eq!(q(3, 9), q(1, 3));
    }

    #[test]
    fn display() {
        assert_eq!(q(1, 2).to_string(), "1/2");
        assert_eq!(q(-4, 2).to_string(), "-2");
        assert_eq!(Rational::zero().to_string(), "0");
    }

    #[test]
    fn mul_int_exact() {
        assert_eq!(q(5, 6).mul_int(&BigInt::from(12u64)), q(10, 1));
    }
}
