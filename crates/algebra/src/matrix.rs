//! Dense matrices over an arbitrary exact scalar ring.
//!
//! Two scalar types matter here: [`BigInt`] (evaluation matrices, Bareiss
//! determinants for general-position checks) and [`Rational`] (interpolation
//! and decode matrices, Gaussian inversion).

use crate::rational::Rational;
use ft_bigint::BigInt;
use std::fmt;

/// An exact commutative ring element usable as a matrix scalar.
pub trait Scalar: Clone + PartialEq + fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + rhs`.
    fn add(&self, rhs: &Self) -> Self;
    /// `self - rhs`.
    fn sub(&self, rhs: &Self) -> Self;
    /// `self * rhs`.
    fn mul(&self, rhs: &Self) -> Self;
    /// `-self`.
    fn neg(&self) -> Self;
    /// `true` iff additive identity.
    fn is_zero(&self) -> bool;
}

impl Scalar for BigInt {
    fn zero() -> Self {
        BigInt::zero()
    }
    fn one() -> Self {
        BigInt::one()
    }
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    fn sub(&self, rhs: &Self) -> Self {
        self - rhs
    }
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        BigInt::is_zero(self)
    }
}

impl Scalar for Rational {
    fn zero() -> Self {
        Rational::zero()
    }
    fn one() -> Self {
        Rational::one()
    }
    fn add(&self, rhs: &Self) -> Self {
        self + rhs
    }
    fn sub(&self, rhs: &Self) -> Self {
        self - rhs
    }
    fn mul(&self, rhs: &Self) -> Self {
        self * rhs
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }
}

/// A dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix<T> {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input or zero rows.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<T>>) -> Matrix<T> {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let r = rows.len();
        Matrix {
            rows: r,
            cols,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Build from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Matrix<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].clone())
    }

    /// Matrix product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matmul");
        Matrix::from_fn(self.rows, rhs.cols, |i, j| {
            let mut acc = T::zero();
            for t in 0..self.cols {
                acc = acc.add(&self[(i, t)].mul(&rhs[(t, j)]));
            }
            acc
        })
    }

    /// Matrix–vector product over any type that supports scalar-weighted
    /// accumulation: `out[i] = Σ_j self[i][j] · v[j]`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(self.cols, v.len(), "shape mismatch in matvec");
        (0..self.rows)
            .map(|i| {
                let mut acc = T::zero();
                for j in 0..self.cols {
                    acc = acc.add(&self[(i, j)].mul(&v[j]));
                }
                acc
            })
            .collect()
    }

    /// Select a subset of rows (in the given order).
    #[must_use]
    pub fn select_rows(&self, idx: &[usize]) -> Matrix<T> {
        Matrix::from_fn(idx.len(), self.cols, |i, j| self[(idx[i], j)].clone())
    }

    /// Select a subset of columns (in the given order).
    #[must_use]
    pub fn select_cols(&self, idx: &[usize]) -> Matrix<T> {
        Matrix::from_fn(self.rows, idx.len(), |i, j| self[(i, idx[j])].clone())
    }

    /// Elementwise map to another scalar type.
    #[must_use]
    pub fn map<U: Scalar>(&self, f: impl Fn(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl Matrix<BigInt> {
    /// Determinant by the Bareiss fraction-free algorithm (exact over ℤ,
    /// no rationals needed). `O(n³)` big-integer operations.
    ///
    /// # Panics
    /// Panics if not square.
    #[must_use]
    pub fn det_bareiss(&self) -> BigInt {
        assert!(self.is_square(), "determinant of non-square matrix");
        let n = self.rows;
        if n == 0 {
            return BigInt::one();
        }
        let mut m = self.clone();
        let mut sign = 1i64;
        let mut prev = BigInt::one();
        for k in 0..n - 1 {
            if m[(k, k)].is_zero() {
                // Pivot: find a row below with non-zero entry in column k.
                match (k + 1..n).find(|&r| !m[(r, k)].is_zero()) {
                    Some(r) => {
                        for c in 0..n {
                            let tmp = m[(k, c)].clone();
                            m[(k, c)] = m[(r, c)].clone();
                            m[(r, c)] = tmp;
                        }
                        sign = -sign;
                    }
                    None => return BigInt::zero(),
                }
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let t = &(&m[(i, j)] * &m[(k, k)]) - &(&m[(i, k)] * &m[(k, j)]);
                    m[(i, j)] = t.div_exact(&prev);
                }
                m[(i, k)] = BigInt::zero();
            }
            prev = m[(k, k)].clone();
        }
        m[(n - 1, n - 1)].mul_small(sign)
    }

    /// Promote to a rational matrix.
    #[must_use]
    pub fn to_rational(&self) -> Matrix<Rational> {
        self.map(|x| Rational::from_int(x.clone()))
    }
}

impl Matrix<Rational> {
    /// Inverse by Gauss–Jordan elimination with partial (first non-zero)
    /// pivoting; `None` if singular.
    #[must_use]
    pub fn inverse(&self) -> Option<Matrix<Rational>> {
        assert!(self.is_square(), "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::<Rational>::identity(n);
        for col in 0..n {
            let pivot = (col..n).find(|&r| !a[(r, col)].is_zero())?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = a[(col, col)].clone();
            let pinv = p.recip();
            for j in 0..n {
                a[(col, j)] = (&a[(col, j)] * &pinv).clone();
                inv[(col, j)] = (&inv[(col, j)] * &pinv).clone();
            }
            for r in 0..n {
                if r == col || a[(r, col)].is_zero() {
                    continue;
                }
                let factor = a[(r, col)].clone();
                for j in 0..n {
                    let t = &a[(r, j)] - &(&factor * &a[(col, j)]);
                    a[(r, j)] = t;
                    let t = &inv[(r, j)] - &(&factor * &inv[(col, j)]);
                    inv[(r, j)] = t;
                }
            }
        }
        Some(inv)
    }

    /// Solve `self · x = rhs` for a single right-hand side; `None` if
    /// singular.
    #[must_use]
    pub fn solve(&self, rhs: &[Rational]) -> Option<Vec<Rational>> {
        Some(self.inverse()?.matvec(rhs))
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let x = self[(a, j)].clone();
            self[(a, j)] = self[(b, j)].clone();
            self[(b, j)] = x;
        }
    }

    /// Determinant over ℚ (Gaussian elimination).
    #[must_use]
    pub fn det(&self) -> Rational {
        assert!(self.is_square());
        let n = self.rows;
        let mut a = self.clone();
        let mut det = Rational::one();
        for col in 0..n {
            let Some(pivot) = (col..n).find(|&r| !a[(r, col)].is_zero()) else {
                return Rational::zero();
            };
            if pivot != col {
                a.swap_rows(pivot, col);
                det = -det;
            }
            let p = a[(col, col)].clone();
            det = &det * &p;
            let pinv = p.recip();
            for r in col + 1..n {
                if a[(r, col)].is_zero() {
                    continue;
                }
                let factor = &a[(r, col)] * &pinv;
                for j in col..n {
                    let t = &a[(r, j)] - &(&factor * &a[(col, j)]);
                    a[(r, j)] = t;
                }
            }
        }
        det
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    fn zmat(rows: Vec<Vec<i64>>) -> Matrix<BigInt> {
        Matrix::from_rows(
            rows.into_iter()
                .map(|r| r.into_iter().map(zi).collect())
                .collect(),
        )
    }

    #[test]
    fn identity_matmul() {
        let a = zmat(vec![vec![1, 2], vec![3, 4]]);
        let i = Matrix::<BigInt>::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = zmat(vec![vec![1, 2], vec![3, 4]]);
        let b = zmat(vec![vec![5, 6], vec![7, 8]]);
        assert_eq!(a.matmul(&b), zmat(vec![vec![19, 22], vec![43, 50]]));
    }

    #[test]
    fn matvec_known() {
        let a = zmat(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let v = vec![zi(1), zi(0), zi(-1)];
        assert_eq!(a.matvec(&v), vec![zi(-2), zi(-2)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = zmat(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn bareiss_determinants() {
        assert_eq!(zmat(vec![vec![3]]).det_bareiss(), zi(3));
        assert_eq!(zmat(vec![vec![1, 2], vec![3, 4]]).det_bareiss(), zi(-2));
        assert_eq!(
            zmat(vec![vec![2, 0, 1], vec![1, 1, 0], vec![0, 3, 1]]).det_bareiss(),
            zi(5)
        );
        // Singular
        assert_eq!(zmat(vec![vec![1, 2], vec![2, 4]]).det_bareiss(), zi(0));
        // Needs pivoting
        assert_eq!(zmat(vec![vec![0, 1], vec![1, 0]]).det_bareiss(), zi(-1));
    }

    #[test]
    fn bareiss_matches_rational_det() {
        let m = zmat(vec![
            vec![2, -1, 3, 0],
            vec![4, 2, -2, 1],
            vec![0, 5, 1, -3],
            vec![1, 1, 1, 1],
        ]);
        let d1 = m.det_bareiss();
        let d2 = m.to_rational().det();
        assert_eq!(Rational::from_int(d1), d2);
    }

    #[test]
    fn vandermonde_det_formula() {
        // det V(x0..x3) = Π_{i<j} (xj - xi)
        let xs = [2i64, 3, 5, 7];
        let v = Matrix::from_fn(4, 4, |i, j| zi(xs[i]).pow(j as u32));
        let mut expected = zi(1);
        for i in 0..4 {
            for j in i + 1..4 {
                expected = &expected * &zi(xs[j] - xs[i]);
            }
        }
        assert_eq!(v.det_bareiss(), expected);
    }

    #[test]
    fn rational_inverse_roundtrip() {
        let m = zmat(vec![vec![2, 1], vec![7, 4]]).to_rational();
        let inv = m.inverse().unwrap();
        assert_eq!(m.matmul(&inv), Matrix::<Rational>::identity(2));
        assert_eq!(inv.matmul(&m), Matrix::<Rational>::identity(2));
    }

    #[test]
    fn singular_inverse_is_none() {
        let m = zmat(vec![vec![1, 2], vec![2, 4]]).to_rational();
        assert!(m.inverse().is_none());
        assert_eq!(m.det(), Rational::zero());
    }

    #[test]
    fn inverse_needs_pivot() {
        let m = zmat(vec![vec![0, 1], vec![1, 0]]).to_rational();
        let inv = m.inverse().unwrap();
        assert_eq!(inv, m, "permutation matrix is its own inverse");
    }

    #[test]
    fn solve_linear_system() {
        // x + 2y = 5; 3x - y = 1  =>  x = 1, y = 2
        let m = zmat(vec![vec![1, 2], vec![3, -1]]).to_rational();
        let rhs = vec![Rational::from(5i64), Rational::from(1i64)];
        let sol = m.solve(&rhs).unwrap();
        assert_eq!(sol, vec![Rational::from(1i64), Rational::from(2i64)]);
    }

    #[test]
    fn row_col_selection() {
        let a = zmat(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        assert_eq!(
            a.select_rows(&[2, 0]),
            zmat(vec![vec![7, 8, 9], vec![1, 2, 3]])
        );
        assert_eq!(a.select_cols(&[1]), zmat(vec![vec![2], vec![5], vec![8]]));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = zmat(vec![vec![1, 2], vec![3]]);
    }
}
