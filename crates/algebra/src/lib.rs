//! # ft-algebra — exact linear algebra over ℚ and multivariate polynomials
//!
//! Substrate for the Toom-Cook reproduction:
//!
//! - [`Rational`] — exact rationals over [`ft_bigint::BigInt`];
//! - [`Matrix`] — dense matrices over any [`Scalar`] ring, with Gaussian
//!   inversion over fields and fraction-free (Bareiss) determinants over ℤ;
//! - [`ScaledIntMatrix`] — a rational matrix held as `(integer matrix)/denom`
//!   so it can be applied to big-integer vectors with one exact division per
//!   entry (how interpolation and erasure decoding are actually executed);
//! - [`MPoly`] — dense multivariate polynomials with bounded per-variable
//!   degree (the `Poly_{r,l}` family of Definition 2.4);
//! - [`points`] — homogeneous evaluation points, evaluation matrices, the
//!   `(r,l)`-general-position predicate (Definition 6.1 / Claim 6.1) and the
//!   §6.2 heuristic for finding redundant evaluation points.

pub mod matrix;
pub mod mpoly;
pub mod points;
pub mod rational;
pub mod scaled;

pub use matrix::{Matrix, Scalar};
pub use mpoly::MPoly;
pub use points::{HPoint, MPoint};
pub use rational::Rational;
pub use scaled::ScaledIntMatrix;
