//! Property tests for exact algebra: field axioms for `Rational`,
//! matrix-algebra identities, determinant multiplicativity, inverse
//! round-trips, and evaluation/interpolation duality.

use ft_algebra::points::eval_matrix;
use ft_algebra::{HPoint, Matrix, Rational, ScaledIntMatrix};
use ft_bigint::BigInt;
use proptest::prelude::*;

fn rational() -> impl Strategy<Value = Rational> {
    (any::<i32>(), 1i32..1000, any::<bool>()).prop_map(|(n, d, neg)| {
        let d = if neg { -(d as i64) } else { d as i64 };
        Rational::new(BigInt::from(n as i64), BigInt::from(d))
    })
}

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix<BigInt>> {
    proptest::collection::vec(-50i64..50, n * n)
        .prop_map(move |vals| Matrix::from_fn(n, n, |i, j| BigInt::from(vals[i * n + j])))
}

proptest! {
    #[test]
    fn rational_field_axioms(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a / &a, Rational::one());
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_normalization_canonical(a in rational(), scale in 1i64..500) {
        // n·s / d·s must normalize to the same representation.
        let scaled = Rational::new(
            a.numer() * &BigInt::from(scale),
            a.denom() * &BigInt::from(scale),
        );
        prop_assert_eq!(scaled.numer(), a.numer());
        prop_assert_eq!(scaled.denom(), a.denom());
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in rational(), b in rational()) {
        let fa = f64::from(a.numer()) / f64::from(a.denom());
        let fb = f64::from(b.numer()) / f64::from(b.denom());
        if (fa - fb).abs() > 1e-6 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn det_is_multiplicative(a in small_matrix(3), b in small_matrix(3)) {
        let da = a.det_bareiss();
        let db = b.det_bareiss();
        let dab = a.matmul(&b).det_bareiss();
        prop_assert_eq!(dab, &da * &db);
    }

    #[test]
    fn det_transpose_invariant(a in small_matrix(4)) {
        prop_assert_eq!(a.det_bareiss(), a.transpose().det_bareiss());
    }

    #[test]
    fn bareiss_matches_rational_gauss(a in small_matrix(4)) {
        prop_assert_eq!(
            Rational::from_int(a.det_bareiss()),
            a.to_rational().det()
        );
    }

    #[test]
    fn inverse_roundtrip(a in small_matrix(3)) {
        let r = a.to_rational();
        match r.inverse() {
            Some(inv) => {
                prop_assert_eq!(r.matmul(&inv), Matrix::<Rational>::identity(3));
                prop_assert_eq!(inv.matmul(&r), Matrix::<Rational>::identity(3));
            }
            None => prop_assert!(a.det_bareiss().is_zero()),
        }
    }

    #[test]
    fn solve_satisfies_system(a in small_matrix(3), rhs in proptest::collection::vec(-100i64..100, 3)) {
        let r = a.to_rational();
        let b: Vec<Rational> = rhs.iter().map(|&v| Rational::from(v)).collect();
        if let Some(x) = r.solve(&b) {
            prop_assert_eq!(r.matvec(&x), b);
        }
    }

    #[test]
    fn matmul_associative(a in small_matrix(2), b in small_matrix(2), c in small_matrix(2)) {
        prop_assert_eq!(a.matmul(&b).matmul(&c), a.matmul(&b.matmul(&c)));
    }

    #[test]
    fn scaled_matrix_is_faithful(a in small_matrix(3), v in proptest::collection::vec(-100i64..100, 3)) {
        // An integral matrix through ScaledIntMatrix must equal plain matvec.
        let s = ScaledIntMatrix::from_integer(a.clone());
        let vv: Vec<BigInt> = v.iter().map(|&x| BigInt::from(x)).collect();
        prop_assert_eq!(s.apply(&vv), a.matvec(&vv));
    }

    #[test]
    fn interpolation_inverts_evaluation(coeffs in proptest::collection::vec(-1000i64..1000, 5)) {
        // Evaluate a degree-4 polynomial at the classic TC-3 points and
        // interpolate back through the cleared-denominator inverse.
        let pts = vec![
            HPoint::affine(0),
            HPoint::affine(1),
            HPoint::affine(-1),
            HPoint::affine(2),
            HPoint::infinity(),
        ];
        let e = eval_matrix(&pts, 5);
        let c: Vec<BigInt> = coeffs.iter().map(|&v| BigInt::from(v)).collect();
        let vals = e.matvec(&c);
        let inv = ScaledIntMatrix::from_rational(&e.to_rational().inverse().unwrap());
        prop_assert_eq!(inv.apply(&vals), c);
    }

    #[test]
    fn vandermonde_never_singular(xs in proptest::collection::hash_set(-40i64..40, 4)) {
        let xs: Vec<i64> = xs.into_iter().collect();
        let pts: Vec<HPoint> = xs.iter().map(|&x| HPoint::affine(x)).collect();
        let e = eval_matrix(&pts, pts.len());
        prop_assert!(!e.det_bareiss().is_zero(), "distinct points ⇒ invertible (Thm 2.1)");
    }
}
