//! The ⟨U, V, W⟩ bilinear form of Toom-Cook-k (§2.2).
//!
//! `U = V` is the `(2k−1) × k` evaluation matrix of the point set for
//! degree-(k−1) homogeneous polynomials; `W^T` is the inverse of the
//! `(2k−1) × (2k−1)` evaluation matrix for the product polynomial
//! (Theorem 2.1 guarantees invertibility for distinct points). We store
//! `W^T` denominator-cleared ([`ScaledIntMatrix`]) so interpolation runs in
//! pure metered integer arithmetic with one exact division per output.

use crate::points::{alternate_points, classic_points};
use ft_algebra::points::eval_matrix;
use ft_algebra::{HPoint, Matrix, ScaledIntMatrix};
use ft_bigint::workspace::Workspace;
use ft_bigint::BigInt;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A ready-to-run Toom-Cook-k plan: evaluation matrix + exact interpolation.
#[derive(Debug, Clone)]
pub struct ToomPlan {
    k: usize,
    points: Vec<HPoint>,
    eval: Matrix<BigInt>,
    interp: ScaledIntMatrix,
    /// Toom-Graph inversion sequence when one is known for this point set
    /// (Karatsuba and the Bodrato TC-3 schedule) — substantially fewer
    /// operations than the dense matrix solve (Definition 2.3, Remark 4.1).
    sequence: Option<crate::toomgraph::InversionSequence>,
}

impl ToomPlan {
    /// Plan for Toom-Cook-`k` on the classic point set.
    ///
    /// # Panics
    /// Panics if `k < 2`.
    #[must_use]
    pub fn new(k: usize) -> ToomPlan {
        ToomPlan::with_points(k, classic_points(k))
    }

    /// Plan for Toom-Cook-`k` on explicit points. Exactly `2k−1` points,
    /// projectively distinct.
    ///
    /// # Panics
    /// Panics on a wrong point count or a singular evaluation matrix.
    #[must_use]
    pub fn with_points(k: usize, points: Vec<HPoint>) -> ToomPlan {
        assert!(k >= 2, "Toom-Cook needs k >= 2");
        assert_eq!(points.len(), 2 * k - 1, "Toom-Cook-k needs 2k-1 points");
        let eval = eval_matrix(&points, k);
        let interp = interpolation_matrix(&points, 2 * k - 1);
        let sequence = [
            crate::toomgraph::karatsuba_seq(),
            crate::toomgraph::bodrato_tc3(),
        ]
        .into_iter()
        .find(|s| s.width() == 2 * k - 1 && s.verifies_against(&eval_matrix(&points, 2 * k - 1)));
        ToomPlan {
            k,
            points,
            eval,
            interp,
            sequence,
        }
    }

    /// A process-wide shared plan for the classic point set (plans are
    /// immutable and moderately expensive to build — one 5×5 rational
    /// inverse for k = 3 — so deep recursions share them).
    ///
    /// The common small `k` (2..=8, everything [`classic_points`] supports
    /// in practice) hit a lock-free `OnceLock` slot; larger `k` fall back
    /// to a mutexed map so hot multiply paths never contend on a lock.
    #[must_use]
    pub fn shared(k: usize) -> Arc<ToomPlan> {
        const SLOTS: usize = 9;
        static FAST: [OnceLock<Arc<ToomPlan>>; SLOTS] = [const { OnceLock::new() }; SLOTS];
        if let Some(slot) = FAST.get(k) {
            return slot.get_or_init(|| Arc::new(ToomPlan::new(k))).clone();
        }
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<ToomPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("plan cache poisoned");
        map.entry(k)
            .or_insert_with(|| Arc::new(ToomPlan::new(k)))
            .clone()
    }

    /// Plan for Toom-Cook-`k` on the alternate point set
    /// ([`alternate_points`]): projectively disjoint from the classic set,
    /// so its evaluation rows, interpolation matrix, and (absent) inversion
    /// sequence share nothing with [`ToomPlan::new`]. This is the
    /// structurally distinct second algorithm of the dual-algorithm
    /// verification rung: a soft error in either pipeline makes the two
    /// products disagree (cf. the Strassen-like ABFT construction).
    ///
    /// # Panics
    /// Panics if `k < 2`.
    #[must_use]
    pub fn alternate(k: usize) -> ToomPlan {
        ToomPlan::with_points(k, alternate_points(k))
    }

    /// A process-wide shared plan for the alternate point set — the
    /// dual-check counterpart of [`ToomPlan::shared`], with its own slots
    /// so the two families never alias.
    #[must_use]
    pub fn shared_alternate(k: usize) -> Arc<ToomPlan> {
        const SLOTS: usize = 9;
        static FAST: [OnceLock<Arc<ToomPlan>>; SLOTS] = [const { OnceLock::new() }; SLOTS];
        if let Some(slot) = FAST.get(k) {
            return slot
                .get_or_init(|| Arc::new(ToomPlan::alternate(k)))
                .clone();
        }
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<ToomPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("plan cache poisoned");
        map.entry(k)
            .or_insert_with(|| Arc::new(ToomPlan::alternate(k)))
            .clone()
    }

    /// The split parameter `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of sub-multiplications `2k−1`.
    #[must_use]
    pub fn sub_problems(&self) -> usize {
        2 * self.k - 1
    }

    /// The evaluation points.
    #[must_use]
    pub fn points(&self) -> &[HPoint] {
        &self.points
    }

    /// The evaluation matrix `U = V`.
    #[must_use]
    pub fn eval_matrix(&self) -> &Matrix<BigInt> {
        &self.eval
    }

    /// The denominator-cleared interpolation matrix `W^T`.
    #[must_use]
    pub fn interp_matrix(&self) -> &ScaledIntMatrix {
        &self.interp
    }

    /// Evaluate the digit vector at all points: `a' = U·ā`
    /// (Alg. 1 line 6). `digits.len()` must be `k`. Coefficients `0/±1`
    /// are handled as skips/adds/subs (they dominate the classic point
    /// sets), other small coefficients via single-limb multiplies.
    #[must_use]
    pub fn evaluate(&self, digits: &[BigInt]) -> Vec<BigInt> {
        assert_eq!(digits.len(), self.k, "expected {} digits", self.k);
        small_matvec(&self.eval, digits)
    }

    /// [`ToomPlan::evaluate`] with the output vector and the accumulator
    /// magnitudes drawn from the workspace pools. Recycle the result with
    /// [`Workspace::recycle_nodes`].
    #[must_use]
    pub fn evaluate_ws(&self, digits: &[BigInt], ws: &mut Workspace) -> Vec<BigInt> {
        assert_eq!(digits.len(), self.k, "expected {} digits", self.k);
        small_matvec_ws(&self.eval, digits, ws)
    }

    /// Interpolate product coefficients from the `2k−1` point-products:
    /// `c = W^T·c'` (Alg. 1 line 15), all divisions exact. Uses the
    /// Toom-Graph inversion sequence when one is known, otherwise the
    /// dense scaled-integer matrix.
    #[must_use]
    pub fn interpolate(&self, products: &[BigInt]) -> Vec<BigInt> {
        assert_eq!(products.len(), self.sub_problems());
        match &self.sequence {
            Some(seq) => seq.apply(products),
            None => self.interp.apply(products),
        }
    }

    /// [`ToomPlan::interpolate`] taking ownership of the products: the
    /// Toom-Graph sequence runs fully in place through the workspace
    /// ([`crate::toomgraph::InversionSequence::apply_owned`]); the dense
    /// fallback recycles the spent product vector.
    #[must_use]
    pub fn interpolate_ws(&self, products: Vec<BigInt>, ws: &mut Workspace) -> Vec<BigInt> {
        assert_eq!(products.len(), self.sub_problems());
        match &self.sequence {
            Some(seq) => seq.apply_owned(products, ws),
            None => {
                let out = self.interp.apply(&products);
                ws.recycle_nodes(products);
                out
            }
        }
    }

    /// Interpolate via the dense matrix unconditionally (the ablation
    /// baseline for the Toom-Graph benchmark).
    #[must_use]
    pub fn interpolate_dense(&self, products: &[BigInt]) -> Vec<BigInt> {
        assert_eq!(products.len(), self.sub_problems());
        self.interp.apply(products)
    }

    /// The Toom-Graph sequence, when one is attached.
    #[must_use]
    pub fn sequence(&self) -> Option<&crate::toomgraph::InversionSequence> {
        self.sequence.as_ref()
    }
}

/// Matrix–vector product specialized for small coefficients: `0` skips,
/// `±1` adds/subtracts, anything that fits a signed limb multiplies by a
/// single limb. Falls back to full products for larger entries.
#[must_use]
pub fn small_matvec(m: &Matrix<BigInt>, v: &[BigInt]) -> Vec<BigInt> {
    assert_eq!(m.cols(), v.len());
    (0..m.rows())
        .map(|i| {
            let mut acc = BigInt::zero();
            for (j, x) in v.iter().enumerate() {
                let c = &m[(i, j)];
                if c.is_zero() || x.is_zero() {
                    continue;
                }
                if c.is_one() {
                    acc += x;
                } else if let Ok(small) = i64::try_from(c) {
                    acc += &x.mul_small(small);
                } else {
                    acc += &(c * x);
                }
            }
            acc
        })
        .collect()
}

/// [`small_matvec`] with the output vector, the accumulator magnitudes,
/// and the per-term scratch buffer all drawn from the workspace pools —
/// the zero-allocation evaluation step. Recycle the result with
/// [`Workspace::recycle_nodes`].
#[must_use]
pub fn small_matvec_ws(m: &Matrix<BigInt>, v: &[BigInt], ws: &mut Workspace) -> Vec<BigInt> {
    assert_eq!(m.cols(), v.len());
    let mut out = ws.take_nodes();
    let mut tmp = ws.take_limbs();
    for i in 0..m.rows() {
        let mut acc = ws.take_bigint();
        for (j, x) in v.iter().enumerate() {
            let c = &m[(i, j)];
            if c.is_zero() || x.is_zero() {
                continue;
            }
            if c.is_one() {
                acc += x;
            } else if let Ok(small) = i64::try_from(c) {
                acc.add_mul_small_assign(x, small, &mut tmp);
            } else {
                acc += &(c * x);
            }
        }
        out.push(acc);
    }
    ws.recycle_limbs(tmp);
    out
}

/// Exact interpolation matrix for `width`-coefficient polynomials evaluated
/// at (at least `width`) points: inverse of the square evaluation matrix of
/// the first `width` points, denominator-cleared.
///
/// # Panics
/// Panics if fewer than `width` points are supplied or the matrix is
/// singular (impossible for projectively distinct points, Theorem 2.1).
#[must_use]
pub fn interpolation_matrix(points: &[HPoint], width: usize) -> ScaledIntMatrix {
    assert!(points.len() >= width);
    let e = eval_matrix(&points[..width], width);
    let inv = e
        .to_rational()
        .inverse()
        .expect("evaluation matrix of distinct points is invertible (Thm 2.1)");
    ScaledIntMatrix::from_rational(&inv)
}

/// Interpolation matrix from a *subset* of a larger point set — the
/// on-the-fly interpolation of the polynomial code (§4.2): given the
/// indices of `width` surviving sub-problems, build `W^T` for exactly those
/// points.
#[must_use]
pub fn interpolation_from_survivors(
    points: &[HPoint],
    survivors: &[usize],
    width: usize,
) -> ScaledIntMatrix {
    assert!(survivors.len() >= width, "need at least {width} survivors");
    let chosen: Vec<HPoint> = survivors[..width].iter().map(|&i| points[i]).collect();
    interpolation_matrix(&chosen, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn karatsuba_plan_shape() {
        let plan = ToomPlan::new(2);
        assert_eq!(plan.sub_problems(), 3);
        // U rows for points 0, 1, ∞ over [a0, a1]:
        // (0): h=1,x=0 → [1, 0]; (1): [1, 1]; ∞: [0, 1]
        let e = plan.evaluate(&[b(7), b(9)]);
        assert_eq!(e, vec![b(7), b(16), b(9)]);
    }

    #[test]
    fn tc3_evaluation_rows() {
        let plan = ToomPlan::new(3);
        // points 0,1,-1,2,∞ over [a0,a1,a2]
        let e = plan.evaluate(&[b(1), b(10), b(100)]);
        assert_eq!(e[0], b(1)); // a0
        assert_eq!(e[1], b(111)); // a0+a1+a2
        assert_eq!(e[2], b(91)); // a0-a1+a2
        assert_eq!(e[3], b(421)); // a0+2a1+4a2
        assert_eq!(e[4], b(100)); // a2
    }

    #[test]
    fn bilinear_identity_small_polynomials() {
        // For every k: interpolate(eval(a) ⊙ eval(b)) == conv(a, b).
        for k in 2..=5 {
            let plan = ToomPlan::new(k);
            let a: Vec<BigInt> = (1..=k as i64).map(b).collect();
            let c: Vec<BigInt> = (1..=k as i64).map(|v| b(10 * v - 15)).collect();
            let ea = plan.evaluate(&a);
            let ec = plan.evaluate(&c);
            let prods: Vec<BigInt> = ea.iter().zip(&ec).map(|(x, y)| x * y).collect();
            let got = plan.interpolate(&prods);
            // Reference convolution.
            let mut want = vec![BigInt::zero(); 2 * k - 1];
            for i in 0..k {
                for j in 0..k {
                    want[i + j] += &(&a[i] * &c[j]);
                }
            }
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn workspace_paths_match_allocating_paths() {
        let mut ws = Workspace::new();
        for k in 2..=5 {
            let plan = ToomPlan::new(k);
            let digits: Vec<BigInt> = (1..=k as i64).map(|v| b(3 * v - 4)).collect();
            let ea = plan.evaluate(&digits);
            let ea_ws = plan.evaluate_ws(&digits, &mut ws);
            assert_eq!(ea, ea_ws, "evaluate k={k}");
            let prods: Vec<BigInt> = ea.iter().map(|x| x * x).collect();
            assert_eq!(
                plan.interpolate_ws(prods.clone(), &mut ws),
                plan.interpolate(&prods),
                "interpolate k={k}"
            );
            ws.recycle_nodes(ea_ws);
        }
    }

    #[test]
    fn shared_plans_are_cached() {
        let p1 = ToomPlan::shared(3);
        let p2 = ToomPlan::shared(3);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(ToomPlan::shared(2).k(), 2);
    }

    #[test]
    fn alternate_plan_computes_the_same_bilinear_form() {
        // The dual-check plan must agree with the classic plan on every
        // convolution while sharing no structure with it.
        for k in 2..=5 {
            let alt = ToomPlan::alternate(k);
            assert!(
                alt.sequence().is_none(),
                "k={k}: alternate plan must use dense interpolation (no shared schedule)"
            );
            let a: Vec<BigInt> = (1..=k as i64).map(|v| b(7 * v - 11)).collect();
            let c: Vec<BigInt> = (1..=k as i64).map(|v| b(-3 * v + 5)).collect();
            let prods: Vec<BigInt> = alt
                .evaluate(&a)
                .iter()
                .zip(&alt.evaluate(&c))
                .map(|(x, y)| x * y)
                .collect();
            let classic = ToomPlan::new(k);
            let cprods: Vec<BigInt> = classic
                .evaluate(&a)
                .iter()
                .zip(&classic.evaluate(&c))
                .map(|(x, y)| x * y)
                .collect();
            assert_eq!(
                alt.interpolate(&prods),
                classic.interpolate(&cprods),
                "k={k}"
            );
        }
    }

    #[test]
    fn shared_alternate_is_cached_and_distinct_from_shared() {
        let a1 = ToomPlan::shared_alternate(3);
        let a2 = ToomPlan::shared_alternate(3);
        assert!(Arc::ptr_eq(&a1, &a2));
        let classic = ToomPlan::shared(3);
        assert!(!Arc::ptr_eq(&a1, &classic));
        for (p, q) in a1.points().iter().zip(classic.points()) {
            assert!(!p.proj_eq(q));
        }
        assert_eq!(ToomPlan::shared_alternate(12).k(), 12);
    }

    #[test]
    fn survivor_interpolation_matches_any_subset() {
        // Polynomial code: 2k-1+f points, any 2k-1 survivors interpolate
        // the same product.
        let k = 3;
        let f = 2;
        let points = crate::points::extend_points(&classic_points(k), f);
        let a: Vec<BigInt> = vec![b(3), b(-1), b(4)];
        let c: Vec<BigInt> = vec![b(2), b(7), b(-5)];
        let ua = eval_matrix(&points, k);
        let evals_a = ua.matvec(&a);
        let evals_c = ua.matvec(&c);
        let prods: Vec<BigInt> = evals_a.iter().zip(&evals_c).map(|(x, y)| x * y).collect();
        let mut want = vec![BigInt::zero(); 2 * k - 1];
        for i in 0..k {
            for j in 0..k {
                want[i + j] += &(&a[i] * &c[j]);
            }
        }
        ft_algebra::points::for_each_combination(points.len(), 2 * k - 1, |rows| {
            let interp = interpolation_from_survivors(&points, rows, 2 * k - 1);
            let chosen: Vec<BigInt> = rows.iter().map(|&i| prods[i].clone()).collect();
            assert_eq!(interp.apply(&chosen), want, "rows={rows:?}");
            true
        });
    }

    #[test]
    #[should_panic(expected = "2k-1 points")]
    fn wrong_point_count_rejected() {
        let _ = ToomPlan::with_points(3, classic_points(2));
    }
}
