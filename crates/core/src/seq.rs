//! Sequential integer multiplication: schoolbook, Karatsuba, recursive
//! Toom-Cook-k (Algorithm 1), and unbalanced Toom-Cook-(k₁,k₂).

use crate::bilinear::ToomPlan;
use crate::points::n_points;
use ft_algebra::points::eval_matrix;
use ft_bigint::workspace::{self, Workspace};
use ft_bigint::{BigInt, Sign};

/// Default base-case threshold in bits: below this, hand off to the
/// limb-level kernels (`ft_bigint::kernels::mul_into_auto` — schoolbook,
/// then in-place Karatsuba). (Alg. 1's `s` parameter.) The limb Karatsuba
/// carries much further than the old schoolbook base case did, so the
/// digit-level recursion stops early — tuned on the CI container via the
/// `tune_thresholds` sweep (ns/op minimum across 64k–1Mbit operands).
pub const DEFAULT_THRESHOLD_BITS: u64 = 24_576;

/// Schoolbook `Θ(n²)` multiplication — the naïve baseline.
#[must_use]
pub fn schoolbook(a: &BigInt, b: &BigInt) -> BigInt {
    a.mul_schoolbook(b)
}

/// Karatsuba multiplication (Toom-Cook-2).
#[must_use]
pub fn karatsuba(a: &BigInt, b: &BigInt) -> BigInt {
    toom_k(a, b, 2)
}

/// Recursive Toom-Cook-`k` with the classic point set and default
/// threshold (Algorithm 1).
#[must_use]
pub fn toom_k(a: &BigInt, b: &BigInt, k: usize) -> BigInt {
    toom_k_threshold(a, b, k, DEFAULT_THRESHOLD_BITS)
}

/// Recursive Toom-Cook-`k` with an explicit base-case threshold.
#[must_use]
pub fn toom_k_threshold(a: &BigInt, b: &BigInt, k: usize, threshold_bits: u64) -> BigInt {
    let plan = ToomPlan::shared(k);
    toom_with_plan(a, b, &plan, threshold_bits)
}

/// Recursive Toom-Cook with an explicit plan (custom point sets supported).
#[must_use]
pub fn toom_with_plan(a: &BigInt, b: &BigInt, plan: &ToomPlan, threshold_bits: u64) -> BigInt {
    workspace::with_thread_local(|ws| toom_with_plan_ws(a, b, plan, threshold_bits, ws))
}

/// [`toom_with_plan`] with an explicit scratch workspace — the whole
/// recursion (splitting, evaluation, interpolation, reassembly, and the
/// base-case kernels) draws every buffer from `ws` and recycles it, so a
/// warmed-up workspace makes repeated multiplies allocation-free.
#[must_use]
pub fn toom_with_plan_ws(
    a: &BigInt,
    b: &BigInt,
    plan: &ToomPlan,
    threshold_bits: u64,
    ws: &mut Workspace,
) -> BigInt {
    let sign = a.sign().mul(b.sign());
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let mag = rec(a, b, plan, threshold_bits.max(8), ws);
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

/// Magnitude recursion: returns `|a|·|b|`. Signs of the arguments are
/// ignored (the caller owns the sign bookkeeping), which is what lets the
/// recursion work on borrowed evaluations without `.abs()` clones.
fn rec(a: &BigInt, b: &BigInt, plan: &ToomPlan, threshold: u64, ws: &mut Workspace) -> BigInt {
    if a.is_zero() || b.is_zero() {
        return BigInt::zero();
    }
    if a.bit_length().min(b.bit_length()) <= threshold {
        let mut out = ws.take_limbs();
        ft_bigint::kernels::mul_into_auto(a.limbs(), b.limbs(), &mut out, ws);
        return BigInt::from_limbs(out);
    }
    let k = plan.k();
    // Alg. 1 line 4: split over the shared base B = 2^w.
    let w = BigInt::shared_digit_width(a, b, k);
    let da = a.split_base_pow2_ws(w, k, ws);
    let db = b.split_base_pow2_ws(w, k, ws);
    // Lines 6–7: evaluate both polynomials.
    let ea = plan.evaluate_ws(&da, ws);
    let eb = plan.evaluate_ws(&db, ws);
    ws.recycle_nodes(da);
    ws.recycle_nodes(db);
    // Lines 8–14: pointwise (recursive) products. Evaluations may be
    // negative; the recursion multiplies magnitudes, signs reattach here.
    let mut prods = ws.take_nodes();
    for (x, y) in ea.iter().zip(&eb) {
        let m = rec(x, y, plan, threshold, ws);
        prods.push(if x.sign().mul(y.sign()) == Sign::Negative {
            -m
        } else {
            m
        });
    }
    ws.recycle_nodes(ea);
    ws.recycle_nodes(eb);
    // Line 15: interpolate (in place when a Toom-Graph sequence exists).
    let coeffs = plan.interpolate_ws(prods, ws);
    // Line 16: evaluate at (B, 1) — carry propagation.
    let out = BigInt::join_base_pow2_ws(&coeffs, w, ws);
    ws.recycle_nodes(coeffs);
    out
}

/// Recursive Toom-Cook-`k` **squaring** (cf. Zuras, ref. 86 of the paper): evaluation
/// happens once, the point-values are squared, and interpolation is
/// unchanged — combined with [`ft_bigint`]'s halved schoolbook squaring at
/// the base case this is the standard `a²` fast path.
#[must_use]
pub fn toom_square(a: &BigInt, k: usize) -> BigInt {
    toom_square_threshold(a, k, DEFAULT_THRESHOLD_BITS)
}

/// [`toom_square`] with an explicit base-case threshold.
#[must_use]
pub fn toom_square_threshold(a: &BigInt, k: usize, threshold_bits: u64) -> BigInt {
    let plan = ToomPlan::shared(k);
    workspace::with_thread_local(|ws| sqr_rec(a, &plan, threshold_bits.max(8), ws))
}

/// Magnitude squaring recursion (`|a|²`; the sign is irrelevant).
fn sqr_rec(a: &BigInt, plan: &ToomPlan, threshold: u64, ws: &mut Workspace) -> BigInt {
    if a.is_zero() {
        return BigInt::zero();
    }
    if a.bit_length() <= threshold {
        return a.square_with_ws(ws);
    }
    let k = plan.k();
    let w = BigInt::shared_digit_width(a, a, k);
    let da = a.split_base_pow2_ws(w, k, ws);
    let ea = plan.evaluate_ws(&da, ws);
    ws.recycle_nodes(da);
    let mut prods = ws.take_nodes();
    for x in &ea {
        prods.push(sqr_rec(x, plan, threshold, ws));
    }
    ws.recycle_nodes(ea);
    let coeffs = plan.interpolate_ws(prods, ws);
    let out = BigInt::join_base_pow2_ws(&coeffs, w, ws);
    ws.recycle_nodes(coeffs);
    out
}

/// GMP-style size-adaptive multiplier: below the Toom range the limb-level
/// kernels ([`ft_bigint::BigInt::mul_auto`]: schoolbook basecase, then
/// in-place Karatsuba) win outright; above it digit-level TC-3 / TC-4 take
/// over (thresholds tuned via the `kernel_baseline` bench).
#[must_use]
pub fn auto_mul(a: &BigInt, b: &BigInt) -> BigInt {
    let bits = a.bit_length().min(b.bit_length());
    match bits {
        // The limb-level Karatsuba kernel wins outright to ~256kbit on the
        // CI container (see `tune_thresholds`); past that TC-3's better
        // exponent takes over. TC-4's constants never pay off here.
        0..=262_144 => a.mul_auto(b),
        // TC-3 band ends where the two-prime NTT's ≥1.5× win is stable
        // across `tune_thresholds` runs (8 Mbit — see EXPERIMENTS.md §S9).
        262_145..=NTT_MIN_BITS => toom_k(a, b, 3),
        _ => a.mul_ntt(b),
    }
}

/// Bits (min of both operands) above which [`auto_mul`] leaves Toom-Cook
/// for the two-prime CRT NTT. Mirrors
/// [`ft_bigint::ntt::NTT_THRESHOLD_LIMBS`] and the service
/// `KernelPolicy::ntt_min_bits` default.
pub const NTT_MIN_BITS: u64 = 64 * ft_bigint::ntt::NTT_THRESHOLD_LIMBS as u64;

/// Install [`auto_mul`] as the process-wide fast-multiply hook in
/// `ft-bigint` ([`ft_bigint::kernels::install_fast_mul`]), so
/// `BigInt::pow` and other bigint-level callers route through Toom-Cook
/// without a dependency cycle. First install wins; returns whether this
/// call performed it.
pub fn install_fast_mul_hook() -> bool {
    ft_bigint::kernels::install_fast_mul(auto_mul)
}

/// Unbalanced Toom-Cook-(k₁,k₂) (Zanoni 2010): split `a` into `k₁` digits
/// and `b` into `k₂` digits over a shared base; `k₁+k₂−1` evaluation
/// points. One unbalanced step, then balanced recursion via `inner`.
///
/// # Panics
/// Panics if `k₁ < k₂` or `k₂ < 1` or `k₁ < 2`.
#[must_use]
pub fn toom_unbalanced(
    a: &BigInt,
    b: &BigInt,
    k1: usize,
    k2: usize,
    inner: &dyn Fn(&BigInt, &BigInt) -> BigInt,
) -> BigInt {
    assert!(
        k1 >= k2 && k2 >= 1 && k1 + k2 >= 4,
        "need k1 >= k2 >= 1 and k1+k2 >= 4"
    );
    let sign = a.sign().mul(b.sign());
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let n = k1 + k2 - 1;
    let points = n_points(n);
    let w = {
        let wa = a.bit_length().max(1).div_ceil(k1 as u64);
        let wb = b.bit_length().max(1).div_ceil(k2 as u64);
        wa.max(wb)
    };
    // Split/evaluate through the workspace, then release the borrow: the
    // caller-supplied `inner` may itself re-enter the thread-local arena.
    let (ea, eb) = workspace::with_thread_local(|ws| {
        let da = a.split_base_pow2_ws(w, k1, ws);
        let db = b.split_base_pow2_ws(w, k2, ws);
        let ea = crate::bilinear::small_matvec_ws(&eval_matrix(&points, k1), &da, ws);
        let eb = crate::bilinear::small_matvec_ws(&eval_matrix(&points, k2), &db, ws);
        ws.recycle_nodes(da);
        ws.recycle_nodes(db);
        (ea, eb)
    });
    let prods: Vec<BigInt> = ea.iter().zip(&eb).map(|(x, y)| inner(x, y)).collect();
    let interp = crate::bilinear::interpolation_matrix(&points, n);
    let coeffs = interp.apply(&prods);
    let mag = workspace::with_thread_local(|ws| {
        ws.recycle_nodes(ea);
        ws.recycle_nodes(eb);
        ws.recycle_nodes(prods);
        let out = BigInt::join_base_pow2_ws(&coeffs, w, ws);
        ws.recycle_nodes(coeffs);
        out
    });
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

/// Iterative Toom-Cook for *very* unbalanced operands (Zanoni 2010, the
/// paper's ref. 85): slice the long operand into `|b|`-sized chunks,
/// multiply each chunk with a balanced kernel, and accumulate with shifts.
/// Complexity `Θ((|a|/|b|) · M(|b|))` instead of padding `a` up to a
/// balanced split.
///
/// # Panics
/// Panics if `b` is zero (the degenerate case callers should shortcut).
#[must_use]
pub fn toom_iterative_unbalanced(
    a: &BigInt,
    b: &BigInt,
    inner: &dyn Fn(&BigInt, &BigInt) -> BigInt,
) -> BigInt {
    assert!(!b.is_zero(), "iterative unbalanced multiply needs b != 0");
    if a.is_zero() {
        return BigInt::zero();
    }
    let sign = a.sign().mul(b.sign());
    let bb = b.abs();
    let chunk_bits = bb.bit_length().max(64);
    let chunks = a.bit_length().div_ceil(chunk_bits) as usize;
    let digits =
        workspace::with_thread_local(|ws| a.split_base_pow2_ws(chunk_bits, chunks.max(1), ws));
    let partials: Vec<BigInt> = digits.iter().map(|d| inner(d, &bb)).collect();
    let mag = workspace::with_thread_local(|ws| {
        ws.recycle_nodes(digits);
        let out = BigInt::join_base_pow2_ws(&partials, chunk_bits, ws);
        ws.recycle_nodes(partials);
        out
    });
    if sign == ft_bigint::Sign::Negative {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_bigint::Sign;
    use rand::SeedableRng;

    fn random_pair(bits_a: u64, bits_b: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_signed_bits(&mut rng, bits_a),
            BigInt::random_signed_bits(&mut rng, bits_b),
        )
    }

    #[test]
    fn toom_matches_schoolbook_all_k() {
        for k in 2..=5 {
            for (bits, seed) in [(100u64, 1u64), (1000, 2), (5000, 3)] {
                let (a, b) = random_pair(bits, bits, seed + k as u64 * 100);
                assert_eq!(
                    toom_k_threshold(&a, &b, k, 64),
                    a.mul_schoolbook(&b),
                    "k={k} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn deep_recursion_small_threshold() {
        let (a, b) = random_pair(4096, 4096, 42);
        assert_eq!(toom_k_threshold(&a, &b, 3, 8), a.mul_schoolbook(&b));
        assert_eq!(toom_k_threshold(&a, &b, 2, 8), a.mul_schoolbook(&b));
    }

    #[test]
    fn unbalanced_inputs() {
        // Very different sizes stress the shared-base rule.
        let (a, b) = random_pair(5000, 300, 7);
        for k in 2..=4 {
            assert_eq!(
                toom_k_threshold(&a, &b, k, 64),
                a.mul_schoolbook(&b),
                "k={k}"
            );
        }
    }

    #[test]
    fn signs_and_zero() {
        let (a, b) = random_pair(600, 600, 9);
        let (a, b) = (a.abs(), b.abs());
        assert_eq!(toom_k(&-&a, &b, 3), -&a.mul_schoolbook(&b));
        assert_eq!(toom_k(&-&a, &-&b, 3), a.mul_schoolbook(&b));
        assert!(toom_k(&BigInt::zero(), &b, 3).is_zero());
        assert_eq!(toom_k(&a, &b, 3).sign(), Sign::Positive);
    }

    #[test]
    fn karatsuba_named_entry() {
        let (a, b) = random_pair(2000, 2000, 11);
        assert_eq!(karatsuba(&a, &b), a.mul_schoolbook(&b));
    }

    #[test]
    fn toom_cook_32_unbalanced() {
        // Toom-Cook-(3,2), a.k.a. Toom-2.5.
        let (a, b) = random_pair(3000, 2000, 13);
        let inner = |x: &BigInt, y: &BigInt| toom_k(x, y, 2);
        assert_eq!(toom_unbalanced(&a, &b, 3, 2, &inner), a.mul_schoolbook(&b));
    }

    #[test]
    fn toom_cook_43_unbalanced() {
        let (a, b) = random_pair(4000, 3000, 17);
        let inner = |x: &BigInt, y: &BigInt| toom_k(x, y, 3);
        assert_eq!(toom_unbalanced(&a, &b, 4, 3, &inner), a.mul_schoolbook(&b));
    }

    #[test]
    fn unbalanced_with_negative_inputs() {
        let (a, b) = random_pair(1500, 900, 19);
        let inner = |x: &BigInt, y: &BigInt| x.mul_schoolbook(y);
        assert_eq!(
            toom_unbalanced(&-&a, &b, 3, 2, &inner),
            (-&a).mul_schoolbook(&b)
        );
    }

    #[test]
    fn iterative_unbalanced_matches() {
        let (a, _) = random_pair(50_000, 50_000, 41);
        let (b, _) = random_pair(2_000, 2_000, 43);
        let inner = |x: &BigInt, y: &BigInt| toom_k_threshold(x, y, 3, 256);
        assert_eq!(
            toom_iterative_unbalanced(&a, &b, &inner),
            a.mul_schoolbook(&b)
        );
        assert_eq!(
            toom_iterative_unbalanced(&-&a.abs(), &b.abs(), &inner),
            -(a.abs().mul_schoolbook(&b.abs()))
        );
        assert!(toom_iterative_unbalanced(&BigInt::zero(), &b, &inner).is_zero());
    }

    #[test]
    fn iterative_unbalanced_cheaper_than_padded_toom() {
        let (a, _) = random_pair(400_000, 400_000, 44);
        let (b, _) = random_pair(40_000, 40_000, 45);
        let inner = |x: &BigInt, y: &BigInt| toom_k_threshold(x, y, 3, 3_072);
        let (_, iter_ops) =
            ft_bigint::metrics::measure(|| toom_iterative_unbalanced(&a, &b, &inner));
        let (_, balanced_ops) = ft_bigint::metrics::measure(|| toom_k_threshold(&a, &b, 2, 512));
        let (_, school_ops) = ft_bigint::metrics::measure(|| a.mul_schoolbook(&b));
        // The balanced recursion already degrades gracefully on unbalanced
        // inputs (zero high digits); iterative must stay in the same class
        // and both must beat schoolbook clearly.
        assert!(
            iter_ops < school_ops,
            "iterative {iter_ops} vs schoolbook {school_ops}"
        );
        assert!(
            (iter_ops as f64) < 1.5 * balanced_ops as f64,
            "iterative {iter_ops} should stay near balanced {balanced_ops}"
        );
    }

    #[test]
    fn toom_square_matches_general_multiply() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for k in 2..=4 {
            for bits in [500u64, 5_000, 20_000] {
                let a = BigInt::random_signed_bits(&mut rng, bits);
                assert_eq!(
                    toom_square_threshold(&a, k, 256),
                    a.mul_schoolbook(&a),
                    "k={k} bits={bits}"
                );
            }
        }
        assert!(toom_square(&BigInt::zero(), 3).is_zero());
        assert_eq!(toom_square(&BigInt::from(-7i64), 3), BigInt::from(49u64));
    }

    #[test]
    fn toom_square_cheaper_than_toom_mul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let a = BigInt::random_bits(&mut rng, 1 << 16);
        let (_, sq) = ft_bigint::metrics::measure(|| toom_square_threshold(&a, 3, 1024));
        let (_, mul) = ft_bigint::metrics::measure(|| toom_k_threshold(&a, &a, 3, 1024));
        assert!(sq < mul, "square {sq} ops should undercut multiply {mul}");
    }

    #[test]
    fn auto_mul_picks_correctly_at_all_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        for bits in [100u64, 10_000, 50_000] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            assert_eq!(auto_mul(&a, &b), a.mul_schoolbook(&b), "bits={bits}");
        }
    }

    #[test]
    fn toom_is_asymptotically_cheaper_than_schoolbook() {
        // Operation-count crossover: at large n, TC-3 does fewer word ops.
        let (a, b) = random_pair(1 << 17, 1 << 17, 23);
        let (_, school_ops) = ft_bigint::metrics::measure(|| a.mul_schoolbook(&b));
        let (_, toom_ops) = ft_bigint::metrics::measure(|| toom_k(&a, &b, 3));
        assert!(
            toom_ops < school_ops,
            "toom {toom_ops} ops should beat schoolbook {school_ops} at 128k bits"
        );
    }
}
