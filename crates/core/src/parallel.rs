//! Parallel Toom-Cook via BFS-DFS traversal (§3).
//!
//! The machine has `P = (2k−1)^m` processors on a `(P/q) × q` grid
//! (`q = 2k−1`). The algorithm runs on the *lazy interpolation* digit-vector
//! form (§2.3): both inputs are split into `D` base-`2^w` digits up front,
//! so every recursion level manipulates vectors of big-integer digits with
//! no carries until the very end.
//!
//! **Distribution invariant.** At a recursion level processed by a group of
//! `g` processors, the level's digit vector `v` (length `L`) is distributed
//! cyclically: the group member at position `p` owns `{v[u] : u ≡ p (mod g)}`.
//! Choosing `D = q^m · k^{m + l_DFS + j}` makes `g | L/k` at every level,
//! which yields the paper's locality property: **every BFS exchange happens
//! strictly inside grid rows** (the `q` processors differing only in the
//! step's digit), and DFS steps need no communication at all.
//!
//! - *BFS down-step*: each member evaluates its residue slice at all `2k−1`
//!   points locally, keeps the slice for its own column's sub-problem, and
//!   sends each row peer the slice of that peer's sub-problem (`q−1`
//!   messages).
//! - *DFS step*: all evaluations are local; the `2k−1` sub-problems are
//!   solved sequentially by the whole group (Lemma 3.1 gives the number of
//!   DFS steps forced by a memory limit `M`).
//! - *Leaf*: one processor owns the whole sub-vector and multiplies it
//!   locally (sequential lazy Toom-Cook).
//! - *BFS up-step*: a row all-to-all delivers, for each member, the
//!   sub-slice of every column's sub-product it needs; interpolation and
//!   overlap-add are then local.
//!
//! The algorithm's output is the distributed product digit vector (the
//! paper's output convention); [`run_parallel`] additionally reassembles
//! the full integer outside the cost measurement for verification.

use crate::bilinear::ToomPlan;
use crate::lazy;
use ft_bigint::{ops, BigInt, Sign};
use ft_machine::{CostParams, Env, Fate, FaultPlan, Machine, MachineConfig, RunReport};

/// Tag namespace bases (step-scoped offsets are added).
pub mod tags {
    /// BFS down-step exchanges.
    pub const DOWN: u64 = 1_000;
    /// BFS up-step exchanges.
    pub const UP: u64 = 2_000;
    /// Code creation (linear coding, §4.1).
    pub const CODE: u64 = 100_000;
    /// Recovery collectives.
    pub const RECOVER: u64 = 200_000;
    /// Redundant-point traffic (polynomial coding, §4.2).
    pub const REDUNDANT: u64 = 300_000;
    /// Heartbeat detection rounds (gather at `tag`, broadcast at `tag + 1`).
    pub const DETECT: u64 = 400_000;
    /// Second detection round of a run (after the nested recursion);
    /// offset past `DETECT + 1`, which round one consumes.
    pub const DETECT2: u64 = 400_002;
}

/// Configuration of a parallel Toom-Cook run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Split parameter `k`.
    pub k: usize,
    /// BFS steps `m`; the machine uses `P = (2k−1)^m` processors.
    pub bfs_steps: usize,
    /// DFS steps performed before the BFS steps (limited-memory mode,
    /// Lemma 3.1). Zero in the unlimited-memory case.
    pub dfs_steps: usize,
    /// Base digit width `w` (the shared base is `2^w`).
    pub digit_bits: u64,
    /// Cost parameters (for time modeling only).
    pub cost: CostParams,
    /// Optional per-processor memory limit in words (reporting).
    pub memory_limit: Option<u64>,
    /// Record a message trace.
    pub trace: bool,
}

impl ParallelConfig {
    /// A default configuration for Toom-Cook-`k` with `m` BFS steps.
    #[must_use]
    pub fn new(k: usize, bfs_steps: usize) -> ParallelConfig {
        ParallelConfig {
            k,
            bfs_steps,
            dfs_steps: 0,
            digit_bits: 64,
            cost: CostParams::default(),
            memory_limit: None,
            trace: false,
        }
    }

    /// Sub-problem fan-out `q = 2k−1`.
    #[must_use]
    pub fn q(&self) -> usize {
        2 * self.k - 1
    }

    /// Processor count `P = q^m`.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.q().pow(self.bfs_steps as u32)
    }

    /// The digit count `D = q^m · k^{m + l_DFS}·k^j`: structurally divisible
    /// so the cyclic layout is row-local at every level (see module docs),
    /// scaled up by powers of `k` until `D·w` covers `n_bits`.
    #[must_use]
    pub fn digits_for(&self, n_bits: u64) -> usize {
        let structural = self.processors() * self.k.pow((self.bfs_steps + self.dfs_steps) as u32);
        let mut d = structural;
        while (d as u64) * self.digit_bits < n_bits {
            d *= self.k;
        }
        d
    }
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// The reassembled product (verified against the distributed output).
    pub product: BigInt,
    /// The machine run report (per-rank costs, critical path, trace).
    pub report: RunReport<Vec<BigInt>>,
    /// Number of digits `D` the inputs were split into.
    pub digits: usize,
}

/// Extract a rank's cyclic digit slice `{u ≡ pos (mod g)}` from a
/// non-negative integer. Each rank reads only its own `O(n/P)` words — the
/// paper's "input is distributed" convention.
#[must_use]
pub fn local_digit_slice(
    a: &BigInt,
    digit_bits: u64,
    digits: usize,
    pos: usize,
    g: usize,
) -> Vec<BigInt> {
    debug_assert!(!a.is_negative());
    let mut out = Vec::with_capacity(digits.div_ceil(g));
    let mut u = pos;
    while u < digits {
        let lo = u as u64 * digit_bits;
        out.push(BigInt::from_limbs(ops::bits_range(
            a.limbs(),
            lo,
            lo + digit_bits,
        )));
        u += g;
    }
    out
}

/// Merge the `q` residue pieces received in a BFS down-step into the next
/// level's cyclic slice: `pieces[t]` holds entries `{r ≡ t·g' + p' (mod g)}`
/// ascending; the result holds `{r ≡ p' (mod g')}` ascending.
#[must_use]
pub fn merge_residue_pieces(pieces: &[Vec<BigInt>], len_hint: usize) -> Vec<BigInt> {
    let q = pieces.len();
    let mut out = Vec::with_capacity(len_hint);
    let mut s = 0usize;
    loop {
        let t = s % q;
        let idx = s / q;
        match pieces[t].get(idx) {
            Some(v) => out.push(v.clone()),
            None => break,
        }
        s += 1;
    }
    out
}

/// Select every `q`-th entry starting at offset `t` — the sub-slice of a
/// residue-`p'` (mod `g'`) slice lying in residue `t·g' + p'` (mod `g`).
#[must_use]
pub fn residue_subslice(slice: &[BigInt], q: usize, t: usize) -> Vec<BigInt> {
    slice.iter().skip(t).step_by(q).cloned().collect()
}

/// Total words across slices (memory reporting).
#[must_use]
pub fn slice_words(slices: &[&[BigInt]]) -> u64 {
    slices
        .iter()
        .flat_map(|s| s.iter())
        .map(|b| b.word_len().max(1) as u64)
        .sum()
}

/// Interpolation + overlap-add on residue slices (shared by DFS steps and
/// BFS up-steps): `col_slices[j]` holds sub-product `j`'s entries
/// `{e ≡ p (mod g)}` ascending (`e = p + s·g`, `e < 2λ−1`); returns the
/// local slice `{u ≡ p (mod g)}` of the `2L−1` product vector, where
/// `L = k·λ` is `level_len`.
///
/// Correctness relies on the distribution invariant `g | λ`: contribution
/// `C_t[e]` lands at `u = t·λ + e ≡ e (mod g)`, so slice position
/// `t·(λ/g) + s` — entirely local.
#[must_use]
pub fn interp_slices(
    interp: &ft_algebra::ScaledIntMatrix,
    col_slices: &[Vec<BigInt>],
    lambda: usize,
    level_len: usize,
    p: usize,
    g: usize,
) -> Vec<BigInt> {
    let q = col_slices.len();
    let slice_len = col_slices[0].len();
    debug_assert!(col_slices.iter().all(|s| s.len() == slice_len));
    assert_eq!(lambda % g, 0, "distribution invariant g | λ violated");
    let lam_g = lambda / g;
    let out_len_full = 2 * level_len - 1;
    // Exact number of u = p + s·g < 2L−1.
    let exact_len = if p >= out_len_full {
        0
    } else {
        (out_len_full - p).div_ceil(g)
    };
    let buf_len = exact_len.max((q - 1) * lam_g + slice_len);
    let mut out = vec![BigInt::zero(); buf_len];
    let mut column = vec![BigInt::zero(); q];
    for s in 0..slice_len {
        for (j, cslice) in col_slices.iter().enumerate() {
            column[j] = cslice[s].clone();
        }
        let coeffs = interp.apply(&column);
        for (t, c) in coeffs.into_iter().enumerate() {
            if !c.is_zero() {
                out[t * lam_g + s] += &c;
            }
        }
    }
    debug_assert!(out[exact_len..].iter().all(BigInt::is_zero));
    out.truncate(exact_len);
    out
}

/// The per-rank recursive solver shared by the plain and fault-tolerant
/// algorithms. Solves one sub-problem held as cyclic slices over the
/// (ascending) `group` of machine ranks — member at position `p` owns
/// residue `p` mod `g` — and returns this rank's slice of the
/// `2·level_len−1` product vector.
///
/// Levels `0..dfs_steps` are DFS; the next `bfs_steps − consumed` are BFS
/// over the group's base-`q` position digits; once the group is a single
/// rank, it multiplies locally. Taking the group explicitly (instead of a
/// grid) lets the polynomial code run the same recursion on its redundant
/// subgroups of extra ranks (§4.2).
#[allow(clippy::too_many_arguments)]
pub fn solve(
    env: &Env,
    cfg: &ParallelConfig,
    plan: &ToomPlan,
    group: &[usize],
    a: Vec<BigInt>,
    b: Vec<BigInt>,
    level_len: usize,
    depth: usize,
) -> Vec<BigInt> {
    solve_with_leaf_hook(env, cfg, plan, group, a, b, level_len, depth, None)
}

/// Post-leaf hook: receives the leaf product (garbage zeros for a rank that
/// died at `leaf-mult`) and may replace it — the multistep polynomial code
/// reconstructs lost leaf products here (§4.3/§6).
pub type LeafHook<'h> = &'h dyn Fn(&Env, Vec<BigInt>) -> Vec<BigInt>;

/// [`solve`] with an optional post-leaf hook.
#[allow(clippy::too_many_arguments)]
pub fn solve_with_leaf_hook(
    env: &Env,
    cfg: &ParallelConfig,
    plan: &ToomPlan,
    group: &[usize],
    a: Vec<BigInt>,
    b: Vec<BigInt>,
    level_len: usize,
    depth: usize,
    leaf_hook: Option<LeafHook>,
) -> Vec<BigInt> {
    let k = cfg.k;
    let q = cfg.q();
    let dfs = cfg.dfs_steps;
    let g = group.len();
    let p = group
        .iter()
        .position(|&r| r == env.rank())
        .expect("rank must be in its own solve group");

    if depth < dfs {
        // ---- DFS step: no communication.
        env.note_memory(slice_words(&[&a, &b]));
        let ea = lazy::eval_step(plan.eval_matrix(), &a, k);
        let eb = lazy::eval_step(plan.eval_matrix(), &b, k);
        drop(a);
        drop(b);
        let lambda = level_len / k;
        let mut prods: Vec<Vec<BigInt>> = Vec::with_capacity(q);
        for j in 0..q {
            let pa = ea[j].clone();
            let pb = eb[j].clone();
            prods.push(solve_with_leaf_hook(
                env,
                cfg,
                plan,
                group,
                pa,
                pb,
                lambda,
                depth + 1,
                leaf_hook,
            ));
        }
        drop(ea);
        drop(eb);
        return interp_slices(plan.interp_matrix(), &prods, lambda, level_len, p, g);
    }

    if g > 1 {
        // ---- BFS step over this group's leading position digit.
        let gp = g / q; // next-level group size g'
        let my_col = p / gp.max(1);
        // Row: the q members sharing my sub-position p mod g'.
        let row: Vec<usize> = (0..q).map(|j| group[j * gp + p % gp.max(1)]).collect();
        env.note_memory(slice_words(&[&a, &b]));

        // Evaluate my residue slice at all 2k−1 points.
        let ea = lazy::eval_step(plan.eval_matrix(), &a, k);
        let eb = lazy::eval_step(plan.eval_matrix(), &b, k);
        drop(a);
        drop(b);
        env.fault_point(&format!("bfs-eval-{depth}"));

        // Down exchange: send row peer t its sub-problem's slices.
        for (t, &peer) in row.iter().enumerate() {
            if t == my_col {
                continue;
            }
            let mut payload = ea[t].clone();
            payload.extend_from_slice(&eb[t]);
            env.send(peer, tags::DOWN + depth as u64, &payload);
        }
        let lambda = level_len / k;
        let mut pieces_a: Vec<Vec<BigInt>> = vec![Vec::new(); q];
        let mut pieces_b: Vec<Vec<BigInt>> = vec![Vec::new(); q];
        for (t, &peer) in row.iter().enumerate() {
            let (pa, pb) = if peer == env.rank() {
                (ea[my_col].clone(), eb[my_col].clone())
            } else {
                let mut payload = env.recv(peer, tags::DOWN + depth as u64);
                let pb = payload.split_off(payload.len() / 2);
                (payload, pb)
            };
            pieces_a[t] = pa;
            pieces_b[t] = pb;
        }
        drop(ea);
        drop(eb);
        let next_a = merge_residue_pieces(&pieces_a, lambda.div_ceil(gp.max(1)));
        let next_b = merge_residue_pieces(&pieces_b, lambda.div_ceil(gp.max(1)));
        drop(pieces_a);
        drop(pieces_b);
        env.fault_point(&format!("bfs-exchange-{depth}"));

        // Recurse on my column's sub-problem.
        let next_group = &group[my_col * gp..(my_col + 1) * gp];
        let sub_prod = solve_with_leaf_hook(
            env,
            cfg,
            plan,
            next_group,
            next_a,
            next_b,
            lambda,
            depth + 1,
            leaf_hook,
        );

        env.fault_point(&format!("bfs-up-{depth}"));
        // Up exchange: row all-to-all of residue sub-slices. My sub-product
        // slice holds {e ≡ p mod g'... ≡ my position (mod g')}; row member
        // at column t needs the entries in residue t·g' + (p mod g') mod g,
        // i.e. every q-th entry starting at offset t.
        for (t, &peer) in row.iter().enumerate() {
            if t == my_col {
                continue;
            }
            env.send(
                peer,
                tags::UP + depth as u64,
                &residue_subslice(&sub_prod, q, t),
            );
        }
        let mut col_slices: Vec<Vec<BigInt>> = vec![Vec::new(); q];
        for (t, &peer) in row.iter().enumerate() {
            col_slices[t] = if peer == env.rank() {
                residue_subslice(&sub_prod, q, my_col)
            } else {
                env.recv(peer, tags::UP + depth as u64)
            };
        }
        drop(sub_prod);
        env.fault_point(&format!("bfs-interp-{depth}"));

        return interp_slices(plan.interp_matrix(), &col_slices, lambda, level_len, p, g);
    }

    // ---- Leaf: single owner, local multiplication. A hard fault here
    // loses the inputs; the product becomes garbage until a leaf hook (the
    // polynomial code) replaces it.
    env.note_memory(slice_words(&[&a, &b]));
    let (a, b) = if env.fault_point("leaf-mult") == Fate::Reborn {
        (vec![BigInt::zero(); a.len()], vec![BigInt::zero(); b.len()])
    } else {
        (a, b)
    };
    let prod = lazy::poly_mul_toom(&a, &b, plan, 1);
    match leaf_hook {
        Some(hook) => hook(env, prod),
        None => prod,
    }
}

/// Run plain parallel Toom-Cook (no fault tolerance) on a fresh machine and
/// reassemble the product.
#[must_use]
pub fn run_parallel(a: &BigInt, b: &BigInt, cfg: &ParallelConfig) -> ParallelOutcome {
    run_parallel_with_faults(a, b, cfg, FaultPlan::none())
}

/// Run plain parallel Toom-Cook with a fault plan. The plain algorithm has
/// **no** recovery — used by tests of the fault machinery and baselines.
#[must_use]
pub fn run_parallel_with_faults(
    a: &BigInt,
    b: &BigInt,
    cfg: &ParallelConfig,
    faults: FaultPlan,
) -> ParallelOutcome {
    let p = cfg.processors();
    let n_bits = a.bit_length().max(b.bit_length()).max(1);
    let digits = cfg.digits_for(n_bits);
    let sign = a.sign().mul(b.sign());
    let (aa, bb) = (a.abs(), b.abs());

    let mut mcfg = MachineConfig::new(p).with_faults(faults);
    mcfg.cost = cfg.cost;
    mcfg.memory_limit = cfg.memory_limit;
    mcfg.trace = cfg.trace;
    let machine = Machine::new(mcfg);

    // Pre-warm the shared plan on the driver thread so its construction
    // cost is not charged to the first rank that touches the cache.
    let _ = ToomPlan::shared(cfg.k);

    let report = machine.run(|env| {
        let plan = ToomPlan::shared(cfg.k);
        let group: Vec<usize> = (0..p).collect();
        let my_a = local_digit_slice(&aa, cfg.digit_bits, digits, env.rank(), p);
        let my_b = local_digit_slice(&bb, cfg.digit_bits, digits, env.rank(), p);
        solve(env, cfg, &plan, &group, my_a, my_b, digits, 0)
    });

    let product = assemble_product(&report.results, digits, cfg.digit_bits, sign, p);
    ParallelOutcome {
        product,
        report,
        digits,
    }
}

/// Reassemble the distributed product digit vector (slices indexed by rank,
/// cyclic modulo `p`) into the final integer — the carry evaluation
/// `c = Σ c_u · B^u`, performed outside the cost measurement.
#[must_use]
pub fn assemble_product(
    slices: &[Vec<BigInt>],
    digits: usize,
    digit_bits: u64,
    sign: Sign,
    p: usize,
) -> BigInt {
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let out_len = 2 * digits - 1;
    let mut vec = vec![BigInt::zero(); out_len];
    for (u, slot) in vec.iter_mut().enumerate() {
        let rank = u % p;
        let idx = u / p;
        if let Some(v) = slices[rank].get(idx) {
            *slot = v.clone();
        }
    }
    let mag = BigInt::join_base_pow2(&vec, digit_bits);
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_bits(&mut rng, bits),
            BigInt::random_bits(&mut rng, bits),
        )
    }

    #[test]
    fn merge_residue_pieces_interleaves() {
        let pieces = vec![
            vec![BigInt::from(0u64), BigInt::from(3u64)],
            vec![BigInt::from(1u64), BigInt::from(4u64)],
            vec![BigInt::from(2u64), BigInt::from(5u64)],
        ];
        let merged = merge_residue_pieces(&pieces, 6);
        let want: Vec<BigInt> = (0..6u64).map(BigInt::from).collect();
        assert_eq!(merged, want);
    }

    #[test]
    fn residue_subslice_strides() {
        let v: Vec<BigInt> = (0..7u64).map(BigInt::from).collect();
        assert_eq!(
            residue_subslice(&v, 3, 1),
            vec![BigInt::from(1u64), BigInt::from(4u64)]
        );
        assert_eq!(residue_subslice(&v, 3, 0).len(), 3);
    }

    #[test]
    fn single_processor_degenerates_to_sequential() {
        let (a, b) = random_pair(2000, 1);
        let cfg = ParallelConfig::new(3, 0);
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn one_bfs_step_karatsuba() {
        let (a, b) = random_pair(1500, 2);
        let cfg = ParallelConfig::new(2, 1); // P = 3
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn one_bfs_step_tc3() {
        let (a, b) = random_pair(3000, 3);
        let cfg = ParallelConfig::new(3, 1); // P = 5
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn two_bfs_steps_tc3() {
        let (a, b) = random_pair(6000, 4);
        let cfg = ParallelConfig::new(3, 2); // P = 25
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn three_bfs_steps_karatsuba() {
        let (a, b) = random_pair(4000, 5);
        let cfg = ParallelConfig::new(2, 3); // P = 27
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn dfs_then_bfs_limited_memory() {
        let (a, b) = random_pair(4000, 6);
        let mut cfg = ParallelConfig::new(3, 1);
        cfg.dfs_steps = 2;
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn dfs_only_single_rank() {
        let (a, b) = random_pair(2000, 7);
        let mut cfg = ParallelConfig::new(2, 0);
        cfg.dfs_steps = 2;
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn signs_propagate() {
        let (a, b) = random_pair(1200, 8);
        let cfg = ParallelConfig::new(2, 1);
        assert_eq!(
            run_parallel(&-&a, &b, &cfg).product,
            -(a.mul_schoolbook(&b))
        );
    }

    #[test]
    fn uneven_input_sizes() {
        let (a, _) = random_pair(5000, 20);
        let (b, _) = random_pair(700, 21);
        let cfg = ParallelConfig::new(3, 1);
        assert_eq!(run_parallel(&a, &b, &cfg).product, a.mul_schoolbook(&b));
    }

    #[test]
    fn bfs_communication_is_row_local() {
        let (a, b) = random_pair(3000, 9);
        let mut cfg = ParallelConfig::new(3, 2);
        cfg.trace = true;
        let out = run_parallel(&a, &b, &cfg);
        assert_eq!(out.product, a.mul_schoolbook(&b));
        let grid = ft_machine::ToomGrid::new(25, 5);
        for ev in &out.report.trace {
            if let Some((src, dst)) = ev.endpoints() {
                let same_row = (0..2).any(|s| grid.row_group(src, s).contains(&dst));
                assert!(same_row, "message {src}->{dst} crosses rows");
            }
        }
    }

    #[test]
    fn dfs_steps_reduce_peak_memory() {
        let (a, b) = random_pair(20_000, 10);
        let cfg0 = ParallelConfig::new(2, 1);
        let mut cfg2 = ParallelConfig::new(2, 1);
        cfg2.dfs_steps = 2;
        let out0 = run_parallel(&a, &b, &cfg0);
        let out2 = run_parallel(&a, &b, &cfg2);
        assert_eq!(out2.product, a.mul_schoolbook(&b));
        assert_eq!(out0.product, out2.product);
        let (m0, m2) = (out0.report.peak_memory(), out2.report.peak_memory());
        assert!(
            m2 < m0,
            "DFS steps should lower peak memory: dfs0={m0} dfs2={m2}"
        );
    }

    #[test]
    fn work_is_balanced_across_ranks() {
        let (a, b) = random_pair(8000, 11);
        let cfg = ParallelConfig::new(3, 1);
        let out = run_parallel(&a, &b, &cfg);
        let flops: Vec<u64> = out.report.ranks.iter().map(|r| r.total_flops).collect();
        let max = *flops.iter().max().unwrap();
        let min = *flops.iter().min().unwrap();
        assert!(
            max < 3 * min.max(1),
            "flops should be balanced within 3x: {flops:?}"
        );
    }
}
