//! Cheap modular spot-checks of a product: `a · b ≡ r (mod m)` for the
//! two word moduli `2^64 − 1` and `2^64 + 1`.
//!
//! [`soft::verify_products`](crate::soft::verify_products) checks the
//! *internal* consistency of a redundant Toom-Cook evaluation; this module
//! checks the *end-to-end* result of any multiplication kernel, in `O(n)`
//! word operations versus the `O(n^{log_k(2k−1)})` multiply — the residue
//! analogue of the paper's §7 soft-fault verification, in the `o(1)`
//! relative-overhead spirit of its fault-tolerance bounds.
//!
//! The moduli make the reduction nearly free: with `2^64 ≡ +1
//! (mod 2^64 − 1)` a number's residue is the plain sum of its limbs, and
//! with `2^64 ≡ −1 (mod 2^64 + 1)` it is the alternating sum — both fall
//! out of one pass over the limbs with two accumulators, a couple of
//! cycles per limb.
//!
//! Detection guarantee: corrupting a single 64-bit limb of the product
//! changes it by `c · 2^{64i}` with `0 < |c| < 2^64`. Modulo `2^64 + 1`
//! that delta is `±c`, which is never `0`, so the alternating-sum check
//! alone catches *every* single-limb corruption deterministically. An
//! arbitrary multi-limb corruption escapes both checks only when its
//! delta is divisible by `(2^64 − 1)(2^64 + 1) = 2^128 − 1`, i.e. with
//! probability about `2^{−128}` for a random corruption.

use ft_bigint::BigInt;

/// Low-word mask, and the modulus `2^64 − 1` itself.
const M1: u128 = u64::MAX as u128;
/// The modulus `2^64 + 1`. Residues live in `[0, 2^64]`, one value too
/// wide for `u64`, so this side of the pair works in `u128`.
const P1: u128 = (1u128 << 64) + 1;

/// Both spot-check residues of `x` in one pass over its limbs:
/// `(x mod 2^64 − 1, x mod 2^64 + 1)`, each canonical in `[0, m)`.
#[must_use]
pub fn residue_pair(x: &BigInt) -> (u64, u128) {
    // Limb i carries weight 2^{64 i} ≡ +1 (mod 2^64 − 1) and ≡ (−1)^i
    // (mod 2^64 + 1), so two running sums — even-index and odd-index
    // limbs — determine both residues. Split each sum across two
    // accumulators so the u128 add-with-carry chains run four abreast.
    // A BigInt is far below 2^60 limbs, so nothing here can overflow.
    let (mut even, mut even2, mut odd, mut odd2) = (0u128, 0u128, 0u128, 0u128);
    let mut quads = x.limbs().chunks_exact(4);
    for quad in &mut quads {
        even += u128::from(quad[0]);
        odd += u128::from(quad[1]);
        even2 += u128::from(quad[2]);
        odd2 += u128::from(quad[3]);
    }
    for (i, &limb) in quads.remainder().iter().enumerate() {
        if i % 2 == 0 {
            even += u128::from(limb);
        } else {
            odd += u128::from(limb);
        }
    }
    let (even, odd) = (even + even2, odd + odd2);
    let m1 = {
        let mut s = even + odd;
        // 2^64 ≡ 1: end-around fold until the high word clears.
        loop {
            let hi = s >> 64;
            if hi == 0 {
                break;
            }
            s = (s & M1) + hi;
        }
        if s == M1 {
            s = 0;
        }
        #[allow(clippy::cast_possible_truncation)] // s < 2^64 by the fold
        let mag = s as u64;
        if x.is_negative() && mag != 0 {
            u64::MAX - mag
        } else {
            mag
        }
    };
    let p1 = {
        let mag = submod_p1(reduce_p1(even), reduce_p1(odd));
        if x.is_negative() && mag != 0 {
            P1 - mag
        } else {
            mag
        }
    };
    (m1, p1)
}

/// `s mod (2^64 + 1)` for any `u128`, canonical in `[0, 2^64]`.
/// `2^64 ≡ −1`, so `hi · 2^64 + lo ≡ lo − hi`; one step fully reduces.
fn reduce_p1(s: u128) -> u128 {
    let lo = s & M1;
    let hi = s >> 64;
    if lo >= hi {
        lo - hi
    } else {
        lo + P1 - hi
    }
}

/// `(a − b) mod (2^64 + 1)` for canonical residues `a, b`.
fn submod_p1(a: u128, b: u128) -> u128 {
    let t = a + P1 - b;
    if t >= P1 {
        t - P1
    } else {
        t
    }
}

/// `a · b mod (2^64 − 1)` for canonical residues `a, b`.
fn mulmod_m1(a: u64, b: u64) -> u64 {
    let mut t = u128::from(a) * u128::from(b);
    loop {
        let hi = t >> 64;
        if hi == 0 {
            break;
        }
        t = (t & M1) + hi;
    }
    if t == M1 {
        t = 0;
    }
    #[allow(clippy::cast_possible_truncation)] // t < 2^64 by the fold
    {
        t as u64
    }
}

/// `a · b mod (2^64 + 1)` for canonical residues `a, b ∈ [0, 2^64]`.
fn mulmod_p1(a: u128, b: u128) -> u128 {
    // The one residue value outside u64 range is 2^64 ≡ −1; peel it off
    // so the general case is a plain u64 × u64 product.
    if a == P1 - 1 {
        return submod_p1(0, b);
    }
    if b == P1 - 1 {
        return submod_p1(0, a);
    }
    reduce_p1(a * b)
}

/// Spot-check `product == a · b` against both word moduli. `true` means
/// the product is consistent (single-limb corruptions are always caught;
/// see the module docs for the guarantee).
#[must_use]
pub fn verify_product(a: &BigInt, b: &BigInt, product: &BigInt) -> bool {
    let (ra_m1, ra_p1) = residue_pair(a);
    let (rb_m1, rb_p1) = residue_pair(b);
    let (rp_m1, rp_p1) = residue_pair(product);
    mulmod_m1(ra_m1, rb_m1) == rp_m1 && mulmod_p1(ra_p1, rb_p1) == rp_p1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_bigint::Sign;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big_m1() -> BigInt {
        BigInt::from(u64::MAX)
    }

    fn big_p1() -> BigInt {
        BigInt::from_sign_limbs(Sign::Positive, vec![1, 1])
    }

    fn big_u128(v: u128) -> BigInt {
        #[allow(clippy::cast_possible_truncation)]
        BigInt::from_sign_limbs(Sign::Positive, vec![v as u64, (v >> 64) as u64])
    }

    #[test]
    fn residues_match_mod_floor() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [0u64, 1, 63, 64, 65, 128, 500, 4_000] {
            let x = BigInt::random_signed_bits(&mut rng, bits);
            let (m1, p1) = residue_pair(&x);
            assert_eq!(BigInt::from(m1), x.mod_floor(&big_m1()), "m1 bits={bits}");
            assert_eq!(big_u128(p1), x.mod_floor(&big_p1()), "p1 bits={bits}");
        }
        // The residue 2^64 (≡ −1 mod 2^64 + 1) is reachable and canonical.
        let minus_one = -BigInt::one();
        assert_eq!(residue_pair(&minus_one).1, P1 - 1);
    }

    #[test]
    fn true_products_verify() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [1u64, 100, 2_000, 20_000] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            assert!(verify_product(&a, &b, &a.mul_schoolbook(&b)), "bits={bits}");
        }
        assert!(verify_product(
            &BigInt::zero(),
            &BigInt::one(),
            &BigInt::zero()
        ));
    }

    #[test]
    fn every_single_limb_bit_flip_is_caught() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BigInt::random_bits(&mut rng, 700);
        let b = BigInt::random_bits(&mut rng, 700);
        let product = a.mul_schoolbook(&b);
        for limb in 0..product.word_len() {
            for bit in (0..64).step_by(7) {
                let mut limbs = product.limbs().to_vec();
                limbs[limb] ^= 1u64 << bit;
                let corrupt = BigInt::from_sign_limbs(Sign::Positive, limbs);
                assert!(
                    !verify_product(&a, &b, &corrupt),
                    "flip limb {limb} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn wrong_sign_and_off_by_one_are_caught() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = BigInt::random_bits(&mut rng, 300);
        let b = BigInt::random_bits(&mut rng, 300);
        let product = a.mul_schoolbook(&b);
        assert!(!verify_product(&a, &b, &-product.clone()));
        assert!(!verify_product(&a, &b, &(&product + &BigInt::one())));
    }

    /// 2^64 — one limb past the word boundary, the value whose residue
    /// mod `2^64 + 1` is the canonical maximum `P1 − 1`.
    fn pow64() -> BigInt {
        BigInt::from_sign_limbs(Sign::Positive, vec![0, 1])
    }

    #[test]
    fn reduce_and_submod_hit_the_canonical_edges() {
        const POW64: u128 = 1u128 << 64;
        // reduce_p1 must land in [0, 2^64] for ANY u128, including the
        // values on either side of the modulus and the all-ones word.
        assert_eq!(reduce_p1(0), 0);
        assert_eq!(reduce_p1(POW64 - 1), POW64 - 1);
        assert_eq!(reduce_p1(POW64), POW64); // ≡ −1: canonical max, kept
        assert_eq!(reduce_p1(P1), 0);
        assert_eq!(reduce_p1(P1 + 1), 1);
        assert_eq!(reduce_p1(2 * POW64 - 1), POW64 - 2); // 2^65 − 1 ≡ −3
        assert_eq!(reduce_p1(u128::MAX), 0); // 2^128 − 1 = M1 · P1
        for s in [
            0u128,
            1,
            POW64 - 1,
            POW64,
            P1,
            P1 + 1,
            3 * POW64 + 7,
            u128::MAX - 1,
            u128::MAX,
        ] {
            let got = reduce_p1(s);
            assert!(got <= POW64, "reduce_p1({s}) left canonical range");
            let hi_part = &big_u128(s >> 64) * &pow64();
            let want = (&hi_part + &big_u128(s & M1)).mod_floor(&big_p1());
            assert_eq!(big_u128(got), want, "reduce_p1({s})");
        }
        // submod_p1 over the canonical-corner grid, including both
        // arguments at the extreme residue 2^64 (= P1 − 1 ≡ −1).
        assert_eq!(submod_p1(0, 0), 0);
        assert_eq!(submod_p1(0, P1 - 1), 1); // 0 − (−1)
        assert_eq!(submod_p1(P1 - 1, 0), P1 - 1);
        assert_eq!(submod_p1(P1 - 1, P1 - 1), 0);
        assert_eq!(submod_p1(1, P1 - 1), 2);
        assert_eq!(submod_p1(P1 - 1, 1), P1 - 2);
        for a in [0u128, 1, 2, 1 << 63, POW64 - 1, P1 - 2, P1 - 1] {
            for b in [0u128, 1, 1 << 63, P1 - 2, P1 - 1] {
                let got = submod_p1(a, b);
                assert!(got < P1, "submod_p1({a}, {b}) left canonical range");
                let want = (&big_u128(a) + &(-big_u128(b))).mod_floor(&big_p1());
                assert_eq!(big_u128(got), want, "submod_p1({a}, {b})");
            }
        }
    }

    #[test]
    fn boundary_operands_and_signed_products_verify() {
        // The values that sit exactly on the reduction edges: their
        // residues exercise mag == 0, the canonical max P1 − 1, and the
        // negative-sign complement paths.
        assert_eq!(residue_pair(&BigInt::zero()), (0, 0));
        assert_eq!(residue_pair(&pow64()), (1, P1 - 1));
        assert_eq!(residue_pair(&-pow64()), (u64::MAX - 1, 1));
        assert_eq!(residue_pair(&big_m1()), (0, P1 - 2));
        assert_eq!(residue_pair(&-big_m1()), (0, 2));
        assert_eq!(residue_pair(&big_p1()), (2, 0));
        assert_eq!(residue_pair(&-big_p1()), (u64::MAX - 2, 0));
        // True products across the full signed boundary grid — covering
        // zero products, negative products, and products whose residues
        // land exactly on 0 or P1 − 1.
        let pool = [
            BigInt::zero(),
            BigInt::one(),
            -BigInt::one(),
            big_m1(),
            -big_m1(),
            pow64(),
            -pow64(),
            big_p1(),
            -big_p1(),
        ];
        for a in &pool {
            for b in &pool {
                let product = a.mul_schoolbook(b);
                assert!(verify_product(a, b, &product), "true {a:?}·{b:?}");
                assert!(
                    !verify_product(a, b, &(&product + &BigInt::one())),
                    "off-by-one {a:?}·{b:?}"
                );
                // A sign flip is the delta −2·product, caught unless
                // product ≡ 0 (mod 2^128 − 1) — which this grid actually
                // reaches: (2^64 − 1)(2^64 + 1) IS 2^128 − 1, the module
                // docs' one documented escape. Pin both behaviours.
                if product.is_zero() || residue_pair(&product) == (0, 0) {
                    assert!(verify_product(a, b, &-product.clone()));
                } else {
                    assert!(
                        !verify_product(a, b, &-product.clone()),
                        "sign flip {a:?}·{b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mulmods_handle_the_top_of_the_range() {
        // (−1) · (−1) ≡ 1 under both moduli.
        assert_eq!(mulmod_m1(u64::MAX - 1, u64::MAX - 1), 1);
        assert_eq!(mulmod_p1(P1 - 1, P1 - 1), 1);
        assert_eq!(mulmod_m1(0, u64::MAX - 1), 0);
        assert_eq!(mulmod_p1(0, P1 - 1), 0);
        // Exhaustively cross-check small grids against BigInt arithmetic.
        for a in [0u128, 1, 2, (1 << 63) - 1, 1 << 63, P1 - 2, P1 - 1] {
            for b in [0u128, 1, 3, (1 << 62) + 11, P1 - 2, P1 - 1] {
                let want = (&big_u128(a) * &big_u128(b)).mod_floor(&big_p1());
                assert_eq!(big_u128(mulmod_p1(a, b)), want, "p1 {a}·{b}");
            }
        }
        for a in [0u64, 1, 2, u64::MAX - 2, u64::MAX - 1] {
            for b in [0u64, 5, u64::MAX - 1] {
                let want = (&BigInt::from(a) * &BigInt::from(b)).mod_floor(&big_m1());
                assert_eq!(BigInt::from(mulmod_m1(a, b)), want, "m1 {a}·{b}");
            }
        }
    }

    /// One operand for the boundary proptest: ~half the draws are forced
    /// onto a reduction edge (multiples of 2^64 ± ε, huge limb counts of
    /// all-ones words, and their negations — values whose residues hit 0,
    /// P1 − 1, and the sign-complement branches); the rest are random.
    fn boundary_operand(choice: usize, rng: &mut StdRng) -> BigInt {
        let limbs = 1 + (choice / 16) % 5;
        match choice % 8 {
            0 => BigInt::zero(),
            1 => BigInt::from_sign_limbs(Sign::Positive, vec![u64::MAX; limbs]),
            2 => -BigInt::from_sign_limbs(Sign::Positive, vec![u64::MAX; limbs]),
            3 => {
                // Exactly 2^{64·limbs}: residue ±1 depending on parity.
                let mut v = vec![0; limbs + 1];
                v[limbs] = 1;
                BigInt::from_sign_limbs(Sign::Positive, v)
            }
            4 => {
                let mut v = vec![0; limbs + 1];
                v[limbs] = 1;
                -BigInt::from_sign_limbs(Sign::Positive, v)
            }
            5 => &BigInt::from_sign_limbs(Sign::Positive, vec![u64::MAX; limbs]) + &BigInt::one(),
            6 => BigInt::from_sign_limbs(Sign::Positive, vec![1, 1]), // 2^64 + 1
            _ => BigInt::random_signed_bits(rng, 1 + (choice as u64) % 300),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The documented blind spot, constructively: any corruption whose
        /// delta is `c · 2^{64i} · (2^128 − 1)` preserves BOTH residues
        /// exactly, so [`verify_product`] accepts the corrupted product.
        /// This is what the service's dual-algorithm verification rung
        /// exists to catch — the residue check provably cannot.
        #[test]
        fn residue_evading_corruptions_pass_the_residue_check(
            seed in any::<u64>(),
            c in 1u64..=u64::MAX,
            shift in 0usize..6,
            bits in 64u64..2_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            let product = a.mul_schoolbook(&b);
            // c · 2^{64·shift} · (2^128 − 1) = (c << 64(shift+2)) − (c << 64·shift)
            let mut hi = vec![0u64; shift + 2];
            hi.push(c);
            let mut lo = vec![0u64; shift];
            lo.push(c);
            let delta = &BigInt::from_sign_limbs(Sign::Positive, hi)
                - &BigInt::from_sign_limbs(Sign::Positive, lo);
            let corrupt = &product + &delta;
            prop_assert!(corrupt != product, "delta must be nonzero");
            prop_assert_eq!(residue_pair(&corrupt), residue_pair(&product));
            prop_assert!(
                verify_product(&a, &b, &corrupt),
                "a residue-evading corruption should pass the residue check"
            );
            // ...while remaining an honest-to-goodness wrong answer.
            prop_assert!(corrupt != a.mul_schoolbook(&b));
        }

        /// Residues of boundary-forced operands agree with `mod_floor`,
        /// their true products verify, and single-limb corruptions of
        /// those products are still always caught.
        #[test]
        fn boundary_residues_agree_with_mod_floor(
            seed in any::<u64>(),
            choice_a in 0usize..128,
            choice_b in 0usize..128,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = boundary_operand(choice_a, &mut rng);
            let b = boundary_operand(choice_b, &mut rng);
            for x in [&a, &b] {
                let (m1, p1) = residue_pair(x);
                prop_assert!(p1 < P1);
                prop_assert_eq!(BigInt::from(m1), x.mod_floor(&big_m1()));
                prop_assert_eq!(big_u128(p1), x.mod_floor(&big_p1()));
            }
            let product = a.mul_schoolbook(&b);
            prop_assert!(verify_product(&a, &b, &product));
            prop_assert!(!verify_product(&a, &b, &(&product + &BigInt::one())));
            if !product.is_zero() {
                // Sign flips escape only when product ≡ 0 (mod 2^128 − 1),
                // e.g. (2^64 − 1) · (2^64 + 1) — the documented blind spot.
                if residue_pair(&product) != (0, 0) {
                    prop_assert!(!verify_product(&a, &b, &-product.clone()));
                }
                let limb = choice_a % product.word_len();
                let bit = choice_b % 64;
                let mut limbs = product.limbs().to_vec();
                limbs[limb] ^= 1u64 << bit;
                let corrupt = BigInt::from_sign_limbs(
                    if product.is_negative() { Sign::Negative } else { Sign::Positive },
                    limbs,
                );
                prop_assert!(
                    !verify_product(&a, &b, &corrupt),
                    "flip limb {} bit {} slipped through", limb, bit
                );
            }
        }
    }
}
