//! Elementary functions on top of fast multiplication — the paper's
//! introduction motivates long-integer multiplication as the primitive
//! "for many elementary functions, including power, square root, and
//! greatest common divisor". All routines take a pluggable multiplication
//! kernel so any Toom-Cook variant (or the schoolbook baseline) drives
//! them.

use ft_bigint::BigInt;

/// A multiplication kernel.
pub type Mul<'a> = dyn Fn(&BigInt, &BigInt) -> BigInt + 'a;

/// Integer square root `⌊√n⌋` by Newton's method, all products through
/// `mul`.
///
/// # Panics
/// Panics on negative input.
#[must_use]
pub fn isqrt_with(n: &BigInt, mul: &Mul) -> BigInt {
    assert!(!n.is_negative(), "square root of a negative integer");
    if n.is_zero() || n.is_one() {
        return n.clone();
    }
    // Initial guess: 2^(⌈bits/2⌉) ≥ √n.
    let mut x = BigInt::one().shl_bits(n.bit_length().div_ceil(2));
    loop {
        // x' = (x + n/x) / 2 — monotonically decreasing once above √n.
        let next = (&x + &(n / &x)).shr_bits(1);
        if next.cmp_abs(&x) != std::cmp::Ordering::Less {
            break;
        }
        x = next;
    }
    debug_assert!(mul(&x, &x) <= *n);
    debug_assert!(mul(&(&x + &BigInt::one()), &(&x + &BigInt::one())) > *n);
    x
}

/// `⌊√n⌋` with Toom-Cook-3 products.
#[must_use]
pub fn isqrt(n: &BigInt) -> BigInt {
    isqrt_with(n, &|a, b| crate::seq::auto_mul(a, b))
}

/// `true` iff `n` is a perfect square.
#[must_use]
pub fn is_perfect_square(n: &BigInt) -> bool {
    if n.is_negative() {
        return false;
    }
    let r = isqrt(n);
    &crate::seq::auto_mul(&r, &r) == n
}

/// `base^e` with all products through `mul` (binary exponentiation;
/// squarings use the same kernel).
#[must_use]
pub fn pow_with(base: &BigInt, mut e: u32, mul: &Mul) -> BigInt {
    let mut acc = BigInt::one();
    let mut b = base.clone();
    while e > 0 {
        if e & 1 == 1 {
            acc = mul(&acc, &b);
        }
        e >>= 1;
        if e > 0 {
            b = mul(&b.clone(), &b);
        }
    }
    acc
}

/// Factorial via balanced product tree (each subtree product is a
/// similarly-sized multiplication — where fast kernels shine).
#[must_use]
pub fn factorial_with(n: u64, mul: &Mul) -> BigInt {
    fn range_product(lo: u64, hi: u64, mul: &Mul) -> BigInt {
        if lo > hi {
            return BigInt::one();
        }
        if hi - lo < 8 {
            let mut acc = BigInt::one();
            for v in lo..=hi {
                acc = acc.mul_schoolbook(&BigInt::from(v));
            }
            return acc;
        }
        let mid = lo + (hi - lo) / 2;
        let left = range_product(lo, mid, mul);
        let right = range_product(mid + 1, hi, mul);
        mul(&left, &right)
    }
    range_product(1, n.max(1), mul)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn school(a: &BigInt, b: &BigInt) -> BigInt {
        a.mul_schoolbook(b)
    }

    #[test]
    fn isqrt_small_values() {
        for (n, r) in [
            (0u64, 0u64),
            (1, 1),
            (2, 1),
            (3, 1),
            (4, 2),
            (8, 2),
            (9, 3),
            (99, 9),
            (100, 10),
        ] {
            assert_eq!(
                isqrt_with(&BigInt::from(n), &school),
                BigInt::from(r),
                "n={n}"
            );
        }
    }

    #[test]
    fn isqrt_exact_on_squares() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        for bits in [100u64, 2_000, 20_000] {
            let r = BigInt::random_bits(&mut rng, bits);
            let n = r.square();
            assert_eq!(isqrt(&n), r, "bits={bits}");
            assert!(is_perfect_square(&n));
            assert!(!is_perfect_square(&(&n + &BigInt::one())) || bits < 2);
        }
    }

    #[test]
    fn isqrt_floor_property_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        for _ in 0..10 {
            let n = BigInt::random_bits(&mut rng, 3_000);
            let r = isqrt(&n);
            assert!(r.square() <= n);
            assert!((&r + &BigInt::one()).square() > n);
        }
    }

    #[test]
    fn pow_matches_builtin() {
        let b = BigInt::from(12345u64);
        for e in [0u32, 1, 2, 7, 20] {
            assert_eq!(pow_with(&b, e, &school), b.pow(e), "e={e}");
        }
        // With a fast kernel too.
        let fast = |x: &BigInt, y: &BigInt| crate::seq::toom_k_threshold(x, y, 3, 256);
        let big = BigInt::from(u128::MAX);
        assert_eq!(pow_with(&big, 40, &fast), big.pow(40));
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial_with(0, &school), BigInt::one());
        assert_eq!(factorial_with(5, &school), BigInt::from(120u64));
        assert_eq!(
            factorial_with(20, &school),
            BigInt::from(2_432_902_008_176_640_000u64)
        );
        // 1000! has 2568 digits; verify length and a kernel-equivalence.
        let fast = |x: &BigInt, y: &BigInt| crate::seq::auto_mul(x, y);
        let f1000 = factorial_with(1000, &fast);
        assert_eq!(f1000.to_string().len(), 2568);
        assert_eq!(f1000, factorial_with(1000, &school));
    }
}
