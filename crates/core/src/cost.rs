//! Closed-form cost formulas of §5 (Theorems 5.1–5.3) — the "theory"
//! columns of Tables 1 and 2. All quantities are in words / word-ops /
//! messages, matching the simulator's counters.

/// Problem/machine parameters for the cost formulas.
#[derive(Debug, Clone, Copy)]
pub struct CostModelInput {
    /// Input size in words.
    pub n: f64,
    /// Processors `P`.
    pub p: f64,
    /// Split parameter `k`.
    pub k: f64,
    /// Local memory in words (`None` = unlimited).
    pub memory: Option<f64>,
    /// Fault tolerance `f`.
    pub f: f64,
}

/// Theoretical `F`/`BW`/`L` (to constant factors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoryCost {
    /// Arithmetic operations along the critical path.
    pub f: f64,
    /// Words along the critical path.
    pub bw: f64,
    /// Messages along the critical path.
    pub l: f64,
}

/// `log_b(x)`.
#[must_use]
pub fn log_base(b: f64, x: f64) -> f64 {
    x.ln() / b.ln()
}

/// The Toom-Cook exponent `ω_k = log_k(2k−1)`.
#[must_use]
pub fn toom_exponent(k: f64) -> f64 {
    log_base(k, 2.0 * k - 1.0)
}

/// `P^{log_{2k−1} k}` — the memory-threshold scale of Tables 1/2.
#[must_use]
pub fn p_pow_logk(p: f64, k: f64) -> f64 {
    p.powf(log_base(2.0 * k - 1.0, k))
}

/// Whether the memory is effectively unlimited:
/// `M = Ω(n / P^{log_{2k−1} k})` (Table 1's regime).
#[must_use]
pub fn is_unlimited(input: &CostModelInput) -> bool {
    match input.memory {
        None => true,
        Some(m) => m >= input.n / p_pow_logk(input.p, input.k),
    }
}

/// Lemma 3.1: the minimum number of DFS steps under memory `M`:
/// `⌈log_k(n / (P^{log_{2k−1} k} · M))⌉` (0 when unlimited).
#[must_use]
pub fn dfs_steps(input: &CostModelInput) -> usize {
    match input.memory {
        None => 0,
        Some(m) => {
            let x = input.n / (p_pow_logk(input.p, input.k) * m);
            if x <= 1.0 {
                0
            } else {
                log_base(input.k, x).ceil() as usize
            }
        }
    }
}

/// Theorem 5.1: Parallel Toom-Cook costs, unlimited or limited memory.
#[must_use]
pub fn parallel_toom(input: &CostModelInput) -> TheoryCost {
    let w = toom_exponent(input.k);
    let f = input.n.powf(w) / input.p;
    if is_unlimited(input) {
        TheoryCost {
            f,
            bw: input.n / p_pow_logk(input.p, input.k),
            l: input.p.ln().max(1.0),
        }
    } else {
        let m = input.memory.expect("limited case has memory");
        let t = (input.n / m).powf(w);
        TheoryCost {
            f,
            bw: t * m / input.p,
            l: t * input.p.ln().max(1.0) / input.p,
        }
    }
}

/// Theorem 5.2: Fault-Tolerant Toom-Cook — `(1+o(1))` cost factors and the
/// extra-processor count. The `o(1)` terms are the code-creation and
/// recovery costs relative to the base costs.
#[must_use]
pub fn fault_tolerant_toom(input: &CostModelInput) -> (TheoryCost, f64) {
    let base = parallel_toom(input);
    let q = 2.0 * input.k - 1.0;
    let extra = if is_unlimited(input) {
        // Multi-step traversal note: only f extra processors needed.
        input.f
    } else {
        input.f * q
    };
    // Code creation/recovery add O(f·M) F and BW per step — o(base).
    let m_eff = input
        .memory
        .unwrap_or(input.n / p_pow_logk(input.p, input.k));
    let steps = log_base(q, input.p).max(1.0);
    let oh = input.f * m_eff * steps;
    (
        TheoryCost {
            f: base.f + oh,
            bw: base.bw + oh,
            l: base.l * (1.0 + input.f / steps),
        },
        extra,
    )
}

/// Theorem 5.3: Toom-Cook with Replication — costs and `f·P` extra
/// processors.
#[must_use]
pub fn replication(input: &CostModelInput) -> (TheoryCost, f64) {
    let base = parallel_toom(input);
    // Replicating the distributed input adds O(f·n/P) words.
    let oh = input.f * input.n / input.p;
    (
        TheoryCost {
            f: base.f,
            bw: base.bw + oh,
            l: base.l + input.f,
        },
        input.f * input.p,
    )
}

/// Abstract claim (§1.2): the overhead-reduction factor of the coded
/// algorithm versus replication, `Θ(P / (2k−1))` — measured as the ratio
/// of additional processors (and hence of additional total work).
#[must_use]
pub fn overhead_reduction_factor(input: &CostModelInput) -> f64 {
    let q = 2.0 * input.k - 1.0;
    input.p / q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: f64, p: f64, k: f64) -> CostModelInput {
        CostModelInput {
            n,
            p,
            k,
            memory: None,
            f: 1.0,
        }
    }

    #[test]
    fn exponent_values() {
        assert!((toom_exponent(2.0) - 1.585).abs() < 1e-3); // log2 3
        assert!((toom_exponent(3.0) - 1.465).abs() < 1e-3); // log3 5
    }

    #[test]
    fn dfs_steps_match_lemma() {
        // n = 3^6 k^... choose n so x is a clean power.
        let mut inp = input(729.0, 5.0, 3.0);
        inp.memory = Some(729.0 / p_pow_logk(5.0, 3.0) / 9.0); // forces k^2
        assert_eq!(dfs_steps(&inp), 2);
        inp.memory = None;
        assert_eq!(dfs_steps(&inp), 0);
    }

    #[test]
    fn unlimited_memory_boundary() {
        let mut inp = input(1000.0, 25.0, 3.0);
        inp.memory = Some(1e9);
        assert!(is_unlimited(&inp));
        inp.memory = Some(1.0);
        assert!(!is_unlimited(&inp));
    }

    #[test]
    fn parallel_cost_scales_down_with_p() {
        let c1 = parallel_toom(&input(1e6, 5.0, 3.0));
        let c2 = parallel_toom(&input(1e6, 25.0, 3.0));
        assert!(c2.f < c1.f);
        assert!(c2.bw < c1.bw);
    }

    #[test]
    fn ft_overhead_is_lower_order() {
        let inp = input(1e8, 25.0, 3.0);
        let base = parallel_toom(&inp);
        let (ft, extra) = fault_tolerant_toom(&inp);
        assert!(ft.f / base.f < 1.01, "F overhead must be o(1)");
        assert_eq!(extra, 1.0, "unlimited memory: f extra processors");
        let mut lim = inp;
        lim.memory = Some(1e8 / p_pow_logk(25.0, 3.0) / 9.0);
        let (_, extra) = fault_tolerant_toom(&lim);
        assert_eq!(extra, 5.0, "limited memory: f·(2k−1)");
    }

    #[test]
    fn replication_extra_processors() {
        let (_, extra) = replication(&input(1e6, 25.0, 3.0));
        assert_eq!(extra, 25.0);
    }

    #[test]
    fn reduction_factor_is_p_over_q() {
        assert_eq!(overhead_reduction_factor(&input(1.0, 125.0, 3.0)), 25.0);
        assert_eq!(overhead_reduction_factor(&input(1.0, 27.0, 2.0)), 9.0);
    }
}
