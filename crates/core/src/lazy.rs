//! Lazy-interpolation Toom-Cook (§2.3, Algorithm 2) and the digit-vector
//! kernels shared with the parallel algorithm (§3).
//!
//! The inputs are split into `k^l` base-`2^w` digits **up front**; all
//! recursion levels then operate on *digit vectors* (block polynomials)
//! with no carry computation, and a single carry pass (`c = Σ c_u·B^u`)
//! runs at the very end. Bermudo Mera et al. showed this preserves
//! correctness and arithmetic complexity; it is also what makes the
//! mid-computation data layout predictable enough to parallelize and to
//! encode (the paper's §3–4 build directly on it).

use crate::bilinear::ToomPlan;
use ft_algebra::{Matrix, ScaledIntMatrix};
use ft_bigint::workspace;
use ft_bigint::{BigInt, Sign};

/// Direct convolution of two digit vectors (the base case):
/// `out[u] = Σ_{i+j=u} a[i]·b[j]`, length `|a|+|b|−1`.
#[must_use]
pub fn convolve(a: &[BigInt], b: &[BigInt]) -> Vec<BigInt> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![BigInt::zero(); a.len() + b.len() - 1];
    for (i, x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, y) in b.iter().enumerate() {
            out[i + j] += &(x * y);
        }
    }
    out
}

/// One evaluation step on a digit vector (Alg. 2 line 6): view `v` as `k`
/// blocks of `λ = |v|/k` and return, for each matrix row `j`, the block
/// combination `out_j[r] = Σ_i eval[j,i] · v[i·λ + r]`.
///
/// Works for any row count — the polynomial code (§4.2) passes an extended
/// `(2k−1+f)`-row matrix.
///
/// # Panics
/// Panics unless `k` divides `|v|` and the matrix has `k` columns.
#[must_use]
pub fn eval_step(eval: &Matrix<BigInt>, v: &[BigInt], k: usize) -> Vec<Vec<BigInt>> {
    assert_eq!(eval.cols(), k);
    assert_eq!(v.len() % k, 0, "vector length must be divisible by k");
    let lambda = v.len() / k;
    let mut tmp = Vec::new();
    (0..eval.rows())
        .map(|j| {
            // Pre-classify the row's coefficients once per block row.
            let coeffs: Vec<Option<i64>> =
                (0..k).map(|i| i64::try_from(&eval[(j, i)]).ok()).collect();
            (0..lambda)
                .map(|r| {
                    let mut acc = BigInt::zero();
                    for i in 0..k {
                        let x = &v[i * lambda + r];
                        if x.is_zero() {
                            continue;
                        }
                        match coeffs[i] {
                            Some(0) => {}
                            Some(1) => acc += x,
                            Some(c) => acc.add_mul_small_assign(x, c, &mut tmp),
                            None => acc += &(&eval[(j, i)] * x),
                        }
                    }
                    acc
                })
                .collect()
        })
        .collect()
}

/// One interpolation step (Alg. 2 lines 15–16, minus the final carry):
/// from the `2k−1` sub-product vectors (each of length `2λ−1`) recover the
/// block coefficients `C_t` and overlap-add them into the product vector of
/// length `2kλ−1`.
///
/// # Panics
/// Panics on inconsistent lengths.
#[must_use]
pub fn interp_step(interp: &ScaledIntMatrix, prods: &[Vec<BigInt>], k: usize) -> Vec<BigInt> {
    let q = 2 * k - 1;
    assert_eq!(prods.len(), q, "need 2k-1 sub-products");
    assert_eq!(interp.rows(), q);
    let sub_len = prods[0].len();
    assert!(prods.iter().all(|p| p.len() == sub_len));
    let lambda = sub_len.div_ceil(2);
    assert_eq!(
        2 * lambda - 1,
        sub_len,
        "sub-product length must be odd (2λ−1)"
    );
    let out_len = 2 * k * lambda - 1;
    let mut out = vec![BigInt::zero(); out_len];
    // For each offset e, interpolate the q block coefficients C_t[e] and
    // overlap-add C_t into out at stride λ.
    let mut column = vec![BigInt::zero(); q];
    for e in 0..sub_len {
        for (j, p) in prods.iter().enumerate() {
            // clone_from reuses each column slot's limb buffer across the
            // sub_len iterations instead of reallocating it.
            column[j].clone_from(&p[e]);
        }
        let coeffs = interp.apply(&column);
        for (t, c) in coeffs.into_iter().enumerate() {
            if !c.is_zero() {
                out[t * lambda + e] += &c;
            }
        }
    }
    out
}

/// Recursive lazy Toom-Cook on digit vectors: recurse while the length is
/// divisible by `k` and longer than `base_len`, otherwise convolve
/// directly. The result is the plain polynomial product of the two digit
/// vectors (no carries).
#[must_use]
pub fn poly_mul_toom(a: &[BigInt], b: &[BigInt], plan: &ToomPlan, base_len: usize) -> Vec<BigInt> {
    assert_eq!(
        a.len(),
        b.len(),
        "lazy recursion needs equal-length vectors"
    );
    let k = plan.k();
    if a.len() <= base_len.max(1) || !a.len().is_multiple_of(k) {
        return convolve(a, b);
    }
    let ea = eval_step(plan.eval_matrix(), a, k);
    let eb = eval_step(plan.eval_matrix(), b, k);
    let prods: Vec<Vec<BigInt>> = ea
        .iter()
        .zip(&eb)
        .map(|(x, y)| poly_mul_toom(x, y, plan, base_len))
        .collect();
    interp_step(plan.interp_matrix(), &prods, k)
}

/// Parameters for the lazy integer algorithm.
#[derive(Debug, Clone, Copy)]
pub struct LazyConfig {
    /// Split parameter `k`.
    pub k: usize,
    /// Base digit width in bits (the shared base is `2^w`).
    pub digit_bits: u64,
    /// Stop recursing at vectors of this length or shorter.
    pub base_len: usize,
}

impl Default for LazyConfig {
    fn default() -> Self {
        LazyConfig {
            k: 3,
            digit_bits: 64,
            base_len: 8,
        }
    }
}

/// Algorithm 2: full integer multiplication with lazy interpolation.
/// Splits both inputs into `k^l` digits up front, recurses on digit
/// vectors, and performs all carries in one final pass.
#[must_use]
pub fn toom_lazy(a: &BigInt, b: &BigInt, cfg: LazyConfig) -> BigInt {
    let sign = a.sign().mul(b.sign());
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let plan = ToomPlan::shared(cfg.k);
    // l = ⌈log_k(n/w)⌉ so that k^l digits of w bits cover both inputs.
    let max_bits = a.bit_length().max(b.bit_length());
    let mut digits = 1usize;
    while (digits as u64) * cfg.digit_bits < max_bits {
        digits *= cfg.k;
    }
    let (da, db) = workspace::with_thread_local(|ws| {
        (
            a.split_base_pow2_ws(cfg.digit_bits, digits, ws),
            b.split_base_pow2_ws(cfg.digit_bits, digits, ws),
        )
    });
    let prod = poly_mul_toom(&da, &db, &plan, cfg.base_len);
    let mag = workspace::with_thread_local(|ws| {
        ws.recycle_nodes(da);
        ws.recycle_nodes(db);
        let out = BigInt::join_base_pow2_ws(&prod, cfg.digit_bits, ws);
        ws.recycle_nodes(prod);
        out
    });
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ints(vs: &[i64]) -> Vec<BigInt> {
        vs.iter().map(|&v| BigInt::from(v)).collect()
    }

    #[test]
    fn convolve_known() {
        // (1 + 2x + 3x²)(4 + 5x) = 4 + 13x + 22x² + 15x³
        assert_eq!(
            convolve(&ints(&[1, 2, 3]), &ints(&[4, 5])),
            ints(&[4, 13, 22, 15])
        );
        assert!(convolve(&[], &ints(&[1])).is_empty());
    }

    #[test]
    fn eval_step_blocks() {
        let plan = ToomPlan::new(2);
        // v = [a00, a01, a10, a11]: blocks [a00,a01],[a10,a11]
        let v = ints(&[1, 2, 30, 40]);
        let e = eval_step(plan.eval_matrix(), &v, 2);
        assert_eq!(e.len(), 3);
        assert_eq!(e[0], ints(&[1, 2])); // point 0 → block 0
        assert_eq!(e[1], ints(&[31, 42])); // point 1 → sum
        assert_eq!(e[2], ints(&[30, 40])); // ∞ → block 1
    }

    #[test]
    fn interp_inverts_eval_pointwise() {
        // Full round trip at one level: eval both, convolve pointwise,
        // interp → reference convolution.
        for k in 2..=4 {
            let plan = ToomPlan::new(k);
            let len = k * 3;
            let a: Vec<BigInt> = (0..len).map(|i| BigInt::from(i as i64 + 1)).collect();
            let b: Vec<BigInt> = (0..len).map(|i| BigInt::from(2 * i as i64 - 5)).collect();
            let ea = eval_step(plan.eval_matrix(), &a, k);
            let eb = eval_step(plan.eval_matrix(), &b, k);
            let prods: Vec<Vec<BigInt>> = ea.iter().zip(&eb).map(|(x, y)| convolve(x, y)).collect();
            let got = interp_step(plan.interp_matrix(), &prods, k);
            assert_eq!(got, convolve(&a, &b), "k={k}");
        }
    }

    #[test]
    fn poly_mul_toom_matches_convolution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for k in 2..=3 {
            let plan = ToomPlan::new(k);
            let len = k * k * k;
            let a: Vec<BigInt> = (0..len)
                .map(|_| BigInt::random_signed_bits(&mut rng, 40))
                .collect();
            let b: Vec<BigInt> = (0..len)
                .map(|_| BigInt::random_signed_bits(&mut rng, 40))
                .collect();
            assert_eq!(poly_mul_toom(&a, &b, &plan, 1), convolve(&a, &b), "k={k}");
        }
    }

    #[test]
    fn lazy_integer_multiplication_matches_schoolbook() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for (k, bits) in [(2usize, 3000u64), (3, 5000), (4, 2000)] {
            let a = BigInt::random_signed_bits(&mut rng, bits);
            let b = BigInt::random_signed_bits(&mut rng, bits);
            let cfg = LazyConfig {
                k,
                digit_bits: 64,
                base_len: 2,
            };
            assert_eq!(toom_lazy(&a, &b, cfg), a.mul_schoolbook(&b), "k={k}");
        }
    }

    #[test]
    fn lazy_handles_zero_and_signs() {
        let a = BigInt::from(-12345i64);
        let b = BigInt::from(67890u64);
        let cfg = LazyConfig::default();
        assert_eq!(toom_lazy(&a, &b, cfg), a.mul_schoolbook(&b));
        assert!(toom_lazy(&BigInt::zero(), &b, cfg).is_zero());
    }

    #[test]
    fn lazy_equals_standard_toom() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let a = BigInt::random_bits(&mut rng, 4000);
        let b = BigInt::random_bits(&mut rng, 4000);
        assert_eq!(
            toom_lazy(
                &a,
                &b,
                LazyConfig {
                    k: 3,
                    digit_bits: 32,
                    base_len: 1
                }
            ),
            crate::seq::toom_k(&a, &b, 3)
        );
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn eval_step_rejects_ragged() {
        let plan = ToomPlan::new(2);
        let _ = eval_step(plan.eval_matrix(), &ints(&[1, 2, 3]), 2);
    }
}
