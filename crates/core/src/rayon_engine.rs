//! Shared-memory parallel Toom-Cook on a work-stealing pool (rayon).
//!
//! The distributed simulator (`ft-machine`) measures the paper's cost
//! model; this engine measures *wall-clock* on a real multicore — the
//! practical side of the paper's claim that Toom-Cook parallelizes well
//! through its recursion tree. The `2k−1` point-products of each level are
//! independent, so the recursion parallelizes with a simple
//! fork-join over sub-products, throttled below `par_depth` levels to keep
//! task granularity sane.

use crate::bilinear::ToomPlan;
use ft_bigint::workspace::{self, Workspace};
use ft_bigint::{BigInt, Sign};
use rayon::prelude::*;

/// Parallel Toom-Cook-`k`: like [`crate::seq::toom_k`] but with the
/// point-products of the top `par_depth` recursion levels executed on the
/// rayon pool.
#[must_use]
pub fn par_toom_k(
    a: &BigInt,
    b: &BigInt,
    k: usize,
    threshold_bits: u64,
    par_depth: usize,
) -> BigInt {
    par_toom_with_plan(a, b, &ToomPlan::shared(k), threshold_bits, par_depth)
}

/// Parallel Toom-Cook with a caller-supplied plan, so batch-processing
/// layers (ft-service) can resolve the plan once per kernel choice instead
/// of per multiplication.
#[must_use]
pub fn par_toom_with_plan(
    a: &BigInt,
    b: &BigInt,
    plan: &ToomPlan,
    threshold_bits: u64,
    par_depth: usize,
) -> BigInt {
    let sign = a.sign().mul(b.sign());
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let mag =
        workspace::with_thread_local(|ws| rec(a, b, plan, threshold_bits.max(8), par_depth, ws));
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

/// Multiply every pair in `pairs` with one shared plan, returning products
/// in input order. This is the batch entry point for cross-request
/// coalescing layers (ft-service): the plan is resolved once, and the
/// batch is executed in at most `lanes` coarse chunks rather than
/// per-element tasks — the right granularity when elements are plentiful
/// and individually small.
///
/// `lanes == 0` uses the machine's available parallelism; `lanes <= 1`
/// (in particular any single-core host) runs the whole batch sequentially
/// on the calling thread, sharing one scratch workspace across elements.
/// Within an element, `par_depth` still controls fork-join recursion
/// exactly as in [`par_toom_with_plan`].
///
/// # Panics
/// A panic in any element propagates to the caller (after the other lanes
/// finish), so supervision layers can treat the whole batch as one failed
/// attempt.
#[must_use]
pub fn mul_batch_with_plan(
    pairs: &[(BigInt, BigInt)],
    plan: &ToomPlan,
    threshold_bits: u64,
    par_depth: usize,
    lanes: usize,
) -> Vec<BigInt> {
    batch_map(pairs, lanes, |a, b, ws| {
        mul_one_ws(a, b, plan, threshold_bits, par_depth, ws)
    })
}

/// Schoolbook analogue of [`mul_batch_with_plan`]: multiply every pair
/// quadratically, in at most `lanes` chunks, products in input order.
#[must_use]
pub fn mul_batch_schoolbook(pairs: &[(BigInt, BigInt)], lanes: usize) -> Vec<BigInt> {
    batch_map(pairs, lanes, |a, b, _ws| a.mul_schoolbook(b))
}

/// NTT analogue of [`mul_batch_with_plan`]: every pair goes through the
/// two-prime CRT NTT kernel, sharing one scratch workspace per lane (the
/// transform buffers and twiddle caches stay warm across elements).
#[must_use]
pub fn mul_batch_ntt(pairs: &[(BigInt, BigInt)], lanes: usize) -> Vec<BigInt> {
    batch_map(pairs, lanes, |a, b, ws| a.mul_ntt_with_ws(b, ws))
}

/// One signed multiplication against a caller-held workspace; the shared
/// scratch arena is what lets a sequential batch reuse its allocations
/// across elements instead of re-warming a fresh arena per product.
fn mul_one_ws(
    a: &BigInt,
    b: &BigInt,
    plan: &ToomPlan,
    threshold_bits: u64,
    par_depth: usize,
    ws: &mut Workspace,
) -> BigInt {
    let sign = a.sign().mul(b.sign());
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let mag = rec(a, b, plan, threshold_bits.max(8), par_depth, ws);
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

/// Resolve a `lanes` request against a batch of `elements`: `0` means the
/// machine's available parallelism, and a batch never uses more lanes
/// than it has elements. Serving layers use this to detect the
/// single-lane case up front (where a fused multiply-then-verify loop
/// beats a two-pass batch).
#[must_use]
pub fn effective_lanes(lanes: usize, elements: usize) -> usize {
    if lanes == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        lanes
    }
    .min(elements)
}

/// Chunked batch executor shared by the batch entry points. Spawns at most
/// `lanes` scoped threads (never more than elements); each lane multiplies
/// a contiguous chunk inside its own thread-local workspace.
fn batch_map<F>(pairs: &[(BigInt, BigInt)], lanes: usize, mul: F) -> Vec<BigInt>
where
    F: Fn(&BigInt, &BigInt, &mut Workspace) -> BigInt + Sync,
{
    let lanes = effective_lanes(lanes, pairs.len());
    if lanes <= 1 {
        return workspace::with_thread_local(|ws| {
            pairs.iter().map(|(a, b)| mul(a, b, ws)).collect()
        });
    }
    let chunk = pairs.len().div_ceil(lanes);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|chunk| {
                let mul = &mul;
                scope.spawn(move || {
                    workspace::with_thread_local(|ws| {
                        chunk
                            .iter()
                            .map(|(a, b)| mul(a, b, ws))
                            .collect::<Vec<BigInt>>()
                    })
                })
            })
            .collect();
        let mut out = Vec::with_capacity(pairs.len());
        let mut panicked = None;
        for handle in handles {
            match handle.join() {
                Ok(products) => out.extend(products),
                Err(payload) => panicked = Some(payload),
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        out
    })
}

/// Magnitude recursion (`|a|·|b|`, signs handled by callers). Each rayon
/// task gets its own [`Workspace`]: the closure running on a stolen worker
/// re-enters the *worker's* thread-local arena, so scratch never crosses
/// threads and the sequential tail below `par_depth` reuses one arena.
fn rec(
    a: &BigInt,
    b: &BigInt,
    plan: &ToomPlan,
    threshold: u64,
    par_depth: usize,
    ws: &mut Workspace,
) -> BigInt {
    if a.is_zero() || b.is_zero() {
        return BigInt::zero();
    }
    if a.bit_length().min(b.bit_length()) <= threshold {
        let mut out = ws.take_limbs();
        ft_bigint::kernels::mul_into_auto(a.limbs(), b.limbs(), &mut out, ws);
        return BigInt::from_limbs(out);
    }
    let k = plan.k();
    let w = BigInt::shared_digit_width(a, b, k);
    let da = a.split_base_pow2_ws(w, k, ws);
    let db = b.split_base_pow2_ws(w, k, ws);
    let ea = plan.evaluate_ws(&da, ws);
    let eb = plan.evaluate_ws(&db, ws);
    ws.recycle_nodes(da);
    ws.recycle_nodes(db);
    let coeffs = if par_depth > 0 {
        // Parallel point-products: each task multiplies magnitudes inside
        // its worker's thread-local workspace and reattaches the sign.
        let prods: Vec<BigInt> = ea
            .par_iter()
            .zip(eb.par_iter())
            .map(|(x, y)| {
                let m = workspace::with_thread_local(|task_ws| {
                    rec(x, y, plan, threshold, par_depth - 1, task_ws)
                });
                if x.sign().mul(y.sign()) == Sign::Negative {
                    -m
                } else {
                    m
                }
            })
            .collect();
        plan.interpolate_ws(prods, ws)
    } else {
        let mut prods = ws.take_nodes();
        for (x, y) in ea.iter().zip(&eb) {
            let m = rec(x, y, plan, threshold, 0, ws);
            prods.push(if x.sign().mul(y.sign()) == Sign::Negative {
                -m
            } else {
                m
            });
        }
        plan.interpolate_ws(prods, ws)
    };
    ws.recycle_nodes(ea);
    ws.recycle_nodes(eb);
    let out = BigInt::join_base_pow2_ws(&coeffs, w, ws);
    ws.recycle_nodes(coeffs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_signed_bits(&mut rng, bits),
            BigInt::random_signed_bits(&mut rng, bits),
        )
    }

    #[test]
    fn matches_sequential_result() {
        let (a, b) = random_pair(50_000, 1);
        for k in [2usize, 3, 4] {
            assert_eq!(par_toom_k(&a, &b, k, 512, 3), a.mul_schoolbook(&b), "k={k}");
        }
    }

    #[test]
    fn zero_depth_equals_sequential_path() {
        let (a, b) = random_pair(10_000, 2);
        assert_eq!(
            par_toom_k(&a, &b, 3, 512, 0),
            crate::seq::toom_k_threshold(&a, &b, 3, 512)
        );
    }

    #[test]
    fn explicit_plan_matches_cached_plan_path() {
        let (a, b) = random_pair(30_000, 7);
        let plan = ToomPlan::new(3);
        assert_eq!(
            par_toom_with_plan(&a, &b, &plan, 512, 2),
            par_toom_k(&a, &b, 3, 512, 2)
        );
    }

    #[test]
    fn signs_and_zero() {
        let (a, b) = random_pair(5_000, 3);
        let (a, b) = (a.abs(), b.abs());
        assert_eq!(par_toom_k(&-&a, &b, 3, 512, 2), -(a.mul_schoolbook(&b)));
        assert!(par_toom_k(&BigInt::zero(), &b, 3, 512, 2).is_zero());
    }

    #[test]
    fn batch_matches_per_element_results_across_lane_counts() {
        let mut pairs = Vec::new();
        for i in 0..13u64 {
            let (a, b) = random_pair(600 + 400 * i, 100 + i);
            pairs.push((a, b));
        }
        pairs.push((BigInt::zero(), pairs[0].1.clone()));
        pairs.push((-&pairs[1].0, pairs[1].1.clone()));
        let plan = ToomPlan::shared(3);
        let expect: Vec<BigInt> = pairs.iter().map(|(a, b)| a.mul_schoolbook(b)).collect();
        for lanes in [0usize, 1, 2, 3, 16] {
            assert_eq!(
                mul_batch_with_plan(&pairs, &plan, 512, 0, lanes),
                expect,
                "toom lanes={lanes}"
            );
            assert_eq!(
                mul_batch_schoolbook(&pairs, lanes),
                expect,
                "schoolbook lanes={lanes}"
            );
        }
        // par_depth forks inside elements; results must be unchanged.
        assert_eq!(mul_batch_with_plan(&pairs, &plan, 512, 2, 2), expect);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(mul_batch_with_plan(&[], &ToomPlan::shared(3), 512, 0, 0).is_empty());
        assert!(mul_batch_schoolbook(&[], 4).is_empty());
    }

    #[test]
    fn batch_panics_propagate_after_all_lanes_finish() {
        // A poisoned element must fail the whole batch call (the service
        // supervisor catches it at the batch boundary), not hang or abort.
        let result = std::panic::catch_unwind(|| {
            let pairs: Vec<(BigInt, BigInt)> =
                (0..4u64).map(|i| random_pair(256, 200 + i)).collect();
            batch_map(&pairs, 2, |a, b, _ws| {
                if a == &pairs[3].0 {
                    panic!("injected lane failure");
                }
                a.mul_schoolbook(b)
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn parallel_is_not_slower_at_scale() {
        // Smoke test (not a benchmark): parallel completes and matches on a
        // large input.
        let (a, b) = random_pair(200_000, 4);
        let p = par_toom_k(&a, &b, 3, 2048, 4);
        let s = crate::seq::toom_k_threshold(&a, &b, 3, 2048);
        assert_eq!(p, s);
    }
}
