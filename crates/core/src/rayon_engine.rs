//! Shared-memory parallel Toom-Cook on a work-stealing pool (rayon).
//!
//! The distributed simulator (`ft-machine`) measures the paper's cost
//! model; this engine measures *wall-clock* on a real multicore — the
//! practical side of the paper's claim that Toom-Cook parallelizes well
//! through its recursion tree. The `2k−1` point-products of each level are
//! independent, so the recursion parallelizes with a simple
//! fork-join over sub-products, throttled below `par_depth` levels to keep
//! task granularity sane.

use crate::bilinear::ToomPlan;
use ft_bigint::{BigInt, Sign};
use rayon::prelude::*;

/// Parallel Toom-Cook-`k`: like [`crate::seq::toom_k`] but with the
/// point-products of the top `par_depth` recursion levels executed on the
/// rayon pool.
#[must_use]
pub fn par_toom_k(
    a: &BigInt,
    b: &BigInt,
    k: usize,
    threshold_bits: u64,
    par_depth: usize,
) -> BigInt {
    par_toom_with_plan(a, b, &ToomPlan::shared(k), threshold_bits, par_depth)
}

/// Parallel Toom-Cook with a caller-supplied plan, so batch-processing
/// layers (ft-service) can resolve the plan once per kernel choice instead
/// of per multiplication.
#[must_use]
pub fn par_toom_with_plan(
    a: &BigInt,
    b: &BigInt,
    plan: &ToomPlan,
    threshold_bits: u64,
    par_depth: usize,
) -> BigInt {
    let sign = a.sign().mul(b.sign());
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let mag = rec(&a.abs(), &b.abs(), plan, threshold_bits.max(8), par_depth);
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

fn rec(a: &BigInt, b: &BigInt, plan: &ToomPlan, threshold: u64, par_depth: usize) -> BigInt {
    debug_assert!(!a.is_negative() && !b.is_negative());
    if a.is_zero() || b.is_zero() {
        return BigInt::zero();
    }
    if a.bit_length().min(b.bit_length()) <= threshold {
        return a.mul_schoolbook(b);
    }
    let k = plan.k();
    let w = BigInt::shared_digit_width(a, b, k);
    let da = a.split_base_pow2(w, k);
    let db = b.split_base_pow2(w, k);
    let ea = plan.evaluate(&da);
    let eb = plan.evaluate(&db);
    let mul_one = |x: &BigInt, y: &BigInt, depth: usize| -> BigInt {
        let s = x.sign().mul(y.sign());
        if s == Sign::Zero {
            return BigInt::zero();
        }
        let m = rec(&x.abs(), &y.abs(), plan, threshold, depth);
        if s == Sign::Negative {
            -m
        } else {
            m
        }
    };
    let prods: Vec<BigInt> = if par_depth > 0 {
        ea.par_iter()
            .zip(eb.par_iter())
            .map(|(x, y)| mul_one(x, y, par_depth - 1))
            .collect()
    } else {
        ea.iter().zip(&eb).map(|(x, y)| mul_one(x, y, 0)).collect()
    };
    let coeffs = plan.interpolate(&prods);
    BigInt::join_base_pow2(&coeffs, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_signed_bits(&mut rng, bits),
            BigInt::random_signed_bits(&mut rng, bits),
        )
    }

    #[test]
    fn matches_sequential_result() {
        let (a, b) = random_pair(50_000, 1);
        for k in [2usize, 3, 4] {
            assert_eq!(par_toom_k(&a, &b, k, 512, 3), a.mul_schoolbook(&b), "k={k}");
        }
    }

    #[test]
    fn zero_depth_equals_sequential_path() {
        let (a, b) = random_pair(10_000, 2);
        assert_eq!(
            par_toom_k(&a, &b, 3, 512, 0),
            crate::seq::toom_k_threshold(&a, &b, 3, 512)
        );
    }

    #[test]
    fn explicit_plan_matches_cached_plan_path() {
        let (a, b) = random_pair(30_000, 7);
        let plan = ToomPlan::new(3);
        assert_eq!(
            par_toom_with_plan(&a, &b, &plan, 512, 2),
            par_toom_k(&a, &b, 3, 512, 2)
        );
    }

    #[test]
    fn signs_and_zero() {
        let (a, b) = random_pair(5_000, 3);
        let (a, b) = (a.abs(), b.abs());
        assert_eq!(par_toom_k(&-&a, &b, 3, 512, 2), -(a.mul_schoolbook(&b)));
        assert!(par_toom_k(&BigInt::zero(), &b, 3, 512, 2).is_zero());
    }

    #[test]
    fn parallel_is_not_slower_at_scale() {
        // Smoke test (not a benchmark): parallel completes and matches on a
        // large input.
        let (a, b) = random_pair(200_000, 4);
        let p = par_toom_k(&a, &b, 3, 2048, 4);
        let s = crate::seq::toom_k_threshold(&a, &b, 3, 2048);
        assert_eq!(p, s);
    }
}
