//! Shared-memory parallel Toom-Cook on a work-stealing pool (rayon).
//!
//! The distributed simulator (`ft-machine`) measures the paper's cost
//! model; this engine measures *wall-clock* on a real multicore — the
//! practical side of the paper's claim that Toom-Cook parallelizes well
//! through its recursion tree. The `2k−1` point-products of each level are
//! independent, so the recursion parallelizes with a simple
//! fork-join over sub-products, throttled below `par_depth` levels to keep
//! task granularity sane.

use crate::bilinear::ToomPlan;
use ft_bigint::workspace::{self, Workspace};
use ft_bigint::{BigInt, Sign};
use rayon::prelude::*;

/// Parallel Toom-Cook-`k`: like [`crate::seq::toom_k`] but with the
/// point-products of the top `par_depth` recursion levels executed on the
/// rayon pool.
#[must_use]
pub fn par_toom_k(
    a: &BigInt,
    b: &BigInt,
    k: usize,
    threshold_bits: u64,
    par_depth: usize,
) -> BigInt {
    par_toom_with_plan(a, b, &ToomPlan::shared(k), threshold_bits, par_depth)
}

/// Parallel Toom-Cook with a caller-supplied plan, so batch-processing
/// layers (ft-service) can resolve the plan once per kernel choice instead
/// of per multiplication.
#[must_use]
pub fn par_toom_with_plan(
    a: &BigInt,
    b: &BigInt,
    plan: &ToomPlan,
    threshold_bits: u64,
    par_depth: usize,
) -> BigInt {
    let sign = a.sign().mul(b.sign());
    if sign == Sign::Zero {
        return BigInt::zero();
    }
    let mag =
        workspace::with_thread_local(|ws| rec(a, b, plan, threshold_bits.max(8), par_depth, ws));
    if sign == Sign::Negative {
        -mag
    } else {
        mag
    }
}

/// Magnitude recursion (`|a|·|b|`, signs handled by callers). Each rayon
/// task gets its own [`Workspace`]: the closure running on a stolen worker
/// re-enters the *worker's* thread-local arena, so scratch never crosses
/// threads and the sequential tail below `par_depth` reuses one arena.
fn rec(
    a: &BigInt,
    b: &BigInt,
    plan: &ToomPlan,
    threshold: u64,
    par_depth: usize,
    ws: &mut Workspace,
) -> BigInt {
    if a.is_zero() || b.is_zero() {
        return BigInt::zero();
    }
    if a.bit_length().min(b.bit_length()) <= threshold {
        let mut out = ws.take_limbs();
        ft_bigint::kernels::mul_into_auto(a.limbs(), b.limbs(), &mut out, ws);
        return BigInt::from_limbs(out);
    }
    let k = plan.k();
    let w = BigInt::shared_digit_width(a, b, k);
    let da = a.split_base_pow2_ws(w, k, ws);
    let db = b.split_base_pow2_ws(w, k, ws);
    let ea = plan.evaluate_ws(&da, ws);
    let eb = plan.evaluate_ws(&db, ws);
    ws.recycle_nodes(da);
    ws.recycle_nodes(db);
    let coeffs = if par_depth > 0 {
        // Parallel point-products: each task multiplies magnitudes inside
        // its worker's thread-local workspace and reattaches the sign.
        let prods: Vec<BigInt> = ea
            .par_iter()
            .zip(eb.par_iter())
            .map(|(x, y)| {
                let m = workspace::with_thread_local(|task_ws| {
                    rec(x, y, plan, threshold, par_depth - 1, task_ws)
                });
                if x.sign().mul(y.sign()) == Sign::Negative {
                    -m
                } else {
                    m
                }
            })
            .collect();
        plan.interpolate_ws(prods, ws)
    } else {
        let mut prods = ws.take_nodes();
        for (x, y) in ea.iter().zip(&eb) {
            let m = rec(x, y, plan, threshold, 0, ws);
            prods.push(if x.sign().mul(y.sign()) == Sign::Negative {
                -m
            } else {
                m
            });
        }
        plan.interpolate_ws(prods, ws)
    };
    ws.recycle_nodes(ea);
    ws.recycle_nodes(eb);
    let out = BigInt::join_base_pow2_ws(&coeffs, w, ws);
    ws.recycle_nodes(coeffs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_signed_bits(&mut rng, bits),
            BigInt::random_signed_bits(&mut rng, bits),
        )
    }

    #[test]
    fn matches_sequential_result() {
        let (a, b) = random_pair(50_000, 1);
        for k in [2usize, 3, 4] {
            assert_eq!(par_toom_k(&a, &b, k, 512, 3), a.mul_schoolbook(&b), "k={k}");
        }
    }

    #[test]
    fn zero_depth_equals_sequential_path() {
        let (a, b) = random_pair(10_000, 2);
        assert_eq!(
            par_toom_k(&a, &b, 3, 512, 0),
            crate::seq::toom_k_threshold(&a, &b, 3, 512)
        );
    }

    #[test]
    fn explicit_plan_matches_cached_plan_path() {
        let (a, b) = random_pair(30_000, 7);
        let plan = ToomPlan::new(3);
        assert_eq!(
            par_toom_with_plan(&a, &b, &plan, 512, 2),
            par_toom_k(&a, &b, 3, 512, 2)
        );
    }

    #[test]
    fn signs_and_zero() {
        let (a, b) = random_pair(5_000, 3);
        let (a, b) = (a.abs(), b.abs());
        assert_eq!(par_toom_k(&-&a, &b, 3, 512, 2), -(a.mul_schoolbook(&b)));
        assert!(par_toom_k(&BigInt::zero(), &b, 3, 512, 2).is_zero());
    }

    #[test]
    fn parallel_is_not_slower_at_scale() {
        // Smoke test (not a benchmark): parallel completes and matches on a
        // large input.
        let (a, b) = random_pair(200_000, 4);
        let p = par_toom_k(&a, &b, 3, 2048, 4);
        let s = crate::seq::toom_k_threshold(&a, &b, 3, 2048);
        assert_eq!(p, s);
    }
}
