//! Evaluation point sets for Toom-Cook-k (§2.2, Remark 2.2).
//!
//! The classic set for Toom-Cook-3 is `{0, 1, −1, 2, ∞}`; we generate the
//! same family for general `k`: `0, 1, −1, 2, −2, …` and finally `∞`,
//! written homogeneously (`∞ = (1 : 0)`) per Zanoni's notation so no
//! special-casing is needed anywhere downstream.

use ft_algebra::HPoint;

/// The classic `2k−1` evaluation points for Toom-Cook-`k`:
/// `0, 1, −1, 2, −2, …, ∞`.
///
/// # Panics
/// Panics if `k < 2`.
#[must_use]
pub fn classic_points(k: usize) -> Vec<HPoint> {
    n_points(2 * k - 1)
}

/// The first `n ≥ 3` points of the classic family (`0, 1, −1, 2, −2, …`
/// plus `∞` as the last point). Used directly for unbalanced
/// Toom-Cook-(k₁,k₂), which needs `k₁+k₂−1` points.
///
/// # Panics
/// Panics if `n < 3`.
#[must_use]
pub fn n_points(n: usize) -> Vec<HPoint> {
    assert!(n >= 3, "Toom-Cook needs at least 3 evaluation points");
    let mut pts = Vec::with_capacity(n);
    pts.push(HPoint::affine(0));
    let mut mag = 1i64;
    let mut positive = true;
    while pts.len() < n - 1 {
        pts.push(HPoint::affine(if positive { mag } else { -mag }));
        if !positive {
            mag += 1;
        }
        positive = !positive;
    }
    pts.push(HPoint::infinity());
    pts
}

/// A second family of `2k−1` evaluation points for Toom-Cook-`k`,
/// projectively distinct from *every* point of [`classic_points`]`(k)`:
/// `k, −k, k+1, −(k+1), …` (all affine, no `0`, no `∞`).
///
/// The classic family uses `0`, `∞`, and affine magnitudes up to `k−1`,
/// so starting at magnitude `k` guarantees disjointness for every `k`.
/// A plan built on this set (see `ToomPlan::shared_alternate` in
/// `ft-core`) shares no evaluation row, no interpolation matrix, and no
/// Toom-Graph inversion sequence with the classic plan — the structurally
/// distinct second algorithm of a dual-algorithm (ABFT-style) cross-check:
/// a soft error in either evaluation pipeline makes the two products
/// disagree.
///
/// # Panics
/// Panics if `k < 2`.
#[must_use]
pub fn alternate_points(k: usize) -> Vec<HPoint> {
    assert!(k >= 2, "Toom-Cook needs k >= 2");
    let n = 2 * k - 1;
    let mut pts = Vec::with_capacity(n);
    let mut mag = i64::try_from(k).expect("k fits in i64");
    let mut positive = true;
    while pts.len() < n {
        pts.push(HPoint::affine(if positive { mag } else { -mag }));
        if !positive {
            mag += 1;
        }
        positive = !positive;
    }
    pts
}

/// Extend a point set with `f` fresh affine points from the classic family
/// (projectively distinct from all existing points) — the redundant
/// evaluation points of the polynomial code (§4.2).
#[must_use]
pub fn extend_points(base: &[HPoint], f: usize) -> Vec<HPoint> {
    let mut out = base.to_vec();
    let mut mag = 1i64;
    let mut positive = true;
    while out.len() < base.len() + f {
        let cand = HPoint::affine(if positive { mag } else { -mag });
        if !positive {
            mag += 1;
        }
        positive = !positive;
        if out.iter().all(|p| !p.proj_eq(&cand)) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_algebra::points::eval_matrix;

    #[test]
    fn classic_tc3_is_the_standard_set() {
        let pts = classic_points(3);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], HPoint::affine(0));
        assert_eq!(pts[1], HPoint::affine(1));
        assert_eq!(pts[2], HPoint::affine(-1));
        assert_eq!(pts[3], HPoint::affine(2));
        assert!(pts[4].is_infinity());
    }

    #[test]
    fn classic_tc2_is_karatsuba_points() {
        let pts = classic_points(2);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], HPoint::affine(0));
        assert_eq!(pts[1], HPoint::affine(1));
        assert!(pts[2].is_infinity());
    }

    #[test]
    fn all_small_k_sets_are_projectively_distinct_and_invertible() {
        for k in 2..=6 {
            let pts = classic_points(k);
            assert_eq!(pts.len(), 2 * k - 1);
            for i in 0..pts.len() {
                for j in 0..i {
                    assert!(!pts[i].proj_eq(&pts[j]), "k={k}: {i} vs {j}");
                }
            }
            // Interpolation Theorem 2.1: the product-width evaluation matrix
            // must be invertible.
            let m = eval_matrix(&pts, 2 * k - 1);
            assert!(!m.det_bareiss().is_zero(), "k={k}");
        }
    }

    #[test]
    fn extended_points_stay_distinct() {
        for k in [2usize, 3, 4] {
            for f in 1..=3 {
                let pts = extend_points(&classic_points(k), f);
                assert_eq!(pts.len(), 2 * k - 1 + f);
                for i in 0..pts.len() {
                    for j in 0..i {
                        assert!(!pts[i].proj_eq(&pts[j]), "k={k} f={f}");
                    }
                }
                // Any (2k−1)-subset interpolates (MDS-like property of
                // distinct univariate points).
                let m = eval_matrix(&pts, 2 * k - 1);
                ft_algebra::points::for_each_combination(pts.len(), 2 * k - 1, |rows| {
                    assert!(!m.select_rows(rows).det_bareiss().is_zero());
                    true
                });
            }
        }
    }

    #[test]
    fn alternate_points_are_distinct_invertible_and_disjoint_from_classic() {
        for k in 2..=6 {
            let alt = alternate_points(k);
            assert_eq!(alt.len(), 2 * k - 1);
            for i in 0..alt.len() {
                for j in 0..i {
                    assert!(!alt[i].proj_eq(&alt[j]), "k={k}: {i} vs {j}");
                }
            }
            // Disjoint from every classic point — the structural-distinctness
            // guarantee the dual-algorithm cross-check relies on.
            for p in &classic_points(k) {
                for q in &alt {
                    assert!(!p.proj_eq(q), "k={k}: classic {p:?} == alternate {q:?}");
                }
            }
            let m = eval_matrix(&alt, 2 * k - 1);
            assert!(!m.det_bareiss().is_zero(), "k={k}");
        }
    }

    #[test]
    fn alternate_tc3_starts_at_magnitude_k() {
        let pts = alternate_points(3);
        assert_eq!(
            pts,
            vec![
                HPoint::affine(3),
                HPoint::affine(-3),
                HPoint::affine(4),
                HPoint::affine(-4),
                HPoint::affine(5),
            ]
        );
    }

    #[test]
    fn unbalanced_point_counts() {
        assert_eq!(n_points(4).len(), 4); // Toom-Cook-(3,2)
        assert_eq!(n_points(6).len(), 6); // Toom-Cook-(4,3)
    }
}
