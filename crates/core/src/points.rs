//! Evaluation point sets for Toom-Cook-k (§2.2, Remark 2.2).
//!
//! The classic set for Toom-Cook-3 is `{0, 1, −1, 2, ∞}`; we generate the
//! same family for general `k`: `0, 1, −1, 2, −2, …` and finally `∞`,
//! written homogeneously (`∞ = (1 : 0)`) per Zanoni's notation so no
//! special-casing is needed anywhere downstream.

use ft_algebra::HPoint;

/// The classic `2k−1` evaluation points for Toom-Cook-`k`:
/// `0, 1, −1, 2, −2, …, ∞`.
///
/// # Panics
/// Panics if `k < 2`.
#[must_use]
pub fn classic_points(k: usize) -> Vec<HPoint> {
    n_points(2 * k - 1)
}

/// The first `n ≥ 3` points of the classic family (`0, 1, −1, 2, −2, …`
/// plus `∞` as the last point). Used directly for unbalanced
/// Toom-Cook-(k₁,k₂), which needs `k₁+k₂−1` points.
///
/// # Panics
/// Panics if `n < 3`.
#[must_use]
pub fn n_points(n: usize) -> Vec<HPoint> {
    assert!(n >= 3, "Toom-Cook needs at least 3 evaluation points");
    let mut pts = Vec::with_capacity(n);
    pts.push(HPoint::affine(0));
    let mut mag = 1i64;
    let mut positive = true;
    while pts.len() < n - 1 {
        pts.push(HPoint::affine(if positive { mag } else { -mag }));
        if !positive {
            mag += 1;
        }
        positive = !positive;
    }
    pts.push(HPoint::infinity());
    pts
}

/// Extend a point set with `f` fresh affine points from the classic family
/// (projectively distinct from all existing points) — the redundant
/// evaluation points of the polynomial code (§4.2).
#[must_use]
pub fn extend_points(base: &[HPoint], f: usize) -> Vec<HPoint> {
    let mut out = base.to_vec();
    let mut mag = 1i64;
    let mut positive = true;
    while out.len() < base.len() + f {
        let cand = HPoint::affine(if positive { mag } else { -mag });
        if !positive {
            mag += 1;
        }
        positive = !positive;
        if out.iter().all(|p| !p.proj_eq(&cand)) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_algebra::points::eval_matrix;

    #[test]
    fn classic_tc3_is_the_standard_set() {
        let pts = classic_points(3);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], HPoint::affine(0));
        assert_eq!(pts[1], HPoint::affine(1));
        assert_eq!(pts[2], HPoint::affine(-1));
        assert_eq!(pts[3], HPoint::affine(2));
        assert!(pts[4].is_infinity());
    }

    #[test]
    fn classic_tc2_is_karatsuba_points() {
        let pts = classic_points(2);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], HPoint::affine(0));
        assert_eq!(pts[1], HPoint::affine(1));
        assert!(pts[2].is_infinity());
    }

    #[test]
    fn all_small_k_sets_are_projectively_distinct_and_invertible() {
        for k in 2..=6 {
            let pts = classic_points(k);
            assert_eq!(pts.len(), 2 * k - 1);
            for i in 0..pts.len() {
                for j in 0..i {
                    assert!(!pts[i].proj_eq(&pts[j]), "k={k}: {i} vs {j}");
                }
            }
            // Interpolation Theorem 2.1: the product-width evaluation matrix
            // must be invertible.
            let m = eval_matrix(&pts, 2 * k - 1);
            assert!(!m.det_bareiss().is_zero(), "k={k}");
        }
    }

    #[test]
    fn extended_points_stay_distinct() {
        for k in [2usize, 3, 4] {
            for f in 1..=3 {
                let pts = extend_points(&classic_points(k), f);
                assert_eq!(pts.len(), 2 * k - 1 + f);
                for i in 0..pts.len() {
                    for j in 0..i {
                        assert!(!pts[i].proj_eq(&pts[j]), "k={k} f={f}");
                    }
                }
                // Any (2k−1)-subset interpolates (MDS-like property of
                // distinct univariate points).
                let m = eval_matrix(&pts, 2 * k - 1);
                ft_algebra::points::for_each_combination(pts.len(), 2 * k - 1, |rows| {
                    assert!(!m.select_rows(rows).det_bareiss().is_zero());
                    true
                });
            }
        }
    }

    #[test]
    fn unbalanced_point_counts() {
        assert_eq!(n_points(4).len(), 4); // Toom-Cook-(3,2)
        assert_eq!(n_points(6).len(), 6); // Toom-Cook-(4,3)
    }
}
