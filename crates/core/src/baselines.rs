//! General-purpose fault-tolerance baselines the paper compares against
//! (§1, §5.3): **replication** and **checkpoint-restart**.
//!
//! Replication (Theorem 5.3) runs `f+1` independent copies of Parallel
//! Toom-Cook (`f·P` *additional* processors): arithmetic and bandwidth are
//! multiplied by `f+1` in total (the per-copy critical path is unchanged,
//! `F' = F`), and any `f` faults are tolerated because at least one copy
//! finishes untouched. Input replication costs `(1+o(1))·BW`.
//!
//! Checkpoint-restart (diskless, peer-memory — cf. Plank et al.) has each
//! rank copy its state to a partner at every BFS boundary; a victim
//! restores from its partner. Cheap in processors (none extra) but the
//! checkpoint traffic is `Θ(M)` per rank per step — `Θ(P/(2k−1))`-fold
//! more total traffic than the paper's `f·(2k−1)`-processor linear code —
//! and a multiplication-phase fault still forces recomputation.

use crate::bilinear::ToomPlan;
use crate::parallel::{
    assemble_product, local_digit_slice, solve, tags, ParallelConfig, ParallelOutcome,
};
use ft_bigint::BigInt;
use ft_machine::{detection_round, DetectorConfig, Env, Fate, FaultPlan, Machine, MachineConfig};

/// Configuration of the replication baseline.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// The underlying parallel configuration.
    pub base: ParallelConfig,
    /// Number of tolerated faults `f` (runs `f+1` copies).
    pub f: usize,
}

impl ReplicationConfig {
    /// Total machine size `(f+1)·P`.
    #[must_use]
    pub fn processors(&self) -> usize {
        (self.f + 1) * self.base.processors()
    }

    /// Additional processors `f·P` (the Table 1/2 column).
    #[must_use]
    pub fn extra_processors(&self) -> usize {
        self.f * self.base.processors()
    }
}

/// Run the replication baseline. Faults may hit any rank at the standard
/// `bfs-*` / `leaf-mult` labels; the affected copies are discarded and the
/// result is taken from the first copy with no planned faults.
///
/// # Panics
/// Panics if every copy contains a victim (more than `f` copies hit).
#[must_use]
pub fn run_replicated(
    a: &BigInt,
    b: &BigInt,
    cfg: &ReplicationConfig,
    faults: FaultPlan,
) -> ParallelOutcome {
    let p = cfg.base.processors();
    let copies = cfg.f + 1;
    let total = cfg.processors();
    let n_bits = a.bit_length().max(b.bit_length()).max(1);
    let digits = cfg.base.digits_for(n_bits);
    let sign = a.sign().mul(b.sign());
    let (aa, bb) = (a.abs(), b.abs());

    // The surviving copy every rank agrees on (statically, from the plan).
    let clean_copy = (0..copies)
        .find(|c| !faults.specs().iter().any(|s| s.rank / p == *c))
        .expect("all replicas faulted — replication tolerance exceeded");

    let mut mcfg = MachineConfig::new(total).with_faults(faults);
    mcfg.cost = cfg.base.cost;
    mcfg.memory_limit = cfg.base.memory_limit;
    mcfg.trace = cfg.base.trace;
    let machine = Machine::new(mcfg);
    let _ = ToomPlan::shared(cfg.base.k); // pre-warm (cost accounting)

    let report = machine.run(|env| {
        let plan = ToomPlan::shared(cfg.base.k);
        let rank = env.rank();
        let copy = rank / p;
        let local = rank % p;
        let group: Vec<usize> = (copy * p..(copy + 1) * p).collect();

        // Input replication: copy 0 owns the distributed input and ships
        // each further copy its slice (the (1+o(1))·BW term).
        let (my_a, my_b) = if copy == 0 {
            let my_a = local_digit_slice(&aa, cfg.base.digit_bits, digits, local, p);
            let my_b = local_digit_slice(&bb, cfg.base.digit_bits, digits, local, p);
            for c in 1..copies {
                let mut payload = my_a.clone();
                payload.extend_from_slice(&my_b);
                env.send(c * p + local, tags::CODE + c as u64, &payload);
            }
            (my_a, my_b)
        } else {
            let mut payload = env.recv(local, tags::CODE + copy as u64);
            let my_b = payload.split_off(payload.len() / 2);
            (payload, my_b)
        };

        solve(env, &cfg.base, &plan, &group, my_a, my_b, digits, 0)
    });

    let clean_slices = &report.results[clean_copy * p..(clean_copy + 1) * p];
    let product = assemble_product(clean_slices, digits, cfg.base.digit_bits, sign, p);
    ParallelOutcome {
        product,
        report,
        digits,
    }
}

/// Configuration of the checkpoint-restart baseline.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// The underlying parallel configuration.
    pub base: ParallelConfig,
}

/// Run the checkpoint-restart baseline: at every BFS step entry each rank
/// checkpoints its `(a, b)` state to a partner (`rank + P/2 mod P`); a
/// victim planned at label `cr-{depth}` restores from the partner's copy.
/// Tolerates any faults where victim and partner are not hit at the same
/// boundary. No extra processors, but `Θ(M)` checkpoint words per rank per
/// step — the overhead Table 1/2 contrasts with coded approaches.
#[must_use]
pub fn run_checkpointed(
    a: &BigInt,
    b: &BigInt,
    cfg: &CheckpointConfig,
    faults: FaultPlan,
) -> ParallelOutcome {
    let p = cfg.base.processors();
    assert!(p >= 2, "checkpointing needs a partner rank");
    let n_bits = a.bit_length().max(b.bit_length()).max(1);
    let digits = cfg.base.digits_for(n_bits);
    let sign = a.sign().mul(b.sign());
    let (aa, bb) = (a.abs(), b.abs());
    let m = cfg.base.bfs_steps;
    let q = cfg.base.q();

    let mut mcfg = MachineConfig::new(p).with_faults(faults);
    mcfg.cost = cfg.base.cost;
    mcfg.memory_limit = cfg.base.memory_limit;
    mcfg.trace = cfg.base.trace;
    let machine = Machine::new(mcfg);

    assert!(
        cfg.base.dfs_steps == 0,
        "checkpoint baseline runs the BFS-only layout"
    );
    let report = machine.run(|env| {
        let plan = ToomPlan::shared(cfg.base.k);
        let rank = env.rank();
        // I checkpoint to `partner`; `ward` checkpoints to me.
        let partner = (rank + p / 2) % p;
        let ward = (rank + p - p / 2) % p;
        let group: Vec<usize> = (0..p).collect();
        let my_a = local_digit_slice(&aa, cfg.base.digit_bits, digits, rank, p);
        let my_b = local_digit_slice(&bb, cfg.base.digit_bits, digits, rank, p);

        // Recursive traversal with a checkpoint boundary at each BFS step.
        // We reuse the plain solver per *step* so the checkpoint can wrap
        // each level: implemented by checkpointing at depth 0..m entries
        // before calling into the stock solver for the remaining levels.
        // (Checkpoint depth granularity = BFS steps, like the coded runs.)
        checkpointed_solve(
            env,
            cfg,
            &plan,
            &group,
            my_a,
            my_b,
            digits,
            0,
            (partner, ward),
            m,
            q,
        )
    });

    let product = assemble_product(&report.results, digits, cfg.base.digit_bits, sign, p);
    ParallelOutcome {
        product,
        report,
        digits,
    }
}

/// One checkpoint boundary then one BFS level, recursively; below the BFS
/// levels, defers to the stock solver.
#[allow(clippy::too_many_arguments)]
fn checkpointed_solve(
    env: &Env,
    cfg: &CheckpointConfig,
    plan: &ToomPlan,
    group: &[usize],
    mut a: Vec<BigInt>,
    mut b: Vec<BigInt>,
    level_len: usize,
    depth: usize,
    partners: (usize, usize),
    m: usize,
    q: usize,
) -> Vec<BigInt> {
    if depth >= m {
        return solve(env, &cfg.base, plan, &[env.rank()], a, b, level_len, depth);
    }
    let (partner, ward) = partners;
    // --- Checkpoint to partner, restore victims.
    let alen = a.len();
    let mut state = a.clone();
    state.extend_from_slice(&b);
    let tag = tags::CODE + 1_000 + depth as u64;
    env.send(partner, tag, &state);
    let ward_ckpt = env.recv(ward, tag);
    let label = format!("cr-{depth}");
    if env.fault_point(&label) == Fate::Reborn {
        state.iter_mut().for_each(|x| *x = BigInt::zero());
        a.clear();
        b.clear();
    }
    // Every rank passes `cr-{depth}` exactly once per level, so one
    // MACHINE-WIDE heartbeat round yields the victim set without
    // consulting the plan. It must be machine-wide, not per recursion
    // subgroup: checkpoint partners are global (`rank ± P/2 mod P`), so a
    // partner in another subgroup has to learn about the victim too.
    let everyone: Vec<usize> = (0..env.size()).collect();
    let dtag = tags::DETECT + 1_000_000 + depth as u64 * 2;
    let verdict = detection_round(env, &everyone, dtag, &DetectorConfig::default());
    let victims: Vec<usize> = everyone
        .iter()
        .copied()
        .filter(|r| verdict.is_dead(*r))
        .collect();
    let rtag = tags::RECOVER + 1_000 + depth as u64;
    if victims.contains(&env.rank()) {
        // Restore from partner (my partner's partner is me iff P even; the
        // rank whose partner I am is (rank + p - p/2) % p — the one that
        // holds MY checkpoint is the one I sent to: `partner`).
        let mut restored = env.recv(partner, rtag);
        let bb = restored.split_off(alen);
        a = restored;
        b = bb;
        assert!(
            !victims.contains(&partner),
            "checkpoint-restart cannot recover victim+partner pairs"
        );
    }
    // If the rank that checkpoints *to me* is a victim, resend its state.
    if victims.contains(&ward) {
        env.send(ward, rtag, &ward_ckpt);
    }
    env.ack_recovery();
    drop(ward_ckpt);
    drop(state);

    // --- One stock BFS level, then recurse for the next checkpoint.
    one_bfs_level(
        env, cfg, plan, group, a, b, level_len, depth, partners, m, q,
    )
}

/// One BFS level of the stock algorithm with a recursive call back into
/// [`checkpointed_solve`] for the sub-problem.
#[allow(clippy::too_many_arguments)]
fn one_bfs_level(
    env: &Env,
    cfg: &CheckpointConfig,
    plan: &ToomPlan,
    group: &[usize],
    a: Vec<BigInt>,
    b: Vec<BigInt>,
    level_len: usize,
    depth: usize,
    partners: (usize, usize),
    m: usize,
    q: usize,
) -> Vec<BigInt> {
    use crate::lazy;
    use crate::parallel::{interp_slices, merge_residue_pieces, residue_subslice};
    let k = cfg.base.k;
    let g = group.len();
    let pos = group.iter().position(|&r| r == env.rank()).unwrap();
    let gp = g / q;
    let my_col = pos / gp.max(1);
    let row: Vec<usize> = (0..q).map(|j| group[j * gp + pos % gp.max(1)]).collect();

    let ea = lazy::eval_step(plan.eval_matrix(), &a, k);
    let eb = lazy::eval_step(plan.eval_matrix(), &b, k);
    drop(a);
    drop(b);
    for (t, &peer) in row.iter().enumerate() {
        if t == my_col {
            continue;
        }
        let mut payload = ea[t].clone();
        payload.extend_from_slice(&eb[t]);
        env.send(peer, tags::DOWN + depth as u64, &payload);
    }
    let lambda = level_len / k;
    let mut pieces_a: Vec<Vec<BigInt>> = vec![Vec::new(); q];
    let mut pieces_b: Vec<Vec<BigInt>> = vec![Vec::new(); q];
    for (t, &peer) in row.iter().enumerate() {
        let (pa, pb) = if peer == env.rank() {
            (ea[my_col].clone(), eb[my_col].clone())
        } else {
            let mut payload = env.recv(peer, tags::DOWN + depth as u64);
            let pb = payload.split_off(payload.len() / 2);
            (payload, pb)
        };
        pieces_a[t] = pa;
        pieces_b[t] = pb;
    }
    drop(ea);
    drop(eb);
    let next_a = merge_residue_pieces(&pieces_a, lambda.div_ceil(gp.max(1)));
    let next_b = merge_residue_pieces(&pieces_b, lambda.div_ceil(gp.max(1)));
    drop(pieces_a);
    drop(pieces_b);

    let next_group = &group[my_col * gp..(my_col + 1) * gp];
    let sub_prod = checkpointed_solve(
        env,
        cfg,
        plan,
        next_group,
        next_a,
        next_b,
        lambda,
        depth + 1,
        partners,
        m,
        q,
    );

    for (t, &peer) in row.iter().enumerate() {
        if t == my_col {
            continue;
        }
        env.send(
            peer,
            tags::UP + depth as u64,
            &residue_subslice(&sub_prod, q, t),
        );
    }
    let mut col_slices: Vec<Vec<BigInt>> = vec![Vec::new(); q];
    for (t, &peer) in row.iter().enumerate() {
        col_slices[t] = if peer == env.rank() {
            residue_subslice(&sub_prod, q, my_col)
        } else {
            env.recv(peer, tags::UP + depth as u64)
        };
    }
    drop(sub_prod);
    interp_slices(plan.interp_matrix(), &col_slices, lambda, level_len, pos, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_bits(&mut rng, bits),
            BigInt::random_bits(&mut rng, bits),
        )
    }

    #[test]
    fn replication_no_faults() {
        let (a, b) = random_pair(2000, 1);
        let cfg = ReplicationConfig {
            base: ParallelConfig::new(2, 1),
            f: 1,
        };
        assert_eq!(cfg.extra_processors(), 3);
        let out = run_replicated(&a, &b, &cfg, FaultPlan::none());
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn replication_survives_copy_fault() {
        let (a, b) = random_pair(2000, 2);
        let cfg = ReplicationConfig {
            base: ParallelConfig::new(2, 1),
            f: 1,
        };
        // Kill a rank in copy 0 during multiplication: result comes from
        // copy 1.
        let plan = FaultPlan::none().kill(1, "leaf-mult");
        let out = run_replicated(&a, &b, &cfg, plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn replication_survives_f_faults_in_different_copies_f2() {
        let (a, b) = random_pair(2000, 3);
        let cfg = ReplicationConfig {
            base: ParallelConfig::new(2, 1),
            f: 2,
        };
        let plan = FaultPlan::none()
            .kill(0, "leaf-mult") // copy 0
            .kill(4, "leaf-mult"); // copy 1 (ranks 3..6)
        let out = run_replicated(&a, &b, &cfg, plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
        assert_eq!(out.report.total_deaths(), 2);
    }

    #[test]
    #[should_panic(expected = "tolerance exceeded")]
    fn replication_fails_when_all_copies_hit() {
        let (a, b) = random_pair(1000, 4);
        let cfg = ReplicationConfig {
            base: ParallelConfig::new(2, 1),
            f: 1,
        };
        let plan = FaultPlan::none().kill(0, "leaf-mult").kill(3, "leaf-mult");
        let _ = run_replicated(&a, &b, &cfg, plan);
    }

    #[test]
    fn replication_total_work_is_f_plus_1_times() {
        let (a, b) = random_pair(20_000, 5);
        let base = ParallelConfig::new(3, 1);
        let plain = crate::parallel::run_parallel(&a, &b, &base);
        let cfg = ReplicationConfig { base, f: 2 };
        let repl = run_replicated(&a, &b, &cfg, FaultPlan::none());
        let ratio = repl.report.total_flops() as f64 / plain.report.total_flops() as f64;
        assert!(
            (2.5..3.5).contains(&ratio),
            "replication should triple total work, got {ratio}"
        );
    }

    #[test]
    fn checkpoint_no_faults() {
        let (a, b) = random_pair(2000, 6);
        let cfg = CheckpointConfig {
            base: ParallelConfig::new(2, 2),
        };
        let out = run_checkpointed(&a, &b, &cfg, FaultPlan::none());
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn checkpoint_recovers_boundary_fault() {
        let (a, b) = random_pair(2000, 7);
        let cfg = CheckpointConfig {
            base: ParallelConfig::new(2, 2),
        };
        for victim in [0usize, 3, 8] {
            let plan = FaultPlan::none().kill(victim, "cr-0");
            let out = run_checkpointed(&a, &b, &cfg, plan);
            assert_eq!(out.product, a.mul_schoolbook(&b), "victim={victim}");
        }
        let plan = FaultPlan::none().kill(2, "cr-1");
        let out = run_checkpointed(&a, &b, &cfg, plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn checkpoint_traffic_scales_with_state_not_with_f() {
        // The overhead motivating coded approaches: checkpoint words per
        // step ~ whole state.
        let (a, b) = random_pair(20_000, 8);
        let base = ParallelConfig::new(3, 1);
        let plain = crate::parallel::run_parallel(&a, &b, &base);
        let cfg = CheckpointConfig { base };
        let ck = run_checkpointed(&a, &b, &cfg, FaultPlan::none());
        assert!(ck.report.total_words() > plain.report.total_words());
    }
}
