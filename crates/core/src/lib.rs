//! # ft-toom-core — fault-tolerant parallel Toom-Cook integer multiplication
//!
//! The paper's contribution, implemented end to end:
//!
//! | Module | Paper | Contents |
//! |---|---|---|
//! | [`points`] | §2.2, Rem. 2.2 | classic homogeneous evaluation point sets |
//! | [`bilinear`] | §2.2, Alg. 1 | ⟨U,V,W⟩ bilinear forms; exact interpolation |
//! | [`seq`] | §2.2 | sequential schoolbook / Karatsuba / Toom-Cook-k / (k₁,k₂) |
//! | [`lazy`] | §2.3, Alg. 2 | lazy-interpolation digit-vector kernels |
//! | [`toomgraph`] | Def. 2.3 | inversion-sequence search + Bodrato TC-3 sequence |
//! | [`parallel`] | §3 | BFS-DFS parallel Toom-Cook on the simulated machine |
//! | [`ft`] | §4, §5.2, §6 | linear-coded, polynomial-coded, and combined fault tolerance |
//! | [`baselines`] | §5.3 | replication and checkpoint/recompute baselines |
//! | [`soft`] | §7 | soft-fault detection via redundant evaluations |
//! | [`residue`] | §7 (spirit) | O(n) word-residue (2^64 ± 1) spot-check of any product |
//! | [`cost`] | §5 | closed-form cost formulas (Theorems 5.1–5.3) |
//! | [`rayon_engine`] | practice | shared-memory parallel Toom-Cook for wall-clock benches |
//!
//! ## Quick start
//!
//! ```
//! use ft_bigint::BigInt;
//! use ft_toom_core::seq;
//!
//! let a: BigInt = "123456789123456789123456789123456789".parse().unwrap();
//! let b: BigInt = "-987654321987654321987654321".parse().unwrap();
//! let product = seq::toom_k(&a, &b, 3); // Toom-Cook-3
//! assert_eq!(product, a.mul_schoolbook(&b));
//! ```

pub mod apps;
pub mod baselines;
pub mod bilinear;
pub mod cost;
pub mod ft;
pub mod lazy;
pub mod parallel;
pub mod points;
pub mod rayon_engine;
pub mod residue;
pub mod seq;
pub mod soft;
pub mod toomgraph;

pub use bilinear::ToomPlan;
