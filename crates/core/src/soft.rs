//! Soft-fault extension (§7: "Our algorithm can easily be adapted for soft
//! faults").
//!
//! A *soft* fault silently corrupts a processor's output instead of killing
//! it. The same redundant evaluation points that absorb hard faults give
//! **detection and correction**: with `f` redundant points there are
//! `2k−1+f` point-products of a degree-`2k−2` product polynomial, i.e. a
//! codeword of an MDS code with `f` parity symbols — up to `⌊f/2⌋`
//! corruptions are correctable, and up to `f` are detectable.
//!
//! [`verify_products`] checks consistency: interpolate from the first
//! `2k−1` products and test that the remaining evaluations match.
//! [`correct_products`] locates up to `⌊f/2⌋` corrupted products by subset
//! search (feasible for the small `2k−1+f` involved) and repairs them.
//! [`toom_soft_verified`] wraps a sequential Toom-Cook step with an
//! optional corruption injector and end-to-end verification.

use crate::bilinear::interpolation_from_survivors;
use crate::points::{classic_points, extend_points};
use ft_algebra::points::{eval_matrix, for_each_combination};
use ft_algebra::HPoint;
use ft_bigint::BigInt;

/// Outcome of a soft-fault check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoftCheck {
    /// All `2k−1+f` evaluations are consistent.
    Consistent,
    /// Inconsistency detected but not locatable within the correction
    /// radius.
    Detected,
    /// Corrupted product indices, located and corrected.
    Corrected(Vec<usize>),
}

/// Check that the extended product vector is a consistent evaluation of a
/// single degree-`2k−2` polynomial: interpolate from `reference` (any
/// `2k−1` indices) and verify every other product.
#[must_use]
pub fn verify_products(products: &[BigInt], points: &[HPoint], k: usize) -> bool {
    let width = 2 * k - 1;
    assert!(products.len() >= width);
    assert_eq!(products.len(), points.len());
    let base: Vec<usize> = (0..width).collect();
    let interp = interpolation_from_survivors(points, &base, width);
    let chosen: Vec<BigInt> = base.iter().map(|&i| products[i].clone()).collect();
    // A corrupted product typically makes interpolation non-integral —
    // that alone is an inconsistency; otherwise re-evaluate and compare.
    match interp.checked_apply(&chosen) {
        Err(_) => false,
        Ok(coeffs) => {
            let eval = eval_matrix(points, width);
            let re = eval.matvec(&coeffs);
            re == products
        }
    }
}

/// Locate and correct up to `⌊f/2⌋` corrupted products. Returns the
/// corrected vector and what happened. Subset search: find a set of
/// `2k−1 + ⌈f/2⌉` mutually consistent products — unique when at most
/// `⌊f/2⌋` are corrupted — and re-derive the rest.
#[must_use]
pub fn correct_products(
    products: &[BigInt],
    points: &[HPoint],
    k: usize,
) -> (Vec<BigInt>, SoftCheck) {
    let width = 2 * k - 1;
    let n = products.len();
    let f = n - width;
    if verify_products(products, points, k) {
        return (products.to_vec(), SoftCheck::Consistent);
    }
    // A consensus set must out-vote the corrupted minority.
    let need = width + f.div_ceil(2);
    if need > n {
        return (products.to_vec(), SoftCheck::Detected);
    }
    let eval = eval_matrix(points, width);
    let mut found: Option<Vec<BigInt>> = None;
    for_each_combination(n, need, |subset| {
        // Interpolate from the first `width` of the subset, check the rest
        // of the subset for consistency.
        let base: Vec<usize> = subset[..width].to_vec();
        let interp = interpolation_from_survivors(points, &base, width);
        let chosen: Vec<BigInt> = base.iter().map(|&i| products[i].clone()).collect();
        let Ok(coeffs) = interp.checked_apply(&chosen) else {
            return true; // corrupted subset — keep searching
        };
        let re = eval.matvec(&coeffs);
        let consistent = subset.iter().all(|&i| re[i] == products[i]);
        if consistent {
            found = Some(re);
            false // stop search
        } else {
            true
        }
    });
    match found {
        Some(re) => {
            let bad: Vec<usize> = (0..n).filter(|&i| re[i] != products[i]).collect();
            if bad.len() <= f / 2 {
                (re, SoftCheck::Corrected(bad))
            } else {
                (products.to_vec(), SoftCheck::Detected)
            }
        }
        None => (products.to_vec(), SoftCheck::Detected),
    }
}

/// One Toom-Cook-`k` multiplication step with `f` redundant evaluations and
/// soft-fault verification. `corrupt` optionally flips product `idx` by
/// `delta` (simulating a miscalculating processor). Returns the product and
/// the check outcome; the product is correct whenever the outcome is not
/// [`SoftCheck::Detected`].
#[must_use]
pub fn toom_soft_verified(
    a: &BigInt,
    b: &BigInt,
    k: usize,
    f: usize,
    corrupt: &[(usize, i64)],
) -> (BigInt, SoftCheck) {
    let sign = a.sign().mul(b.sign());
    if sign == ft_bigint::Sign::Zero {
        return (BigInt::zero(), SoftCheck::Consistent);
    }
    let (a, b) = (a.abs(), b.abs());
    let width = 2 * k - 1;
    let points = extend_points(&classic_points(k), f);
    let w = BigInt::shared_digit_width(&a, &b, k);
    let da = a.split_base_pow2(w, k);
    let db = b.split_base_pow2(w, k);
    let u = eval_matrix(&points, k);
    let ea = u.matvec(&da);
    let eb = u.matvec(&db);
    let mut prods: Vec<BigInt> = ea.iter().zip(&eb).map(|(x, y)| x * y).collect();
    for &(idx, delta) in corrupt {
        prods[idx] += &BigInt::from(delta);
    }
    let (fixed, outcome) = correct_products(&prods, &points, k);
    let base: Vec<usize> = (0..width).collect();
    let interp = interpolation_from_survivors(&points, &base, width);
    // After correction (or in the Detected case, best-effort on the
    // original data) interpolate from the first 2k−1 products; fall back
    // to rational-cleared division failure only in the Detected case.
    let coeffs = match interp.checked_apply(&fixed[..width]) {
        Ok(c) => c,
        Err(_) => return (BigInt::zero(), SoftCheck::Detected),
    };
    let mag = BigInt::join_base_pow2(&coeffs, w);
    let product = if sign == ft_bigint::Sign::Negative {
        -mag
    } else {
        mag
    };
    (product, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_bits(&mut rng, bits),
            BigInt::random_bits(&mut rng, bits),
        )
    }

    #[test]
    fn clean_run_is_consistent() {
        let (a, b) = random_pair(500, 1);
        let (prod, check) = toom_soft_verified(&a, &b, 3, 2, &[]);
        assert_eq!(check, SoftCheck::Consistent);
        assert_eq!(prod, a.mul_schoolbook(&b));
    }

    #[test]
    fn single_corruption_detected_with_f1() {
        // f = 1 can detect but not correct.
        let (a, b) = random_pair(500, 2);
        let (_, check) = toom_soft_verified(&a, &b, 3, 1, &[(2, 12345)]);
        assert_eq!(check, SoftCheck::Detected);
    }

    #[test]
    fn single_corruption_corrected_with_f2() {
        let (a, b) = random_pair(500, 3);
        for idx in 0..7 {
            let (prod, check) = toom_soft_verified(&a, &b, 3, 2, &[(idx, -999)]);
            assert_eq!(check, SoftCheck::Corrected(vec![idx]), "idx={idx}");
            assert_eq!(prod, a.mul_schoolbook(&b), "idx={idx}");
        }
    }

    #[test]
    fn double_corruption_corrected_with_f4() {
        let (a, b) = random_pair(400, 4);
        let (prod, check) = toom_soft_verified(&a, &b, 2, 4, &[(1, 7), (5, -3)]);
        assert_eq!(check, SoftCheck::Corrected(vec![1, 5]));
        assert_eq!(prod, a.mul_schoolbook(&b));
    }

    #[test]
    fn verify_accepts_clean_vectors() {
        let points = extend_points(&classic_points(2), 2);
        let coeffs: Vec<BigInt> = [3i64, -1, 4].iter().map(|&v| BigInt::from(v)).collect();
        let prods = eval_matrix(&points, 3).matvec(&coeffs);
        assert!(verify_products(&prods, &points, 2));
        let mut bad = prods.clone();
        bad[4] += &BigInt::one();
        assert!(!verify_products(&bad, &points, 2));
    }

    #[test]
    fn zero_input_short_circuits() {
        let (a, _) = random_pair(100, 5);
        let (p, c) = toom_soft_verified(&BigInt::zero(), &a, 3, 2, &[]);
        assert!(p.is_zero());
        assert_eq!(c, SoftCheck::Consistent);
    }
}
