//! The headline fault-tolerant algorithm (§5.2, Theorem 5.2): **linear
//! coding for the evaluation and interpolation phases, polynomial coding
//! for the multiplication phase**.
//!
//! - `f·(2k−1)` code-row processors protect every BFS step's linear phases
//!   exactly as in [`crate::ft::linear`] (on-the-fly decode, no
//!   recomputation);
//! - `f` extra processors compute redundant multivariate leaf products
//!   exactly as in [`crate::ft::multistep`], so a fault *during
//!   multiplication* is repaired by a weighted combination of surviving
//!   leaf products — eliminating the recomputation that a linear-only
//!   scheme needs there.
//!
//! Additional processors: `f·(2k−1) + f`. Overheads stay `(1 + o(1))` in
//! `F`, `BW`, and `L` (Theorem 5.2) — the Table 1/2 experiments measure
//! exactly this.
//!
//! Fault labels: the linear labels (`lin-entry-{d}`, `lin-eval-{d}`,
//! `lin-up-{d}`) for eval/interp-phase faults, `leaf-mult` for
//! multiplication-phase faults on data ranks, and `ms-extra-mult` for the
//! extra ranks.

use crate::bilinear::ToomPlan;
use crate::ft::linear::{solve_ft, Ctx, LeafMode, LinearFtConfig, Role};
use crate::ft::multistep::{leaf_recovery, redundant_eval_slice, MultistepConfig};
use crate::lazy;
use crate::parallel::{assemble_product, local_digit_slice, tags, ParallelConfig, ParallelOutcome};
use ft_algebra::points::eval_matrix_multi;
use ft_bigint::BigInt;
use ft_codes::ErasureCode;
use ft_machine::{
    detection_round, DetectorConfig, Env, Fate, FaultPlan, Machine, MachineConfig, ToomGrid,
};

/// Configuration of the combined algorithm.
#[derive(Debug, Clone)]
pub struct CombinedConfig {
    /// The underlying parallel configuration (`dfs_steps` must be 0).
    pub base: ParallelConfig,
    /// Fault tolerance `f`.
    pub f: usize,
    /// Coordinate bound for the §6.2 redundant-point search.
    pub search_bound: i64,
}

impl CombinedConfig {
    /// Build with the default search bound.
    #[must_use]
    pub fn new(base: ParallelConfig, f: usize) -> CombinedConfig {
        CombinedConfig {
            base,
            f,
            search_bound: 6,
        }
    }

    /// Total machine size: `P + f·(2k−1) + f`.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.base.processors() + self.extra_processors()
    }

    /// Additional processors: `f·(2k−1)` linear code ranks + `f` redundant
    /// leaf ranks.
    #[must_use]
    pub fn extra_processors(&self) -> usize {
        self.f * self.base.q() + self.f
    }

    /// Machine rank of redundant-leaf processor `x` (`x < f`).
    #[must_use]
    pub fn extra_rank(&self, x: usize) -> usize {
        self.base.processors() + self.f * self.base.q() + x
    }
}

/// Run the combined fault-tolerant parallel Toom-Cook.
#[must_use]
pub fn run_combined_ft(
    a: &BigInt,
    b: &BigInt,
    cfg: &CombinedConfig,
    faults: FaultPlan,
) -> ParallelOutcome {
    assert!(
        cfg.base.dfs_steps == 0,
        "combined coding runs the unlimited-memory layout"
    );
    assert!(cfg.base.bfs_steps >= 1);
    let p = cfg.base.processors();
    let q = cfg.base.q();
    let k = cfg.base.k;
    let m = cfg.base.bfs_steps;
    let total = cfg.processors();
    let n_bits = a.bit_length().max(b.bit_length()).max(1);
    let digits = cfg.base.digits_for(n_bits);
    let sign = a.sign().mul(b.sign());
    let (aa, bb) = (a.abs(), b.abs());

    // Multistep geometry for the multiplication-phase code.
    let ms = MultistepConfig {
        base: cfg.base.clone(),
        f: cfg.f,
        search_bound: cfg.search_bound,
    };
    let points = ms.all_points();
    let eval = eval_matrix_multi(&points, q, m);
    let leaf_len = digits / k.pow(m as u32);
    let prod_len = 2 * leaf_len - 1;

    // Leaf index space: 0..P are standard leaves (rank == leaf), P..P+f
    // are the extra leaves. Leaf victims are detected, not read from the
    // plan: all leaf holders (data + extra ranks, not the linear code
    // rows) run one heartbeat round right after their multiplication-phase
    // fault point. A data rank that died at a *linear* boundary was
    // recovered and acknowledged there, so it carries no lag here.
    let leaf_to_rank = |l: usize| if l < p { l } else { cfg.extra_rank(l - p) };
    let leaf_detect_tag = tags::DETECT + 5_000_000; // past the linear kinds
    let detect_leaves = |env: &Env| -> (Vec<usize>, Vec<usize>) {
        let holders: Vec<usize> = (0..p + cfg.f).map(leaf_to_rank).collect();
        let verdict = detection_round(env, &holders, leaf_detect_tag, &DetectorConfig::default());
        let leaf_victims: Vec<usize> = (0..p + cfg.f)
            .filter(|&l| verdict.is_dead(leaf_to_rank(l)))
            .collect();
        assert!(
            leaf_victims.len() <= cfg.f,
            "more leaf victims than redundancy f"
        );
        let chosen: Vec<usize> = (0..p + cfg.f)
            .filter(|l| !leaf_victims.contains(l))
            .take(p)
            .collect();
        (leaf_victims, chosen)
    };

    // Linear-code context (reuses the §4.1 machinery verbatim).
    let lin_cfg = LinearFtConfig {
        base: cfg.base.clone(),
        f: cfg.f,
    };

    let mut mcfg = MachineConfig::new(total).with_faults(faults);
    mcfg.cost = cfg.base.cost;
    mcfg.memory_limit = cfg.base.memory_limit;
    mcfg.trace = cfg.base.trace;
    let machine = Machine::new(mcfg);
    let _ = ToomPlan::shared(k); // pre-warm (cost accounting)

    let report = machine.run(|env| {
        let ctx = Ctx {
            cfg: &lin_cfg,
            grid: ToomGrid::new(p, q),
            plan: ToomPlan::shared(k),
            code: ErasureCode::new(p / q, cfg.f),
            detector: DetectorConfig::default(),
        };
        let rank = env.rank();
        if rank < p {
            // Data rank: feed the redundant leaves, then run the
            // linear-coded traversal with the poly-coded leaf hook.
            let my_a = local_digit_slice(&aa, cfg.base.digit_bits, digits, rank, p);
            let my_b = local_digit_slice(&bb, cfg.base.digit_bits, digits, rank, p);
            for (x, z) in points[p..].iter().enumerate() {
                let mut payload = redundant_eval_slice(&my_a, z, k, m, leaf_len, rank, p);
                payload.extend(redundant_eval_slice(&my_b, z, k, m, leaf_len, rank, p));
                env.send(cfg.extra_rank(x), tags::REDUNDANT + x as u64, &payload);
            }
            let hook = |env: &Env, mut prod: Vec<BigInt>| {
                let (leaf_victims, chosen) = detect_leaves(env);
                leaf_recovery(
                    env,
                    &eval,
                    &leaf_victims,
                    &chosen,
                    &mut prod,
                    prod_len,
                    &leaf_to_rank,
                );
                env.ack_recovery();
                prod
            };
            solve_ft(
                env,
                &ctx,
                Role::Data,
                my_a,
                my_b,
                digits,
                0,
                &LeafMode::Hook(&hook),
            )
        } else if rank < p + cfg.f * q {
            // Linear code rank.
            let idx = rank - p;
            let role = Role::Code {
                row: idx / q,
                col: idx % q,
            };
            let len = digits / p;
            let hook = |_: &Env, prod: Vec<BigInt>| prod;
            solve_ft(
                env,
                &ctx,
                role,
                vec![BigInt::zero(); len],
                vec![BigInt::zero(); len],
                digits,
                0,
                &LeafMode::Hook(&hook),
            )
        } else {
            // Redundant leaf rank (multistep extra).
            let x = rank - cfg.extra_rank(0);
            let mut va = vec![BigInt::zero(); leaf_len];
            let mut vb = vec![BigInt::zero(); leaf_len];
            for src in 0..p {
                let mut payload = env.recv(src, tags::REDUNDANT + x as u64);
                let half = payload.split_off(payload.len() / 2);
                for (i, v) in payload.into_iter().enumerate() {
                    va[i * p + src] = v;
                }
                for (i, v) in half.into_iter().enumerate() {
                    vb[i * p + src] = v;
                }
            }
            let (va, vb) = if env.fault_point("ms-extra-mult") == Fate::Reborn {
                (
                    vec![BigInt::zero(); leaf_len],
                    vec![BigInt::zero(); leaf_len],
                )
            } else {
                (va, vb)
            };
            let mut prod = lazy::poly_mul_toom(&va, &vb, &ctx.plan, 1);
            let (leaf_victims, chosen) = detect_leaves(env);
            leaf_recovery(
                env,
                &eval,
                &leaf_victims,
                &chosen,
                &mut prod,
                prod_len,
                &leaf_to_rank,
            );
            env.ack_recovery();
            Vec::new()
        }
    });

    let product = assemble_product(&report.results[..p], digits, cfg.base.digit_bits, sign, p);
    ParallelOutcome {
        product,
        report,
        digits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_bits(&mut rng, bits),
            BigInt::random_bits(&mut rng, bits),
        )
    }

    fn cfg(k: usize, m: usize, f: usize) -> CombinedConfig {
        CombinedConfig::new(ParallelConfig::new(k, m), f)
    }

    #[test]
    fn processor_accounting() {
        let c = cfg(3, 2, 2);
        assert_eq!(c.extra_processors(), 2 * 5 + 2);
        assert_eq!(c.processors(), 25 + 12);
    }

    #[test]
    fn no_faults_still_correct() {
        let (a, b) = random_pair(2500, 1);
        let out = run_combined_ft(&a, &b, &cfg(2, 1, 1), FaultPlan::none());
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn eval_phase_fault_uses_linear_code() {
        let (a, b) = random_pair(2500, 2);
        let plan = FaultPlan::none().kill(1, "lin-eval-0");
        let out = run_combined_ft(&a, &b, &cfg(2, 1, 1), plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
        assert_eq!(out.report.total_deaths(), 1);
    }

    #[test]
    fn mult_phase_fault_uses_polynomial_code() {
        let (a, b) = random_pair(2500, 3);
        let plan = FaultPlan::none().kill(2, "leaf-mult");
        let out = run_combined_ft(&a, &b, &cfg(2, 1, 1), plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
        assert_eq!(out.report.total_deaths(), 1);
    }

    #[test]
    fn interp_phase_fault_uses_linear_code() {
        let (a, b) = random_pair(2500, 4);
        let plan = FaultPlan::none().kill(0, "lin-up-0");
        let out = run_combined_ft(&a, &b, &cfg(2, 1, 1), plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn faults_in_both_phase_families() {
        // One eval-phase fault (linear recovery) and one mult-phase fault
        // (polynomial recovery) in the same run, f = 2.
        let (a, b) = random_pair(3000, 5);
        let plan = FaultPlan::none()
            .kill(3, "lin-entry-0")
            .kill(7, "leaf-mult");
        let out = run_combined_ft(&a, &b, &cfg(2, 2, 2), plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
        assert_eq!(out.report.total_deaths(), 2);
    }

    #[test]
    fn two_steps_mult_fault() {
        let (a, b) = random_pair(3000, 6);
        let plan = FaultPlan::none().kill(4, "leaf-mult");
        let out = run_combined_ft(&a, &b, &cfg(2, 2, 1), plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn tc3_each_leaf_survivable() {
        let (a, b) = random_pair(3500, 7);
        for victim in 0..5 {
            let plan = FaultPlan::none().kill(victim, "leaf-mult");
            let out = run_combined_ft(&a, &b, &cfg(3, 1, 1), plan);
            assert_eq!(out.product, a.mul_schoolbook(&b), "victim={victim}");
        }
    }

    #[test]
    fn extra_rank_fault_tolerated() {
        let (a, b) = random_pair(2500, 8);
        let c = cfg(2, 1, 1);
        let plan = FaultPlan::none().kill(c.extra_rank(0), "ms-extra-mult");
        let out = run_combined_ft(&a, &b, &c, plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }
}
