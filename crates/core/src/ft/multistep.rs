//! Multi-step traversal polynomial coding (§4.3, §6, Figure 3).
//!
//! All `m` BFS steps are combined into one traversal: the `P = (2k−1)^m`
//! leaf sub-problems correspond to the multivariate evaluation points
//! `S^m` (Claim 2.1), and the polynomial code adds `f` **redundant
//! multivariate points** in `(2k−1, m)`-general position (Definition 6.1),
//! found with the §6.2 heuristic over small integer points (Claim 6.5
//! guarantees they exist). Each redundant point costs only **one** extra
//! processor — `f·P/(2k−1)^l` of Figure 3 with `l = m` — realizing the
//! paper's unlimited-memory note in Theorem 5.2 ("reduces the number of
//! additional processors to `f`").
//!
//! Mechanics:
//!
//! - every data rank contributes its locally-owned digit terms of the
//!   redundant evaluations `v_{a,z}, v_{b,z}` (pure local arithmetic plus
//!   one slice message per redundant point — `O(f·n/P)` overhead);
//! - each extra rank assembles its evaluations and computes its leaf
//!   product alongside the standard leaves;
//! - a leaf lost to a `leaf-mult` fault is reconstructed as a rational
//!   combination of any `P` surviving leaf products (standard or
//!   redundant): `P_dead = E_dead · E_chosen⁻¹ · P_chosen`, executed as a
//!   weighted reduce with exact scaled-integer weights. **No
//!   recomputation** — this is precisely the cost the paper's code saves
//!   versus linear-coding-only schemes;
//! - the standard BFS up-phase then proceeds unchanged.

use crate::bilinear::ToomPlan;
use crate::lazy;
use crate::parallel::{
    assemble_product, local_digit_slice, slice_words, solve_with_leaf_hook, tags, ParallelConfig,
    ParallelOutcome,
};
use crate::points::classic_points;
use ft_algebra::points::{eval_matrix_multi, find_redundant_points};
use ft_algebra::{MPoint, Matrix, Rational};
use ft_bigint::BigInt;
use ft_machine::collectives::weighted_reduce_external;
use ft_machine::{detection_round, DetectorConfig, Env, Fate, FaultPlan, Machine, MachineConfig};

/// Configuration for the multistep-coded run.
#[derive(Debug, Clone)]
pub struct MultistepConfig {
    /// The underlying parallel configuration (`dfs_steps` must be 0).
    pub base: ParallelConfig,
    /// Number of tolerated leaf faults `f` (= redundant points = extra
    /// processors).
    pub f: usize,
    /// Coordinate bound for the redundant-point search (§6.2 heuristic).
    pub search_bound: i64,
}

impl MultistepConfig {
    /// Default search bound.
    #[must_use]
    pub fn new(base: ParallelConfig, f: usize) -> MultistepConfig {
        MultistepConfig {
            base,
            f,
            search_bound: 6,
        }
    }

    /// Total machine size: `P` data ranks + `f` extra ranks.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.base.processors() + self.f
    }

    /// Additional processors: exactly `f` (Figure 3 with `l = m`).
    #[must_use]
    pub fn extra_processors(&self) -> usize {
        self.f
    }

    /// The multivariate evaluation point of each leaf: rank `r`'s leaf is
    /// the evaluation at `(S[digit_0(r)], …, S[digit_{m−1}(r)])`, where
    /// `digit_v` reads `r` in base `2k−1`, most significant first.
    #[must_use]
    pub fn leaf_points(&self) -> Vec<MPoint> {
        let q = self.base.q();
        let m = self.base.bfs_steps;
        let s = classic_points(self.base.k);
        (0..self.base.processors())
            .map(|r| {
                let coords = (0..m)
                    .map(|v| s[(r / q.pow((m - 1 - v) as u32)) % q])
                    .collect();
                MPoint::new(coords)
            })
            .collect()
    }

    /// Leaf points plus the `f` redundant points from the §6.2 heuristic.
    #[must_use]
    pub fn all_points(&self) -> Vec<MPoint> {
        let mut pts = self.leaf_points();
        let extra = find_redundant_points(
            &pts,
            self.base.q(),
            self.base.bfs_steps,
            self.f,
            self.search_bound,
        );
        pts.extend(extra);
        pts
    }
}

/// The recovery weights for one dead leaf: `E_dead · E_chosen⁻¹` as exact
/// rationals over the chosen surviving leaves.
fn leaf_recovery_weights(eval: &Matrix<BigInt>, chosen: &[usize], dead: usize) -> Vec<Rational> {
    let e_chosen = eval.select_rows(chosen).to_rational();
    let inv = e_chosen
        .inverse()
        .expect("chosen leaves are in general position");
    let dead_row: Vec<Rational> = (0..eval.cols())
        .map(|j| Rational::from_int(eval[(dead, j)].clone()))
        .collect();
    // w = dead_row · inv  (row vector times matrix).
    (0..inv.cols())
        .map(|c| {
            let mut acc = Rational::zero();
            for (j, d) in dead_row.iter().enumerate() {
                acc = &acc + &(d * &inv[(j, c)]);
            }
            acc
        })
        .collect()
}

/// Reconstruct dead leaf products (shared by data victims, survivors, and
/// extra ranks): for each victim, a weighted reduce of the chosen surviving
/// leaf products with exact scaled-integer weights.
#[allow(clippy::too_many_arguments)]
pub(crate) fn leaf_recovery(
    env: &Env,
    eval: &Matrix<BigInt>,
    victims: &[usize],
    chosen: &[usize],
    my_prod: &mut Vec<BigInt>,
    prod_len: usize,
    leaf_to_rank: &dyn Fn(usize) -> usize,
) {
    // `victims` and `chosen` are leaf indices; translate to machine ranks.
    let sources: Vec<usize> = chosen.iter().map(|&l| leaf_to_rank(l)).collect();
    for &victim_leaf in victims {
        let victim = leaf_to_rank(victim_leaf);
        let am_source = sources.contains(&env.rank());
        let am_victim = env.rank() == victim;
        if !am_source && !am_victim {
            continue;
        }
        let weights = leaf_recovery_weights(eval, chosen, victim_leaf);
        let mut delta = BigInt::one();
        for w in &weights {
            delta = delta.lcm(w.denom());
        }
        let int_weights: Vec<BigInt> = weights
            .iter()
            .map(|w| w.numer() * &delta.div_exact(w.denom()))
            .collect();
        let tag = tags::RECOVER + victim_leaf as u64;
        if am_victim {
            let summed = weighted_reduce_external(
                env,
                &sources,
                victim,
                None,
                prod_len,
                &|pos| int_weights[pos].clone(),
                tag,
            )
            .expect("victim receives recovered leaf product");
            *my_prod = summed.into_iter().map(|x| x.div_exact(&delta)).collect();
        } else {
            let _ = weighted_reduce_external(
                env,
                &sources,
                victim,
                Some(&my_prod[..]),
                prod_len,
                &|pos| int_weights[pos].clone(),
                tag,
            );
        }
    }
}

/// Run multistep-coded fault-tolerant parallel Toom-Cook. Inject faults at
/// `leaf-mult` (standard leaves, ranks `< P`) or `ms-extra-mult` (extra
/// ranks); at most `f` victims in total.
#[must_use]
pub fn run_multistep_ft(
    a: &BigInt,
    b: &BigInt,
    cfg: &MultistepConfig,
    faults: FaultPlan,
) -> ParallelOutcome {
    assert!(
        cfg.base.dfs_steps == 0,
        "multistep coding combines all BFS steps"
    );
    assert!(
        cfg.base.bfs_steps >= 1,
        "multistep coding needs at least one BFS step"
    );
    let p = cfg.base.processors();
    let k = cfg.base.k;
    let m = cfg.base.bfs_steps;
    let total = cfg.processors();
    let n_bits = a.bit_length().max(b.bit_length()).max(1);
    let digits = cfg.base.digits_for(n_bits);
    let sign = a.sign().mul(b.sign());
    let (aa, bb) = (a.abs(), b.abs());

    // Evaluation geometry, shared by all ranks (computed once, outside the
    // cost measurement — it depends only on (k, m, f), not on the input).
    let points = cfg.all_points();
    let eval = eval_matrix_multi(&points, cfg.base.q(), m);
    let leaf_len = digits / k.pow(m as u32);
    let prod_len = 2 * leaf_len - 1;

    let mut mcfg = MachineConfig::new(total).with_faults(faults);
    mcfg.cost = cfg.base.cost;
    mcfg.memory_limit = cfg.base.memory_limit;
    mcfg.trace = cfg.base.trace;
    let machine = Machine::new(mcfg);
    let _ = ToomPlan::shared(k); // pre-warm (cost accounting)

    let report = machine.run(|env| {
        let plan = ToomPlan::shared(k);
        let rank = env.rank();
        // Victim set from the detector: one global heartbeat round after
        // every rank's multiplication-phase fault point (the leaf hook for
        // data ranks, `ms-extra-mult` for extras). Every rank derives the
        // identical verdict, so the chosen surviving leaves agree without
        // any plan query.
        let detect = |env: &Env| -> (Vec<usize>, Vec<usize>) {
            let everyone: Vec<usize> = (0..total).collect();
            let verdict = detection_round(env, &everyone, tags::DETECT, &DetectorConfig::default());
            let victims: Vec<usize> = everyone
                .iter()
                .copied()
                .filter(|r| verdict.is_dead(*r))
                .collect();
            assert!(victims.len() <= cfg.f, "more victims than redundancy f");
            let chosen: Vec<usize> = (0..total)
                .filter(|r| !verdict.is_dead(*r))
                .take(p)
                .collect();
            (victims, chosen)
        };
        if rank < p {
            // ---- Data rank: contribute to redundant evaluations, then run
            // the standard BFS traversal with the recovery leaf hook.
            let my_a = local_digit_slice(&aa, cfg.base.digit_bits, digits, rank, p);
            let my_b = local_digit_slice(&bb, cfg.base.digit_bits, digits, rank, p);
            env.note_memory(slice_words(&[&my_a, &my_b]));
            for (x, z) in points[p..].iter().enumerate() {
                let extra_rank = p + x;
                let mut payload = redundant_eval_slice(&my_a, z, k, m, leaf_len, rank, p);
                payload.extend(redundant_eval_slice(&my_b, z, k, m, leaf_len, rank, p));
                env.send(extra_rank, tags::REDUNDANT + x as u64, &payload);
            }
            let hook = |env: &Env, mut prod: Vec<BigInt>| {
                let (victims, chosen) = detect(env);
                leaf_recovery(env, &eval, &victims, &chosen, &mut prod, prod_len, &|l| l);
                env.ack_recovery();
                prod
            };
            let group: Vec<usize> = (0..p).collect();
            solve_with_leaf_hook(
                env,
                &cfg.base,
                &plan,
                &group,
                my_a,
                my_b,
                digits,
                0,
                Some(&hook),
            )
        } else {
            // ---- Extra rank: assemble my redundant evaluations, multiply,
            // then serve as a recovery source.
            let x = rank - p;
            let mut va = vec![BigInt::zero(); leaf_len];
            let mut vb = vec![BigInt::zero(); leaf_len];
            for src in 0..p {
                let mut payload = env.recv(src, tags::REDUNDANT + x as u64);
                let half = payload.split_off(payload.len() / 2);
                for (i, v) in payload.into_iter().enumerate() {
                    va[i * p + src] = v;
                }
                for (i, v) in half.into_iter().enumerate() {
                    vb[i * p + src] = v;
                }
            }
            env.note_memory(slice_words(&[&va, &vb]));
            let (va, vb) = if env.fault_point("ms-extra-mult") == Fate::Reborn {
                (
                    vec![BigInt::zero(); leaf_len],
                    vec![BigInt::zero(); leaf_len],
                )
            } else {
                (va, vb)
            };
            let mut prod = lazy::poly_mul_toom(&va, &vb, &plan, 1);
            let (victims, chosen) = detect(env);
            leaf_recovery(env, &eval, &victims, &chosen, &mut prod, prod_len, &|l| l);
            env.ack_recovery();
            Vec::new() // extra ranks hold no share of the final output
        }
    });

    let product = assemble_product(&report.results[..p], digits, cfg.base.digit_bits, sign, p);
    ParallelOutcome {
        product,
        report,
        digits,
    }
}

/// This rank's contribution to the redundant evaluation `v_z`: for each
/// owned leaf offset `r ≡ rank (mod P)`, the full sum
/// `Σ_{i_0..i_{m−1}} Π_v z_v^{i_v} · digits[u(i, r)]` — every term is
/// locally owned because each block stride `D/k^{v+1}` is divisible by `P`.
pub(crate) fn redundant_eval_slice(
    my_slice: &[BigInt],
    z: &MPoint,
    k: usize,
    m: usize,
    leaf_len: usize,
    rank: usize,
    p: usize,
) -> Vec<BigInt> {
    let digits_total = my_slice.len() * p; // exact: p | D
                                           // Precompute the weight of each block tuple: Π_v monomial(z_v, i_v).
    let blocks = k.pow(m as u32);
    let weights: Vec<BigInt> = (0..blocks)
        .map(|mut idx| {
            let mut w = BigInt::one();
            // idx decomposes with i_{m−1} fastest (innermost split).
            for v in (0..m).rev() {
                let i_v = idx % k;
                idx /= k;
                w = &w * &z.coords()[v].monomial(k - 1, i_v);
            }
            w
        })
        .collect();
    let mut out = Vec::with_capacity(leaf_len.div_ceil(p));
    let mut r = rank;
    while r < leaf_len {
        let mut acc = BigInt::zero();
        for (bidx, w) in weights.iter().enumerate() {
            if w.is_zero() {
                continue;
            }
            // u = Σ_v i_v · D/k^{v+1} + r, with i_{m−1} the fastest digit
            // of bidx — equivalently u = bidx·leaf_len + r… only when the
            // strides nest exactly, which they do: D/k^{v+1} strides are
            // the mixed-radix places of (i_0…i_{m−1}) over leaf_len.
            let u = bidx * leaf_len + r;
            debug_assert!(u < digits_total);
            // Owned: u ≡ r ≡ rank (mod p).
            acc += &(w * &my_slice[u / p]);
        }
        out.push(acc);
        r += p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_algebra::points::in_general_position;
    use rand::SeedableRng;

    fn random_pair(bits: u64, seed: u64) -> (BigInt, BigInt) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (
            BigInt::random_bits(&mut rng, bits),
            BigInt::random_bits(&mut rng, bits),
        )
    }

    fn cfg(k: usize, m: usize, f: usize) -> MultistepConfig {
        MultistepConfig::new(ParallelConfig::new(k, m), f)
    }

    #[test]
    fn extra_processors_is_exactly_f() {
        let c = cfg(2, 2, 2);
        assert_eq!(c.extra_processors(), 2);
        assert_eq!(c.processors(), 9 + 2);
    }

    #[test]
    fn point_set_is_general_position() {
        let c = cfg(2, 2, 2);
        let pts = c.all_points();
        assert_eq!(pts.len(), 9 + 2);
        assert!(in_general_position(&pts, 3, 2));
    }

    #[test]
    fn no_faults_still_correct() {
        let (a, b) = random_pair(2500, 1);
        let out = run_multistep_ft(&a, &b, &cfg(2, 1, 1), FaultPlan::none());
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn no_faults_two_steps() {
        let (a, b) = random_pair(3000, 2);
        let out = run_multistep_ft(&a, &b, &cfg(2, 2, 2), FaultPlan::none());
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn leaf_fault_recovered_without_recomputation() {
        let (a, b) = random_pair(2500, 3);
        for victim in 0..3 {
            let plan = FaultPlan::none().kill(victim, "leaf-mult");
            let out = run_multistep_ft(&a, &b, &cfg(2, 1, 1), plan);
            assert_eq!(out.product, a.mul_schoolbook(&b), "victim={victim}");
            assert_eq!(out.report.total_deaths(), 1);
        }
    }

    #[test]
    fn two_leaf_faults_two_steps() {
        let (a, b) = random_pair(3000, 4);
        let plan = FaultPlan::none().kill(1, "leaf-mult").kill(7, "leaf-mult");
        let out = run_multistep_ft(&a, &b, &cfg(2, 2, 2), plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
        assert_eq!(out.report.total_deaths(), 2);
    }

    #[test]
    fn extra_rank_fault_tolerated() {
        // If an extra rank dies, its redundant product is simply unused
        // (chosen set picks the P surviving standard leaves).
        let (a, b) = random_pair(2500, 5);
        let c = cfg(2, 1, 1);
        let plan = FaultPlan::none().kill(3, "ms-extra-mult");
        let out = run_multistep_ft(&a, &b, &c, plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }

    #[test]
    fn tc3_one_step() {
        let (a, b) = random_pair(4000, 6);
        let plan = FaultPlan::none().kill(2, "leaf-mult");
        let out = run_multistep_ft(&a, &b, &cfg(3, 1, 2), plan);
        assert_eq!(out.product, a.mul_schoolbook(&b));
    }
}
